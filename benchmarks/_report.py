"""Helper: persist each bench's reproduced table/figure next to the timings.

pytest captures stdout, so every benchmark also writes its rendered rows to
``benchmarks/results/<name>.txt``; after a bench run the full set of
reproduced tables/figures can be read from that directory (EXPERIMENTS.md
quotes them).
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def emit(name: str, text: str) -> None:
    """Print the reproduced artifact and persist it for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")
