"""Table I — approximate cost breakdown of the mailed Raspberry Pi kit.

Regenerates the table (part-by-part costs and the $100.66 total) and times
the kit-costing and 22-kit procurement-planning paths.
"""

from repro.kits import KitInventory, render_table1, standard_pi_kit

from _report import emit


def test_table1_kit_cost(benchmark):
    kit = standard_pi_kit()

    def build_and_cost():
        k = standard_pi_kit()
        return k.cost(), k.rows()

    total, _rows = benchmark(build_and_cost)
    assert total == 100.66
    emit("table1_kit_cost", render_table1(kit))


def test_table1_bulk_procurement_plan(benchmark):
    inventory = KitInventory()
    plan = benchmark(inventory.plan, 22)
    assert plan.per_kit_bulk == 100.66
    emit(
        "table1_procurement_22_kits",
        (
            f"22 kits (the workshop cohort):\n"
            f"  bulk  per-kit ${plan.per_kit_bulk:.2f}  total ${plan.total_bulk:.2f}\n"
            f"  list  per-kit ${plan.per_kit_list:.2f}  total ${plan.total_list:.2f}\n"
            f"  bulk purchasing saves ${plan.bulk_savings:.2f}"
        ),
    )
