"""Ablation B — loop schedules on imbalanced work (the drug-design lesson).

A triangular workload (cost of iteration i grows with i) is the classic
case where static equal-chunk scheduling idles early threads.  These benches
time static / static,1 / dynamic / guided on the real thread runtime, and
the emitted table reports the imbalance each schedule leaves behind
(measured as the spread of per-thread work units).
"""

import pytest

from repro.openmp import parallel_for

from _report import emit

N = 400
THREADS = 4


def _triangular_cost(i: int) -> int:
    """Busy work proportional to the iteration index."""
    acc = 0
    for k in range(20 * (i + 1) // 10):
        acc += k
    return acc


def _run(schedule, chunk=None):
    return parallel_for(
        N,
        _triangular_cost,
        num_threads=THREADS,
        schedule=schedule,
        chunk=chunk,
        reduction="+",
    )


EXPECTED = sum(_triangular_cost(i) for i in range(N))


class TestScheduleTimings:
    def test_static_blocks(self, benchmark):
        assert benchmark(_run, "static") == EXPECTED

    def test_static_chunks_of_one(self, benchmark):
        assert benchmark(_run, "static", 1) == EXPECTED

    def test_dynamic(self, benchmark):
        assert benchmark(_run, "dynamic", 4) == EXPECTED

    def test_guided(self, benchmark):
        assert benchmark(_run, "guided") == EXPECTED


def _work_spread(schedule: str, chunk):
    """Busiest thread's triangular-work share under a schedule.

    Static schedules have a fixed assignment, computed directly.  Dynamic
    and guided self-scheduling are evaluated with a deterministic
    event-driven simulation — the idlest thread (smallest accumulated cost)
    claims the next chunk — which is exactly how they behave on genuinely
    parallel hardware, without the GIL's single-runner noise.
    """
    from repro.openmp import (
        DynamicScheduler,
        GuidedScheduler,
        static_block_ranges,
        static_chunks,
    )

    def cost(indices) -> int:
        return sum(i + 1 for i in indices)  # triangular cost units

    if schedule == "static" and chunk is None:
        shares = [cost(r) for r in static_block_ranges(N, THREADS)]
    elif schedule == "static":
        shares = [cost(static_chunks(N, THREADS, chunk, t)) for t in range(THREADS)]
    else:
        scheduler = (
            DynamicScheduler(N, chunk or 1)
            if schedule == "dynamic"
            else GuidedScheduler(N, THREADS, chunk or 1)
        )
        shares = [0] * THREADS
        while True:
            claimed = scheduler.next_chunk()
            if not claimed:
                break
            idlest = shares.index(min(shares))
            shares[idlest] += cost(claimed)
    return max(shares) / (sum(shares) / THREADS)


def test_emit_imbalance_table(benchmark):
    rows = [
        ("static (equal chunks)", _work_spread("static", None)),
        ("static, chunk 1", _work_spread("static", 1)),
        ("dynamic, chunk 4", benchmark(_work_spread, "dynamic", 4)),
        ("guided", _work_spread("guided", None)),
    ]
    lines = [
        f"Triangular loop (n={N}, {THREADS} threads): busiest thread's share "
        "of work relative to the mean (1.00 = perfectly balanced)",
    ]
    for name, ratio in rows:
        lines.append(f"  {name:<24} {ratio:5.2f}x")
    # the headline lesson: equal chunks leave ~1.7x hot spots; chunk-1 fixes it
    assert rows[0][1] > 1.4
    assert rows[1][1] < 1.1
    emit("ablation_scheduling", "\n".join(lines))
