"""Figure 2 — the Colab SPMD patternlet cell.

Executes the exact notebook cells from the figure (``%%writefile 00spmd.py``
then ``!mpirun --allow-run-as-root -np 4 python 00spmd.py``) on the
in-process MPI runtime and times the full write-then-mpirun cycle.
"""

from repro.runestone import Notebook
from repro.runestone.modules.mpi_colab import SPMD_CELL_SOURCE, SPMD_RUN_COMMAND

from _report import emit


def _run_fig2_cells() -> str:
    notebook = Notebook("mpi4py_patternlets.ipynb")
    notebook.code(SPMD_CELL_SOURCE)
    notebook.code(SPMD_RUN_COMMAND)
    results = notebook.run_all()
    assert all(r.ok for r in results), [r.error for r in results if not r.ok]
    return results[1].stdout


def test_fig2_colab_spmd_cell(benchmark):
    stdout = benchmark(_run_fig2_cells)
    lines = stdout.splitlines()
    assert len(lines) == 4
    assert {int(l.split()[3]) for l in lines} == {0, 1, 2, 3}
    emit(
        "fig2_colab_spmd",
        f"$ {SPMD_RUN_COMMAND.lstrip('! ')}\n{stdout}",
    )
