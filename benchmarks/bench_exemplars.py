"""Implied evaluation — the exemplar applications themselves.

* the handout's closing *benchmarking study* (integration at 1..4 threads
  on the Pi model),
* the forest-fire burn-probability S-curve,
* the drug-design campaign (sequential vs master-worker agreement).

The benchmark fixture times the real Python implementations (sequential
kernels and the threaded/MPI harnesses); the emitted tables are the series
the handout has learners produce.
"""

import math

import pytest

from repro.exemplars import (
    burn_once,
    fire_curve_seq,
    generate_ligands,
    integrate_mpi,
    integrate_numpy,
    integrate_omp,
    integrate_seq,
    lcs_length,
    quarter_circle,
    run_mpi_master_worker,
    run_seq,
)
from repro.exemplars.integration import integration_workload
from repro.platforms import RASPBERRY_PI_4, CostModel, ScalingStudy

from _report import emit


class TestIntegration:
    def test_sequential_kernel(self, benchmark):
        value = benchmark(integrate_seq, quarter_circle, 0.0, 2.0, 20_000)
        assert value == pytest.approx(math.pi, abs=1e-4)

    def test_numpy_kernel(self, benchmark):
        value = benchmark(integrate_numpy, None, 0.0, 2.0, 200_000)
        assert value == pytest.approx(math.pi, abs=1e-6)

    def test_omp_harness(self, benchmark):
        value = benchmark(integrate_omp, 20_000, 4)
        assert value == pytest.approx(math.pi, abs=1e-4)

    def test_mpi_harness(self, benchmark):
        value = benchmark(integrate_mpi, 20_000, 4)
        assert value == pytest.approx(math.pi, abs=1e-4)

    def test_handout_benchmarking_study(self, benchmark):
        """The last half hour of the shared-memory module: speedup on the Pi."""
        model = CostModel(RASPBERRY_PI_4)
        workload = integration_workload(50_000_000)

        def study():
            counts = [1, 2, 4]
            times = [model.time(workload, p).total_s for p in counts]
            return ScalingStudy(model.name, workload.name, counts, times)

        result = benchmark(study)
        assert result.speedups[-1] > 3.0
        emit("integration_pi_benchmark_study", result.format_table())


class TestForestFire:
    def test_single_burn(self, benchmark):
        burned, iters = benchmark(burn_once, 25, 0.5, 42)
        assert 0.0 < burned <= 1.0

    def test_burn_probability_curve(self, benchmark):
        curve = benchmark(fire_curve_seq, trials=5, size=21, seed=7)
        assert curve.is_monotone_nondecreasing()
        emit("forestfire_curve", curve.format_table())


class TestHeatDiffusion:
    def test_sequential_stencil(self, benchmark):
        from repro.exemplars import heat_seq

        u = benchmark(heat_seq, 2000, 50)
        assert u[0] == 100.0

    def test_mpi_halo_exchange(self, benchmark):
        import numpy as np

        from repro.exemplars import heat_mpi, heat_seq

        u = benchmark(heat_mpi, 400, 30, 0.25, 100.0, 4)
        np.testing.assert_array_equal(u, heat_seq(400, 30))

    def test_stencil_scaling_table(self, benchmark):
        from repro.exemplars import heat_workload
        from repro.platforms import ST_OLAF_VM, CostModel, ScalingStudy

        model = CostModel(ST_OLAF_VM)
        workload = heat_workload(400_000, steps=500)

        def study():
            counts = [1, 2, 4, 8, 16, 32]
            times = [model.time(workload, p).total_s for p in counts]
            return ScalingStudy(model.name, workload.name, counts, times)

        result = benchmark(study)
        emit(
            "heat_scaling",
            result.format_table()
            + "\n-> per-step halo synchronization bends the stencil's "
            "efficiency curve far earlier than the Monte-Carlo exemplars",
        )


class TestDrugDesign:
    def test_lcs_kernel(self, benchmark):
        protein = "the cat in the hat wore the hat to the cat hat party"
        score = benchmark(lcs_length, "hathat", protein)
        assert score == 6

    def test_sequential_campaign(self, benchmark):
        ligands = generate_ligands(60, max_len=8, seed=9)
        result = benchmark(run_seq, ligands)
        emit("drugdesign_campaign", result.summary())

    def test_master_worker_campaign(self, benchmark):
        ligands = generate_ligands(60, max_len=8, seed=9)
        result = benchmark(run_mpi_master_worker, ligands, np_procs=4)
        assert result.scores == run_seq(ligands).scores
