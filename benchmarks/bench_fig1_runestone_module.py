"""Figure 1 — the Runestone virtual handout's race-condition page.

Builds the full Raspberry Pi module, renders §2.3 (the screenshotted page),
grades the Fig. 1 multiple-choice question, and times the module build +
render path an instructor's server would execute per page view.
"""

from repro.runestone import (
    RACE_CONDITION_QUESTION,
    build_raspberry_pi_module,
    render_section_text,
)

from _report import emit


def test_fig1_module_build_and_render(benchmark):
    def build_and_render():
        module = build_raspberry_pi_module()
        return module, render_section_text(module.find_section("2.3"))

    module, view = benchmark(build_and_render)
    assert "Q-2: What is a race condition?" in view
    assert module.session_minutes == 120
    emit("fig1_runestone_race_page", view)


def test_fig1_question_grading(benchmark):
    result = benchmark(RACE_CONDITION_QUESTION.grade, "C")
    assert result.correct
    graded = "\n".join(
        f"answer {label}: correct={RACE_CONDITION_QUESTION.grade(label).correct}  "
        f"feedback: {RACE_CONDITION_QUESTION.grade(label).feedback}"
        for label in "ABC"
    )
    emit("fig1_question_grading", graded)
