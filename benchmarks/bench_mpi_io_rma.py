"""Extension benches: MPI-IO collective file access and one-sided RMA.

These time the remaining mpi4py-tutorial features the runtime implements:
the collective Write_at_all/Read_at_all cycle and Put/Accumulate epochs.
"""

import numpy as np

from repro.mpi import MPI, SUM, Win, mpirun

from _report import emit

NP = 4
N = 256


def test_collective_file_roundtrip(benchmark, tmp_path):
    path = str(tmp_path / "bench.contig")

    def cycle():
        def body(comm):
            fh = MPI.File.Open(comm, path, MPI.MODE_RDWR | MPI.MODE_CREATE)
            data = np.full(N, comm.Get_rank(), dtype="d")
            fh.Write_at_all(comm.Get_rank() * data.nbytes, data)
            back = np.empty(N, dtype="d")
            fh.Read_at_all(comm.Get_rank() * data.nbytes, back)
            fh.Close()
            return float(back[0])

        return mpirun(body, NP)

    outs = benchmark(cycle)
    assert outs == [float(r) for r in range(NP)]
    emit(
        "mpi_io_roundtrip",
        f"{NP} ranks each wrote+read {N} doubles through one shared file "
        "(collective Write_at_all / Read_at_all); timings in the benchmark "
        "table.",
    )


def test_rma_put_fence(benchmark):
    def cycle():
        def body(comm):
            local = np.zeros(N, dtype="d")
            win = Win.Create(local, comm)
            win.Fence()
            win.Put(
                np.full(N, comm.Get_rank(), dtype="d"),
                target_rank=(comm.Get_rank() + 1) % comm.Get_size(),
            )
            win.Fence()
            win.Free()
            return float(local[0])

        return mpirun(body, NP)

    outs = benchmark(cycle)
    assert outs == [float((r - 1) % NP) for r in range(NP)]


def test_rma_accumulate_contention(benchmark):
    def cycle():
        def body(comm):
            local = np.zeros(1, dtype="i8")
            win = Win.Create(local, comm)
            win.Fence()
            for _ in range(50):
                win.Accumulate(np.ones(1, dtype="i8"), target_rank=0, op=SUM)
            win.Fence()
            win.Free()
            return int(local[0])

        return mpirun(body, NP)

    outs = benchmark(cycle)
    assert outs[0] == 50 * NP
