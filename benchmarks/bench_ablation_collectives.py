"""Ablation A — collective algorithm choices inside the MPI substrate.

DESIGN.md calls out binomial-tree vs linear broadcast/reduce and recursive-
doubling vs reduce+bcast allreduce.  These benches time both algorithms on
the real thread-per-rank runtime (np=8, object payloads) so the tree
algorithms' latency advantage is measured, not assumed.

With the registry in :mod:`repro.mpi.algorithms` this file also races
*every* registered algorithm per collective across message sizes, via the
public ``algorithm=`` keyword — the numbers behind the cost model's
crossover points.  ``python benchmarks/bench_ablation_collectives.py``
writes the race as JSON (the CI collectives-matrix artifact).
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.mpi import ALGORITHMS, SUM, mpirun, run
from repro.mpi.collectives import (
    allreduce_recursive_doubling,
    bcast_binomial,
    bcast_linear,
    reduce_binomial,
    reduce_linear,
)

from _report import emit

NP = 8
PAYLOAD = list(range(256))

#: elements per rank for the algorithm race (float64: 8 B/element)
RACE_COUNTS = (64, 4_096, 65_536)
RACE_NP = 4


def _bcast_with(algorithm):
    def body(comm):
        send, recv = comm._transports()
        payload = PAYLOAD if comm.Get_rank() == 0 else None
        return algorithm(comm.Get_rank(), comm.Get_size(), 0, payload, send, recv)

    return lambda: mpirun(body, NP)


def _reduce_with(algorithm):
    def body(comm):
        send, recv = comm._transports()
        return algorithm(
            comm.Get_rank(), comm.Get_size(), 0, comm.Get_rank() + 1, SUM, send, recv
        )

    return lambda: mpirun(body, NP)


class TestBroadcastAlgorithms:
    def test_binomial_tree(self, benchmark):
        outs = benchmark(_bcast_with(bcast_binomial))
        assert all(o == PAYLOAD for o in outs)

    def test_linear(self, benchmark):
        outs = benchmark(_bcast_with(bcast_linear))
        assert all(o == PAYLOAD for o in outs)


class TestReduceAlgorithms:
    def test_binomial_tree(self, benchmark):
        outs = benchmark(_reduce_with(reduce_binomial))
        assert outs[0] == sum(range(1, NP + 1))

    def test_linear_rank_order(self, benchmark):
        outs = benchmark(_reduce_with(reduce_linear))
        assert outs[0] == sum(range(1, NP + 1))


class TestAllreduceAlgorithms:
    def test_recursive_doubling(self, benchmark):
        def body(comm):
            return comm.allreduce(comm.Get_rank(), op=SUM)

        outs = benchmark(lambda: mpirun(body, NP))
        assert all(o == sum(range(NP)) for o in outs)

    def test_reduce_then_bcast(self, benchmark):
        def body(comm):
            total = comm.reduce(comm.Get_rank(), op=SUM, root=0)
            return comm.bcast(total, root=0)

        outs = benchmark(lambda: mpirun(body, NP))
        assert all(o == sum(range(NP)) for o in outs)


# ---------------------------------------------------------------------------
# Registry race: every algorithm x message size, through ``algorithm=``
# ---------------------------------------------------------------------------

def _race_body(comm, collective, algorithm, count, iters):
    buf = np.arange(count, dtype=np.float64) + comm.Get_rank()
    out = np.empty(count, dtype=np.float64)
    comm.Allreduce(buf, out)  # warm the transport before timing
    t0 = time.perf_counter()
    for _ in range(iters):
        if collective == "allreduce":
            comm.Allreduce(buf, out, SUM, algorithm=algorithm)
        else:
            comm.Bcast(buf, 0, algorithm=algorithm)
    return time.perf_counter() - t0


def _time_algorithm(collective, algorithm, count, iters=3):
    times = run(_race_body, RACE_NP, collective, algorithm, count, iters)
    return max(times) / iters  # a collective finishes with its slowest rank


def race_algorithms(counts=RACE_COUNTS, collectives=("allreduce", "bcast")):
    """Best-effort seconds-per-call for every (collective, algorithm, size)."""
    rows = []
    for collective in collectives:
        for algorithm in ALGORITHMS[collective]:
            for count in counts:
                rows.append(
                    {
                        "collective": collective,
                        "algorithm": algorithm,
                        "count": count,
                        "nbytes": count * 8,
                        "np": RACE_NP,
                        "seconds": _time_algorithm(collective, algorithm, count),
                    }
                )
    return rows


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS["allreduce"]))
def test_allreduce_algorithm_race(benchmark, algorithm):
    result = benchmark(
        lambda: _time_algorithm("allreduce", algorithm, 4_096, iters=1)
    )
    assert result >= 0.0


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS["bcast"]))
def test_bcast_algorithm_race(benchmark, algorithm):
    result = benchmark(
        lambda: _time_algorithm("bcast", algorithm, 4_096, iters=1)
    )
    assert result >= 0.0


def test_emit_algorithm_inventory(benchmark):
    benchmark(lambda: None)  # keep this collected under --benchmark-only
    registry = "; ".join(
        f"{coll}: {', '.join(algos)}" for coll, algos in ALGORITHMS.items()
    )
    emit(
        "ablation_collectives",
        "Collective algorithm ablation (np=8, 256-element object payload):\n"
        "  bcast: binomial tree (default) vs linear root-sends-all\n"
        "  reduce: binomial tree (commutative default) vs linear rank-order\n"
        "  allreduce: recursive doubling (default) vs reduce+bcast\n"
        f"Selectable registry ({RACE_NP} ranks, float64 counts "
        f"{RACE_COUNTS}): {registry}\n"
        "Timings in the pytest-benchmark table alongside this file; the\n"
        "full size sweep lands in results/ablation_race.json when this\n"
        "file is run as a script.",
    )


if __name__ == "__main__":
    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    rows = race_algorithms()
    out_path = results_dir / "ablation_race.json"
    out_path.write_text(json.dumps({"schema": 1, "rows": rows}, indent=2) + "\n")
    for row in rows:
        print(
            f"{row['collective']:<10} {row['algorithm']:<18} "
            f"{row['nbytes']:>8} B  {row['seconds'] * 1e3:8.3f} ms"
        )
    print(f"\nwritten to {out_path}")
