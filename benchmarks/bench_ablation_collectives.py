"""Ablation A — collective algorithm choices inside the MPI substrate.

DESIGN.md calls out binomial-tree vs linear broadcast/reduce and recursive-
doubling vs reduce+bcast allreduce.  These benches time both algorithms on
the real thread-per-rank runtime (np=8, object payloads) so the tree
algorithms' latency advantage is measured, not assumed.
"""

import pytest

from repro.mpi import SUM, mpirun
from repro.mpi.collectives import (
    allreduce_recursive_doubling,
    bcast_binomial,
    bcast_linear,
    reduce_binomial,
    reduce_linear,
)

from _report import emit

NP = 8
PAYLOAD = list(range(256))


def _bcast_with(algorithm):
    def body(comm):
        send, recv = comm._transports()
        payload = PAYLOAD if comm.Get_rank() == 0 else None
        return algorithm(comm.Get_rank(), comm.Get_size(), 0, payload, send, recv)

    return lambda: mpirun(body, NP)


def _reduce_with(algorithm):
    def body(comm):
        send, recv = comm._transports()
        return algorithm(
            comm.Get_rank(), comm.Get_size(), 0, comm.Get_rank() + 1, SUM, send, recv
        )

    return lambda: mpirun(body, NP)


class TestBroadcastAlgorithms:
    def test_binomial_tree(self, benchmark):
        outs = benchmark(_bcast_with(bcast_binomial))
        assert all(o == PAYLOAD for o in outs)

    def test_linear(self, benchmark):
        outs = benchmark(_bcast_with(bcast_linear))
        assert all(o == PAYLOAD for o in outs)


class TestReduceAlgorithms:
    def test_binomial_tree(self, benchmark):
        outs = benchmark(_reduce_with(reduce_binomial))
        assert outs[0] == sum(range(1, NP + 1))

    def test_linear_rank_order(self, benchmark):
        outs = benchmark(_reduce_with(reduce_linear))
        assert outs[0] == sum(range(1, NP + 1))


class TestAllreduceAlgorithms:
    def test_recursive_doubling(self, benchmark):
        def body(comm):
            return comm.allreduce(comm.Get_rank(), op=SUM)

        outs = benchmark(lambda: mpirun(body, NP))
        assert all(o == sum(range(NP)) for o in outs)

    def test_reduce_then_bcast(self, benchmark):
        def body(comm):
            total = comm.reduce(comm.Get_rank(), op=SUM, root=0)
            return comm.bcast(total, root=0)

        outs = benchmark(lambda: mpirun(body, NP))
        assert all(o == sum(range(NP)) for o in outs)


def test_emit_algorithm_inventory(benchmark):
    benchmark(lambda: None)  # keep this collected under --benchmark-only
    emit(
        "ablation_collectives",
        "Collective algorithm ablation (np=8, 256-element object payload):\n"
        "  bcast: binomial tree (default) vs linear root-sends-all\n"
        "  reduce: binomial tree (commutative default) vs linear rank-order\n"
        "  allreduce: recursive doubling (default) vs reduce+bcast\n"
        "Timings in the pytest-benchmark table alongside this file.",
    )
