"""Figures 3 & 4 — pre/post confidence and preparedness histograms + t-tests.

Regenerates both histograms and the paired Student's t-tests the paper
reports (pre_m=2.82, post_m=3.59, p=0.0004; pre_m=2.59, post_m=3.77,
p=4.18e-08), and times the from-scratch t-test path.
"""

import pytest

from repro.assessment import CONFIDENCE_PAIRS, figure3, figure4, paired_t_test

from _report import emit


def test_fig3_confidence(benchmark):
    fig = benchmark(figure3)
    assert round(fig.test.pre_mean, 2) == 2.82
    assert round(fig.test.post_mean, 2) == 3.59
    assert fig.test.p_value == pytest.approx(0.0004, abs=5e-5)
    emit("fig3_confidence", fig.render())


def test_fig4_preparedness(benchmark):
    fig = benchmark(figure4)
    assert round(fig.test.pre_mean, 2) == 2.59
    assert round(fig.test.post_mean, 2) == 3.77
    assert fig.test.p_value == pytest.approx(4.18e-8, rel=0.01)
    emit("fig4_preparedness", fig.render())


def test_paired_t_test_kernel(benchmark):
    """The statistical kernel on its own (the part DHA would rerun per item)."""
    pre = [a for a, _b in CONFIDENCE_PAIRS]
    post = [b for _a, b in CONFIDENCE_PAIRS]
    result = benchmark(paired_t_test, pre, post)
    assert result.df == 21
    emit(
        "fig3_fig4_ttest_kernel",
        f"confidence item: {result.summary()}",
    )
