"""Implied evaluation — exemplar speedup/scalability per platform.

The paper's qualitative performance claims: Colab's unicore VM cannot show
speedup; the St. Olaf 64-core VM and the Chameleon cluster show "good
parallel speedup and scalability".  For every exemplar x platform pair this
bench regenerates the scaling series (simulated time, speedup, efficiency)
and asserts the claims' shape; the benchmark fixture times the cost-model
sweep.
"""

import pytest

from repro.core import plan_scaling_run, run_exemplar_study

from _report import emit

EXEMPLARS = ("integration", "forestfire", "drugdesign")
PLATFORMS = ("colab", "stolaf-vm", "chameleon-cluster", "raspberry-pi-4")


@pytest.mark.parametrize("platform", PLATFORMS)
@pytest.mark.parametrize("exemplar", EXEMPLARS)
def test_platform_scaling(benchmark, exemplar, platform):
    run = benchmark(run_exemplar_study, exemplar, platform)
    study = run.study
    if platform == "colab":
        assert not study.shows_speedup()  # "just one core"
    elif platform == "raspberry-pi-4":
        assert 2.0 <= study.max_speedup <= 4.0  # bounded by 4 cores
    else:
        assert study.max_speedup >= 8.0  # "good parallel speedup"
    emit(
        f"speedup_{exemplar}_{platform}",
        study.format_table() + f"\n-> {run.learner_takeaway()}",
    )


def test_scaling_plan_overhead(benchmark):
    counts = benchmark(plan_scaling_run, "stolaf-vm")
    assert counts[-1] == 64
