"""Table II — per-session usefulness ratings (Likert means).

Regenerates both rows exactly (4.55/4.45 and 4.38/4.29) from the calibrated
ratings and times the survey-aggregation path.
"""

from repro.assessment import table2

from _report import emit


def test_table2_session_usefulness(benchmark):
    result = benchmark(table2)
    assert result.rows == (
        ("OpenMP on Raspberry Pi", 4.55, 4.45),
        ("MPI & Distr. Cluster Computing", 4.38, 4.29),
    )
    emit("table2_usefulness", result.render())
