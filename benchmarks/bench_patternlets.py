"""Ablation C — patternlet runtime overhead.

Every teaching patternlet must run in classroom time (interactive, seconds
at most).  These benches time one representative patternlet per family and
the full-catalog sweep each handout performs.
"""

import pytest

from repro.patternlets import all_patternlets, get_patternlet

from _report import emit


@pytest.mark.parametrize(
    "paradigm,name,kwargs",
    [
        ("openmp", "spmd", {"num_threads": 4}),
        ("openmp", "reduction", {"num_threads": 4, "n": 10_000}),
        ("openmp", "forDynamic", {"num_threads": 4, "n": 24}),
        ("mpi", "spmd", {"np": 4}),
        ("mpi", "messagePassingRing", {"np": 4}),
        ("mpi", "masterWorker", {"np": 4, "num_tasks": 12}),
        ("mpi", "allreduceArrays", {"np_procs": 4, "n": 64}),
    ],
)
def test_single_patternlet(benchmark, paradigm, name, kwargs):
    patternlet = get_patternlet(paradigm, name)
    result = benchmark(patternlet.run, **kwargs)
    assert result.trace or result.values


def test_full_catalog_sweep(benchmark):
    """Run every patternlet once (race capped for interactivity)."""

    def sweep():
        count = 0
        for p in all_patternlets():
            kwargs = {}
            if p.name == "race":
                kwargs = {"iterations": 1000}
            elif p.name in ("critical", "atomic"):
                kwargs = {"iterations": 1000}
            p.run(**kwargs)
            count += 1
        return count

    count = benchmark.pedantic(sweep, rounds=2, iterations=1)
    assert count == 29
    emit(
        "ablation_patternlet_overhead",
        f"full catalog ({count} patternlets, both paradigms) runs per sweep; "
        "timings in the pytest-benchmark table.",
    )
