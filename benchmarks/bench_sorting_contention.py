"""Extension benches: the parallel-sorting exemplar and shared-VM sizing.

* Sorting: real timings of sequential / task-parallel mergesort and the
  MPI odd-even transposition sort, plus the cost-model scaling table for
  the Algorithms-course injection.
* Contention: how many simultaneous learners the St. Olaf VM carries — the
  sizing question behind the paper's "(~$5,000 for a 64-core server)"
  remark.
"""

import random

import pytest

from repro.exemplars import (
    forestfire_workload,
    merge_sort_seq,
    merge_sort_tasks,
    odd_even_sort_mpi,
    sorting_workload,
)
from repro.platforms import ST_OLAF_VM, CostModel, ScalingStudy, SharedMachineModel

from _report import emit

DATA = random.Random(2020).sample(range(100_000), 2_000)


class TestSortingTimings:
    def test_sequential_mergesort(self, benchmark):
        out = benchmark(merge_sort_seq, DATA)
        assert out == sorted(DATA)

    def test_task_parallel_mergesort(self, benchmark):
        out = benchmark(merge_sort_tasks, DATA, 4, 128)
        assert out == sorted(DATA)

    def test_odd_even_mpi(self, benchmark):
        out = benchmark(odd_even_sort_mpi, DATA[:500], 4)
        assert out == sorted(DATA[:500])


def test_sorting_scaling_table(benchmark):
    model = CostModel(ST_OLAF_VM)
    workload = sorting_workload(1_000_000)

    def study():
        counts = [1, 2, 4, 8, 16, 32]
        times = [model.time(workload, p).total_s for p in counts]
        return ScalingStudy(model.name, workload.name, counts, times)

    result = benchmark(study)
    emit("sorting_scaling", result.format_table())


def test_shared_vm_capacity(benchmark):
    model = SharedMachineModel(ST_OLAF_VM)
    workload = forestfire_workload(size=60, trials=40)
    capacity = benchmark(model.capacity, workload, 2, 1.5)
    assert capacity >= 22  # the workshop cohort fits
    emit(
        "contention_stolaf_vm",
        model.format_table(workload, procs=2, learner_counts=[1, 8, 16, 22, 32, 64])
        + f"\n-> within 1.5x slowdown, capacity at 2 procs/learner: "
        f"{capacity} simultaneous learners (workshop cohort: 22)",
    )
