"""Section IV-C — virtual-discussion facilitation ablation.

The paper's community-building lesson: unmoderated online discussions let
extroverts dominate while shy participants stay silent; deliberate
facilitation balances them.  This bench quantifies the three policies on
the 22-participant cohort and times the simulation.
"""

from repro.assessment import workshop_cohort
from repro.core import Facilitation, simulate_discussion

from _report import emit


def test_facilitation_ablation(benchmark):
    participants = [f"participant-{p.pid:02d}" for p in workshop_cohort()]

    def run_all():
        return {
            policy: simulate_discussion(
                participants, minutes=60, policy=policy, seed=2020
            )
            for policy in Facilitation
        }

    outcomes = benchmark(run_all)
    fair = 1.0 / len(participants)
    lines = [
        f"60-minute discussion, {len(participants)} participants "
        f"(fair share = {fair:.1%} of turns):",
        f"{'policy':<14} {'top talker':>11} {'silent':>7}",
    ]
    for policy, outcome in outcomes.items():
        lines.append(
            f"{policy.value:<14} {outcome.dominance:>10.1%} "
            f"{outcome.silent_participants:>7}"
        )
    none = outcomes[Facilitation.NONE]
    prompted = outcomes[Facilitation.PROMPTED]
    rr = outcomes[Facilitation.ROUND_ROBIN]
    assert none.dominance > prompted.dominance >= rr.dominance
    assert none.silent_participants > 0
    assert prompted.silent_participants == 0
    emit("discussion_facilitation", "\n".join(lines))
