"""Section IV — the whole workshop pilot as one reproducible run.

Times the end-to-end simulation (22 participants x full handout + VNC
incident + assessment assembly) and emits the headline findings.
"""

from repro.core import simulate_workshop

from _report import emit


def test_workshop_pilot(benchmark):
    report = benchmark.pedantic(simulate_workshop, rounds=2, iterations=1)
    assert report.participants == 22
    assert report.shared_memory_session.learners_with_issues == 0
    findings = report.headline_findings()
    assert len(findings) >= 4
    emit(
        "workshop_pilot",
        "\n".join(
            [
                f"participants: {report.participants}",
                f"shared-memory session completion: "
                f"{report.shared_memory_session.completion_rate:.0%}",
                f"setup issues resolved by videos: "
                f"{report.shared_memory_session.resolved_by_videos}",
                f"VNC lockouts: {len(report.vnc_incident.locked_out_participants)} "
                f"(all finished via ssh: {report.vnc_incident.all_finished_via_ssh})",
                "",
                *(f"- {f}" for f in findings),
            ]
        ),
    )
