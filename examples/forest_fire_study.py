#!/usr/bin/env python
"""The forest-fire exemplar study (the distributed module's second hour).

Runs the burn-probability sweep three ways — sequential, threaded, and MPI —
verifies the curves are identical, then shows what the same job would cost
on each of the paper's platforms (Colab's unicore VM vs. the St. Olaf
64-core VM vs. a Chameleon cluster).

    python examples/forest_fire_study.py [grid_size] [trials]
"""

import sys
import time

from repro.core import run_exemplar_study
from repro.exemplars import fire_curve_mpi, fire_curve_omp, fire_curve_seq


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    trials = int(sys.argv[2]) if len(sys.argv) > 2 else 10

    print(f"Forest fire: {size}x{size} forest, {trials} trials per probability\n")

    t0 = time.perf_counter()
    seq = fire_curve_seq(trials=trials, size=size)
    t_seq = time.perf_counter() - t0
    print(seq.format_table())
    print(f"\nsequential sweep took {t_seq:.2f}s")
    print(f"phase transition (>=50% burned) at prob {seq.transition_prob()}\n")

    omp = fire_curve_omp(trials=trials, size=size, num_threads=4)
    mpi = fire_curve_mpi(trials=trials, size=size, np_procs=4)
    assert omp.burned == seq.burned == mpi.burned
    print("threaded (4 threads) and MPI (4 ranks) sweeps reproduce the "
          "sequential curve bit-for-bit\n")

    print("What the same study costs on the paper's platforms (simulated):")
    for platform in ("colab", "stolaf-vm", "chameleon-cluster"):
        run = run_exemplar_study("forestfire", platform)
        print(f"\n{run.study.format_table()}")
        print(f"-> {run.learner_takeaway()}")


if __name__ == "__main__":
    main()
