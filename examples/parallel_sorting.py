#!/usr/bin/env python
"""Parallel sorting: the Algorithms-course injection from the paper's intro.

Sorts the same data three ways — sequential mergesort, task-parallel
mergesort (OpenMP tasks), and distributed odd-even transposition sort
(MPI) — verifies agreement, shows the message traffic of the distributed
sort, and prints the scaling study an Algorithms lecture would discuss.

    python examples/parallel_sorting.py [n]
"""

import random
import sys
import time

from repro.exemplars import (
    merge_sort_seq,
    merge_sort_tasks,
    odd_even_sort_mpi,
    sorting_workload,
)
from repro.mpi import trace_run
from repro.platforms import ST_OLAF_VM, CostModel, ScalingStudy


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    data = random.Random(7).sample(range(10 * n), n)
    expected = sorted(data)

    t0 = time.perf_counter()
    assert merge_sort_seq(data) == expected
    t_seq = time.perf_counter() - t0
    print(f"sequential mergesort of {n} keys: {t_seq:.3f}s")

    t0 = time.perf_counter()
    assert merge_sort_tasks(data, num_threads=4, cutoff=128) == expected
    print(f"task-parallel mergesort (4 threads): {time.perf_counter() - t0:.3f}s")

    t0 = time.perf_counter()
    assert odd_even_sort_mpi(data[:600], np_procs=4) == sorted(data[:600])
    print(f"odd-even transposition sort (4 ranks, 600 keys): "
          f"{time.perf_counter() - t0:.3f}s")

    # Count the distributed sort's explicit messages with the tracer.
    small = data[:200]
    _, report = trace_run(
        lambda comm: _sort_body(comm, small), 4
    )
    print(f"\nodd-even sort message traffic (4 ranks, 200 keys):")
    print(report.format_matrix())

    print("\nScaling on the St. Olaf VM model (1M keys):")
    model = CostModel(ST_OLAF_VM)
    workload = sorting_workload(1_000_000)
    counts = [1, 2, 4, 8, 16, 32]
    times = [model.time(workload, p).total_s for p in counts]
    study = ScalingStudy(model.name, workload.name, counts, times)
    print(study.format_table())
    crossover = study.crossover_procs()
    print(
        f"\nNote the crossover at {crossover} processes: odd-even's O(p^2) "
        "message volume eventually beats the compute savings — a concrete "
        "communication-vs-computation trade-off for the lecture."
    )


def _sort_body(comm, values):
    """The odd-even sort body, inlined so the tracer sees its messages."""
    from repro.exemplars.sorting import TAG_SPAN, _merge_split
    from repro.mpi.ops import LOR

    rank, size = comm.Get_rank(), comm.Get_size()
    blocks = None
    if rank == 0:
        base, extra = divmod(len(values), size)
        blocks, start = [], 0
        for r in range(size):
            count = base + (1 if r < extra else 0)
            blocks.append(values[start : start + count])
            start += count
    mine = sorted(comm.scatter(blocks, root=0))
    phase = 0
    while True:
        changed = False
        for _half in range(2):
            if phase % 2 == 0:
                partner = rank + 1 if rank % 2 == 0 else rank - 1
            else:
                partner = rank + 1 if rank % 2 == 1 else rank - 1
            if 0 <= partner < size:
                theirs = comm.sendrecv(mine, dest=partner, sendtag=phase % TAG_SPAN,
                                       source=partner, recvtag=phase % TAG_SPAN)
                if mine or theirs:
                    updated = _merge_split(mine, theirs, keep_low=rank < partner)
                    if updated != mine:
                        changed = True
                        mine = updated
            phase += 1
        if not comm.allreduce(changed, op=LOR):
            break
    return comm.gather(mine, root=0)


if __name__ == "__main__":
    main()
