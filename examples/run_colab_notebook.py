#!/usr/bin/env python
"""Execute the full mpi4py patternlets Colab notebook headlessly.

This is the distributed module's first hour as a script: every cell of the
notebook from the paper's Fig. 2 is run against the in-process MPI runtime,
printing each `%%writefile` and `!mpirun` cell's output as a learner would
see it in Colab.

    python examples/run_colab_notebook.py [num_processes]
"""

import sys

from repro.runestone import build_mpi_colab_notebook


def main() -> None:
    np = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    notebook = build_mpi_colab_notebook(np=np)
    print(f"# {notebook.title} — executing {len(notebook.cells)} cells with np={np}\n")
    for index, result in enumerate(notebook.run_all()):
        cell = notebook.cells[index]
        if result.kind == "markdown":
            first = cell.source.splitlines()[0]
            print(f"\n--- {first} ---")
            continue
        if result.kind == "writefile":
            print(f"[cell {index}] {result.stdout}")
            continue
        header = cell.first_line
        print(f"[cell {index}] $ {header.lstrip('! ')}")
        if result.ok:
            for line in result.stdout.splitlines():
                print(f"    {line}")
        else:
            print(f"    ERROR: {result.error}")
    print("\nAll cells executed.")


if __name__ == "__main__":
    main()
