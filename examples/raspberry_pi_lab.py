#!/usr/bin/env python
"""Work through the shared-memory module as a learner would.

Renders the Raspberry Pi virtual handout chapter by chapter, runs every
hands-on patternlet activity, answers the interactive questions, and closes
with the handout's benchmarking study on the Pi-4 model — the complete
2-hour lab, in one script.

    python examples/raspberry_pi_lab.py
"""

from repro.exemplars import integration_workload
from repro.patternlets import get_patternlet
from repro.platforms import RASPBERRY_PI_4, CostModel, ScalingStudy
from repro.runestone import (
    LearnerProgress,
    build_raspberry_pi_module,
    render_section_text,
)


def main() -> None:
    module = build_raspberry_pi_module()
    learner = LearnerProgress("you", module)
    print(module.title)
    print(
        f"(pre-work: {module.prework_minutes} min setup; "
        f"session: {module.session_minutes} min)\n"
    )

    for chapter in module.chapters:
        print(f"### Chapter {chapter.number}: {chapter.title} "
              f"({chapter.minutes} min{', pre-work' if chapter.pre_work else ''})")
        for section in chapter.sections:
            print(render_section_text(section))
            # Run the section's hands-on activities for real.
            for activity in section.activities:
                patternlet = get_patternlet(activity.paradigm, activity.patternlet)
                kwargs = {"iterations": 20_000} if activity.patternlet == "race" else {}
                result = patternlet.run(**kwargs)
                print(f">>> ran {activity.paradigm}:{activity.patternlet}")
                for line in result.trace[:6]:
                    print(f"    {line}")
                print()
            learner.complete_section(section.number)

    # Answer the handout's questions (the race-condition one deliberately
    # wrong first, to show the targeted feedback).
    wrong = learner.submit("sp_mc_2", "B")
    print(f"sp_mc_2 answer B -> {wrong.feedback}")
    right = learner.submit("sp_mc_2", "C")
    print(f"sp_mc_2 answer C -> {right.feedback}")
    for activity_id, answer in [
        ("sp_mc_1", "C"), ("sp_mc_3", "B"), ("sp_mc_4", "B"),
        ("sp_fib_1", 4), ("sp_fib_2", 3.14),
        ("sp_dnd_1", {
            "process": "an executing program with its own address space",
            "thread": "an execution stream sharing its process's memory",
            "core": "a hardware unit that executes one stream at a time",
        }),
    ]:
        learner.submit(activity_id, answer)

    print("\n### The closing benchmarking study (Raspberry Pi 4 model)")
    model = CostModel(RASPBERRY_PI_4)
    workload = integration_workload(50_000_000)
    counts = [1, 2, 4]
    times = [model.time(workload, p).total_s for p in counts]
    print(ScalingStudy(model.name, workload.name, counts, times).format_table())

    print(
        f"\nmodule complete: {learner.completion_fraction:.0%} of sections, "
        f"question score {learner.question_score:.0%}"
    )


if __name__ == "__main__":
    main()
