#!/usr/bin/env python
"""The drug-design exemplar: why irregular work wants dynamic scheduling.

Scores a pool of random ligands against the protein three ways, checks
agreement, then contrasts static vs dynamic decomposition on the cost
model — the load-balancing lesson both of the paper's modules teach.

    python examples/drug_design_study.py [num_ligands] [max_len]
"""

import sys
import time

from repro.exemplars import generate_ligands, run_mpi_master_worker, run_omp, run_seq
from repro.exemplars.drugdesign import drugdesign_workload
from repro.platforms import ST_OLAF_VM, CostModel


def main() -> None:
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    max_len = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    ligands = generate_ligands(count, max_len=max_len, seed=2020)
    print(f"Scoring {count} ligands (length 2..{max_len}) against the protein\n")

    t0 = time.perf_counter()
    seq = run_seq(ligands)
    print(f"{seq.summary()}  [{time.perf_counter() - t0:.2f}s]")

    omp = run_omp(ligands, num_threads=4, schedule="dynamic")
    mpi = run_mpi_master_worker(ligands, np_procs=4)
    assert seq.scores == omp.scores == mpi.scores
    print("threaded (dynamic schedule) and MPI master-worker agree exactly\n")

    print("Load balancing on the cost model (St. Olaf 64-core VM, 16 ranks):")
    model = CostModel(ST_OLAF_VM)
    static = drugdesign_workload(60_000)  # 20% hot spot under static blocks
    dynamic = drugdesign_workload(60_000, imbalance=0.02)  # master-worker
    t_static = model.time(static, 16).total_s
    t_dynamic = model.time(dynamic, 16).total_s
    print(f"  static blocks:  {t_static:.4f}s simulated")
    print(f"  master-worker:  {t_dynamic:.4f}s simulated "
          f"({t_static / t_dynamic:.2f}x faster)")
    print("\nThe dynamic task farm wins because ligand lengths — and hence "
          "per-task LCS costs — vary.")


if __name__ == "__main__":
    main()
