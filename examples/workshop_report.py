#!/usr/bin/env python
"""Reproduce the paper's entire evaluation section in one run.

Simulates the July 2020 virtual workshop (22 participants, both modules,
the VNC-firewall incident) and prints every evaluation artifact: Table I,
Table II, Figures 3 and 4, and the headline findings of Section IV.

    python examples/workshop_report.py
"""

from repro.core import simulate_workshop
from repro.kits import KitInventory, render_table1


def main() -> None:
    print("Preparing 22 mailed kits...")
    inventory = KitInventory()
    plan = inventory.plan(22)
    inventory.assemble(22)
    print(render_table1())
    print(
        f"\n22 kits at bulk pricing: ${plan.total_bulk:.2f} "
        f"(saves ${plan.bulk_savings:.2f} vs list)\n"
    )

    print("Simulating the 2.5-day virtual workshop...\n")
    report = simulate_workshop(seed=2020, eager_beavers=3)

    print(report.table2.render())
    print()
    print(report.figure3.render())
    print()
    print(report.figure4.render())
    print()

    smo = report.shared_memory_session
    print("Shared-memory session (OpenMP on the Raspberry Pi):")
    print(f"  completion rate: {smo.completion_rate:.0%}")
    print(f"  participants with unresolved technical issues: "
          f"{smo.learners_with_issues}")
    print(f"  setup issues pre-empted by the walkthrough videos: "
          f"{smo.resolved_by_videos}")
    print(f"  mean time on module: {smo.mean_minutes:.0f} min")

    dist = report.distributed_session
    print("\nDistributed session (Colab + cluster):")
    print(f"  completion rate: {dist.completion_rate:.0%}")
    print(f"  mean time on module: {dist.mean_minutes:.0f} min")

    incident = report.vnc_incident
    print("\nDistributed session incident log:")
    print(f"  'eager beaver' VNC lockouts: "
          f"{len(incident.locked_out_participants)}")
    print(f"  all locked-out participants finished via ssh: "
          f"{incident.all_finished_via_ssh}")

    print("\nHeadline findings:")
    for finding in report.headline_findings():
        print(f"  - {finding}")


if __name__ == "__main__":
    main()
