#!/usr/bin/env python
"""Quickstart: the reproduction's public API in five minutes.

Runs a taste of every layer: an MPI patternlet (the paper's Fig. 2 demo),
an OpenMP race-condition arc, an exemplar, the kit cost table, and the
workshop assessment numbers.

    python examples/quickstart.py
"""

from repro import mpirun, parallel_for
from repro.assessment import figure3, table2
from repro.exemplars import integrate_omp
from repro.kits import render_table1
from repro.patternlets import get_patternlet


def main() -> None:
    print("=" * 64)
    print("1. MPI: the SPMD patternlet (paper Fig. 2), 4 processes")
    print("=" * 64)
    spmd = get_patternlet("mpi", "spmd").run(np=4)
    print(spmd.text)

    print()
    print("=" * 64)
    print("2. Or roll your own SPMD function with mpirun()")
    print("=" * 64)
    totals = mpirun(lambda comm: comm.allreduce(comm.Get_rank() + 1), 4)
    print(f"allreduce of ranks+1 on every rank: {totals}")

    print()
    print("=" * 64)
    print("3. OpenMP: see a race condition, then fix it with a reduction")
    print("=" * 64)
    race = get_patternlet("openmp", "race").run(num_threads=4, iterations=20_000)
    print(f"unprotected counter: {race.text}")
    total = parallel_for(100_000, lambda i: i + 1, num_threads=4, reduction="+")
    print(f"reduction fix: sum(1..100000) = {total}")

    print()
    print("=" * 64)
    print("4. An exemplar: estimate pi by parallel trapezoid integration")
    print("=" * 64)
    print(f"pi ~= {integrate_omp(200_000, num_threads=4):.6f}")

    print()
    print("=" * 64)
    print("5. The paper's evaluation artifacts")
    print("=" * 64)
    print(render_table1())
    print()
    print(table2().render())
    print()
    print(figure3().test.summary())


if __name__ == "__main__":
    main()
