"""Exporters: Chrome trace-event JSON (Perfetto) and JSON profile reports.

The Chrome trace-event format is the lingua franca of timeline viewers:
load the emitted file in https://ui.perfetto.dev (or ``chrome://tracing``)
and every lane of the run becomes a zoomable track.  We emit the JSON
object form — ``{"traceEvents": [...]}`` — using only three phases:

* ``"M"`` metadata events naming processes and threads,
* ``"X"`` complete events (one per profiled span, ``ts``/``dur`` in µs),
* ``"i"`` instant events (sends, forks, joins).

pid/tid mapping (deterministic, documented for the golden tests):

=============  ===========  ===========  ================================
lane kind      pid          tid          process/thread names
=============  ===========  ===========  ================================
mpi-rank r     ``1 + r``    0            ``MPI rank r`` / ``rank r``
omp-thread t   0            ``1 + t``    ``OpenMP team`` / ``thread t``
omp-worker w   ``101 + o``  0            ``OpenMP worker o`` (o = ordinal)
main           0            0            ``OpenMP team`` / ``main``
=============  ===========  ===========  ================================

Field ordering inside each event dict is fixed (name, cat, ph, ts, dur,
pid, tid, args) and the event list is sorted, so exports are stable
enough to diff — the property the golden-file tests pin down.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .profile import RunProfile

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "profile_report",
    "validate_chrome_trace",
]

#: Schema version stamped into profile reports.
REPORT_SCHEMA = 1


def _lane_pid_tid(profile: RunProfile) -> list[tuple[int, int]]:
    """Per-lane (pid, tid) following the table in the module docstring."""
    out: list[tuple[int, int]] = []
    worker_ordinal = 0
    for lane in profile.lanes:
        if lane.kind == "mpi-rank":
            out.append((1 + lane.index, 0))
        elif lane.kind == "omp-thread":
            out.append((0, 1 + lane.index))
        elif lane.kind == "omp-worker":
            out.append((101 + worker_ordinal, 0))
            worker_ordinal += 1
        else:
            out.append((0, 0))
    return out


def to_chrome_trace(profile: RunProfile) -> dict[str, Any]:
    """Render a profile as a Chrome trace-event JSON document."""
    lane_ids = _lane_pid_tid(profile)
    events: list[dict[str, Any]] = []

    seen_procs: dict[int, str] = {}
    worker_ordinal = 0
    for lane, (pid, tid) in zip(profile.lanes, lane_ids):
        if pid not in seen_procs:
            if lane.kind == "mpi-rank":
                pname = f"MPI rank {lane.index}"
            elif lane.kind == "omp-worker":
                pname = f"OpenMP worker {worker_ordinal}"
            else:
                pname = "OpenMP team"
            seen_procs[pid] = pname
            events.append(_meta("process_name", pid, 0, {"name": pname}))
        if lane.kind == "omp-worker":
            worker_ordinal += 1
        events.append(_meta("thread_name", pid, tid, {"name": lane.label}))

    def to_us(ts: float) -> float:
        return round((ts - profile.t_min) * 1e6, 3)

    for span in profile.spans:
        pid, tid = lane_ids[span.lane]
        events.append(
            {
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": to_us(span.t0),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": _span_args(span.args),
            }
        )

    lane_by_key = {
        (lane.kind, lane.index): i for i, lane in enumerate(profile.lanes)
    }
    for ev in profile.instants:
        pid, tid = _instant_lane(ev, lane_by_key, lane_ids)
        events.append(
            {
                "name": ev.name,
                "cat": ev.source,
                "ph": "i",
                "ts": to_us(ev.ts),
                "dur": 0,
                "pid": pid,
                "tid": tid,
                "args": _instant_args(ev),
            }
        )

    events.sort(
        key=lambda e: (e["ph"] != "M", e["ts"], e["pid"], e["tid"], e["name"])
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.obs",
            "imbalance_ratio": round(profile.imbalance_ratio, 4),
            "dropped_events": profile.dropped,
        },
    }


def _meta(name: str, pid: int, tid: int, args: dict[str, Any]) -> dict[str, Any]:
    return {
        "name": name,
        "cat": "__metadata",
        "ph": "M",
        "ts": 0,
        "dur": 0,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def _span_args(args: tuple) -> dict[str, Any]:
    """Span begin-event args, labeled where the vocabulary is known."""
    if len(args) == 2 and all(isinstance(a, int) for a in args):
        return {"lo": args[0], "hi": args[1]}
    return {"detail": json.loads(json.dumps(list(args), default=str))} if args else {}


def _instant_args(ev: Any) -> dict[str, Any]:
    if ev.name == "send" and len(ev.args) >= 5:
        return {
            "src": ev.args[1],
            "dest": ev.args[2],
            "tag": ev.args[3],
            "bytes": ev.args[4],
        }
    return {}


def _instant_lane(
    ev: Any,
    lane_by_key: dict[tuple, int],
    lane_ids: list[tuple[int, int]],
) -> tuple[int, int]:
    """Place an instant on its emitting lane (sends: the source rank)."""
    if ev.name == "send" and len(ev.args) >= 2:
        lane = lane_by_key.get(("mpi-rank", ev.args[1]))
        if lane is not None:
            return lane_ids[lane]
    return (0, 0)


def write_chrome_trace(path: str | Path, profile: RunProfile) -> Path:
    """Write the Chrome trace JSON; returns the path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(to_chrome_trace(profile), indent=1) + "\n")
    return out


def profile_report(profile: RunProfile) -> dict[str, Any]:
    """Schema-versioned JSON profile document (``repro trace --json``)."""
    return {"schema": REPORT_SCHEMA, "profile": profile.to_dict()}


def validate_chrome_trace(doc: dict[str, Any]) -> list[str]:
    """Structural validation of a Chrome trace document.

    Returns a list of problems (empty = valid).  This is the executable
    contract the acceptance tests check exported traces against.
    """
    problems: list[str] = []
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return ["document must be an object with a 'traceEvents' list"]
    events = doc["traceEvents"]
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"{where}: missing required field {key!r}")
        if ev.get("ph") not in ("X", "i", "M"):
            problems.append(f"{where}: unexpected phase {ev.get('ph')!r}")
        if not isinstance(ev.get("name"), str):
            problems.append(f"{where}: name must be a string")
        for key in ("ts", "dur"):
            value = ev.get(key, 0)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"{where}: {key} must be a non-negative number")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: {key} must be an int")
        if ev.get("ph") == "X" and "dur" not in ev:
            problems.append(f"{where}: complete event missing 'dur'")
    return problems
