"""Traceable targets: patternlets and exemplar demos for ``repro trace``.

``repro trace <name>`` accepts either a patternlet name (anything
``repro list`` shows) or one of the five exemplar names; this module
resolves the name, runs the target under a recorder with the requested
backend, and hands back the built profile.

Backend plumbing: the OpenMP side reads the scoped config
(:func:`repro.openmp.env.scoped`), the MPI side the ``REPRO_MPI_BACKEND``
environment variable — both are applied for the duration of the traced
run, so one ``--backend processes`` flag flips whichever runtime the
target exercises.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Callable, Iterator

from .profile import RunProfile, build_profile
from .recorder import record

__all__ = ["EXEMPLARS", "resolve_target", "trace_target"]


def _exemplar_demo(name: str) -> Callable[..., Any]:
    import importlib

    module = importlib.import_module(f"repro.exemplars.{name}")
    return module.trace_demo


#: Exemplar names (each module exposes ``trace_demo(paradigm, backend)``).
EXEMPLARS = ("integration", "drugdesign", "forestfire", "heat", "sorting")


def resolve_target(
    name: str, paradigm: str | None = None
) -> tuple[str, str, Any]:
    """Resolve ``name`` to ``(kind, paradigm, runner)``.

    ``kind`` is ``"exemplar"`` or ``"patternlet"``.  Raises ``KeyError``
    (with the available names in the message) when nothing matches —
    the CLI maps that to exit code 2, like ``analyze``/``lint``.
    """
    from ..patternlets import all_patternlets, get_patternlet

    if name in EXEMPLARS:
        return "exemplar", paradigm or "openmp", _exemplar_demo(name)
    paradigms = [paradigm] if paradigm else ["openmp", "mpi"]
    for p in paradigms:
        try:
            return "patternlet", p, get_patternlet(p, name)
        except KeyError:
            continue
    available = sorted(
        {pl.name for pl in all_patternlets(paradigm)} | set(EXEMPLARS)
    )
    raise KeyError(
        f"unknown trace target {name!r}; available: {', '.join(available)}"
    )


@contextlib.contextmanager
def _backend_scope(backend: str | None) -> Iterator[None]:
    """Apply one backend choice to both runtimes for the traced run."""
    from ..openmp.env import scoped

    if backend is None:
        yield
        return
    old_mpi = os.environ.get("REPRO_MPI_BACKEND")
    os.environ["REPRO_MPI_BACKEND"] = backend
    try:
        with scoped(backend=backend):
            yield
    finally:
        if old_mpi is None:
            os.environ.pop("REPRO_MPI_BACKEND", None)
        else:
            os.environ["REPRO_MPI_BACKEND"] = old_mpi


def trace_target(
    name: str,
    paradigm: str | None = None,
    nprocs: int | None = None,
    backend: str | None = None,
    capacity: int | None = None,
) -> tuple[RunProfile, Any]:
    """Run one target under a recorder; return ``(profile, result)``."""
    kind, resolved_paradigm, runner = resolve_target(name, paradigm)
    kwargs: dict[str, Any] = {}
    with record(**({"capacity": capacity} if capacity else {})) as rec:
        with _backend_scope(backend):
            if kind == "exemplar":
                result = runner(paradigm=resolved_paradigm, backend=backend)
            else:
                n = nprocs if nprocs is not None else 4
                if name == "allreduceArrays":
                    kwargs = {"np_procs": n}
                elif resolved_paradigm == "mpi":
                    kwargs = {"np": n}
                else:
                    kwargs = {"num_threads": n}
                try:
                    result = runner.run(**kwargs)
                except TypeError:
                    result = runner.run()
    return build_profile(rec.events(), dropped=rec.dropped), result
