"""Bounded event recorders over the runtime hook seams.

A :class:`Recorder` attaches (timestamped) to *both* hook modules —
:mod:`repro.openmp.hooks` and :mod:`repro.mpi.hooks` — and files every
event into a bounded ring buffer (old events fall off the front; the
``dropped`` counter says how many).  The usual entry point is the
:func:`record` context manager, which also registers the recorder as the
process-wide *active* recorder that the process backends forward into.

Worker-process forwarding
-------------------------
Events emitted inside ``processes``-backend workers used to vanish: the
worker's hook state is a fork-time copy, so anything it captured died with
the worker.  Two forwarding paths fix that, both riding the transports the
backends already have (no new channels):

* **OpenMP chunk tasks** — when a recorder is active, the pool submits
  :func:`run_traced_chunk` instead of the bare kernel; the worker records
  its own events around the kernel and returns them *with* the chunk
  result, and the parent unwraps + merges (``openmp.backends``).
* **MPI process ranks** — ``procs._rank_main`` re-homes the fork-inherited
  recorder onto the child rank (:func:`adopt_forked_recorder`) and ships
  the captured events back as an extra element of the result-queue tuple;
  ``run_procs`` merges them into the parent's active recorder.

Clock-offset correction: fork shares ``CLOCK_MONOTONIC``, so worker and
parent timestamps are normally directly comparable (offset 0).  As a
defensive measure — a spawn-based platform or a clock that restarts in the
child — :func:`ingest_forwarded` clamps: if the worker's first timestamp
precedes the parent-side submit/launch timestamp (impossible under a
shared clock), events are shifted so the worker's epoch aligns with the
submit point.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..mpi import hooks as _mpi_hooks
from ..openmp import hooks as _omp_hooks
from .events import Event, sanitize_args

__all__ = [
    "Recorder",
    "ForwardedEvents",
    "record",
    "active",
    "run_traced_chunk",
    "adopt_forked_recorder",
    "collect_forwarded",
    "ingest_forwarded",
]

#: Default ring capacity: generous for teaching runs, bounded for loops.
DEFAULT_CAPACITY = 65_536


class Recorder:
    """Capture hook events into a bounded, thread-safe ring buffer."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        proc: tuple | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.proc = proc
        self.t0 = time.monotonic()
        self._buffer: deque[Event] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._dropped = 0
        self._attached = False

    # -- observation --------------------------------------------------------
    def _file(self, ts: float, source: str, event: str, args: tuple) -> None:
        ev = Event(
            ts=ts,
            source=source,
            name=event,
            args=sanitize_args(args),
            tid=threading.get_ident(),
            proc=self.proc,
        )
        with self._lock:
            if len(self._buffer) == self.capacity:
                self._dropped += 1
            self._buffer.append(ev)

    def _on_openmp(self, ts: float, event: str, *args: Any) -> None:
        self._file(ts, "openmp", event, args)

    def _on_mpi(self, ts: float, event: str, *args: Any) -> None:
        self._file(ts, "mpi", event, args)

    # -- lifecycle ----------------------------------------------------------
    def attach(self) -> None:
        """Subscribe to both hook seams (idempotent)."""
        if not self._attached:
            _omp_hooks.attach(self._on_openmp, timestamped=True)
            _mpi_hooks.attach(self._on_mpi, timestamped=True)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            _omp_hooks.detach(self._on_openmp)
            _mpi_hooks.detach(self._on_mpi)
            self._attached = False

    # -- access -------------------------------------------------------------
    def events(self) -> list[Event]:
        """Snapshot of the buffer in arrival order."""
        with self._lock:
            return list(self._buffer)

    def extend(self, events: list[Event]) -> None:
        """Merge externally captured (already-shifted) events."""
        with self._lock:
            overflow = len(self._buffer) + len(events) - self.capacity
            if overflow > 0:
                self._dropped += min(overflow, len(self._buffer))
            self._buffer.extend(events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self._dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)


#: The process-wide recorder the backends forward worker events into.
_active: Recorder | None = None


def active() -> Recorder | None:
    """The currently recording :class:`Recorder`, if any."""
    return _active


@contextlib.contextmanager
def record(
    capacity: int = DEFAULT_CAPACITY,
) -> Iterator[Recorder]:
    """Record all runtime events for the duration of the ``with`` block.

    Nested recording is rejected: a second active recorder would double-
    capture every event and race the worker-forwarding merge.
    """
    global _active
    if _active is not None:
        raise RuntimeError("a recorder is already active in this process")
    rec = Recorder(capacity=capacity)
    rec.attach()
    _active = rec
    try:
        yield rec
    finally:
        _active = None
        rec.detach()


# ---------------------------------------------------------------------------
# Worker-side capture + parent-side merge
# ---------------------------------------------------------------------------

@dataclass
class ForwardedEvents:
    """Events captured in a worker process, shipped back with its result."""

    events: list[Event] = field(default_factory=list)
    t0: float = 0.0
    pid: int = 0
    dropped: int = 0


def run_traced_chunk(
    kernel: Callable[[int, int], Any], lo: int, hi: int
) -> tuple[Any, ForwardedEvents]:
    """Pool-worker driver: run one chunk task under a local recorder.

    Substituted for the bare kernel by ``openmp.backends`` when a recorder
    is active in the parent.  The fresh local recorder brackets the kernel
    with ``chunk_begin``/``chunk_end`` and captures whatever the kernel
    itself emits; everything returns alongside the result for the parent
    to merge.  The worker's fork-inherited observer state is torn down
    first so events are not double-filed into a dead parent buffer.
    """
    rec = adopt_forked_recorder(("worker", os.getpid()))
    if rec is None:
        rec = Recorder(proc=("worker", os.getpid()))
        rec.attach()
    global _active
    _active = rec
    try:
        _omp_hooks.emit("chunk_begin", lo, hi)
        try:
            result = kernel(lo, hi)
        finally:
            _omp_hooks.emit("chunk_end", lo, hi)
    finally:
        _active = None
        rec.detach()
    return result, collect_forwarded(rec)


def adopt_forked_recorder(proc: tuple) -> Recorder | None:
    """Re-home a fork-inherited active recorder onto this worker process.

    Returns a fresh recorder labeled ``proc`` (and installs it as this
    process's active recorder) when the parent was recording at fork time,
    else ``None``.  The inherited recorder object is detached: its buffer
    is a dead copy the parent will never see.
    """
    global _active
    inherited = _active
    if inherited is None:
        return None
    inherited.detach()
    rec = Recorder(capacity=inherited.capacity, proc=proc)
    rec.attach()
    _active = rec
    return rec


def collect_forwarded(rec: Recorder | None) -> ForwardedEvents | None:
    """Package a worker recorder's capture for the trip to the parent."""
    if rec is None:
        return None
    return ForwardedEvents(
        events=rec.events(), t0=rec.t0, pid=os.getpid(), dropped=rec.dropped
    )


def ingest_forwarded(
    forwarded: ForwardedEvents, submit_ts: float, into: Recorder | None = None
) -> None:
    """Merge worker events into the parent recorder, correcting clocks.

    ``submit_ts`` is the parent-clock time at/before which the worker
    cannot have started recording.  Under fork the clocks agree and the
    offset is 0; if the worker clock reads *earlier* than the submit point
    its epoch is re-based onto it.
    """
    rec = into if into is not None else _active
    if rec is None or not forwarded.events:
        return
    offset = submit_ts - forwarded.t0 if forwarded.t0 < submit_ts else 0.0
    rec.extend([ev.shifted(offset) for ev in forwarded.events])
    if forwarded.dropped:
        with rec._lock:
            rec._dropped += forwarded.dropped
