"""Derived per-run profiles: spans, lanes, waits, imbalance, contention.

This layer turns a flat event stream into the quantities the handouts
reason about:

* **spans** — begin/end event pairs matched per execution lane (regions,
  worksharing loops, barriers, lock waits, critical sections, chunk
  tasks, receives, request waits, collectives);
* **lanes** — one row per (process, OS thread), classified as an OpenMP
  team member, a pool worker, an MPI rank, or the main thread;
* **wait attribution** — per lane, how much of its extent was spent in
  barriers, lock acquisition, receives/waits, and collectives; the rest
  is *busy* time;
* **load imbalance** — ``max(busy) / mean(busy)`` across lanes (1.0 is
  perfect balance);
* **contention** — per lock key, how many acquisitions waited and for how
  long;
* **message edges** — per (src, dst) message counts and bytes, for both
  user p2p traffic and internal collective transport;
* **ASCII timelines** — schedule visualizations for the Runestone
  handouts (one lane per row, one character per time bucket).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .events import Event
from .metrics import MetricSet, collect_metrics

__all__ = [
    "Span",
    "Lane",
    "RunProfile",
    "build_profile",
    "render_text",
    "render_timeline",
    "timeline_from_events",
]

#: Span name per opening event.
_SPAN_NAMES = {
    "thread_begin": "parallel region",
    "barrier_enter": "barrier wait",
    "ws_loop_begin": "worksharing loop",
    "chunk_begin": "chunk",
    "acquire_enter": "lock wait",
    "acquire": "critical section",
    "recv_enter": "recv wait",
    "wait_enter": "request wait",
    "coll_enter": "collective",
}

#: Category per opening event (drives wait attribution and timeline glyphs).
_SPAN_CATS = {
    "thread_begin": "region",
    "barrier_enter": "barrier",
    "ws_loop_begin": "loop",
    "chunk_begin": "chunk",
    "acquire_enter": "lockwait",
    "acquire": "critical",
    "recv_enter": "recv",
    "wait_enter": "recv",
    "coll_enter": "collective",
}

#: closing-event -> opening-event (span pairing table, both seams).
_CLOSERS = {
    "thread_end": "thread_begin",
    "barrier_exit": "barrier_enter",
    "ws_loop_end": "ws_loop_begin",
    "chunk_end": "chunk_begin",
    "acquire": "acquire_enter",
    "release": "acquire",
    "recv_exit": "recv_enter",
    "wait_exit": "wait_enter",
    "coll_exit": "coll_enter",
}

#: Wait categories subtracted from a lane's extent to get busy time.
_WAIT_CATS = ("barrier", "lockwait", "recv", "collective")

#: Timeline glyph per category ('.' = idle, '#' = busy fallback).
_GLYPHS = {
    "barrier": "b",
    "lockwait": "l",
    "critical": "c",
    "recv": "r",
    "collective": "C",
    "region": "#",
    "loop": "#",
    "chunk": "#",
}


@dataclass
class Span:
    """One matched begin/end pair on a single lane."""

    lane: int
    name: str
    cat: str
    t0: float
    t1: float
    args: tuple = ()

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


@dataclass
class Lane:
    """One execution lane: a (process, OS thread) with derived stats."""

    kind: str  # "omp-thread" | "omp-worker" | "mpi-rank" | "main"
    index: int
    label: str
    extent_s: float = 0.0
    busy_s: float = 0.0
    waits_s: dict[str, float] = field(default_factory=dict)
    events: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "index": self.index,
            "label": self.label,
            "extent_s": self.extent_s,
            "busy_s": self.busy_s,
            "waits_s": {k: self.waits_s[k] for k in sorted(self.waits_s)},
            "events": self.events,
        }


@dataclass
class RunProfile:
    """Everything the reports, timelines, and exporters consume."""

    lanes: list[Lane]
    spans: list[Span]
    instants: list[Event]
    imbalance_ratio: float
    lock_contention: dict[str, dict[str, Any]]
    p2p_edges: dict[tuple[int, int], dict[str, int]]
    coll_edges: dict[tuple[int, int], dict[str, int]]
    metrics: MetricSet
    wall_s: float
    t_min: float
    coll_algos: dict[str, dict[str, int]] = field(default_factory=dict)
    dropped: int = 0
    unmatched: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-stable report document (``repro trace --json``)."""
        return {
            "wall_s": self.wall_s,
            "imbalance_ratio": self.imbalance_ratio,
            "lanes": [lane.to_dict() for lane in self.lanes],
            "span_count": len(self.spans),
            "instant_count": len(self.instants),
            "lock_contention": {
                k: self.lock_contention[k] for k in sorted(self.lock_contention)
            },
            "p2p_edges": _edges_dict(self.p2p_edges),
            "collective_edges": _edges_dict(self.coll_edges),
            "collective_algorithms": {
                coll: {a: self.coll_algos[coll][a]
                       for a in sorted(self.coll_algos[coll])}
                for coll in sorted(self.coll_algos)
            },
            "metrics": self.metrics.to_dict(),
            "dropped_events": self.dropped,
            "unmatched_spans": self.unmatched,
        }


def _edges_dict(edges: dict[tuple[int, int], dict[str, int]]) -> dict[str, Any]:
    return {f"{s}->{d}": v for (s, d), v in sorted(edges.items())}


def _classify(key: tuple, events: list[Event]) -> tuple[str, int]:
    """(kind, index) of the lane holding ``events`` (all same lane key)."""
    proc, _tid = key
    if proc is not None:
        kind, index = proc[0], proc[1]
        if kind == "rank":
            return "mpi-rank", index
        return "omp-worker", index
    for ev in events:
        if ev.name == "thread_begin" and len(ev.args) >= 2:
            return "omp-thread", ev.args[1]
    for ev in events:
        if ev.source == "mpi" and len(ev.args) >= 2 and ev.name != "coll_msg":
            return "mpi-rank", ev.args[1]
    return "main", 0


def _lane_label(kind: str, index: int) -> str:
    return {
        "omp-thread": f"thread {index}",
        "omp-worker": f"worker {index}",
        "mpi-rank": f"rank {index}",
        "main": "main",
    }[kind]


def _span_key(ev: Event) -> tuple:
    """Pairing key: lock spans match per lock key, collectives per stack."""
    if ev.name in ("acquire_enter", "acquire", "release"):
        return (ev.name, ev.args[0] if ev.args else None)
    return (ev.name,)


def build_profile(
    events: Iterable[Event], dropped: int = 0
) -> RunProfile:
    """Pair spans, attribute waits, and derive the run profile."""
    stream = sorted(events, key=lambda ev: ev.ts)
    groups: dict[tuple, list[Event]] = {}
    for ev in stream:
        groups.setdefault(ev.lane_key(), []).append(ev)

    # Stable lane ordering: ranks, then threads, then workers, then main.
    kind_order = {"mpi-rank": 0, "omp-thread": 1, "omp-worker": 2, "main": 3}
    classified = [
        (key, evs, *_classify(key, evs)) for key, evs in groups.items()
    ]
    classified.sort(key=lambda item: (kind_order[item[2]], item[3], item[0][1]))

    lanes: list[Lane] = []
    spans: list[Span] = []
    instants: list[Event] = []
    lock_keys: dict[tuple, str] = {}
    contention: dict[str, dict[str, Any]] = {}
    p2p: dict[tuple[int, int], dict[str, int]] = {}
    colle: dict[tuple[int, int], dict[str, int]] = {}
    coll_algos: dict[str, dict[str, int]] = {}
    unmatched = 0

    for lane_id, (_key, evs, kind, index) in enumerate(classified):
        lane = Lane(kind=kind, index=index, label=_lane_label(kind, index))
        lane.events = len(evs)
        lane.extent_s = evs[-1].ts - evs[0].ts if len(evs) > 1 else 0.0
        open_spans: dict[tuple, list[Event]] = {}
        for ev in evs:
            opener_name = _CLOSERS.get(ev.name)
            # 'acquire' both closes a lock wait and opens a critical section.
            if opener_name is not None:
                open_key = (
                    (opener_name, ev.args[0] if ev.args else None)
                    if opener_name in ("acquire_enter", "acquire")
                    else (opener_name,)
                )
                stack = open_spans.get(open_key)
                if stack:
                    begin = stack.pop()
                    spans.append(
                        Span(
                            lane=lane_id,
                            name=_span_names(begin),
                            cat=_SPAN_CATS[begin.name],
                            t0=begin.ts,
                            t1=ev.ts,
                            args=begin.args,
                        )
                    )
                elif ev.name not in ("acquire", "release"):
                    # An end without a begin (e.g. ring overflow ate it).
                    unmatched += 1
            if ev.name in _SPAN_NAMES:
                open_spans.setdefault(_span_key(ev), []).append(ev)
            elif ev.name == "send" and len(ev.args) >= 5:
                instants.append(ev)
                edge = p2p.setdefault(
                    (ev.args[1], ev.args[2]), {"messages": 0, "bytes": 0}
                )
                edge["messages"] += 1
                edge["bytes"] += ev.args[4]
            elif ev.name == "coll_msg" and len(ev.args) >= 4:
                edge = colle.setdefault(
                    (ev.args[1], ev.args[2]), {"messages": 0, "bytes": 0}
                )
                edge["messages"] += 1
                edge["bytes"] += ev.args[3]
            elif ev.name == "coll_algo" and len(ev.args) >= 4:
                per_coll = coll_algos.setdefault(ev.args[2], {})
                per_coll[ev.args[3]] = per_coll.get(ev.args[3], 0) + 1
            elif ev.name in ("fork", "join", "reduction", "task_submit"):
                instants.append(ev)
        unmatched += sum(len(stack) for stack in open_spans.values())
        lanes.append(lane)

    # Wait attribution + contention, now that all spans exist.  Wait spans
    # nest (reduce wraps gather; process-backend collectives recv inside the
    # collective span), so per-category time is the *union* of intervals,
    # not the sum of durations — else a lane could "wait" longer than the
    # wall clock.
    cat_ivals: dict[tuple[int, str], list[tuple[float, float]]] = {}
    all_ivals: dict[int, list[tuple[float, float]]] = {}
    for span in spans:
        if span.cat in _WAIT_CATS:
            cat_ivals.setdefault((span.lane, span.cat), []).append(
                (span.t0, span.t1)
            )
            all_ivals.setdefault(span.lane, []).append((span.t0, span.t1))
        if span.cat == "lockwait":
            name = _lock_name(span.args, lock_keys)
            row = contention.setdefault(
                name, {"waits": 0, "wait_s": 0.0, "holds": 0, "hold_s": 0.0}
            )
            row["waits"] += 1
            row["wait_s"] += span.duration
        elif span.cat == "critical":
            name = _lock_name(span.args, lock_keys)
            row = contention.setdefault(
                name, {"waits": 0, "wait_s": 0.0, "holds": 0, "hold_s": 0.0}
            )
            row["holds"] += 1
            row["hold_s"] += span.duration
    for (lane_id, cat), ivals in cat_ivals.items():
        lanes[lane_id].waits_s[cat] = _union_length(ivals)
    for lane_id, lane in enumerate(lanes):
        waited = _union_length(all_ivals.get(lane_id, []))
        lane.busy_s = max(0.0, lane.extent_s - waited)

    busies = [lane.busy_s for lane in lanes if lane.extent_s > 0.0]
    mean_busy = sum(busies) / len(busies) if busies else 0.0
    imbalance = max(busies) / mean_busy if mean_busy > 0.0 else 1.0

    t_min = stream[0].ts if stream else 0.0
    t_max = stream[-1].ts if stream else 0.0
    return RunProfile(
        lanes=lanes,
        spans=spans,
        instants=instants,
        imbalance_ratio=imbalance,
        lock_contention=contention,
        p2p_edges=p2p,
        coll_edges=colle,
        metrics=collect_metrics(stream),
        wall_s=t_max - t_min,
        t_min=t_min,
        coll_algos=coll_algos,
        dropped=dropped,
        unmatched=unmatched,
    )


def _union_length(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of (possibly overlapping) intervals."""
    total = 0.0
    end = float("-inf")
    for lo, hi in sorted(intervals):
        if hi <= end:
            continue
        total += hi - max(lo, end)
        end = hi
    return total


def _span_names(begin: Event) -> str:
    if begin.name == "coll_enter" and len(begin.args) >= 3:
        return f"collective:{begin.args[2]}"
    return _SPAN_NAMES[begin.name]


def _lock_name(args: tuple, seen: dict[tuple, str]) -> str:
    """Stable, id-free display name for a lock key ('critical#0', ...)."""
    key = args[0] if args else ("lock", 0)
    if key not in seen:
        kind = key[0] if isinstance(key, tuple) and key else "lock"
        ordinal = sum(
            1 for k in seen if isinstance(k, tuple) and k and k[0] == kind
        )
        seen[key] = f"{kind}#{ordinal}"
    return seen[key]


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------

def render_text(profile: RunProfile) -> str:
    """Human-readable profile report (the default ``repro trace`` output)."""
    lines = [
        f"wall time: {profile.wall_s * 1e3:.2f} ms   "
        f"spans: {len(profile.spans)}   "
        f"load imbalance: {profile.imbalance_ratio:.2f}x",
        f"{'lane':<12} {'busy (ms)':>10} {'barrier':>9} {'lock':>9} "
        f"{'recv':>9} {'coll':>9} {'events':>7}",
    ]
    for lane in profile.lanes:
        waits = lane.waits_s
        lines.append(
            f"{lane.label:<12} {lane.busy_s * 1e3:>10.2f} "
            f"{waits.get('barrier', 0.0) * 1e3:>9.2f} "
            f"{waits.get('lockwait', 0.0) * 1e3:>9.2f} "
            f"{waits.get('recv', 0.0) * 1e3:>9.2f} "
            f"{waits.get('collective', 0.0) * 1e3:>9.2f} "
            f"{lane.events:>7}"
        )
    if profile.lock_contention:
        lines.append("lock contention:")
        for name, row in sorted(profile.lock_contention.items()):
            lines.append(
                f"  {name:<14} waits={row['waits']:<5} "
                f"wait={row['wait_s'] * 1e3:.2f} ms  "
                f"holds={row['holds']:<5} hold={row['hold_s'] * 1e3:.2f} ms"
            )
    if profile.p2p_edges:
        lines.append("messages (src->dst: count, bytes):")
        for (src, dst), row in sorted(profile.p2p_edges.items()):
            lines.append(
                f"  {src}->{dst}: {row['messages']} msg, {row['bytes']} B"
            )
    if profile.coll_edges:
        total = sum(r["messages"] for r in profile.coll_edges.values())
        total_b = sum(r["bytes"] for r in profile.coll_edges.values())
        lines.append(f"collective transport: {total} msg, {total_b} B")
    if profile.coll_algos:
        picks = ", ".join(
            f"{coll}={algo}" + (f" x{count}" if count > 1 else "")
            for coll in sorted(profile.coll_algos)
            for algo, count in sorted(profile.coll_algos[coll].items())
        )
        lines.append(f"collective algorithms: {picks}")
    if profile.dropped:
        lines.append(f"warning: ring buffer dropped {profile.dropped} events")
    return "\n".join(lines)


def render_timeline(profile: RunProfile, width: int = 64) -> str:
    """ASCII schedule: one row per lane, one glyph per time bucket.

    ``#`` busy (region/loop/chunk), ``b`` barrier, ``l`` lock wait,
    ``c`` critical section, ``r`` recv/request wait, ``C`` collective,
    ``.`` idle.  Wait glyphs win over busy glyphs inside a bucket so
    contention stays visible at coarse resolution.
    """
    if profile.wall_s <= 0.0 or not profile.spans:
        return "(no spans to draw)"
    # Priority: later entries overwrite earlier ones within a bucket.
    priority = ["region", "loop", "chunk", "critical", "collective",
                "recv", "lockwait", "barrier"]
    rows = []
    scale = width / profile.wall_s
    for lane_id, lane in enumerate(profile.lanes):
        cells = ["."] * width
        for cat in priority:
            for span in profile.spans:
                if span.lane != lane_id or span.cat != cat:
                    continue
                lo = int((span.t0 - profile.t_min) * scale)
                hi = int((span.t1 - profile.t_min) * scale)
                for i in range(max(0, lo), min(width, max(hi, lo + 1))):
                    cells[i] = _GLYPHS[cat]
        rows.append(f"{lane.label:<12} |{''.join(cells)}|")
    legend = "legend: #=busy b=barrier l=lock-wait c=critical r=recv C=collective .=idle"
    return "\n".join([*rows, legend])


def timeline_from_events(
    events: Iterable[Event], dropped: int = 0, width: int = 64
) -> str:
    """One-call convenience: profile a raw event stream and draw it.

    Used by ``repro explore`` to attach an ASCII timeline of the failing
    schedule or fault plan to the minimized repro bundle.
    """
    return render_timeline(build_profile(events, dropped=dropped), width=width)
