"""Counters and histograms derived from captured event streams.

The metrics layer is deliberately dumb: pure aggregation over
:class:`~repro.obs.events.Event` lists, no pairing logic (span pairing
lives in :mod:`repro.obs.profile`).  It answers the quick questions a
learner asks first — *how many* barriers, *how big* were the messages —
before the profile answers *where the time went*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from .events import Event

__all__ = [
    "Counter",
    "Histogram",
    "MetricSet",
    "collect_metrics",
    "serialization_totals",
]


def serialization_totals() -> dict[str, int]:
    """Process-wide MPI-transport pickle counters.

    The transport counts every ``pickle.dumps`` it performs (see
    :mod:`repro.mpi.serial`); the typed-buffer data path performs none,
    which is the invariant the zero-copy tests and the bench
    serialization report assert.  Returned keys: ``pickle_calls`` and
    ``pickled_bytes``.
    """
    from ..mpi.serial import serialized_totals

    return serialized_totals()


@dataclass
class Counter:
    """A monotonically increasing count."""

    count: int = 0

    def inc(self, n: int = 1) -> None:
        self.count += n


class Histogram:
    """Power-of-two-bucketed value histogram with summary statistics."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: bucket index b holds values in [2**(b-1), 2**b); b=0 holds < 1.
        self.buckets: dict[int, int] = {}

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        b = 0
        v = value
        while v >= 1.0:
            v /= 2.0
            b += 1
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class MetricSet:
    """Aggregated counters/histograms for one recorded run."""

    event_counts: dict[str, int] = field(default_factory=dict)
    message_bytes: Histogram = field(default_factory=Histogram)
    collective_calls: dict[str, int] = field(default_factory=dict)
    serialization: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "event_counts": dict(sorted(self.event_counts.items())),
            "message_bytes": self.message_bytes.summary(),
            "collective_calls": dict(sorted(self.collective_calls.items())),
            "serialization": dict(self.serialization),
        }


def collect_metrics(
    events: Iterable[Event], serialized: dict[str, int] | None = None
) -> MetricSet:
    """One pass over the stream: counts, message-size histogram, collectives.

    ``serialized`` attaches transport pickle counters (as returned by
    :func:`serialization_totals`, typically snapshot-deltas around the
    recorded region) to the metric set.
    """
    m = MetricSet()
    if serialized is not None:
        m.serialization = dict(serialized)
    counts = m.event_counts
    for ev in events:
        counts[ev.name] = counts.get(ev.name, 0) + 1
        if ev.name == "send" and len(ev.args) >= 5:
            m.message_bytes.add(ev.args[4])
        elif ev.name == "coll_enter" and len(ev.args) >= 3:
            name = ev.args[2]
            m.collective_calls[name] = m.collective_calls.get(name, 0) + 1
    return m
