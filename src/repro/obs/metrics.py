"""Counters and histograms derived from captured event streams.

The metrics layer is deliberately dumb: pure aggregation over
:class:`~repro.obs.events.Event` lists, no pairing logic (span pairing
lives in :mod:`repro.obs.profile`).  It answers the quick questions a
learner asks first — *how many* barriers, *how big* were the messages —
before the profile answers *where the time went*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .events import Event

__all__ = [
    "Counter",
    "Histogram",
    "MetricSet",
    "collect_metrics",
    "serialization_totals",
    "register_provider",
    "unregister_provider",
    "snapshot_providers",
]

# ---------------------------------------------------------------------------
# Named metric providers
# ---------------------------------------------------------------------------
# Long-lived subsystems (the course server's cache and request-latency
# histograms, for one) register a snapshot callable here so their live
# counters are visible through repro.obs without the event bus: each
# provider returns a plain dict when sampled.

_PROVIDERS: dict[str, Callable[[], dict[str, Any]]] = {}


def register_provider(name: str, provider: Callable[[], dict[str, Any]]) -> None:
    """Expose a subsystem's live metrics under ``name`` (last wins)."""
    _PROVIDERS[name] = provider


def unregister_provider(name: str) -> None:
    _PROVIDERS.pop(name, None)


def snapshot_providers() -> dict[str, dict[str, Any]]:
    """Sample every registered provider: ``{name: snapshot_dict}``."""
    return {name: _PROVIDERS[name]() for name in sorted(_PROVIDERS)}


def serialization_totals() -> dict[str, int]:
    """Process-wide MPI-transport pickle counters.

    The transport counts every ``pickle.dumps`` it performs (see
    :mod:`repro.mpi.serial`); the typed-buffer data path performs none,
    which is the invariant the zero-copy tests and the bench
    serialization report assert.  Returned keys: ``pickle_calls`` and
    ``pickled_bytes``.
    """
    from ..mpi.serial import serialized_totals

    return serialized_totals()


@dataclass
class Counter:
    """A monotonically increasing count."""

    count: int = 0

    def inc(self, n: int = 1) -> None:
        self.count += n


class Histogram:
    """Power-of-two-bucketed value histogram with summary statistics."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        #: bucket index b holds values in [2**(b-1), 2**b); b=0 holds < 1.
        self.buckets: dict[int, int] = {}

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        b = 0
        v = value
        while v >= 1.0:
            v /= 2.0
            b += 1
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (``q`` in [0, 100]).

        The shared quantile implementation for the serving layer, the
        bench load harness, and the profile reports.  Walks the
        power-of-two buckets to the one containing the target rank and
        interpolates linearly inside it, so the estimate is exact at
        bucket boundaries and off by at most the bucket width (a factor
        of two) inside — plenty for p50/p99 tail reporting, and O(buckets)
        with no samples retained.  The result is clamped to the observed
        ``[min, max]``.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return 0.0
        target = max(1, -(-self.count * q // 100))  # ceil without math import
        seen = 0
        for b in sorted(self.buckets):
            in_bucket = self.buckets[b]
            if seen + in_bucket >= target:
                lo = 0.0 if b == 0 else float(2 ** (b - 1))
                hi = float(2**b)
                frac = (target - seen) / in_bucket
                value = lo + frac * (hi - lo)
                break
            seen += in_bucket
        else:  # pragma: no cover - unreachable: ranks always land in a bucket
            value = self.max or 0.0
        lo_clamp = self.min if self.min is not None else value
        hi_clamp = self.max if self.max is not None else value
        return min(max(value, lo_clamp), hi_clamp)

    def percentiles(
        self, qs: Iterable[float] = (50, 90, 99)
    ) -> dict[float, float]:
        """p50/p90/p99-style extraction: ``{q: estimate}`` for each ``q``."""
        return {q: self.percentile(q) for q in qs}

    def summary(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


@dataclass
class MetricSet:
    """Aggregated counters/histograms for one recorded run."""

    event_counts: dict[str, int] = field(default_factory=dict)
    message_bytes: Histogram = field(default_factory=Histogram)
    collective_calls: dict[str, int] = field(default_factory=dict)
    serialization: dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "event_counts": dict(sorted(self.event_counts.items())),
            "message_bytes": self.message_bytes.summary(),
            "collective_calls": dict(sorted(self.collective_calls.items())),
            "serialization": dict(self.serialization),
        }


def collect_metrics(
    events: Iterable[Event], serialized: dict[str, int] | None = None
) -> MetricSet:
    """One pass over the stream: counts, message-size histogram, collectives.

    ``serialized`` attaches transport pickle counters (as returned by
    :func:`serialization_totals`, typically snapshot-deltas around the
    recorded region) to the metric set.
    """
    m = MetricSet()
    if serialized is not None:
        m.serialization = dict(serialized)
    counts = m.event_counts
    for ev in events:
        counts[ev.name] = counts.get(ev.name, 0) + 1
        if ev.name == "send" and len(ev.args) >= 5:
            m.message_bytes.add(ev.args[4])
        elif ev.name == "coll_enter" and len(ev.args) >= 3:
            name = ev.args[2]
            m.collective_calls[name] = m.collective_calls.get(name, 0) + 1
    return m
