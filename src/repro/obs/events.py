"""The observability event model.

An :class:`Event` is one timestamped occurrence captured from a runtime
hook seam (:mod:`repro.openmp.hooks` or :mod:`repro.mpi.hooks`).  Events
are *flat* — plain scalars only — so they pickle cheaply across the
process-backend boundary and serialize stably into trace files.  Hook
arguments that are live runtime objects (teams, counters) are reduced to
``(kind, id, ...)`` tuples at capture time by :func:`sanitize_args`.

The per-event coordinates:

``ts``
    Monotonic capture time (``time.monotonic()`` seconds) in the clock of
    the *capturing* process; merged worker events are shifted into the
    parent's clock by the recorder (see ``recorder.ingest_forwarded``).
``source``
    Which seam emitted it: ``"openmp"`` or ``"mpi"``.
``tid``
    OS thread ident of the emitting thread (``threading.get_ident()``),
    the lane key inside one process.
``proc``
    ``None`` for the main process, else a ``(kind, index)`` pair naming
    the worker: ``("worker", pid)`` for OpenMP pool workers and
    ``("rank", r)`` for MPI process ranks.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Event", "sanitize_args"]

_SCALARS = (int, float, str, bool, type(None))


def sanitize_args(args: tuple) -> tuple:
    """Reduce hook arguments to picklable, stable scalars.

    Scalars pass through; tuples recurse (lock keys are ``(kind, id)``
    tuples); anything else — team objects, atomic counters — collapses to
    ``(type_name, id)`` so the event neither pins the object alive nor
    drags unpicklable state across a process boundary.
    """
    out = []
    for a in args:
        if isinstance(a, _SCALARS):
            out.append(a)
        elif isinstance(a, tuple):
            out.append(sanitize_args(a))
        else:
            num = getattr(a, "num_threads", None)
            if num is not None:  # a Team: keep the size, it labels lanes
                out.append((type(a).__name__, id(a), num))
            else:
                out.append((type(a).__name__, id(a)))
    return tuple(out)


@dataclass(frozen=True)
class Event:
    """One captured runtime event (see module docstring for coordinates)."""

    ts: float
    source: str
    name: str
    args: tuple = ()
    tid: int = 0
    proc: tuple | None = None

    def shifted(self, offset: float) -> "Event":
        """The same event with ``ts`` moved by ``offset`` seconds."""
        if offset == 0.0:
            return self
        return Event(
            ts=self.ts + offset,
            source=self.source,
            name=self.name,
            args=self.args,
            tid=self.tid,
            proc=self.proc,
        )

    def lane_key(self) -> tuple:
        """Grouping key for one execution lane (process, thread)."""
        return (self.proc, self.tid)
