"""``repro.obs`` — unified tracing, metrics, and timeline profiling.

One event bus spans both runtimes: :mod:`repro.openmp.hooks` and
:mod:`repro.mpi.hooks` feed timestamped events into a bounded
:class:`Recorder`; :func:`build_profile` pairs them into spans, lanes,
and wait attribution; exporters render Chrome trace-event JSON (open in
Perfetto) and JSON reports.  ``repro trace <target>`` is the CLI front
end.  See ``docs/observability.md`` for the guided tour.
"""

from .events import Event, sanitize_args
from .export import (
    profile_report,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import (
    Counter,
    Histogram,
    MetricSet,
    collect_metrics,
    register_provider,
    serialization_totals,
    snapshot_providers,
    unregister_provider,
)
from .profile import (
    Lane,
    RunProfile,
    Span,
    build_profile,
    render_text,
    render_timeline,
    timeline_from_events,
)
from .recorder import (
    ForwardedEvents,
    Recorder,
    active,
    adopt_forked_recorder,
    collect_forwarded,
    ingest_forwarded,
    record,
    run_traced_chunk,
)
from .targets import EXEMPLARS, resolve_target, trace_target

__all__ = [
    "Event",
    "sanitize_args",
    "Recorder",
    "ForwardedEvents",
    "record",
    "active",
    "run_traced_chunk",
    "adopt_forked_recorder",
    "collect_forwarded",
    "ingest_forwarded",
    "Counter",
    "Histogram",
    "MetricSet",
    "collect_metrics",
    "serialization_totals",
    "register_provider",
    "unregister_provider",
    "snapshot_providers",
    "Span",
    "Lane",
    "RunProfile",
    "build_profile",
    "render_text",
    "render_timeline",
    "timeline_from_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "profile_report",
    "validate_chrome_trace",
    "EXEMPLARS",
    "resolve_target",
    "trace_target",
]
