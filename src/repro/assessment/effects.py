"""Effect sizes and a nonparametric robustness check.

The paper reports paired t-tests; reviewers of education research usually
ask two follow-ups, both provided here from scratch:

* **Cohen's d** for paired designs (d_z = mean(diff)/sd(diff), plus the
  averaged-variance d_av variant) with the conventional magnitude labels;
* the **Wilcoxon signed-rank test** — the appropriate nonparametric test
  for ordinal Likert pre/post pairs — with the normal approximation and
  tie/zero handling (Pratt's zero-exclusion, midranks for ties), cross-
  checked against ``scipy.stats.wilcoxon`` in the property tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .stats import mean, sample_std

__all__ = [
    "cohens_d_paired",
    "cohens_d_label",
    "WilcoxonResult",
    "wilcoxon_signed_rank",
]


def cohens_d_paired(pre: Sequence[float], post: Sequence[float]) -> float:
    """Cohen's d_z for a paired design: mean difference / SD of differences."""
    if len(pre) != len(post):
        raise ValueError("paired effect size needs equal-length samples")
    if len(pre) < 2:
        raise ValueError("need at least two pairs")
    diffs = [b - a for a, b in zip(pre, post)]
    sd = sample_std(diffs)
    if sd == 0:
        raise ValueError("all differences identical; d_z undefined")
    return mean(diffs) / sd


def cohens_d_label(d: float) -> str:
    """The conventional magnitude bands (Cohen 1988)."""
    magnitude = abs(d)
    if magnitude < 0.2:
        return "negligible"
    if magnitude < 0.5:
        return "small"
    if magnitude < 0.8:
        return "medium"
    return "large"


@dataclass(frozen=True)
class WilcoxonResult:
    """Wilcoxon signed-rank outcome."""

    n_nonzero: int
    w_statistic: float  # min(W+, W-)
    w_plus: float
    w_minus: float
    z: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    def summary(self) -> str:
        return (
            f"Wilcoxon signed-rank: W = {self.w_statistic:.1f} "
            f"(n = {self.n_nonzero} non-zero pairs), z = {self.z:.2f}, "
            f"p = {self.p_value:.3g}"
        )


def _normal_sf(z: float) -> float:
    """Standard-normal upper tail via the complementary error function."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def wilcoxon_signed_rank(
    pre: Sequence[float], post: Sequence[float]
) -> WilcoxonResult:
    """Two-sided Wilcoxon signed-rank test with the normal approximation.

    Zero differences are dropped (the classic Wilcoxon treatment, matching
    scipy's default ``zero_method='wilcox'``); tied absolute differences
    receive midranks, and the variance gets the standard tie correction.
    Uses a continuity correction of 0.5, as scipy's ``correction=True``.
    """
    if len(pre) != len(post):
        raise ValueError("paired test needs equal-length samples")
    diffs = [b - a for a, b in zip(pre, post) if b != a]
    n = len(diffs)
    if n < 1:
        raise ValueError("all paired differences are zero; nothing to test")

    # Midranks of |diff|.
    order = sorted(range(n), key=lambda i: abs(diffs[i]))
    ranks = [0.0] * n
    i = 0
    tie_correction = 0.0
    while i < n:
        j = i
        while j + 1 < n and abs(diffs[order[j + 1]]) == abs(diffs[order[i]]):
            j += 1
        midrank = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = midrank
        t = j - i + 1
        tie_correction += t**3 - t
        i = j + 1

    w_plus = sum(r for d, r in zip(diffs, ranks) if d > 0)
    w_minus = sum(r for d, r in zip(diffs, ranks) if d < 0)
    w = min(w_plus, w_minus)

    mean_w = n * (n + 1) / 4.0
    var_w = n * (n + 1) * (2 * n + 1) / 24.0 - tie_correction / 48.0
    if var_w <= 0:
        raise ValueError("degenerate variance (all differences tied at zero?)")
    # Continuity-corrected two-sided normal approximation: the 0.5 shift is
    # toward the mean, so it vanishes when W sits exactly on the mean.
    deviation = w - mean_w
    correction = 0.5 * (1 if deviation > 0 else -1 if deviation < 0 else 0)
    z = (deviation - correction) / math.sqrt(var_w)
    p = min(1.0, 2.0 * _normal_sf(abs(z)))
    return WilcoxonResult(
        n_nonzero=n,
        w_statistic=w,
        w_plus=w_plus,
        w_minus=w_minus,
        z=z,
        p_value=p,
    )
