"""Qualitative feedback: the paper's open-ended responses, coded by theme.

Section IV quotes participant comments as evidence for specific themes
(manipulatives work, mpi4py makes Python viable, platform switching was
confusing, ...).  This module records those quotes with their theme codes
and provides the simple thematic-coding operations an evaluator (DHA)
performs: counting evidence per theme and checking which themes support
vs. challenge each strategy.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .survey import OpenEndedResponse

__all__ = [
    "Theme",
    "THEMES",
    "PAPER_QUOTES",
    "theme_counts",
    "quotes_for",
    "evidence_for_strategy",
]


@dataclass(frozen=True)
class Theme:
    """A thematic code with its valence toward the materials."""

    code: str
    description: str
    supports_strategy: int | None  # which of the paper's strategies, if any
    positive: bool


THEMES: dict[str, Theme] = {
    theme.code: theme
    for theme in (
        Theme("manipulative", "the Pi as a tangible learning object", 1, True),
        Theme("classroom-ready", "materials usable in their own courses", 3, True),
        Theme("consistent-platform", "uniform hardware beats diverse laptops", 1, True),
        Theme("low-bandwidth", "local device avoids remote-connection pain", 1, True),
        Theme("python-viable", "mpi4py makes Python a parallel teaching tool", 2, True),
        Theme("accessible-basics", "parallel basics are approachable when "
                                   "introduced correctly", 2, True),
        Theme("platform-confusion", "switching platforms was confusing", 2, False),
        Theme("online-participation", "the online format inhibits shy "
                                      "participants", 3, False),
        Theme("prepared-to-teach", "feels prepared to offer a PDC course", 3, True),
        Theme("right-level", "material pitched at the right level", 3, True),
    )
}

#: The open-ended responses quoted in Section IV, with their theme codes.
PAPER_QUOTES: tuple[OpenEndedResponse, ...] = (
    OpenEndedResponse(
        "We can see — using the Pi — several key concepts demonstrated. The "
        "level of difficulty was well in the range of our students. After "
        "this day — I immediately saw where we can show and use the "
        "exercises in our class!!",
        theme="classroom-ready",
    ),
    OpenEndedResponse(
        "It brings concepts home in a way that nothing else seems to do.",
        theme="manipulative",
    ),
    OpenEndedResponse(
        "Having a consistent system makes life so much easier and allows "
        "for a consistent experience.",
        theme="consistent-platform",
    ),
    OpenEndedResponse(
        "Having students connect to Zoom and separately connect to a remote "
        "server can be hard on some wireless connections.",
        theme="low-bandwidth",
    ),
    OpenEndedResponse(
        "It did show me that MPI can be used in Python; this makes Python "
        "somewhat viable as a parallel teaching tool.",
        theme="python-viable",
    ),
    OpenEndedResponse(
        "Although they seem difficult, the parallel programming basics are "
        "not [difficult] when introduced correctly.",
        theme="accessible-basics",
    ),
    OpenEndedResponse(
        "The platform switches seem to be a little confusing.",
        theme="platform-confusion",
    ),
    OpenEndedResponse(
        "I'm pretty quiet/shy in general and have telephone anxiety... I "
        "think I would have contributed more if we weren't trapped in the "
        "online format.",
        theme="online-participation",
    ),
    OpenEndedResponse(
        "The level where the material was presented was perfect.",
        theme="right-level",
    ),
    OpenEndedResponse(
        "I got a lot of material and I feel quite prepared to offer a "
        "course on parallel computing this coming Fall.",
        theme="prepared-to-teach",
    ),
)


def theme_counts(
    responses: tuple[OpenEndedResponse, ...] = PAPER_QUOTES,
) -> Counter:
    """Evidence count per theme code."""
    unknown = {r.theme for r in responses} - set(THEMES)
    if unknown:
        raise KeyError(f"uncoded themes: {sorted(unknown)}")
    return Counter(r.theme for r in responses)


def quotes_for(theme_code: str) -> list[OpenEndedResponse]:
    """All recorded quotes evidencing one theme."""
    if theme_code not in THEMES:
        raise KeyError(
            f"unknown theme {theme_code!r}; known: {sorted(THEMES)}"
        )
    return [r for r in PAPER_QUOTES if r.theme == theme_code]


def evidence_for_strategy(strategy_number: int) -> dict[str, list[str]]:
    """Supporting vs. challenging quotes for one of the paper's strategies."""
    supporting: list[str] = []
    challenging: list[str] = []
    for response in PAPER_QUOTES:
        theme = THEMES[response.theme]
        if theme.supports_strategy != strategy_number:
            continue
        (supporting if theme.positive else challenging).append(response.text)
    return {"supporting": supporting, "challenging": challenging}
