"""The synthetic workshop cohort, calibrated to the paper's assessment data.

The original responses belong to the 22 participants of the July 2020
virtual workshop and were collected by an independent evaluator; they are
not public.  This module substitutes a *calibrated synthetic cohort*: a
fixed set of 22 participant profiles matching every demographic the paper
reports, plus fixed response vectors whose summary statistics reproduce
the published numbers exactly:

* Table II row 1 (OpenMP on Raspberry Pi): mean (A) 4.55, (B) 4.45, n=22;
* Table II row 2 (MPI & cluster computing): mean (A) 4.38, (B) 4.29 —
  reproducible with n=21, i.e. one participant skipped those items
  (4.38 and 4.29 are not achievable as 2-decimal roundings of any
  integer-sum over n=22);
* Fig. 3 confidence: pre mean 2.82, post mean 3.59, paired t p ≈ 4.3e-4
  (paper: 0.0004);
* Fig. 4 preparedness: pre mean 2.59, post mean 3.77, paired t
  p ≈ 4.18e-8 (paper: 4.18e-08).

The response pairs were found by exhaustive search over integer Likert
vectors under those constraints (see DESIGN.md), then spread across the
anchor categories to match the shapes of the paper's histograms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

__all__ = [
    "Participant",
    "workshop_cohort",
    "CONFIDENCE_PAIRS",
    "PREPAREDNESS_PAIRS",
    "OPENMP_SESSION_RATINGS_A",
    "OPENMP_SESSION_RATINGS_B",
    "MPI_SESSION_RATINGS_A",
    "MPI_SESSION_RATINGS_B",
    "FALL_2020_PLANS",
]

Role = Literal["faculty", "graduate-student"]
Track = Literal["tenured-or-tenure-track", "non-tenure-track", "graduate-student"]


@dataclass(frozen=True)
class Participant:
    """One synthetic workshop participant."""

    pid: int
    role: Role
    track: Track
    gender: str
    location: str


def workshop_cohort() -> list[Participant]:
    """The 22 synthetic participants, matching every reported demographic:

    85% faculty / 15% graduate students (19 + 3 of 22); 19 continental US,
    1 Puerto Rico, 2 international; 77% male (17), 18% female (4),
    5% other (1); 46% tenured/tenure-track (10), 39% non-tenure-track (9),
    15% graduate students (3).
    """
    genders = ["male"] * 17 + ["female"] * 4 + ["other"]
    locations = ["continental-us"] * 19 + ["puerto-rico"] + ["international"] * 2
    tracks: list[Track] = (
        ["tenured-or-tenure-track"] * 10
        + ["non-tenure-track"] * 9
        + ["graduate-student"] * 3
    )
    participants = []
    for i in range(22):
        track = tracks[i]
        role: Role = "graduate-student" if track == "graduate-student" else "faculty"
        participants.append(
            Participant(
                pid=i,
                role=role,
                track=track,
                gender=genders[i],
                location=locations[i],
            )
        )
    return participants


#: Fig. 3 — "Indicate your current level of confidence in implementing PDC
#: topics in your courses." (pre, post) per participant.
#: Sums: pre 62 (mean 2.818 -> 2.82), post 79 (3.591 -> 3.59); paired t(21)
#: = 4.17, p = 4.33e-4.
CONFIDENCE_PAIRS: tuple[tuple[int, int], ...] = (
    (1, 3), (1, 3),
    (2, 4), (2, 4), (2, 4), (2, 4),
    (2, 3), (2, 3), (2, 3),
    (3, 4), (3, 4),
    (3, 3), (3, 3), (3, 3), (3, 3), (3, 3),
    (4, 4), (4, 4), (4, 4), (4, 4), (4, 4),
    (5, 5),
)

#: Fig. 4 — "How prepared do you feel to successfully implement PDC topics
#: in your courses?"  Sums: pre 57 (2.591 -> 2.59), post 83 (3.773 -> 3.77);
#: paired t(21) = 8.34, p = 4.18e-8.
PREPAREDNESS_PAIRS: tuple[tuple[int, int], ...] = (
    (1, 3), (1, 3),
    (2, 4), (2, 4), (2, 4), (2, 4), (2, 4),
    (2, 3), (2, 3), (2, 3),
    (3, 4), (3, 4), (3, 4), (3, 4), (3, 4), (3, 4), (3, 4),
    (3, 3), (3, 3),
    (4, 5), (4, 5),
    (4, 4),
)

#: Table II row 1, column (A): n=22, sum 100 -> mean 4.545 -> 4.55.
OPENMP_SESSION_RATINGS_A: tuple[int, ...] = (5,) * 12 + (4,) * 10

#: Table II row 1, column (B): n=22, sum 98 -> mean 4.455 -> 4.45.
OPENMP_SESSION_RATINGS_B: tuple[int, ...] = (5,) * 10 + (4,) * 12

#: Table II row 2, column (A): n=21, sum 92 -> mean 4.381 -> 4.38.
MPI_SESSION_RATINGS_A: tuple[int, ...] = (5,) * 8 + (4,) * 13

#: Table II row 2, column (B): n=21, sum 90 -> mean 4.286 -> 4.29.
MPI_SESSION_RATINGS_B: tuple[int, ...] = (5,) * 7 + (4,) * 13 + (3,)

#: Section IV's fall-2020 plans: 39% fully remote, 35% hybrid, 17% in-person
#: (multi-select percentages; 9/8/4 of 22 round to 41/36/18 — the paper's
#: 39/35/17 suggest one non-response, n=23 options or rounding from fractions
#: of respondents; we model the counts that round closest).
FALL_2020_PLANS: dict[str, int] = {
    "fully-remote": 9,
    "hybrid": 8,
    "in-person": 4,
    "undecided": 1,
}
