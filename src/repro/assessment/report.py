"""Assessment report generators: Table II, Figure 3, Figure 4.

Each generator assembles the calibrated cohort data through the survey
instruments and returns both the structured numbers and a rendered text
block matching what the paper prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from .cohort import (
    CONFIDENCE_PAIRS,
    MPI_SESSION_RATINGS_A,
    MPI_SESSION_RATINGS_B,
    OPENMP_SESSION_RATINGS_A,
    OPENMP_SESSION_RATINGS_B,
    PREPAREDNESS_PAIRS,
)
from .likert import CONFIDENCE, PREPAREDNESS, USEFULNESS
from .stats import PairedTTestResult
from .survey import PrePostItem, SessionRatings, SurveyItem

__all__ = [
    "table2",
    "figure3",
    "figure4",
    "Table2",
    "PrePostFigure",
]


@dataclass(frozen=True)
class Table2:
    """The per-session usefulness table."""

    rows: tuple[tuple[str, float, float], ...]

    def render(self) -> str:
        lines = [
            "TABLE II — How useful was each session for (A) implementing PDC",
            "in your courses; (B) your professional development?",
            f"{'Session':<34} {'(A)':>5} {'(B)':>5}",
        ]
        for session, a, b in self.rows:
            lines.append(f"{session:<34} {a:>5.2f} {b:>5.2f}")
        return "\n".join(lines)


def table2() -> Table2:
    """Regenerate Table II from the calibrated session ratings."""
    prompt_a = "How useful was this session for implementing PDC in your courses?"
    prompt_b = "How useful was this session for your professional development?"

    openmp = SessionRatings(
        "OpenMP on Raspberry Pi",
        SurveyItem(prompt_a, USEFULNESS),
        SurveyItem(prompt_b, USEFULNESS),
    )
    for a, b in zip(OPENMP_SESSION_RATINGS_A, OPENMP_SESSION_RATINGS_B):
        openmp.add(a, b)

    mpi = SessionRatings(
        "MPI & Distr. Cluster Computing",
        SurveyItem(prompt_a, USEFULNESS),
        SurveyItem(prompt_b, USEFULNESS),
    )
    for a, b in zip(MPI_SESSION_RATINGS_A, MPI_SESSION_RATINGS_B):
        mpi.add(a, b)

    return Table2(rows=(openmp.row(), mpi.row()))


@dataclass(frozen=True)
class PrePostFigure:
    """One pre/post histogram figure plus its paired analysis."""

    title: str
    pre_histogram: dict[str, int]
    post_histogram: dict[str, int]
    test: PairedTTestResult

    def render(self) -> str:
        lines = [self.title, f"{'response':<14} {'pre':>4} {'post':>5}"]
        for label in self.pre_histogram:
            lines.append(
                f"{label:<14} {self.pre_histogram[label]:>4} "
                f"{self.post_histogram[label]:>5}"
            )
        lines.append(self.test.summary())
        return "\n".join(lines)


def figure3() -> PrePostFigure:
    """Fig. 3: confidence in implementing PDC topics, pre vs post."""
    item = PrePostItem(
        "Indicate your current level of confidence in implementing PDC "
        "topics in your courses.",
        CONFIDENCE,
    )
    item.add_pairs(CONFIDENCE_PAIRS)
    pre_h, post_h = item.histograms()
    return PrePostFigure("Figure 3 — confidence", pre_h, post_h, item.analyze())


def figure4() -> PrePostFigure:
    """Fig. 4: preparedness to implement PDC topics, pre vs post."""
    item = PrePostItem(
        "How prepared do you feel to successfully implement PDC topics in "
        "your courses?",
        PREPAREDNESS,
    )
    item.add_pairs(PREPAREDNESS_PAIRS)
    pre_h, post_h = item.histograms()
    return PrePostFigure("Figure 4 — preparedness", pre_h, post_h, item.analyze())
