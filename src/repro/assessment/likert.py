"""Likert scales used by the workshop surveys.

Three instruments appear in the paper:

* per-session **usefulness** (Table II): 1 = "not at all useful" ...
  5 = "extremely useful";
* **confidence** in implementing PDC topics (Fig. 3): "not at all" /
  "slightly" / "moderately" / "very" / "extremely";
* **preparedness** (Fig. 4): "not at all" / "a little bit" / "somewhat" /
  "quite a bit" / "very much".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "LikertScale",
    "USEFULNESS",
    "CONFIDENCE",
    "PREPAREDNESS",
]


@dataclass(frozen=True)
class LikertScale:
    """An ordered response scale with labeled anchor points."""

    name: str
    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.labels) < 2:
            raise ValueError("a Likert scale needs at least two anchors")

    @property
    def min(self) -> int:
        return 1

    @property
    def max(self) -> int:
        return len(self.labels)

    def validate(self, value: int) -> int:
        """Check a response value; returns it for chaining."""
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"Likert responses are integers, got {value!r}")
        if not self.min <= value <= self.max:
            raise ValueError(
                f"{self.name}: response {value} outside [{self.min}, {self.max}]"
            )
        return value

    def label(self, value: int) -> str:
        """Anchor text for a response value."""
        self.validate(value)
        return self.labels[value - 1]

    def histogram(self, responses: Iterable[int]) -> dict[str, int]:
        """Counts per anchor, in scale order (the figures' bar heights)."""
        counts = {label: 0 for label in self.labels}
        for r in responses:
            counts[self.label(r)] += 1
        return counts

    def mean(self, responses: Sequence[int]) -> float:
        if not responses:
            raise ValueError("cannot average zero responses")
        for r in responses:
            self.validate(r)
        return sum(responses) / len(responses)


USEFULNESS = LikertScale(
    "usefulness",
    (
        "not at all useful",
        "slightly useful",
        "moderately useful",
        "very useful",
        "extremely useful",
    ),
)

CONFIDENCE = LikertScale(
    "confidence",
    ("not at all", "slightly", "moderately", "very", "extremely"),
)

PREPAREDNESS = LikertScale(
    "preparedness",
    ("not at all", "a little bit", "somewhat", "quite a bit", "very much"),
)
