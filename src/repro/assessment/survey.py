"""Survey instruments: items, responses, and pre/post paired designs.

Models the instruments the independent evaluator (DHA) administered:
per-session usefulness questions and common pre/post questions for the
paired analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .likert import LikertScale
from .stats import PairedTTestResult, paired_t_test

__all__ = ["SurveyItem", "SessionRatings", "PrePostItem", "OpenEndedResponse"]


@dataclass(frozen=True)
class SurveyItem:
    """One Likert question."""

    prompt: str
    scale: LikertScale

    def collect(self, responses: Iterable[int]) -> list[int]:
        """Validate a batch of responses against the item's scale."""
        return [self.scale.validate(r) for r in responses]


@dataclass
class SessionRatings:
    """Usefulness ratings for one workshop session (one Table II row).

    Column (A): usefulness for implementing PDC in the respondent's courses.
    Column (B): usefulness for their professional development.
    """

    session: str
    item_a: SurveyItem
    item_b: SurveyItem
    ratings_a: list[int] = field(default_factory=list)
    ratings_b: list[int] = field(default_factory=list)

    def add(self, rating_a: int | None, rating_b: int | None) -> None:
        """Record one participant's ratings (None = declined that column)."""
        if rating_a is not None:
            self.ratings_a.append(self.item_a.scale.validate(rating_a))
        if rating_b is not None:
            self.ratings_b.append(self.item_b.scale.validate(rating_b))

    @property
    def mean_a(self) -> float:
        return self.item_a.scale.mean(self.ratings_a)

    @property
    def mean_b(self) -> float:
        return self.item_b.scale.mean(self.ratings_b)

    def row(self) -> tuple[str, float, float]:
        """(session, A, B) with the paper's two-decimal rounding."""
        return (self.session, round(self.mean_a, 2), round(self.mean_b, 2))


@dataclass
class PrePostItem:
    """A common pre/post question supporting the paired analysis."""

    prompt: str
    scale: LikertScale
    pre: list[int] = field(default_factory=list)
    post: list[int] = field(default_factory=list)

    def add_pair(self, pre_value: int, post_value: int) -> None:
        self.pre.append(self.scale.validate(pre_value))
        self.post.append(self.scale.validate(post_value))

    def add_pairs(self, pairs: Sequence[tuple[int, int]]) -> None:
        for a, b in pairs:
            self.add_pair(a, b)

    def analyze(self) -> PairedTTestResult:
        """The paired Student's t-test the paper reports."""
        return paired_t_test(self.pre, self.post)

    def histograms(self) -> tuple[dict[str, int], dict[str, int]]:
        """(pre, post) bar heights — the data behind Figs. 3 and 4."""
        return self.scale.histogram(self.pre), self.scale.histogram(self.post)


@dataclass(frozen=True)
class OpenEndedResponse:
    """A qualitative comment, tagged with the theme it evidences."""

    text: str
    theme: str
