"""Statistics for the workshop assessment: paired Student's t-test from scratch.

The paper reports paired t-tests on pre/post survey responses.  We
implement the full computation ourselves — the t statistic, and the
two-sided p-value through the regularized incomplete beta function
evaluated with Lentz's continued fraction — and cross-check against
``scipy.stats.ttest_rel`` in the property tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = [
    "mean",
    "sample_std",
    "PairedTTestResult",
    "paired_t_test",
    "student_t_sf",
    "regularized_incomplete_beta",
]


def mean(xs: Sequence[float]) -> float:
    if not xs:
        raise ValueError("mean of empty sequence")
    return sum(xs) / len(xs)


def sample_std(xs: Sequence[float]) -> float:
    """Sample standard deviation (ddof=1)."""
    n = len(xs)
    if n < 2:
        raise ValueError("sample std needs at least two observations")
    m = mean(xs)
    return math.sqrt(sum((x - m) ** 2 for x in xs) / (n - 1))


def _betacf(a: float, b: float, x: float, max_iter: int = 300, eps: float = 3e-12) -> float:
    """Continued fraction for the incomplete beta (Lentz's algorithm)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            return h
    raise RuntimeError("incomplete beta continued fraction failed to converge")


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """``I_x(a, b)``, the regularized incomplete beta function."""
    if a <= 0 or b <= 0:
        raise ValueError("a and b must be positive")
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x in (0.0, 1.0):
        return x
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    # Use the continued fraction directly where it converges fast, else the
    # symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """Upper tail ``P(T > t)`` of Student's t with ``df`` degrees of freedom.

    Uses ``P(T > t) = I_{df/(df+t^2)}(df/2, 1/2) / 2`` for t >= 0.  For tiny
    |t| the argument ``df/(df+t^2)`` rounds to 1.0 and loses all precision,
    so we evaluate the complementary form ``(1 - I_{t^2/(df+t^2)}(1/2, df/2))
    / 2`` whose argument is computed without cancellation.
    """
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    tt = t * t
    x_complement = tt / (df + tt)
    if x_complement < 0.5:
        p = 0.5 * (1.0 - regularized_incomplete_beta(0.5, df / 2.0, x_complement))
    else:
        p = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, df / (df + tt))
    return p if t >= 0 else 1.0 - p


@dataclass(frozen=True)
class PairedTTestResult:
    """Everything the paper reports about a paired comparison."""

    n: int
    pre_mean: float
    post_mean: float
    mean_diff: float
    sd_diff: float
    t_statistic: float
    df: int
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha

    def summary(self) -> str:
        return (
            f"pre_m = {self.pre_mean:.2f}, post_m = {self.post_mean:.2f}, "
            f"t({self.df}) = {self.t_statistic:.2f}, p = {self.p_value:.3g}"
        )


def paired_t_test(pre: Sequence[float], post: Sequence[float]) -> PairedTTestResult:
    """Two-sided paired Student's t-test (the paper's Figs. 3-4 analysis)."""
    if len(pre) != len(post):
        raise ValueError(
            f"paired test needs equal-length samples, got {len(pre)} vs {len(post)}"
        )
    n = len(pre)
    if n < 2:
        raise ValueError("paired test needs at least two pairs")
    diffs = [b - a for a, b in zip(pre, post)]
    md = mean(diffs)
    sd = sample_std(diffs)
    if sd == 0.0:
        raise ValueError(
            "all paired differences are identical; the t statistic is undefined"
        )
    t = md / (sd / math.sqrt(n))
    df = n - 1
    p = 2.0 * student_t_sf(abs(t), df)
    return PairedTTestResult(
        n=n,
        pre_mean=mean(pre),
        post_mean=mean(post),
        mean_diff=md,
        sd_diff=sd,
        t_statistic=t,
        df=df,
        p_value=min(1.0, p),
    )
