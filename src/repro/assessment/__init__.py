"""``repro.assessment`` — survey instruments, statistics, and the calibrated
cohort reproducing the paper's evaluation (Table II, Figs. 3-4)."""

from .cohort import (
    CONFIDENCE_PAIRS,
    FALL_2020_PLANS,
    MPI_SESSION_RATINGS_A,
    MPI_SESSION_RATINGS_B,
    OPENMP_SESSION_RATINGS_A,
    OPENMP_SESSION_RATINGS_B,
    PREPAREDNESS_PAIRS,
    Participant,
    workshop_cohort,
)
from .effects import (
    WilcoxonResult,
    cohens_d_label,
    cohens_d_paired,
    wilcoxon_signed_rank,
)
from .likert import CONFIDENCE, PREPAREDNESS, USEFULNESS, LikertScale
from .qualitative import (
    PAPER_QUOTES,
    THEMES,
    Theme,
    evidence_for_strategy,
    quotes_for,
    theme_counts,
)
from .report import PrePostFigure, Table2, figure3, figure4, table2
from .stats import (
    PairedTTestResult,
    mean,
    paired_t_test,
    regularized_incomplete_beta,
    sample_std,
    student_t_sf,
)
from .survey import OpenEndedResponse, PrePostItem, SessionRatings, SurveyItem

__all__ = [
    "LikertScale",
    "USEFULNESS",
    "CONFIDENCE",
    "PREPAREDNESS",
    "SurveyItem",
    "SessionRatings",
    "PrePostItem",
    "OpenEndedResponse",
    "mean",
    "sample_std",
    "paired_t_test",
    "PairedTTestResult",
    "student_t_sf",
    "regularized_incomplete_beta",
    "Participant",
    "workshop_cohort",
    "CONFIDENCE_PAIRS",
    "PREPAREDNESS_PAIRS",
    "OPENMP_SESSION_RATINGS_A",
    "OPENMP_SESSION_RATINGS_B",
    "MPI_SESSION_RATINGS_A",
    "MPI_SESSION_RATINGS_B",
    "FALL_2020_PLANS",
    "table2",
    "figure3",
    "figure4",
    "cohens_d_paired",
    "cohens_d_label",
    "wilcoxon_signed_rank",
    "WilcoxonResult",
    "Theme",
    "THEMES",
    "PAPER_QUOTES",
    "theme_counts",
    "quotes_for",
    "evidence_for_strategy",
    "Table2",
    "PrePostFigure",
]
