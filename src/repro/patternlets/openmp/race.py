"""OpenMP patternlets 3-6: the race-condition arc.

This is the sequence behind the paper's Fig. 1 (Runestone §2.3 "Race
Conditions"): first *see* the bug (lost updates on an unprotected shared
counter), then fix it three ways — critical section, atomic update,
reduction clause — and observe the correctness/overhead trade-off.

Two demonstration modes:

* **wild** (default): genuine thread interleaving.  CPython's preemption
  makes lost updates probabilistic, so the patternlet reports whether any
  occurred; on a loaded machine a run may get lucky — that's pedagogically
  honest and the handout says so.
* **forced**: the same racy loop replayed under the
  :mod:`repro.testkit` schedule controller from a replay token — by
  default a canonical interleaving that *always* loses an update, or any
  racy schedule ``repro explore race`` discovered.  The referee's
  reproducer and the test suite's anchor.
"""

from __future__ import annotations

import sys

from ...openmp import (
    AtomicCounter,
    critical,
    parallel_for,
    parallel_region,
)
from ..base import PatternletResult, register

#: Canonical lost-update schedule for 2 threads x 1 increment: thread 0
#: reads, thread 1 runs its whole read-modify-write, thread 0 writes its
#: stale value.  Expected 2, actual 1 — always.  Rediscoverable with
#: ``repro explore race``; pinned in tests/goldens/explore_race.json.
FORCED_SCHEDULE = "o1.2.00111"


def _forced_lost_update(schedule: str | None, iterations: int):
    """Replay the racy loop under a deterministic schedule and lose updates.

    ``schedule`` is a testkit replay token (default :data:`FORCED_SCHEDULE`,
    which drives a single increment per thread).  The replay runs under the
    happens-before race detector, so the patternlet can show learners *why*
    an update vanished (the conflicting accesses and the shared variable's
    allocation site), not just that it did.
    """
    from ...analysis import race_detector
    from ...testkit import ReplayScheduler, decode_token, run_scheduled

    token = schedule if schedule is not None else FORCED_SCHEDULE
    nthreads, choices = decode_token(token)
    if schedule is None:
        iterations = 1  # the canonical schedule drives one increment each

    counter = AtomicCounter(0)

    def body() -> None:
        for _ in range(iterations):
            counter.unsafe_read_modify_write(1)  # pdclint: disable=PDC101

    with race_detector(target="openmp:race[forced]") as detector:
        run = run_scheduled(
            lambda: parallel_region(body, num_threads=nthreads),
            ReplayScheduler(choices),
        )
    if run.error is not None:
        raise run.error
    return nthreads * iterations, counter.value, run.token, detector.report()


@register(
    "race",
    "openmp",
    pattern="Race condition (unprotected shared update)",
    summary="Concurrent x = x + 1 on a shared variable loses updates.",
    order=3,
    concepts=("race condition", "read-modify-write", "nondeterminism"),
)
def race(
    num_threads: int = 4,
    iterations: int = 50_000,
    forced: bool = False,
    schedule: str | None = None,
) -> PatternletResult:
    """Increment a shared counter without protection and count the damage.

    ``schedule`` (implies ``forced``) replays a specific testkit token —
    e.g. a racy interleaving reported by ``repro explore race``.
    """
    result = PatternletResult("race")
    if forced or schedule is not None:
        expected, actual, token, report = _forced_lost_update(schedule, iterations)
        result.emit(
            f"forced interleaving {token}: expected {expected}, got {actual}"
        )
        for diag in report.errors:
            for line in diag.render().splitlines():
                result.emit(line)
        result.values.update(
            expected=expected, actual=actual, lost=expected - actual, forced=True,
            schedule=token,
            diagnostics=[d.to_dict() for d in report.errors],
        )
        return result

    counter = AtomicCounter(0)
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(5e-6)  # preempt aggressively to surface the race
    try:

        def body() -> None:
            for _ in range(iterations):
                # The bug IS the lesson: tell pdclint we mean it.
                counter.unsafe_read_modify_write(1)  # pdclint: disable=PDC101

        parallel_region(body, num_threads=num_threads)
    finally:
        sys.setswitchinterval(old_interval)

    expected = num_threads * iterations
    actual = counter.value
    result.emit(f"expected {expected}, got {actual} (lost {expected - actual})")
    result.values.update(
        expected=expected, actual=actual, lost=expected - actual, forced=False
    )
    return result


@register(
    "critical",
    "openmp",
    pattern="Mutual exclusion (critical section)",
    summary="Wrapping the update in a critical section restores correctness.",
    order=4,
    concepts=("critical section", "mutual exclusion", "serialization cost"),
)
def critical_fix(num_threads: int = 4, iterations: int = 20_000) -> PatternletResult:
    """Same loop as ``race``, now with a critical section around the update."""
    result = PatternletResult("critical")
    counter = AtomicCounter(0)

    def body() -> None:
        for _ in range(iterations):
            with critical("count"):
                counter.unsafe_read_modify_write(1)  # safe *because* guarded

    parallel_region(body, num_threads=num_threads)
    expected = num_threads * iterations
    result.emit(f"expected {expected}, got {counter.value}")
    result.values.update(expected=expected, actual=counter.value)
    return result


@register(
    "atomic",
    "openmp",
    pattern="Atomic update",
    summary="A hardware-style atomic add is a lighter fix than critical.",
    order=5,
    concepts=("atomic operation", "lock granularity"),
)
def atomic_fix(num_threads: int = 4, iterations: int = 20_000) -> PatternletResult:
    """Fix the race with an indivisible add instead of a full critical section."""
    result = PatternletResult("atomic")
    counter = AtomicCounter(0)

    def body() -> None:
        for _ in range(iterations):
            counter.add(1)

    parallel_region(body, num_threads=num_threads)
    expected = num_threads * iterations
    result.emit(f"expected {expected}, got {counter.value}")
    result.values.update(expected=expected, actual=counter.value)
    return result


@register(
    "reduction",
    "openmp",
    pattern="Reduction",
    summary="Private partials combined at the join: no sharing, no race.",
    order=6,
    concepts=("reduction clause", "private partial results"),
)
def reduction(num_threads: int = 4, n: int = 100_000) -> PatternletResult:
    """Sum 1..n with a reduction clause — the idiomatic, scalable fix."""
    result = PatternletResult("reduction")
    total = parallel_for(
        n, lambda i: i + 1, num_threads=num_threads, reduction="+"
    )
    expected = n * (n + 1) // 2
    result.emit(f"sum(1..{n}) = {total} (expected {expected})")
    result.values.update(expected=expected, actual=total)
    return result
