"""OpenMP patternlets 3-6: the race-condition arc.

This is the sequence behind the paper's Fig. 1 (Runestone §2.3 "Race
Conditions"): first *see* the bug (lost updates on an unprotected shared
counter), then fix it three ways — critical section, atomic update,
reduction clause — and observe the correctness/overhead trade-off.

Two demonstration modes:

* **wild** (default): genuine thread interleaving.  CPython's preemption
  makes lost updates probabilistic, so the patternlet reports whether any
  occurred; on a loaded machine a run may get lucky — that's pedagogically
  honest and the handout says so.
* **forced**: a deterministic two-thread interleaving driven by events that
  *always* loses an update — the referee's reproducer and the test suite's
  anchor.
"""

from __future__ import annotations

import sys
import threading

from ...openmp import (
    AtomicCounter,
    critical,
    parallel_for,
    parallel_region,
)
from ..base import PatternletResult, register


def _forced_lost_update():
    """Deterministically interleave two increments so one is lost.

    Thread A reads, then waits; thread B does its full read-modify-write;
    A resumes and writes its stale value.  Expected 2, actual 1 — always.
    The interleaving runs under the happens-before race detector, so the
    patternlet can show learners *why* the update vanished (the conflicting
    accesses and the shared variable's allocation site), not just that it
    did.
    """
    from ...analysis import TrackedVar, race_detector

    a_read = threading.Event()
    b_done = threading.Event()

    with race_detector(target="openmp:race[forced]") as detector:
        value = TrackedVar(0, name="x")

        def thread_a() -> None:
            stale = value.read()
            a_read.set()
            b_done.wait()  # B completes its whole update in our window
            value.write(stale + 1)  # stale write: B's update is lost

        def thread_b() -> None:
            a_read.wait()
            value.write(value.read() + 1)
            b_done.set()

        ta = threading.Thread(target=thread_a)
        tb = threading.Thread(target=thread_b)
        ta.start()
        tb.start()
        ta.join()
        tb.join()
    return 2, value.peek(), detector.report()


@register(
    "race",
    "openmp",
    pattern="Race condition (unprotected shared update)",
    summary="Concurrent x = x + 1 on a shared variable loses updates.",
    order=3,
    concepts=("race condition", "read-modify-write", "nondeterminism"),
)
def race(
    num_threads: int = 4, iterations: int = 50_000, forced: bool = False
) -> PatternletResult:
    """Increment a shared counter without protection and count the damage."""
    result = PatternletResult("race")
    if forced:
        expected, actual, report = _forced_lost_update()
        result.emit(f"forced interleaving: expected {expected}, got {actual}")
        for diag in report.errors:
            for line in diag.render().splitlines():
                result.emit(line)
        result.values.update(
            expected=expected, actual=actual, lost=expected - actual, forced=True,
            diagnostics=[d.to_dict() for d in report.errors],
        )
        return result

    counter = AtomicCounter(0)
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(5e-6)  # preempt aggressively to surface the race
    try:

        def body() -> None:
            for _ in range(iterations):
                # The bug IS the lesson: tell pdclint we mean it.
                counter.unsafe_read_modify_write(1)  # pdclint: disable=PDC101

        parallel_region(body, num_threads=num_threads)
    finally:
        sys.setswitchinterval(old_interval)

    expected = num_threads * iterations
    actual = counter.value
    result.emit(f"expected {expected}, got {actual} (lost {expected - actual})")
    result.values.update(
        expected=expected, actual=actual, lost=expected - actual, forced=False
    )
    return result


@register(
    "critical",
    "openmp",
    pattern="Mutual exclusion (critical section)",
    summary="Wrapping the update in a critical section restores correctness.",
    order=4,
    concepts=("critical section", "mutual exclusion", "serialization cost"),
)
def critical_fix(num_threads: int = 4, iterations: int = 20_000) -> PatternletResult:
    """Same loop as ``race``, now with a critical section around the update."""
    result = PatternletResult("critical")
    counter = AtomicCounter(0)

    def body() -> None:
        for _ in range(iterations):
            with critical("count"):
                counter.unsafe_read_modify_write(1)  # safe *because* guarded

    parallel_region(body, num_threads=num_threads)
    expected = num_threads * iterations
    result.emit(f"expected {expected}, got {counter.value}")
    result.values.update(expected=expected, actual=counter.value)
    return result


@register(
    "atomic",
    "openmp",
    pattern="Atomic update",
    summary="A hardware-style atomic add is a lighter fix than critical.",
    order=5,
    concepts=("atomic operation", "lock granularity"),
)
def atomic_fix(num_threads: int = 4, iterations: int = 20_000) -> PatternletResult:
    """Fix the race with an indivisible add instead of a full critical section."""
    result = PatternletResult("atomic")
    counter = AtomicCounter(0)

    def body() -> None:
        for _ in range(iterations):
            counter.add(1)

    parallel_region(body, num_threads=num_threads)
    expected = num_threads * iterations
    result.emit(f"expected {expected}, got {counter.value}")
    result.values.update(expected=expected, actual=counter.value)
    return result


@register(
    "reduction",
    "openmp",
    pattern="Reduction",
    summary="Private partials combined at the join: no sharing, no race.",
    order=6,
    concepts=("reduction clause", "private partial results"),
)
def reduction(num_threads: int = 4, n: int = 100_000) -> PatternletResult:
    """Sum 1..n with a reduction clause — the idiomatic, scalable fix."""
    result = PatternletResult("reduction")
    total = parallel_for(
        n, lambda i: i + 1, num_threads=num_threads, reduction="+"
    )
    expected = n * (n + 1) // 2
    result.emit(f"sum(1..{n}) = {total} (expected {expected})")
    result.values.update(expected=expected, actual=total)
    return result
