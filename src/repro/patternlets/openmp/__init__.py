"""OpenMP patternlets: importing this package registers all of them."""

from . import coordination, race, spmd, tasking, worksharing  # noqa: F401
