"""OpenMP patternlets 7-9: worksharing loop schedules.

The handout has learners contrast *equal chunks* (static blocks), *chunks
of one* (static,1 round-robin) and *dynamic* self-scheduling, then reason
about which fits balanced vs. imbalanced loop bodies.
"""

from __future__ import annotations

import threading

from ...openmp import (
    DynamicScheduler,
    get_thread_num,
    parallel_region,
    static_block_ranges,
    static_chunks,
)
from ..base import PatternletResult, register


def _assignment_map(n: int, num_threads: int, per_thread) -> dict[int, list[int]]:
    """Run ``per_thread(tid) -> iterable of indices`` on a team, collect who
    got what."""
    claimed: dict[int, list[int]] = {t: [] for t in range(num_threads)}
    lock = threading.Lock()

    def body() -> None:
        tid = get_thread_num()
        mine = list(per_thread(tid))
        with lock:
            claimed[tid].extend(mine)

    parallel_region(body, num_threads=num_threads)
    return claimed


@register(
    "forEqualChunks",
    "openmp",
    pattern="Parallel loop, equal chunks",
    summary="Contiguous blocks: thread t gets iterations [t*n/T, (t+1)*n/T).",
    order=7,
    concepts=("worksharing", "static schedule", "data decomposition"),
)
def for_equal_chunks(num_threads: int = 4, n: int = 16) -> PatternletResult:
    """Static block decomposition: good locality for uniform work."""
    result = PatternletResult("forEqualChunks")
    blocks = static_block_ranges(n, num_threads)
    claimed = _assignment_map(n, num_threads, lambda t: blocks[t])
    for t in range(num_threads):
        result.emit(f"thread {t} -> iterations {claimed[t]}")
    covered = sorted(i for idxs in claimed.values() for i in idxs)
    result.values["assignment"] = claimed
    result.values["covered_exactly_once"] = covered == list(range(n))
    result.values["contiguous"] = all(
        idxs == list(range(idxs[0], idxs[-1] + 1)) for idxs in claimed.values() if idxs
    )
    return result


@register(
    "forChunksOf1",
    "openmp",
    pattern="Parallel loop, chunks of one",
    summary="Round-robin: thread t gets iterations t, t+T, t+2T, ...",
    order=8,
    concepts=("worksharing", "cyclic schedule", "striding"),
)
def for_chunks_of_one(num_threads: int = 4, n: int = 16) -> PatternletResult:
    """Static cyclic decomposition: balances triangular workloads."""
    result = PatternletResult("forChunksOf1")
    claimed = _assignment_map(
        n, num_threads, lambda t: static_chunks(n, num_threads, 1, t)
    )
    for t in range(num_threads):
        result.emit(f"thread {t} -> iterations {claimed[t]}")
    covered = sorted(i for idxs in claimed.values() for i in idxs)
    result.values["assignment"] = claimed
    result.values["covered_exactly_once"] = covered == list(range(n))
    result.values["strided"] = all(
        all(i % num_threads == t for i in idxs) for t, idxs in claimed.items()
    )
    return result


@register(
    "forDynamic",
    "openmp",
    pattern="Parallel loop, dynamic schedule",
    summary="Threads grab the next chunk when free: self-balancing.",
    order=9,
    concepts=("dynamic schedule", "load balancing", "work queue"),
)
def for_dynamic(num_threads: int = 4, n: int = 24, chunk: int = 2) -> PatternletResult:
    """Dynamic self-scheduling; assignment varies run to run, coverage never."""
    result = PatternletResult("forDynamic")
    scheduler = DynamicScheduler(n, chunk)
    claimed = _assignment_map(n, num_threads, lambda t: iter(scheduler))
    for t in range(num_threads):
        result.emit(f"thread {t} -> iterations {claimed[t]}")
    covered = sorted(i for idxs in claimed.values() for i in idxs)
    result.values["assignment"] = claimed
    result.values["covered_exactly_once"] = covered == list(range(n))
    result.values["chunk"] = chunk
    return result
