"""OpenMP patternlets 10-12: barrier, master/single, sections."""

from __future__ import annotations

import threading

from ...openmp import (
    barrier,
    get_thread_num,
    master,
    parallel_region,
    parallel_sections,
    single,
)
from ..base import PatternletResult, register


@register(
    "barrier",
    "openmp",
    pattern="Barrier",
    summary="No thread enters phase 2 until every thread finished phase 1.",
    order=10,
    concepts=("barrier", "phase synchronization"),
)
def barrier_demo(num_threads: int = 4) -> PatternletResult:
    """Phase-1 lines always precede phase-2 lines, whatever the interleaving."""
    result = PatternletResult("barrier")
    lock = threading.Lock()

    def body() -> None:
        tid = get_thread_num()
        with lock:
            result.emit(f"phase 1: thread {tid}")
        barrier()
        with lock:
            result.emit(f"phase 2: thread {tid}")

    parallel_region(body, num_threads=num_threads)
    phase_of = [1 if ln.startswith("phase 1") else 2 for ln in result.trace]
    result.values["phases_ordered"] = phase_of == sorted(phase_of)
    result.values["lines"] = len(result.trace)
    return result


@register(
    "masterSingle",
    "openmp",
    pattern="Master / Single",
    summary="Some work belongs to one thread: master is thread 0, single is whoever arrives first.",
    order=11,
    concepts=("master construct", "single construct"),
)
def master_single(num_threads: int = 4) -> PatternletResult:
    """Count executions: master runs on thread 0, single on exactly one thread."""
    result = PatternletResult("masterSingle")
    record: dict[str, list[int]] = {"master": [], "single": []}
    lock = threading.Lock()

    def body() -> None:
        tid = get_thread_num()
        if master():
            with lock:
                record["master"].append(tid)
        if single():
            with lock:
                record["single"].append(tid)
        barrier()

    parallel_region(body, num_threads=num_threads)
    result.emit(f"master executed by threads {record['master']}")
    result.emit(f"single executed by threads {record['single']}")
    result.values["master_threads"] = record["master"]
    result.values["single_threads"] = record["single"]
    result.values["master_is_zero"] = record["master"] == [0]
    result.values["single_ran_once"] = len(record["single"]) == 1
    return result


@register(
    "sections",
    "openmp",
    pattern="Parallel sections (task parallelism)",
    summary="Different threads run different code blocks concurrently.",
    order=12,
    concepts=("sections", "task parallelism"),
)
def sections_demo(num_threads: int = 2) -> PatternletResult:
    """Two unlike tasks execute once each, possibly on different threads."""
    result = PatternletResult("sections")
    ran: dict[str, int] = {}
    lock = threading.Lock()

    def make_task(label: str):
        def task() -> str:
            with lock:
                ran[label] = ran.get(label, 0) + 1
                result.emit(f"section {label} on thread {get_thread_num()}")
            return label

        return task

    labels = ["A", "B", "C", "D"]
    outputs = parallel_sections([make_task(s) for s in labels], num_threads=num_threads)
    result.values["outputs"] = outputs
    result.values["each_ran_once"] = all(ran.get(s) == 1 for s in labels)
    return result
