"""OpenMP patternlet 13: explicit tasks (divide-and-conquer parallelism)."""

from __future__ import annotations

from ...openmp import parallel_region, single, task, taskwait
from ..base import PatternletResult, register


@register(
    "tasks",
    "openmp",
    pattern="Task parallelism (explicit tasks)",
    summary="Recursive work spawns tasks; idle threads steal them.",
    order=13,
    concepts=("task construct", "taskwait", "divide and conquer", "cutoff"),
)
def tasks(num_threads: int = 4, n: int = 14) -> PatternletResult:
    """Compute Fibonacci(n) with the classic task-recursive decomposition.

    One thread seeds the recursion inside ``single``; every split spawns a
    task for one branch.  The exponential task tree is exactly the shape
    worksharing loops cannot express — the motivating example for tasking.
    """
    result = PatternletResult("tasks")
    spawned = [0]

    def fib(k: int) -> int:
        if k < 2:
            return k
        spawned[0] += 1  # benign count (single-seeded recursion dominates)
        left = task(fib, k - 1)
        right = fib(k - 2)
        return left.result() + right

    value = [0]

    def body() -> None:
        if single():
            value[0] = fib(n)
        taskwait()

    parallel_region(body, num_threads=num_threads)

    def fib_seq(k: int) -> int:
        a, b = 0, 1
        for _ in range(k):
            a, b = b, a + b
        return a

    expected = fib_seq(n)
    result.emit(f"fib({n}) = {value[0]} via {spawned[0]} spawned tasks")
    result.values.update(
        expected=expected, actual=value[0], tasks_spawned=spawned[0]
    )
    return result
