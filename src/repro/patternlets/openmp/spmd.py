"""OpenMP patternlets 0-2: SPMD fork-join and private variables.

These open the Runestone handout's hands-on hour: the learner first sees
that one program text runs on every thread (SPMD), then that the fork-join
boundary separates sequential from parallel execution, then why loop
variables must be private.
"""

from __future__ import annotations

import threading

from ...openmp import get_num_threads, get_thread_num, parallel_region
from ..base import PatternletResult, register


@register(
    "spmd",
    "openmp",
    pattern="SPMD (Single Program, Multiple Data)",
    summary="Every thread runs the same code with its own id.",
    order=0,
    concepts=("fork-join", "thread id", "team size"),
)
def spmd(num_threads: int = 4) -> PatternletResult:
    """Each team member announces itself — outputs interleave nondeterministically."""
    result = PatternletResult("spmd")
    lock = threading.Lock()

    def body() -> int:
        tid = get_thread_num()
        with lock:
            result.emit(f"Hello from thread {tid} of {get_num_threads()}")
        return tid

    tids = parallel_region(body, num_threads=num_threads)
    result.values["thread_ids"] = sorted(tids)
    result.values["num_threads"] = num_threads
    return result


@register(
    "forkjoin",
    "openmp",
    pattern="Fork-Join",
    summary="Sequential before, parallel inside, sequential after.",
    order=1,
    concepts=("fork-join", "implicit barrier"),
)
def forkjoin(num_threads: int = 4) -> PatternletResult:
    """The master alone runs the sequential phases; the join is a barrier."""
    result = PatternletResult("forkjoin")
    lock = threading.Lock()
    result.emit("Before: only the initial thread")

    def body() -> None:
        with lock:
            result.emit(f"During: thread {get_thread_num()} working")

    parallel_region(body, num_threads=num_threads)
    result.emit("After: only the initial thread (all workers joined)")
    during = [ln for ln in result.trace if ln.startswith("During")]
    result.values["phase_counts"] = {
        "before": 1,
        "during": len(during),
        "after": 1,
    }
    result.values["joined_before_after"] = result.trace[-1].startswith("After")
    return result


@register(
    "private",
    "openmp",
    pattern="Private vs. shared data",
    summary="Per-thread locals are private; captured objects are shared.",
    order=2,
    concepts=("data environment", "private clause", "shared state"),
)
def private(num_threads: int = 4) -> PatternletResult:
    """Locals inside the region body are private; the shared list is not."""
    result = PatternletResult("private")
    shared_log: list[int] = []
    lock = threading.Lock()

    def body() -> tuple[int, int]:
        tid = get_thread_num()
        private_square = tid * tid  # a local: each thread has its own
        with lock:
            shared_log.append(tid)  # the captured list: one object, shared
        return tid, private_square

    pairs = parallel_region(body, num_threads=num_threads)
    for tid, sq in sorted(pairs):
        result.emit(f"thread {tid}: private value {sq}")
    result.values["private_values"] = {t: s for t, s in pairs}
    result.values["shared_appends"] = len(shared_log)
    result.values["privates_correct"] = all(s == t * t for t, s in pairs)
    return result
