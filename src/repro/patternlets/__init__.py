"""``repro.patternlets`` — the patternlet catalog for both paradigms.

Importing this package registers every patternlet; enumerate them with
:func:`all_patternlets` or fetch one by name with :func:`get_patternlet`.

>>> from repro.patternlets import get_patternlet
>>> get_patternlet("mpi", "spmd").run(np=4).values["np"]
4
"""

from . import mpi as _mpi  # noqa: F401 - registration side effects
from . import openmp as _openmp  # noqa: F401
from .base import (
    PARADIGMS,
    Patternlet,
    PatternletResult,
    all_patternlets,
    get_patternlet,
    patternlet_names,
)
from .clistings import C_LISTINGS, c_listing, has_c_listing
from .mpi import SPMD_SCRIPT

__all__ = [
    "c_listing",
    "has_c_listing",
    "C_LISTINGS",
    "Patternlet",
    "PatternletResult",
    "all_patternlets",
    "get_patternlet",
    "patternlet_names",
    "PARADIGMS",
    "SPMD_SCRIPT",
]
