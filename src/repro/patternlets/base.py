"""Patternlet infrastructure: metadata, results, and the registry.

A *patternlet* (Adams, IPDPSW 2015) is a minimal, runnable program that
illustrates exactly one parallel-programming pattern.  Here each patternlet
is a Python callable plus metadata; running it returns a
:class:`PatternletResult` carrying a human-readable event trace (what the
learner would see on the terminal) and machine-checkable values (what the
tests and interactive questions assert on).
"""

from __future__ import annotations

import inspect
import textwrap
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Patternlet",
    "PatternletResult",
    "register",
    "get_patternlet",
    "all_patternlets",
    "patternlet_names",
    "PARADIGMS",
]

PARADIGMS = ("openmp", "mpi")


@dataclass
class PatternletResult:
    """Outcome of one patternlet run."""

    name: str
    trace: list[str] = field(default_factory=list)
    values: dict[str, Any] = field(default_factory=dict)

    def emit(self, line: str) -> None:
        self.trace.append(line)

    @property
    def text(self) -> str:
        return "\n".join(self.trace)

    def __getitem__(self, key: str) -> Any:
        return self.values[key]


@dataclass(frozen=True)
class Patternlet:
    """A registered patternlet: one pattern, one runnable demonstration."""

    name: str
    paradigm: str
    pattern: str
    summary: str
    runner: Callable[..., PatternletResult]
    order: int = 0
    concepts: tuple[str, ...] = ()

    def run(self, **kwargs: Any) -> PatternletResult:
        """Execute the patternlet; keyword arguments tune its parameters."""
        return self.runner(**kwargs)

    @property
    def source(self) -> str:
        """The patternlet's own code, shown to learners as the listing."""
        return textwrap.dedent(inspect.getsource(self.runner))

    @property
    def source_file(self) -> str | None:
        """Path of the file defining the runner (None for dynamic defs).

        Listing metadata for tools that read the code rather than run it —
        pdclint lints this file and narrows to :attr:`source_span`.
        """
        try:
            return inspect.getsourcefile(self.runner)
        except TypeError:
            return None

    @property
    def source_span(self) -> tuple[int, int]:
        """(first, last) 1-based line numbers of the runner in its file."""
        lines, start = inspect.getsourcelines(self.runner)
        return start, start + len(lines) - 1

    @property
    def c_listing(self) -> str | None:
        """The companion C/OpenMP handout listing, when one is registered."""
        if self.paradigm != "openmp":
            return None
        from .clistings import C_LISTINGS

        return C_LISTINGS.get(self.name)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.paradigm}:{self.order:02d}] {self.name} — {self.pattern}"


_REGISTRY: dict[tuple[str, str], Patternlet] = {}


def register(
    name: str,
    paradigm: str,
    pattern: str,
    summary: str,
    order: int = 0,
    concepts: Iterable[str] = (),
) -> Callable[[Callable[..., PatternletResult]], Callable[..., PatternletResult]]:
    """Decorator registering a patternlet runner under (paradigm, name)."""
    if paradigm not in PARADIGMS:
        raise ValueError(f"paradigm must be one of {PARADIGMS}, got {paradigm!r}")

    def deco(fn: Callable[..., PatternletResult]) -> Callable[..., PatternletResult]:
        key = (paradigm, name)
        if key in _REGISTRY:
            raise ValueError(f"patternlet {paradigm}:{name} already registered")
        _REGISTRY[key] = Patternlet(
            name=name,
            paradigm=paradigm,
            pattern=pattern,
            summary=summary,
            runner=fn,
            order=order,
            concepts=tuple(concepts),
        )
        return fn

    return deco


def get_patternlet(paradigm: str, name: str) -> Patternlet:
    """Look up one patternlet; raises ``KeyError`` with suggestions."""
    try:
        return _REGISTRY[(paradigm, name)]
    except KeyError:
        available = sorted(n for p, n in _REGISTRY if p == paradigm)
        raise KeyError(
            f"no patternlet {paradigm}:{name}; available: {available}"
        ) from None


def all_patternlets(paradigm: str | None = None) -> list[Patternlet]:
    """All registered patternlets, ordered as the handouts present them."""
    items = [
        p
        for (para, _n), p in _REGISTRY.items()
        if paradigm is None or para == paradigm
    ]
    return sorted(items, key=lambda p: (p.paradigm, p.order, p.name))


def patternlet_names(paradigm: str) -> list[str]:
    return [p.name for p in all_patternlets(paradigm)]
