"""MPI patternlet 14: Cartesian topology and halo exchange."""

from __future__ import annotations

from ...mpi import PROC_NULL, mpirun
from ..base import PatternletResult, register


@register(
    "haloExchange",
    "mpi",
    pattern="Cartesian topology + halo exchange",
    summary="Neighbors on a process grid swap boundary cells each step.",
    order=14,
    concepts=("Cartesian topology", "Shift", "halo exchange", "PROC_NULL"),
)
def halo_exchange(np: int = 4, cells_per_rank: int = 3) -> PatternletResult:
    """Each rank owns a strip of cells and swaps edge values with neighbors.

    The non-periodic rod means the end ranks' missing neighbors are
    ``PROC_NULL`` — their exchanges complete immediately with no data,
    which is the standard trick that keeps stencil codes edge-case-free.
    """
    result = PatternletResult("haloExchange")

    def body(comm):
        cart = comm.Create_cart((comm.Get_size(),), periods=(False,))
        rank, size = cart.Get_rank(), cart.Get_size()
        left, right = cart.Shift(0, 1)
        base = rank * cells_per_rank
        cells = list(range(base, base + cells_per_rank))
        # my left halo = left neighbor's last cell; right halo = right
        # neighbor's first cell
        left_halo = cart.sendrecv(cells[-1], dest=right, sendtag=1,
                                  source=left, recvtag=1)
        right_halo = cart.sendrecv(cells[0], dest=left, sendtag=2,
                                   source=right, recvtag=2)
        return {
            "rank": rank,
            "left_neighbor": left,
            "right_neighbor": right,
            "cells": cells,
            "left_halo": left_halo,
            "right_halo": right_halo,
        }

    outs = mpirun(body, np)
    for o in outs:
        result.emit(
            f"rank {o['rank']}: cells {o['cells']}, halos "
            f"({o['left_halo']}, {o['right_halo']})"
        )
    correct = True
    for o in outs:
        rank = o["rank"]
        expect_left = None if rank == 0 else rank * cells_per_rank - 1
        expect_right = (
            None if rank == np - 1 else (rank + 1) * cells_per_rank
        )
        correct &= o["left_halo"] == expect_left
        correct &= o["right_halo"] == expect_right
        correct &= (o["left_neighbor"] == PROC_NULL) == (rank == 0)
        correct &= (o["right_neighbor"] == PROC_NULL) == (rank == np - 1)
    result.values["halos_correct"] = correct
    result.values["np"] = np
    return result
