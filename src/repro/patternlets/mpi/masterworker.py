"""MPI patternlets 12-13: master-worker task distribution and the
parallel-loop decomposition.

The master-worker patternlet is the skeleton the drug-design exemplar
fleshes out; parallelLoopChunks is the skeleton for numerical integration.
"""

from __future__ import annotations

from ...mpi import ANY_SOURCE, ANY_TAG, Status, mpirun
from ..base import PatternletResult, register

_TAG_WORK = 1
_TAG_DONE = 2


@register(
    "masterWorker",
    "mpi",
    pattern="Master-Worker (dynamic task queue)",
    summary="The master hands tasks to whichever worker asks next.",
    order=12,
    concepts=("master-worker", "dynamic load balancing", "poison pill"),
)
def master_worker(np: int = 4, num_tasks: int = 12) -> PatternletResult:
    """Master farms ``num_tasks`` squarings out to np-1 workers."""
    if np < 2:
        raise ValueError("masterWorker needs at least 2 processes")
    result = PatternletResult("masterWorker")

    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        if rank == 0:
            results: dict[int, int] = {}
            status = Status()
            outstanding = 0
            next_task = 0
            # Prime every worker with one task.
            for worker in range(1, size):
                if next_task < num_tasks:
                    comm.send(next_task, dest=worker, tag=_TAG_WORK)
                    next_task += 1
                    outstanding += 1
                else:
                    comm.send(None, dest=worker, tag=_TAG_DONE)
            # Re-feed the worker that answers until tasks run out.
            while outstanding:
                task, value = comm.recv(source=ANY_SOURCE, tag=_TAG_WORK, status=status)
                results[task] = value
                outstanding -= 1
                worker = status.Get_source()
                if next_task < num_tasks:
                    comm.send(next_task, dest=worker, tag=_TAG_WORK)
                    next_task += 1
                    outstanding += 1
                else:
                    comm.send(None, dest=worker, tag=_TAG_DONE)
            return results
        # Worker loop: compute until the poison pill arrives.
        handled = 0
        status = Status()
        while True:
            task = comm.recv(source=0, tag=ANY_TAG, status=status)
            if status.Get_tag() == _TAG_DONE:
                return handled
            comm.send((task, task * task), dest=0, tag=_TAG_WORK)
            handled += 1

    outs = mpirun(body, np)
    results = outs[0]
    result.emit(f"master collected {len(results)} results from {np - 1} workers")
    result.values["all_tasks_done"] = results == {t: t * t for t in range(num_tasks)}
    result.values["per_worker_counts"] = outs[1:]
    result.values["work_was_distributed"] = sum(outs[1:]) == num_tasks
    return result


@register(
    "parallelLoopChunks",
    "mpi",
    pattern="Parallel loop via rank-strided decomposition",
    summary="Each rank computes its slice of the loop; a reduce assembles the answer.",
    order=13,
    concepts=("data decomposition", "owner computes", "reduce"),
)
def parallel_loop_chunks(np: int = 4, n: int = 1000) -> PatternletResult:
    """Sum of squares of 0..n-1 with block decomposition plus reduce."""
    result = PatternletResult("parallelLoopChunks")

    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        # Equal-chunk bounds: the same decomposition as the OpenMP patternlet.
        base, extra = divmod(n, size)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        local = sum(i * i for i in range(lo, hi))
        total = comm.reduce(local, root=0)
        return (lo, hi, total)

    outs = mpirun(body, np)
    expected = sum(i * i for i in range(n))
    bounds = [(lo, hi) for lo, hi, _ in outs]
    result.emit(f"rank slices: {bounds}")
    result.emit(f"total = {outs[0][2]} (expected {expected})")
    result.values["total_correct"] = outs[0][2] == expected
    result.values["slices_cover"] = (
        bounds[0][0] == 0
        and bounds[-1][1] == n
        and all(bounds[i][1] == bounds[i + 1][0] for i in range(np - 1))
    )
    return result
