"""MPI patternlets 7-11: collective communication.

Broadcast, scatter, gather, reduce and allreduce — the data-movement
vocabulary the exemplars build on.
"""

from __future__ import annotations

import numpy as np

from ...mpi import MPI, SUM, mpirun
from ..base import PatternletResult, register


@register(
    "broadcast",
    "mpi",
    pattern="Broadcast",
    summary="Root's data reaches every process in one collective call.",
    order=7,
    concepts=("collective", "broadcast", "root"),
)
def broadcast(np: int = 4) -> PatternletResult:
    """Broadcast a dictionary (the mpi4py tutorial example) to all ranks."""
    result = PatternletResult("broadcast")

    def body(comm):
        rank = comm.Get_rank()
        data = {"key1": [7, 2.72, 2 + 3j], "key2": ("abc", "xyz")} if rank == 0 else None
        data = comm.bcast(data, root=0)
        result.emit(f"rank {rank} has keys {sorted(data)}")
        return data

    outs = mpirun(body, np)
    result.values["all_equal"] = all(o == outs[0] for o in outs)
    result.values["copies_are_private"] = all(
        outs[i] is not outs[j] for i in range(np) for j in range(i + 1, min(np, i + 2))
    ) if np > 1 else True
    return result


@register(
    "scatter",
    "mpi",
    pattern="Scatter",
    summary="Root deals one chunk of its data to each process.",
    order=8,
    concepts=("collective", "scatter", "data decomposition"),
)
def scatter(np: int = 4) -> PatternletResult:
    """Scatter (i+1)^2 values; rank r receives (r+1)^2."""
    result = PatternletResult("scatter")

    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        data = [(i + 1) ** 2 for i in range(size)] if rank == 0 else None
        data = comm.scatter(data, root=0)
        result.emit(f"rank {rank} received {data}")
        return data

    outs = mpirun(body, np)
    result.values["each_got_its_chunk"] = outs == [(r + 1) ** 2 for r in range(np)]
    return result


@register(
    "gather",
    "mpi",
    pattern="Gather",
    summary="Every process contributes one value; root assembles the list.",
    order=9,
    concepts=("collective", "gather", "result assembly"),
)
def gather(np: int = 4) -> PatternletResult:
    """Gather (rank+1)^2 values at root, None everywhere else."""
    result = PatternletResult("gather")

    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        gathered = comm.gather((rank + 1) ** 2, root=0)
        if rank == 0:
            result.emit(f"root gathered {gathered}")
        return gathered

    outs = mpirun(body, np)
    result.values["root_list_correct"] = outs[0] == [(r + 1) ** 2 for r in range(np)]
    result.values["non_roots_none"] = all(o is None for o in outs[1:])
    return result


@register(
    "reduce",
    "mpi",
    pattern="Reduce",
    summary="Combine one value per process with an operation, result at root.",
    order=10,
    concepts=("collective", "reduction", "MPI_SUM"),
)
def reduce(np: int = 4) -> PatternletResult:
    """Sum ranks and sum of squares in two reduces."""
    result = PatternletResult("reduce")

    def body(comm):
        rank = comm.Get_rank()
        total = comm.reduce(rank, op=SUM, root=0)
        squares = comm.reduce(rank * rank, op=SUM, root=0)
        if rank == 0:
            result.emit(f"sum of ranks = {total}, sum of squares = {squares}")
        return (total, squares)

    outs = mpirun(body, np)
    expect = (sum(range(np)), sum(r * r for r in range(np)))
    result.values["root_correct"] = outs[0] == expect
    result.values["non_roots_none"] = all(o == (None, None) for o in outs[1:])
    return result


@register(
    "allreduceArrays",
    "mpi",
    pattern="Allreduce on typed buffers",
    summary="NumPy arrays combine elementwise; every rank gets the result.",
    order=11,
    concepts=("buffer collectives", "Allreduce", "NumPy interop"),
)
def allreduce_arrays(np_procs: int = 4, n: int = 64) -> PatternletResult:
    """Each rank contributes rank*ones(n); all receive sum(ranks)*ones(n)."""
    result = PatternletResult("allreduceArrays")

    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        sendbuf = np.full(n, rank, dtype="d")
        recvbuf = np.empty(n, dtype="d")
        comm.Allreduce([sendbuf, MPI.DOUBLE], [recvbuf, MPI.DOUBLE], op=SUM)
        return float(recvbuf[0]), bool((recvbuf == recvbuf[0]).all())

    outs = mpirun(body, np_procs)
    expected = float(sum(range(np_procs)))
    result.emit(f"every rank computed elementwise sum = {expected}")
    result.values["all_correct"] = all(
        v == expected and uniform for v, uniform in outs
    )
    return result
