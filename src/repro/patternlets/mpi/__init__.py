"""MPI patternlets: importing this package registers all of them."""

from . import collective, masterworker, pointtopoint, spmd, topology  # noqa: F401
from .spmd import SPMD_SCRIPT  # noqa: F401 - the Fig. 2 script text
