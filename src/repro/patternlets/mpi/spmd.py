"""MPI patternlets 0-2: SPMD, conditional master-worker split, sequential-order output.

``spmd`` is the paper's Fig. 2 patternlet (``00spmd.py`` in the Colab): one
program, N processes, interleaved greetings.
"""

from __future__ import annotations

from ...mpi import mpirun
from ..base import PatternletResult, register

#: The exact script shown in the paper's Fig. 2 Colab cell.
SPMD_SCRIPT = '''\
from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()             #number of the process running the code
    numProcesses = comm.Get_size()   #total number of processes running
    myHostName = MPI.Get_processor_name()  #machine name running the code

    print("Greetings from process {} of {} on {}"\\
        .format(id, numProcesses, myHostName))

########## Run the main function
main()
'''


@register(
    "spmd",
    "mpi",
    pattern="SPMD (Single Program, Multiple Data)",
    summary="The fundamental structure of every MPI program: N processes, one text.",
    order=0,
    concepts=("SPMD", "rank", "communicator size", "hostname"),
)
def spmd(np: int = 4, hostname: str = "d6ff4f902ed6") -> PatternletResult:
    """Every process greets with its rank — the Fig. 2 demonstration."""
    result = PatternletResult("spmd")

    def body(comm) -> str:
        line = (
            f"Greetings from process {comm.Get_rank()} of "
            f"{comm.Get_size()} on {comm.Get_processor_name()}"
        )
        result.emit(line)
        return line

    mpirun(body, np, hostname=hostname)
    result.values["np"] = np
    result.values["unique_ranks"] = len(set(result.trace)) == np
    return result


@register(
    "masterWorkerSplit",
    "mpi",
    pattern="Conditional SPMD (master vs. worker code paths)",
    summary="if rank == 0: master work; else: worker work — one text, two roles.",
    order=1,
    concepts=("conditional on rank", "master-worker roles"),
)
def master_worker_split(np: int = 4) -> PatternletResult:
    """Branching on rank turns one SPMD text into different roles."""
    result = PatternletResult("masterWorkerSplit")

    def body(comm) -> str:
        rank = comm.Get_rank()
        role = "Master" if rank == 0 else "Worker"
        line = f"{role} (rank {rank}) reporting"
        result.emit(line)
        return role

    roles = mpirun(body, np)
    result.values["roles"] = roles
    result.values["one_master"] = roles.count("Master") == 1
    result.values["workers"] = roles.count("Worker")
    return result


@register(
    "sequenceNumbers",
    "mpi",
    pattern="Rank-ordered output via gather",
    summary="Process output order is nondeterministic; gather to rank 0 to order it.",
    order=2,
    concepts=("nondeterministic interleaving", "gather for ordering"),
)
def sequence_numbers(np: int = 4) -> PatternletResult:
    """Contrast raw interleaving with deterministic gather-then-print."""
    result = PatternletResult("sequenceNumbers")

    def body(comm):
        rank = comm.Get_rank()
        lines = comm.gather(f"message from rank {rank}", root=0)
        if rank == 0:
            for line in lines:
                result.emit(line)
        return rank

    mpirun(body, np)
    expected = [f"message from rank {r}" for r in range(np)]
    result.values["ordered"] = result.trace == expected
    return result
