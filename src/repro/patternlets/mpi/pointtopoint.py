"""MPI patternlets 3-6: point-to-point messaging.

Send/receive pairs, the ring pipeline, tag-based selection, and the
deadlock demonstration (with its fix) — the message-passing core of the
Colab hour.
"""

from __future__ import annotations

from ...mpi import ANY_SOURCE, ANY_TAG, DeadlockError, Status, mpirun
from ..base import PatternletResult, register


@register(
    "sendReceive",
    "mpi",
    pattern="Send-Receive (message passing)",
    summary="Rank 0 sends a Python object; rank 1 receives it.",
    order=3,
    concepts=("blocking send", "blocking receive", "pickled objects"),
)
def send_receive(np: int = 2) -> PatternletResult:
    """The minimal two-process exchange from the mpi4py tutorial."""
    if np < 2:
        raise ValueError("sendReceive needs at least 2 processes")
    result = PatternletResult("sendReceive")

    def body(comm):
        rank = comm.Get_rank()
        if rank == 0:
            data = {"a": 7, "b": 3.14}
            comm.send(data, dest=1, tag=11)
            result.emit("rank 0 sent {'a': 7, 'b': 3.14}")
            return data
        if rank == 1:
            data = comm.recv(source=0, tag=11)
            result.emit(f"rank 1 received {data}")
            return data
        return None

    outs = mpirun(body, np)
    result.values["received_equals_sent"] = outs[0] == outs[1]
    return result


@register(
    "messagePassingRing",
    "mpi",
    pattern="Ring pipeline",
    summary="Each rank appends to a message and passes it around the ring.",
    order=4,
    concepts=("pipeline", "neighbor communication", "modulo ring"),
)
def ring(np: int = 4) -> PatternletResult:
    """A token circulates 0 -> 1 -> ... -> N-1 -> 0, growing at each hop."""
    result = PatternletResult("messagePassingRing")

    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        right = (rank + 1) % size
        left = (rank - 1) % size
        if rank == 0:
            comm.send([0], dest=right, tag=4)
            token = comm.recv(source=left, tag=4)
            result.emit(f"token returned to rank 0: {token}")
            return token
        token = comm.recv(source=left, tag=4)
        token.append(rank)
        comm.send(token, dest=right, tag=4)
        return None

    outs = mpirun(body, np)
    result.values["token"] = outs[0]
    result.values["visited_all"] = outs[0] == list(range(np))
    return result


@register(
    "messageTags",
    "mpi",
    pattern="Tag-selective receives",
    summary="Tags let a receiver demultiplex kinds of messages.",
    order=5,
    concepts=("tags", "selective receive", "MPI_ANY_TAG", "Status"),
)
def tags(np: int = 2) -> PatternletResult:
    """Rank 0 sends two differently tagged messages; rank 1 receives the
    *second-sent tag first*, proving matching is by tag, not arrival."""
    if np < 2:
        raise ValueError("messageTags needs at least 2 processes")
    result = PatternletResult("messageTags")
    TAG_WORK, TAG_STOP = 1, 2

    def body(comm):
        rank = comm.Get_rank()
        if rank == 0:
            comm.send("work item", dest=1, tag=TAG_WORK)
            comm.send("stop now", dest=1, tag=TAG_STOP)
            return None
        if rank == 1:
            status = Status()
            stop = comm.recv(source=0, tag=TAG_STOP, status=status)
            result.emit(f"got tag {status.Get_tag()}: {stop!r}")
            work = comm.recv(source=0, tag=TAG_WORK, status=status)
            result.emit(f"got tag {status.Get_tag()}: {work!r}")
            return (stop, work)
        return None

    outs = mpirun(body, np)
    result.values["out_of_order_ok"] = outs[1] == ("stop now", "work item")
    return result


@register(
    "deadlock",
    "mpi",
    pattern="Deadlock (and how to break it)",
    summary="Two ranks that both receive first wait forever; reordering fixes it.",
    order=6,
    concepts=("deadlock", "blocking semantics", "communication ordering"),
)
def deadlock(np: int = 2, fixed: bool = False, timeout: float = 5.0) -> PatternletResult:
    """Run the broken exchange (detected and reported) or the fixed one."""
    if np < 2 or np % 2:
        raise ValueError("deadlock patternlet needs an even process count >= 2")
    result = PatternletResult("deadlock")

    def broken(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        partner = rank ^ 1
        # Everyone receives first: nobody ever reaches their send.  The
        # deadlock is the lesson, so pdclint's symmetric-deadlock rule is
        # suppressed here on purpose.
        incoming = comm.recv(source=partner, tag=7)  # pdclint: disable=PDC103
        comm.send(f"hello from {rank}", dest=partner, tag=7)
        return incoming

    def repaired(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        partner = rank ^ 1
        if rank % 2 == 0:  # evens send first, odds receive first
            comm.send(f"hello from {rank}", dest=partner, tag=7)
            incoming = comm.recv(source=partner, tag=7)
        else:
            incoming = comm.recv(source=partner, tag=7)
            comm.send(f"hello from {rank}", dest=partner, tag=7)
        return incoming

    if fixed:
        outs = mpirun(repaired, np)
        result.emit("fixed ordering completed the exchange")
        result.values["deadlocked"] = False
        result.values["exchanged"] = all(
            outs[r] == f"hello from {r ^ 1}" for r in range(np)
        )
    else:
        try:
            mpirun(broken, np, deadlock_timeout=timeout)
            result.values["deadlocked"] = False  # pragma: no cover - never happens
        except DeadlockError as exc:
            result.emit(f"deadlock detected: {exc}")
            result.values["deadlocked"] = True
    return result
