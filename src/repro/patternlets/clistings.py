"""C/OpenMP source listings for the shared-memory patternlets.

On the Raspberry Pi, learners compile and run *C* patternlets (OpenMP is a
C/C++ pragma API); the Python implementations in this package demonstrate
the same semantics runnable anywhere.  This module carries the C text of
each patternlet in the CSinParallel style, so the handout can show the
code the learner will type while the activity checks run in Python.

Every listing's ``#pragma omp`` directives are parsed by pdclint's pragma
parser (:mod:`repro.analysis.lint.cpragma`); ``repro lint clistings`` is
the consistency gate that keeps this table in step with the registry.
"""

from __future__ import annotations

__all__ = ["c_listing", "has_c_listing", "C_LISTINGS"]

_PREAMBLE = "#include <stdio.h>\n#include <omp.h>\n\n"

C_LISTINGS: dict[str, str] = {
    "spmd": _PREAMBLE
    + """int main() {
    #pragma omp parallel
    {
        int id = omp_get_thread_num();
        int numThreads = omp_get_num_threads();
        printf("Hello from thread %d of %d\\n", id, numThreads);
    }
    return 0;
}
""",
    "forkjoin": _PREAMBLE
    + """int main() {
    printf("Before...\\n");
    #pragma omp parallel
    {
        printf("During: thread %d\\n", omp_get_thread_num());
    }
    printf("After\\n");
    return 0;
}
""",
    "private": _PREAMBLE
    + """int main() {
    int id = -1;                     /* shared unless declared private */
    #pragma omp parallel private(id)
    {
        id = omp_get_thread_num();   /* each thread has its own id */
        printf("thread %d squared: %d\\n", id, id * id);
    }
    return 0;
}
""",
    "race": _PREAMBLE
    + """int main() {
    const int REPS = 1000000;
    int balance = 0;
    #pragma omp parallel for
    for (int i = 0; i < REPS; i++) {
        balance = balance + 1;       /* unprotected read-modify-write! */
    }
    printf("expected %d, got %d\\n", REPS, balance);
    return 0;
}
""",
    "critical": _PREAMBLE
    + """int main() {
    const int REPS = 1000000;
    int balance = 0;
    #pragma omp parallel for
    for (int i = 0; i < REPS; i++) {
        #pragma omp critical
        { balance = balance + 1; }   /* one thread at a time */
    }
    printf("expected %d, got %d\\n", REPS, balance);
    return 0;
}
""",
    "atomic": _PREAMBLE
    + """int main() {
    const int REPS = 1000000;
    int balance = 0;
    #pragma omp parallel for
    for (int i = 0; i < REPS; i++) {
        #pragma omp atomic
        balance++;                   /* indivisible update */
    }
    printf("expected %d, got %d\\n", REPS, balance);
    return 0;
}
""",
    "reduction": _PREAMBLE
    + """int main() {
    const int N = 1000000;
    long sum = 0;
    #pragma omp parallel for reduction(+:sum)
    for (int i = 1; i <= N; i++) {
        sum += i;                    /* private partials, combined at join */
    }
    printf("sum(1..%d) = %ld\\n", N, sum);
    return 0;
}
""",
    "forEqualChunks": _PREAMBLE
    + """int main() {
    const int REPS = 16;
    #pragma omp parallel for schedule(static)
    for (int i = 0; i < REPS; i++) {
        printf("thread %d got iteration %d\\n", omp_get_thread_num(), i);
    }
    return 0;
}
""",
    "forChunksOf1": _PREAMBLE
    + """int main() {
    const int REPS = 16;
    #pragma omp parallel for schedule(static,1)
    for (int i = 0; i < REPS; i++) {
        printf("thread %d got iteration %d\\n", omp_get_thread_num(), i);
    }
    return 0;
}
""",
    "forDynamic": _PREAMBLE
    + """int main() {
    const int REPS = 24;
    #pragma omp parallel for schedule(dynamic,2)
    for (int i = 0; i < REPS; i++) {
        printf("thread %d grabbed iteration %d\\n", omp_get_thread_num(), i);
    }
    return 0;
}
""",
    "barrier": _PREAMBLE
    + """int main() {
    #pragma omp parallel
    {
        int id = omp_get_thread_num();
        printf("phase 1: thread %d\\n", id);
        #pragma omp barrier
        printf("phase 2: thread %d\\n", id);
    }
    return 0;
}
""",
    "masterSingle": _PREAMBLE
    + """int main() {
    #pragma omp parallel
    {
        #pragma omp master
        { printf("master is thread %d\\n", omp_get_thread_num()); }
        #pragma omp single
        { printf("single ran on thread %d\\n", omp_get_thread_num()); }
    }
    return 0;
}
""",
    "sections": _PREAMBLE
    + """int main() {
    #pragma omp parallel sections
    {
        #pragma omp section
        { printf("section A on thread %d\\n", omp_get_thread_num()); }
        #pragma omp section
        { printf("section B on thread %d\\n", omp_get_thread_num()); }
    }
    return 0;
}
""",
    "tasks": _PREAMBLE
    + """long fib(int n) {
    if (n < 2) return n;
    long x, y;
    #pragma omp task shared(x)
    x = fib(n - 1);
    y = fib(n - 2);
    #pragma omp taskwait
    return x + y;
}

int main() {
    long result;
    #pragma omp parallel
    {
        #pragma omp single
        result = fib(20);
    }
    printf("fib(20) = %ld\\n", result);
    return 0;
}
""",
}


def has_c_listing(name: str) -> bool:
    """Whether a shared-memory patternlet ships a C handout listing."""
    return name in C_LISTINGS


def c_listing(name: str) -> str:
    """The C/OpenMP source of one shared-memory patternlet."""
    try:
        return C_LISTINGS[name]
    except KeyError:
        raise KeyError(
            f"no C listing for patternlet {name!r}; available: "
            f"{sorted(C_LISTINGS)}"
        ) from None
