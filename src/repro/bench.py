"""``repro bench`` — wall-clock benchmarks with a regression gate.

The handout's closing benchmarking study measures *simulated* platforms;
this module measures the real ones: a small registry of sequential and
parallel kernels drawn from the exemplars, timed with warmup/repeat
control, written as schema-versioned JSON under ``benchmarks/results/``,
and compared against a committed baseline with a configurable threshold so
CI can fail on performance regressions.

Cross-machine comparability
---------------------------
Absolute seconds measured on a contributor's laptop mean nothing next to
seconds measured on a CI runner.  Every run therefore also times a fixed
pure-Python *calibration* loop and stores each benchmark as a multiple of
it (``normalized = time_s / calibration_s``).  The regression gate
compares normalized values, so "this kernel got 40% slower relative to
the interpreter itself" survives a hardware change; absolute times are
kept alongside for humans.
"""

from __future__ import annotations

import atexit
import json
import os
import platform as _platform
import sys
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Callable

from .mpi.serial import reset_serialized, serialized_totals
from .platforms.speedup import measure_wall_time

__all__ = [
    "SCHEMA_VERSION",
    "NOISE_FLOOR_S",
    "BenchSpec",
    "REGISTRY",
    "bench_names",
    "calibrate",
    "run_benchmarks",
    "compare_results",
    "format_comparison",
    "baseline_delta",
    "serialization_report",
    "default_results_path",
    "DEFAULT_BASELINE",
    "DEFAULT_THRESHOLD",
]

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Regression gate: fail when a benchmark is this much slower than baseline.
DEFAULT_THRESHOLD = 0.30

#: Timings where both sides sit under this many seconds never gate: at
#: sub-5ms scale the best-of-repeat minimum is dominated by interpreter
#: and scheduler jitter, so a ratio there is noise, not a regression.
#: (Quick smoke runs keep several kernels under the floor by design; the
#: full problem sizes put every kernel well above it.)
NOISE_FLOOR_S = 0.005

#: Committed reference results (repo-relative).
DEFAULT_BASELINE = Path("benchmarks") / "baseline.json"


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BenchSpec:
    """One registered benchmark.

    ``make(quick, backend)`` returns the zero-argument thunk to time;
    ``quick`` selects the smaller problem size for CI smoke runs, and
    ``backend`` is threaded through to the parallel kernels (sequential
    ones ignore it).
    """

    name: str
    group: str
    make: Callable[[bool, str], Callable[[], Any]]


def _integration_seq(quick: bool, _backend: str) -> Callable[[], Any]:
    from .exemplars.integration import integrate_seq, quarter_circle

    n = 20_000 if quick else 200_000
    return lambda: integrate_seq(quarter_circle, 0.0, 2.0, n)


def _integration_omp(quick: bool, backend: str) -> Callable[[], Any]:
    from .exemplars.integration import integrate_omp

    n = 20_000 if quick else 200_000
    workers = min(4, os.cpu_count() or 1)
    return lambda: integrate_omp(n, num_threads=workers, backend=backend)


def _drugdesign_seq(quick: bool, _backend: str) -> Callable[[], Any]:
    from .exemplars.drugdesign import generate_ligands, run_seq

    ligands = generate_ligands(60 if quick else 400, max_len=24, seed=42)
    return lambda: run_seq(ligands)


def _drugdesign_omp(quick: bool, backend: str) -> Callable[[], Any]:
    from .exemplars.drugdesign import generate_ligands, run_omp

    ligands = generate_ligands(60 if quick else 400, max_len=24, seed=42)
    workers = min(4, os.cpu_count() or 1)
    return lambda: run_omp(
        ligands, num_threads=workers, schedule="dynamic", chunk=8, backend=backend
    )


def _heat_seq(quick: bool, _backend: str) -> Callable[[], Any]:
    from .exemplars.heat import heat_seq

    n, steps = (400, 100) if quick else (2_000, 400)
    return lambda: heat_seq(n, steps)


def _heat_omp(quick: bool, backend: str) -> Callable[[], Any]:
    from .exemplars.heat import heat_omp

    n, steps = (400, 100) if quick else (2_000, 400)
    workers = min(4, os.cpu_count() or 1)
    return lambda: heat_omp(n, steps, num_threads=workers, backend=backend)


def _sorting_blocks(quick: bool, backend: str) -> Callable[[], Any]:
    import random

    from .exemplars.sorting import merge_sort_blocks

    rng = random.Random(2021)
    values = [rng.random() for _ in range(5_000 if quick else 50_000)]
    workers = min(4, os.cpu_count() or 1)
    return lambda: merge_sort_blocks(values, num_workers=workers, backend=backend)


def _sorting_blocks_vector(quick: bool, backend: str) -> Callable[[], Any]:
    """The block sort with the ``np.sort`` chunk kernel (same input)."""
    import random

    from .exemplars.sorting import merge_sort_blocks

    rng = random.Random(2021)
    values = [rng.random() for _ in range(5_000 if quick else 50_000)]
    workers = min(4, os.cpu_count() or 1)
    return lambda: merge_sort_blocks(
        values, num_workers=workers, backend=backend, kernel="vector"
    )


def _forestfire_omp(quick: bool, backend: str) -> Callable[[], Any]:
    """The fire sweep with the batched (vectorized) trial stepper."""
    from .exemplars.forestfire import DEFAULT_PROBS, fire_curve_omp

    probs = (0.3, 0.6) if quick else DEFAULT_PROBS
    trials, size = (4, 15) if quick else (10, 25)
    workers = min(4, os.cpu_count() or 1)
    return lambda: fire_curve_omp(
        probs,
        trials=trials,
        size=size,
        num_threads=workers,
        backend=backend,
        kernel="vector",
    )


def _pingpong_obj_body(comm, count: int, iters: int):
    import numpy as np

    rank = comm.Get_rank()
    payload = np.arange(count, dtype=np.float64)
    for _ in range(iters):
        if rank == 0:
            comm.send(payload, dest=1, tag=0)
            payload = comm.recv(source=1, tag=1)
        else:
            payload = comm.recv(source=0, tag=0)
            comm.send(payload, dest=0, tag=1)
    return None


def _pingpong_buf_body(comm, count: int, iters: int):
    import numpy as np

    rank = comm.Get_rank()
    buf = np.arange(count, dtype=np.float64)
    for _ in range(iters):
        if rank == 0:
            comm.Send(buf, dest=1, tag=0)
            comm.Recv(buf, source=1, tag=1)
        else:
            comm.Recv(buf, source=0, tag=0)
            comm.Send(buf, dest=0, tag=1)
    return None


def _mpi_pingpong_obj(quick: bool, backend: str) -> Callable[[], Any]:
    """Two-rank pingpong through the lowercase (pickling) verbs."""
    from .mpi import mpirun

    count, iters = (4_096, 10) if quick else (65_536, 50)
    return lambda: mpirun(
        _pingpong_obj_body, 2, count, iters, backend=backend
    )


def _mpi_pingpong_buf(quick: bool, backend: str) -> Callable[[], Any]:
    """Two-rank pingpong through the uppercase (zero-pickle) buffer verbs.

    The contrast with ``mpi_pingpong_obj`` *is* the data-path study: same
    traffic, but the typed path moves bytes without serializing — the
    per-kernel ``pickled_bytes`` counter in the results pins it at zero.
    """
    from .mpi import mpirun

    count, iters = (4_096, 10) if quick else (65_536, 50)
    return lambda: mpirun(
        _pingpong_buf_body, 2, count, iters, backend=backend
    )


def _allreduce_body(comm, count: int, iters: int):
    import numpy as np

    total = np.empty(count, dtype=np.float64)
    local = np.full(count, float(comm.Get_rank() + 1))
    for _ in range(iters):
        comm.Allreduce(local, total)
    return float(total[0])


def _allreduce_buf(quick: bool, backend: str) -> Callable[[], Any]:
    """Four-rank buffer Allreduce (the collectives' typed data path)."""
    from .mpi import mpirun

    count, iters = (4_096, 5) if quick else (65_536, 20)
    return lambda: mpirun(_allreduce_body, 4, count, iters, backend=backend)


def _allreduce_ring_body(comm, count: int, iters: int):
    import numpy as np

    total = np.empty(count, dtype=np.float64)
    local = np.full(count, float(comm.Get_rank() + 1))
    for _ in range(iters):
        comm.Allreduce(local, total, algorithm="ring")
    return float(total[0])


def _allreduce_ring(quick: bool, backend: str) -> Callable[[], Any]:
    """Four-rank chunked ring Allreduce — the bandwidth-optimal schedule.

    Forces ``algorithm="ring"`` so the reduce-scatter + allgather path is
    pinned regardless of what the cost model would auto-pick at this size.
    """
    from .mpi import mpirun

    count, iters = (4_096, 5) if quick else (65_536, 20)
    return lambda: mpirun(
        _allreduce_ring_body, 4, count, iters, backend=backend
    )


def _bcast_binomial_body(comm, count: int, iters: int):
    import numpy as np

    buf = np.arange(count, dtype=np.float64)
    for _ in range(iters):
        comm.Bcast(buf, 0, algorithm="binomial")
    return float(buf[-1])


def _bcast_binomial_buf(quick: bool, backend: str) -> Callable[[], Any]:
    """Four-rank binomial-tree buffer Bcast (log-depth fan-out)."""
    from .mpi import mpirun

    count, iters = (4_096, 5) if quick else (65_536, 20)
    return lambda: mpirun(
        _bcast_binomial_body, 4, count, iters, backend=backend
    )


def _hooks_off(quick: bool, _backend: str) -> Callable[[], Any]:
    """Instrumentation-off overhead guard: the hook fast path in a hot loop.

    Times the exact pattern every instrumented call site uses — an
    ``enabled`` check guarding an ``emit`` — with no observers attached.
    The regression gate on this kernel keeps tracing free when off.
    """
    from .openmp import hooks

    n = 20_000 if quick else 200_000

    def spin() -> int:
        enabled_check = hooks
        emit = hooks.emit
        count = 0
        for _ in range(n):
            if enabled_check.enabled:
                emit("read", 0, None)
            count += 1
        return count

    return spin


def _lint_corpus(quick: bool, _backend: str) -> Callable[[], Any]:
    """Flow-sensitive pdclint over the patternlet corpus.

    Exercises the whole static pipeline — CFG construction, the dataflow
    worklist, MHP lock tracking, and the MPI protocol simulation — so the
    regression gate catches superlinear blowups in any of them.
    """
    from .analysis.lint import lint_path

    corpus = Path(__file__).parent / "patternlets"
    targets = (
        [corpus / "mpi" / "pointtopoint.py", corpus / "openmp" / "race.py"]
        if quick
        else [corpus]
    )

    def run() -> int:
        total = 0
        for target in targets:
            report = lint_path(target)
            total += len(report.diagnostics) + len(report.suppressed)
        return total

    return run


def _lint_corpus_parallel(quick: bool, _backend: str) -> Callable[[], Any]:
    """Warm-cache corpus lint through the parallel incremental driver.

    ``make`` pre-populates a content-hash cache (the cold lint happens
    outside the timed region); the timed thunk re-lints the unchanged
    corpus with ``--jobs``-style fan-out, so what's measured is the
    incremental path — hashing, cache reads, and the deterministic
    merge.  The regression gate keeps warm re-lints cheap relative to
    the full ``lint_corpus`` kernel.
    """
    import shutil
    import tempfile

    from .analysis.scale.driver import lint_corpus

    corpus = Path(__file__).parent / "patternlets"
    paths = (
        [corpus / "mpi" / "pointtopoint.py", corpus / "openmp" / "race.py"]
        if quick
        else [corpus]
    )
    cache_dir = Path(tempfile.mkdtemp(prefix="pdclint-bench-"))
    atexit.register(shutil.rmtree, cache_dir, ignore_errors=True)
    jobs = min(4, os.cpu_count() or 1)
    lint_corpus(paths, jobs=jobs, cache_dir=cache_dir)  # cold fill

    def run() -> int:
        result = lint_corpus(paths, jobs=jobs, cache_dir=cache_dir)
        return len(result.report.diagnostics) + result.cache_hits

    return run


def _serve_app():
    """A course app sized for benchmarking: no metrics provider leak,
    admission bounds wide enough that the kernels measure the service,
    not deliberate shedding."""
    from .serve import CourseApp

    return CourseApp(metrics_name=None, max_inflight=16, max_queue=256)


def _course_serve_read(quick: bool, _backend: str) -> Callable[[], Any]:
    """Hot-path module reads through the full middleware stack.

    The app is built (and the cache warmed) outside the timed region, so
    what's measured is routing + cache hit + JSON envelope per request —
    the latency every learner pays on every page view.
    """
    from .serve.asgi import Client

    n = 300 if quick else 3_000
    app = _serve_app()
    client = Client(app)
    target = "/m/raspberry-pi-handout?format=html"
    client.get(target)  # warm the rendered-module cache

    def run() -> int:
        ok = 0
        for _ in range(n):
            ok += client.get(target).status == 200
        return ok

    return run


def _course_serve_submit(quick: bool, _backend: str) -> Callable[[], Any]:
    """Answer grading + journaling through the submit route."""
    from .serve.asgi import Client

    n = 150 if quick else 1_500
    app = _serve_app()
    client = Client(app)
    client.post("/join/PI2020", json_body={"learner": "bench-learner"})
    cohort = app.registry.cohort("pi-2020")
    activity = cohort.module.all_questions()[0].activity_id
    body = {
        "cohort": "pi-2020",
        "learner": "bench-learner",
        "activity_id": activity,
        "answer": "A",
    }

    def run() -> int:
        ok = 0
        for _ in range(n):
            ok += client.post(
                f"/m/{cohort.module.slug}/submit", json_body=body
            ).status == 200
        return ok

    return run


def _course_serve_load(quick: bool, _backend: str) -> Callable[[], Any]:
    """The closed-loop learner lifecycle at bench scale.

    Enroll → read → answer → grade across both demo cohorts with worker
    threads — the serving layer measured as a PDC workload.  Each timed
    run uses a fresh app so enrollment cost is paid identically every
    repeat.
    """
    from .serve.load import run_load

    learners = 40 if quick else 400
    workers = min(4, os.cpu_count() or 1)

    def run() -> int:
        app = _serve_app()
        report = run_load(
            app, learners=learners, workers=workers, gradebook_every=25
        )
        app.close()
        if report.errors:  # pragma: no cover - hard failure, not a timing
            raise RuntimeError(f"serve load hit {report.errors} errors")
        return report.requests

    return run


REGISTRY: tuple[BenchSpec, ...] = (
    BenchSpec("integration_seq", "integration", _integration_seq),
    BenchSpec("integration_omp", "integration", _integration_omp),
    BenchSpec("drugdesign_seq", "drugdesign", _drugdesign_seq),
    BenchSpec("drugdesign_omp", "drugdesign", _drugdesign_omp),
    BenchSpec("heat_seq", "heat", _heat_seq),
    BenchSpec("heat_omp", "heat", _heat_omp),
    BenchSpec("sorting_blocks", "sorting", _sorting_blocks),
    BenchSpec("sorting_blocks_vector", "sorting", _sorting_blocks_vector),
    BenchSpec("forestfire_omp", "forestfire", _forestfire_omp),
    BenchSpec("mpi_pingpong_obj", "mpi", _mpi_pingpong_obj),
    BenchSpec("mpi_pingpong_buf", "mpi", _mpi_pingpong_buf),
    BenchSpec("allreduce_buf", "mpi", _allreduce_buf),
    BenchSpec("allreduce_ring", "mpi", _allreduce_ring),
    BenchSpec("bcast_binomial_buf", "mpi", _bcast_binomial_buf),
    BenchSpec("hooks_off", "obs", _hooks_off),
    BenchSpec("lint_corpus", "analysis", _lint_corpus),
    BenchSpec("lint_corpus_parallel", "analysis", _lint_corpus_parallel),
    BenchSpec("course_serve_read", "serve", _course_serve_read),
    BenchSpec("course_serve_submit", "serve", _course_serve_submit),
    BenchSpec("course_serve_load", "serve", _course_serve_load),
)


def bench_names() -> list[str]:
    return [spec.name for spec in REGISTRY]


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def calibrate(scale: int = 200_000) -> float:
    """Seconds for a fixed pure-Python reference loop (machine yardstick)."""

    def spin() -> int:
        total = 0
        for i in range(scale):
            total += i * i
        return total

    # The yardstick divides every normalized value, so noise here taints
    # the whole document: take the best of more repeats than the kernels
    # themselves get (still well under 100 ms total).
    return measure_wall_time(spin, warmup=2, repeat=7)


def run_benchmarks(
    names: list[str] | None = None,
    *,
    quick: bool = False,
    warmup: int = 1,
    repeat: int = 3,
    backend: str = "threads",
) -> dict[str, Any]:
    """Time the selected benchmarks; return the schema-versioned document."""
    selected = list(REGISTRY)
    if names:
        by_name = {spec.name: spec for spec in REGISTRY}
        unknown = [n for n in names if n not in by_name]
        if unknown:
            raise KeyError(
                f"unknown benchmark(s) {unknown}; known: {bench_names()}"
            )
        selected = [by_name[n] for n in names]
    calibration_s = calibrate()
    results: dict[str, Any] = {}
    for spec in selected:
        thunk = spec.make(quick, backend)
        # Per-kernel serialization accounting: the MPI transport counts
        # every pickle it performs (including ranks forked by the
        # processes backend, whose totals are merged back); resetting
        # around the timed region attributes the traffic to this kernel.
        reset_serialized()
        time_s = measure_wall_time(thunk, warmup=warmup, repeat=repeat)
        serialized = serialized_totals()
        results[spec.name] = {
            "group": spec.group,
            "time_s": time_s,
            "normalized": time_s / calibration_s,
            "pickle_calls": serialized["pickle_calls"],
            "pickled_bytes": serialized["pickled_bytes"],
        }
    return {
        "schema": SCHEMA_VERSION,
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "quick": quick,
        "warmup": warmup,
        "repeat": repeat,
        "backend": backend,
        "python": _platform.python_version(),
        "platform": _platform.platform(),
        "cpu_count": os.cpu_count(),
        "calibration_s": calibration_s,
        "benchmarks": results,
    }


def default_results_path(quick: bool) -> Path:
    return Path("benchmarks") / "results" / (
        "bench-quick.json" if quick else "bench-full.json"
    )


def serialization_report(doc: dict[str, Any]) -> dict[str, Any]:
    """The bytes-serialized report CI publishes next to the timings.

    One row per benchmark: how many pickles the MPI transport performed
    and how many bytes they produced, plus the ``zero_copy`` verdict the
    buffer-path benchmarks are expected to hit (no pickled bytes at all).
    """
    rows = {
        name: {
            "pickle_calls": row.get("pickle_calls", 0),
            "pickled_bytes": row.get("pickled_bytes", 0),
            "zero_copy": row.get("pickled_bytes", 0) == 0,
        }
        for name, row in doc.get("benchmarks", {}).items()
    }
    return {
        "schema": SCHEMA_VERSION,
        "created": doc.get("created"),
        "backend": doc.get("backend"),
        "total_pickled_bytes": sum(r["pickled_bytes"] for r in rows.values()),
        "benchmarks": rows,
    }


# ---------------------------------------------------------------------------
# Baseline comparison
# ---------------------------------------------------------------------------

def compare_results(
    current: dict[str, Any],
    baseline: dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
    noise_floor_s: float = NOISE_FLOOR_S,
) -> tuple[list[dict[str, Any]], bool]:
    """Compare normalized timings; return (rows, any_regression).

    A benchmark regresses when ``current/baseline > 1 + threshold``.
    Benchmarks present on only one side are reported but never gate, and
    neither do ones where both sides run under ``noise_floor_s`` seconds
    (status ``negligible``): ratios of sub-floor timings measure jitter.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    if baseline.get("schema") != current.get("schema"):
        raise ValueError(
            f"schema mismatch: baseline {baseline.get('schema')!r} "
            f"vs current {current.get('schema')!r} — refresh the baseline"
        )
    base = baseline.get("benchmarks", {})
    rows: list[dict[str, Any]] = []
    regression = False
    for name, cur in current.get("benchmarks", {}).items():
        ref = base.get(name)
        if ref is None:
            rows.append({"name": name, "status": "new", "ratio": None})
            continue
        ratio = cur["normalized"] / ref["normalized"]
        status = "ok"
        if cur["time_s"] < noise_floor_s and ref["time_s"] < noise_floor_s:
            status = "negligible"
        elif ratio > 1.0 + threshold:
            status = "regression"
            regression = True
        elif ratio < 1.0 / (1.0 + threshold):
            status = "improved"
        rows.append(
            {
                "name": name,
                "status": status,
                "ratio": ratio,
                "current_s": cur["time_s"],
                "baseline_s": ref["time_s"],
            }
        )
    for name in base:
        if name not in current.get("benchmarks", {}):
            rows.append({"name": name, "status": "missing", "ratio": None})
    return rows, regression


def baseline_delta(current: dict[str, Any], previous: dict[str, Any]) -> str:
    """Kernel-set delta printed by ``--update-baseline``.

    Newly added kernels (like a fresh ``course_serve_*`` family) and
    kernels that vanished are easy to miss in a wall-of-JSON rewrite;
    this one-liner makes the set change reviewable in the command output.
    """
    now = set(current.get("benchmarks", {}))
    before = set(previous.get("benchmarks", {}))
    added = sorted(now - before)
    removed = sorted(before - now)
    parts = []
    if added:
        parts.append(f"+{len(added)} new: {', '.join(added)}")
    if removed:
        parts.append(f"-{len(removed)} removed: {', '.join(removed)}")
    return f" ({'; '.join(parts)})" if parts else " (same kernel set)"


def format_comparison(rows: list[dict[str, Any]], threshold: float) -> str:
    lines = [
        f"baseline comparison (gate: >{100 * threshold:.0f}% slower, normalized)",
        f"{'benchmark':<20} {'status':<11} {'ratio':>7} {'now (s)':>10} {'base (s)':>10}",
    ]
    for row in rows:
        ratio = "-" if row["ratio"] is None else f"{row['ratio']:.2f}x"
        now = f"{row['current_s']:.4f}" if "current_s" in row else "-"
        base = f"{row['baseline_s']:.4f}" if "baseline_s" in row else "-"
        lines.append(
            f"{row['name']:<20} {row['status']:<11} {ratio:>7} {now:>10} {base:>10}"
        )
    return "\n".join(lines)


def main(args) -> int:  # pragma: no cover - exercised via cli tests
    """Entry point for ``repro bench`` (argparse namespace from the CLI)."""
    if args.list_benches:
        for spec in REGISTRY:
            print(f"{spec.group:12s} {spec.name}")
        return 0
    if args.update_baseline and args.quick and not getattr(
        args, "allow_quick_baseline", False
    ):
        print(
            "refusing to update the baseline from a --quick run: smoke-sized "
            "timings are too noisy to gate against.  Re-run without --quick, "
            "or pass --allow-quick-baseline if a quick baseline is really "
            "what you want (e.g. for the CI smoke gate).",
            file=sys.stderr,
        )
        return 2
    try:
        doc = run_benchmarks(
            args.names or None,
            quick=args.quick,
            warmup=args.warmup,
            repeat=args.repeat,
            backend=args.backend,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    out = Path(args.out) if args.out else default_results_path(args.quick)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(doc, indent=2) + "\n")
    for name, row in doc["benchmarks"].items():
        print(f"{name:<20} {row['time_s']:>10.4f} s  ({row['normalized']:.2f}x cal)")
    print(f"\nresults written to {out}")

    if getattr(args, "serialization_report", None):
        report_path = Path(args.serialization_report)
        report_path.parent.mkdir(parents=True, exist_ok=True)
        report_path.write_text(
            json.dumps(serialization_report(doc), indent=2) + "\n"
        )
        print(f"serialization report written to {report_path}")

    if getattr(args, "trace", False):
        from .obs import build_profile, record, write_chrome_trace

        by_name = {spec.name: spec for spec in REGISTRY}
        for name in doc["benchmarks"]:
            thunk = by_name[name].make(args.quick, args.backend)
            with record() as rec:
                thunk()
            profile = build_profile(rec.events(), dropped=rec.dropped)
            trace_path = out.parent / f"trace-{name}.json"
            write_chrome_trace(trace_path, profile)
            print(f"chrome trace written to {trace_path}")

    baseline_path = Path(args.baseline) if args.baseline else DEFAULT_BASELINE
    if args.update_baseline:
        delta = ""
        if baseline_path.exists():
            try:
                previous = json.loads(baseline_path.read_text())
            except ValueError:
                previous = {}
            delta = baseline_delta(doc, previous)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"baseline updated at {baseline_path}{delta}")
        return 0
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}; skipping the regression gate")
        return 0
    baseline = json.loads(baseline_path.read_text())
    for knob in ("backend", "quick"):
        if baseline.get(knob) != doc[knob]:
            print(
                f"baseline was recorded with {knob}={baseline.get(knob)!r} but "
                f"this run used {knob}={doc[knob]!r}; not comparable — "
                "skipping the regression gate"
            )
            return 0
    try:
        rows, regression = compare_results(doc, baseline, args.threshold)
    except ValueError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print()
    print(format_comparison(rows, args.threshold))
    if regression:
        print("\nFAIL: performance regression vs baseline", file=sys.stderr)
        return 3
    print("\nOK: no regression vs baseline")
    return 0
