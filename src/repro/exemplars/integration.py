"""Numerical-integration exemplar (trapezoidal rule).

This is the first of the two OpenMP exemplars closing the shared-memory
module: estimate pi by integrating ``f(x) = sqrt(4 - x^2)`` over ``[0, 2]``
(a quarter circle of radius 2, area pi) with the composite trapezoidal
rule, then parallelize the sum three ways — OpenMP-style threads, MPI
block decomposition, and vectorized NumPy — and run the benchmarking
study the handout's last half hour asks for.
"""

from __future__ import annotations

import functools
import math
from typing import Callable

import numpy as np

from ..mpi import mpirun
from ..openmp import parallel_for_chunks
from ..platforms.simclock import Workload
from .kernels import resolve_kernel

__all__ = [
    "quarter_circle",
    "quarter_circle_np",
    "integrate_seq",
    "integrate_numpy",
    "integrate_omp",
    "integrate_mpi",
    "integration_workload",
    "trapezoid_chunk",
    "trapezoid_chunk_vector",
]


def quarter_circle(x: float) -> float:
    """The handout's integrand: ``sqrt(4 - x^2)``; its integral on [0,2] is pi."""
    return math.sqrt(max(0.0, 4.0 - x * x))


def quarter_circle_np(x: np.ndarray) -> np.ndarray:
    """Array form of :func:`quarter_circle` for the vectorized kernel."""
    return np.sqrt(np.maximum(0.0, 4.0 - x * x))


def integrate_seq(
    f: Callable[[float], float], a: float, b: float, n: int
) -> float:
    """Composite trapezoidal rule with ``n`` trapezoids (the C exemplar's loop)."""
    if n < 1:
        raise ValueError(f"need at least one trapezoid, got {n}")
    if b < a:
        raise ValueError(f"invalid interval [{a}, {b}]")
    h = (b - a) / n
    total = 0.5 * (f(a) + f(b))
    for i in range(1, n):
        total += f(a + i * h)
    return total * h


def integrate_numpy(
    f: Callable[[np.ndarray], np.ndarray] | None, a: float, b: float, n: int
) -> float:
    """Vectorized trapezoid — the "fast serial baseline" the guides push for.

    ``f`` must accept an ndarray; ``None`` selects the quarter-circle.
    """
    if n < 1:
        raise ValueError(f"need at least one trapezoid, got {n}")
    x = np.linspace(a, b, n + 1)
    y = np.sqrt(np.maximum(0.0, 4.0 - x * x)) if f is None else f(x)
    return float(np.trapezoid(y, x))


def trapezoid_chunk(
    a: float, h: float, f: Callable[[float], float], lo: int, hi: int
) -> float:
    """Chunk kernel: sum of interior trapezoid terms for indices [lo, hi).

    Module-level so both execution backends drive the same code — the
    process backend ships it to pool workers by pickle.
    """
    return sum(f(a + (i + 1) * h) for i in range(lo, hi))


def trapezoid_chunk_vector(
    a: float, h: float, f: Callable[[float], float], lo: int, hi: int
) -> float:
    """Vectorized chunk kernel: one array evaluation for indices [lo, hi).

    The quarter-circle integrand maps to :func:`quarter_circle_np`; any
    other ``f`` is applied to the abscissa array directly and must accept
    ndarrays (as :func:`integrate_numpy` already requires).
    """
    if hi <= lo:
        return 0.0
    x = a + np.arange(lo + 1, hi + 1, dtype=np.float64) * h
    fv = quarter_circle_np if f is quarter_circle else f
    return float(np.sum(fv(x)))


def integrate_omp(
    n: int,
    num_threads: int = 4,
    a: float = 0.0,
    b: float = 2.0,
    schedule: str = "static",
    f: Callable[[float], float] = quarter_circle,
    backend: str | None = None,
    kernel: str | None = None,
) -> float:
    """Parallel trapezoid: ``parallel for reduction(+: sum)``.

    ``backend="processes"`` runs the chunk kernel on pool workers for real
    multicore speedup (``f`` must then be picklable, e.g. module-level).
    ``kernel`` selects the loop or vectorized chunk kernel (see
    :func:`repro.exemplars.kernels.resolve_kernel`).
    """
    if n < 1:
        raise ValueError(f"need at least one trapezoid, got {n}")
    h = (b - a) / n
    chunk_fn = (
        trapezoid_chunk_vector
        if resolve_kernel(kernel) == "vector"
        else trapezoid_chunk
    )
    # Interior points count once, endpoints half; fold the halves in by
    # summing interior terms and adding the half-weighted ends after.
    interior = parallel_for_chunks(
        n - 1,
        functools.partial(chunk_fn, a, h, f),
        num_workers=num_threads,
        schedule=schedule,
        reduction="+",
        backend=backend,
    )
    return (interior + 0.5 * (f(a) + f(b))) * h


def integrate_mpi(
    n: int,
    np_procs: int = 4,
    a: float = 0.0,
    b: float = 2.0,
    f: Callable[[float], float] = quarter_circle,
) -> float:
    """MPI block decomposition + reduce — the distributed-module exemplar."""
    if n < 1:
        raise ValueError(f"need at least one trapezoid, got {n}")

    def body(comm) -> float | None:
        rank, size = comm.Get_rank(), comm.Get_size()
        h = (b - a) / n
        base, extra = divmod(n - 1, size)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        local = sum(f(a + (i + 1) * h) for i in range(lo, hi))
        total = comm.reduce(local, root=0)
        if rank == 0:
            return (total + 0.5 * (f(a) + f(b))) * h
        return None

    return mpirun(body, np_procs)[0]


def integration_workload(n: int) -> Workload:
    """Cost-model description of the trapezoid job for the platform benches.

    One trapezoid is ~40 abstract ops (sqrt + mul/add chain); the job is
    almost perfectly parallel (tiny serial setup) with a reduce at the end.
    """
    return Workload(
        name=f"integration(n={n})",
        total_ops=40.0 * n,
        serial_fraction=0.001,
        messages=lambda p: 2.0 * (p - 1),
        message_bytes=lambda p: 8.0 * 2 * (p - 1),
        imbalance=0.0,
    )


def trace_demo(paradigm: str = "openmp", backend: str | None = None) -> float:
    """Small fixed-size run for ``repro trace integration``."""
    if paradigm == "mpi":
        return integrate_mpi(400, np_procs=4)
    return integrate_omp(400, num_threads=4, backend=backend)
