"""``repro.exemplars`` — the three exemplar applications of the modules.

* :mod:`~repro.exemplars.integration` — numerical integration (shared-
  memory module, first exemplar; also used in MPI form),
* :mod:`~repro.exemplars.drugdesign` — drug design by ligand-protein LCS
  scoring (both modules; motivates dynamic scheduling / master-worker),
* :mod:`~repro.exemplars.forestfire` — probabilistic forest-fire Monte
  Carlo sweep (distributed module's headline exemplar).

Each exemplar ships a sequential baseline, an OpenMP-style threaded
version, an MPI version, and a cost-model workload descriptor for the
platform scaling benches.
"""

from .kernels import KERNEL_VARIANTS, resolve_kernel
from .drugdesign import (
    DEFAULT_PROTEIN,
    DrugDesignResult,
    drugdesign_workload,
    generate_ligands,
    lcs_length,
    run_mpi_master_worker,
    run_omp,
    run_seq,
    score_chunk,
    score_chunk_vector,
    score_ligand,
)
from .forestfire import (
    DEFAULT_PROBS,
    FireCurve,
    FirePoint,
    burn_once,
    fire_curve_mpi,
    fire_curve_omp,
    fire_curve_seq,
    forestfire_workload,
    trial_chunk,
    trial_chunk_vector,
)
from .heat import (
    heat_mpi,
    heat_omp,
    heat_seq,
    heat_workload,
    initial_rod,
    stencil_chunk,
    stencil_chunk_loop,
)
from .sorting import (
    merge,
    merge_sort_blocks,
    merge_sort_seq,
    merge_sort_tasks,
    odd_even_sort_mpi,
    sort_block_chunk,
    sort_block_chunk_vector,
    sorting_workload,
)
from .integration import (
    integrate_mpi,
    integrate_numpy,
    integrate_omp,
    integrate_seq,
    integration_workload,
    quarter_circle,
    quarter_circle_np,
    trapezoid_chunk,
    trapezoid_chunk_vector,
)

__all__ = [
    "KERNEL_VARIANTS",
    "resolve_kernel",
    "quarter_circle",
    "quarter_circle_np",
    "trapezoid_chunk",
    "trapezoid_chunk_vector",
    "score_chunk",
    "score_chunk_vector",
    "trial_chunk",
    "trial_chunk_vector",
    "stencil_chunk",
    "stencil_chunk_loop",
    "sort_block_chunk",
    "sort_block_chunk_vector",
    "merge_sort_blocks",
    "integrate_seq",
    "integrate_numpy",
    "integrate_omp",
    "integrate_mpi",
    "integration_workload",
    "DEFAULT_PROTEIN",
    "generate_ligands",
    "lcs_length",
    "score_ligand",
    "DrugDesignResult",
    "run_seq",
    "run_omp",
    "run_mpi_master_worker",
    "drugdesign_workload",
    "DEFAULT_PROBS",
    "FirePoint",
    "FireCurve",
    "burn_once",
    "fire_curve_seq",
    "fire_curve_omp",
    "fire_curve_mpi",
    "forestfire_workload",
    "merge",
    "merge_sort_seq",
    "merge_sort_tasks",
    "odd_even_sort_mpi",
    "sorting_workload",
    "initial_rod",
    "heat_seq",
    "heat_omp",
    "heat_mpi",
    "heat_workload",
]
