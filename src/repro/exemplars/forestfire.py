"""Forest-fire simulation exemplar.

The distributed module's second exemplar (the one participants planned to
adopt): a probabilistic fire-spread model on a square forest.  A fire
starts at the center tree; each burning tree ignites each of its four
neighbors with probability ``prob``; a tree burns for one time step.  The
experiment sweeps ``prob`` from 0.1 to 1.0, running many independent
trials per point, and reports the average fraction of forest burned and
the average number of iterations — producing the classic S-curve with a
percolation-style phase transition near prob ~ 0.5.

Decomposition: trials are independent Monte-Carlo samples, so both the
thread and MPI versions split *trials* across workers.  Each (prob, trial)
pair derives its own seed from a root seed, making every variant return
bit-identical curves regardless of worker count — the property the tests
pin down.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ..mpi import mpirun
from ..openmp import parallel_for_chunks
from ..platforms.simclock import Workload
from .kernels import resolve_kernel

__all__ = [
    "FirePoint",
    "FireCurve",
    "burn_once",
    "trial_chunk",
    "trial_chunk_vector",
    "fire_curve_seq",
    "fire_curve_omp",
    "fire_curve_mpi",
    "forestfire_workload",
    "DEFAULT_PROBS",
]

#: The sweep the CSinParallel exemplar runs: 0.1, 0.2, ..., 1.0.
DEFAULT_PROBS: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 11))

# Cell states.
_UNBURNT, _SMOLDERING, _BURNING, _BURNT = 0, 1, 2, 3


def _trial_seed(root_seed: int, prob_index: int, trial: int) -> int:
    """Deterministic per-(prob, trial) seed, independent of decomposition."""
    return hash((root_seed, prob_index, trial)) & 0x7FFFFFFF


def burn_once(size: int, prob: float, seed: int) -> tuple[float, int]:
    """Run one fire to completion; return (fraction burned, iterations).

    Vectorized stepping: each iteration ignites the four neighbors of every
    burning cell with independent probability ``prob``.
    """
    if size < 1:
        raise ValueError("forest size must be >= 1")
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"spread probability must be in [0, 1], got {prob}")
    rng = np.random.default_rng(seed)
    forest = np.zeros((size, size), dtype=np.int8)
    forest[size // 2, size // 2] = _BURNING
    iterations = 0
    while (forest == _BURNING).any():
        burning = forest == _BURNING
        # Neighbor exposure: a cell is exposed once per burning neighbor.
        exposed = np.zeros_like(burning)
        exposed[1:, :] |= burning[:-1, :]
        exposed[:-1, :] |= burning[1:, :]
        exposed[:, 1:] |= burning[:, :-1]
        exposed[:, :-1] |= burning[:, 1:]
        catch = exposed & (forest == _UNBURNT)
        ignite = catch & (rng.random(forest.shape) < prob)
        forest[burning] = _BURNT
        forest[ignite] = _BURNING
        iterations += 1
    return float((forest == _BURNT).mean()), iterations


@dataclass(frozen=True)
class FirePoint:
    """One point of the burn curve."""

    prob: float
    avg_burned: float
    avg_iterations: float
    trials: int


@dataclass
class FireCurve:
    """The full sweep result."""

    size: int
    points: list[FirePoint]
    mode: str

    @property
    def probs(self) -> list[float]:
        return [p.prob for p in self.points]

    @property
    def burned(self) -> list[float]:
        return [p.avg_burned for p in self.points]

    def is_monotone_nondecreasing(self, slack: float = 0.08) -> bool:
        """The S-curve property: more spread probability, more forest burned."""
        b = self.burned
        return all(b[i + 1] >= b[i] - slack for i in range(len(b) - 1))

    def transition_prob(self) -> float:
        """First probability where at least half the forest burns on average."""
        for p in self.points:
            if p.avg_burned >= 0.5:
                return p.prob
        return 1.0

    def format_table(self) -> str:
        lines = [
            f"forest fire, {self.size}x{self.size}, "
            f"{self.points[0].trials} trials/point [{self.mode}]",
            f"{'prob':>6} {'burned %':>9} {'iters':>7}",
        ]
        for pt in self.points:
            lines.append(
                f"{pt.prob:>6.1f} {100 * pt.avg_burned:>8.1f}% {pt.avg_iterations:>7.1f}"
            )
        return "\n".join(lines)


def _point(
    size: int, prob: float, prob_index: int, trials: list[int], root_seed: int
) -> list[tuple[int, float, int]]:
    """Per-trial (trial, burned, iterations) results for the given indices.

    Returning per-trial rows (instead of a partial sum) lets every variant
    combine them in trial order, so the curves are bit-identical no matter
    how trials were distributed across workers.
    """
    return [
        (t, *burn_once(size, prob, _trial_seed(root_seed, prob_index, t)))
        for t in trials
    ]


def _fold_point(
    prob: float, rows: list[tuple[int, float, int]], trials: int
) -> FirePoint:
    """Average per-trial rows deterministically (sorted by trial index)."""
    rows = sorted(rows)
    if len(rows) != trials or [t for t, _, _ in rows] != list(range(trials)):
        raise ValueError("trial decomposition did not cover each trial exactly once")
    burned_sum = sum(b for _, b, _ in rows)
    iters_sum = sum(i for _, _, i in rows)
    return FirePoint(prob, burned_sum / trials, iters_sum / trials, trials)


def fire_curve_seq(
    probs: tuple[float, ...] = DEFAULT_PROBS,
    trials: int = 10,
    size: int = 25,
    seed: int = 2020,
) -> FireCurve:
    """Sequential sweep."""
    points = []
    for pi, prob in enumerate(probs):
        rows = _point(size, prob, pi, list(range(trials)), seed)
        points.append(_fold_point(prob, rows, trials))
    return FireCurve(size, points, mode="seq")


def trial_chunk(
    size: int, prob: float, prob_index: int, root_seed: int, lo: int, hi: int
) -> list[tuple[int, float, int]]:
    """Chunk kernel: per-trial rows for trial indices [lo, hi)."""
    return _point(size, prob, prob_index, list(range(lo, hi)), root_seed)


def trial_chunk_vector(
    size: int, prob: float, prob_index: int, root_seed: int, lo: int, hi: int
) -> list[tuple[int, float, int]]:
    """Vectorized chunk kernel: all trials in [lo, hi) step together.

    The forests stack into one ``(trials, size, size)`` array so the
    neighbor-exposure and ignition masks are batched NumPy passes.  Each
    trial keeps its *own* RNG stream, drawn once per step while that trial
    still burns — exactly the draw order of :func:`burn_once` — so the
    rows are bit-identical to the loop kernel's, trial by trial.
    """
    if size < 1:
        raise ValueError("forest size must be >= 1")
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"spread probability must be in [0, 1], got {prob}")
    trials = list(range(lo, hi))
    k = len(trials)
    if k == 0:
        return []
    rngs = [
        np.random.default_rng(_trial_seed(root_seed, prob_index, t)) for t in trials
    ]
    forest = np.zeros((k, size, size), dtype=np.int8)
    forest[:, size // 2, size // 2] = _BURNING
    iterations = np.zeros(k, dtype=np.int64)
    draws = np.ones((k, size, size), dtype=np.float64)
    active = np.ones(k, dtype=bool)
    while active.any():
        burning = forest == _BURNING
        exposed = np.zeros_like(burning)
        exposed[:, 1:, :] |= burning[:, :-1, :]
        exposed[:, :-1, :] |= burning[:, 1:, :]
        exposed[:, :, 1:] |= burning[:, :, :-1]
        exposed[:, :, :-1] |= burning[:, :, 1:]
        catch = exposed & (forest == _UNBURNT)
        for i in np.flatnonzero(active):
            draws[i] = rngs[i].random((size, size))
        ignite = catch & (draws < prob) & active[:, None, None]
        forest[burning & active[:, None, None]] = _BURNT
        forest[ignite] = _BURNING
        iterations[active] += 1
        active = (forest == _BURNING).any(axis=(1, 2))
    burned = (forest == _BURNT).mean(axis=(1, 2))
    return [
        (t, float(b), int(i)) for t, b, i in zip(trials, burned, iterations)
    ]


def fire_curve_omp(
    probs: tuple[float, ...] = DEFAULT_PROBS,
    trials: int = 10,
    size: int = 25,
    seed: int = 2020,
    num_threads: int = 4,
    backend: str | None = None,
    kernel: str | None = None,
) -> FireCurve:
    """Parallel sweep: trial batches are shared across the worker team.

    Per-(prob, trial) seeding keeps the curve bit-identical to the
    sequential sweep on either backend, regardless of worker count —
    and the ``kernel="vector"`` batched stepper preserves per-trial RNG
    streams, so it holds across kernel variants too.
    """
    chunk_fn = (
        trial_chunk_vector if resolve_kernel(kernel) == "vector" else trial_chunk
    )
    points = []
    for pi, prob in enumerate(probs):
        chunks = parallel_for_chunks(
            trials,
            functools.partial(chunk_fn, size, prob, pi, seed),
            num_workers=num_threads,
            schedule="dynamic",
            backend=backend,
        )
        rows = [row for part in chunks for row in part]
        points.append(_fold_point(prob, rows, trials))
    return FireCurve(size, points, mode="omp")


def fire_curve_mpi(
    probs: tuple[float, ...] = DEFAULT_PROBS,
    trials: int = 10,
    size: int = 25,
    seed: int = 2020,
    np_procs: int = 4,
) -> FireCurve:
    """MPI sweep: each rank runs a stride of the trials, reduce assembles."""

    def body(comm):
        rank, nprocs = comm.Get_rank(), comm.Get_size()
        out = []
        for pi, prob in enumerate(probs):
            mine = [t for t in range(trials) if t % nprocs == rank]
            local = _point(size, prob, pi, mine, seed)
            gathered = comm.gather(local, root=0)
            if rank == 0:
                rows = [row for part in gathered for row in part]
                out.append(_fold_point(prob, rows, trials))
        return out if rank == 0 else None

    points = mpirun(body, np_procs)[0]
    return FireCurve(size, points, mode="mpi")


def forestfire_workload(size: int, trials: int, num_probs: int = 10) -> Workload:
    """Cost-model description of the sweep for the platform benches.

    One trial steps the whole grid ~O(size) times at ~8 ops/cell/step;
    trial durations vary with the burn outcome, giving moderate imbalance.
    """
    ops_per_trial = 8.0 * size * size * (size * 0.6)
    return Workload(
        name=f"forestfire({size}x{size}, {trials} trials)",
        total_ops=ops_per_trial * trials * num_probs,
        serial_fraction=0.002,
        messages=lambda p: 2.0 * (p - 1) * num_probs,
        message_bytes=lambda p: 16.0 * (p - 1) * num_probs,
        imbalance=0.15,
    )


def trace_demo(paradigm: str = "openmp", backend: str | None = None) -> FireCurve:
    """Small fixed-size run for ``repro trace forestfire``."""
    probs = (0.3, 0.6)
    if paradigm == "mpi":
        return fire_curve_mpi(probs, trials=4, size=15, np_procs=4)
    return fire_curve_omp(
        probs, trials=4, size=15, num_threads=4, backend=backend
    )
