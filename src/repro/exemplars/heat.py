"""Heat-diffusion exemplar: the halo-exchange stencil.

The canonical next step after embarrassingly parallel exemplars: a 1-D
heat equation solved with the explicit finite-difference stencil

    u[i]' = u[i] + alpha * (u[i-1] - 2*u[i] + u[i+1])

where each time step needs each cell's *neighbors* — so a distributed
version must exchange one-cell halos between adjacent ranks every step.
This is the communication pattern (and the Cartesian-topology usage) that
row-striped grid codes like the forest-fire simulation generalize.

Implementations agree bit-for-bit: a vectorized sequential solver, a
thread-parallel solver (barriered phases over a shared array), and an MPI
solver on a Cartesian communicator whose boundary ranks exchange with
``PROC_NULL`` (a no-op), keeping the code free of edge special cases.
"""

from __future__ import annotations

import functools

import numpy as np

from ..mpi import mpirun
from ..openmp import (
    SharedArray,
    barrier,
    chunk_ranges,
    get_num_threads,
    get_thread_num,
    parallel_region,
    resolve_backend,
    run_chunks,
)
from ..platforms.simclock import Workload
from .kernels import resolve_kernel

__all__ = [
    "initial_rod",
    "heat_seq",
    "heat_omp",
    "heat_mpi",
    "heat_workload",
    "stencil_chunk",
    "stencil_chunk_loop",
]


def initial_rod(n: int, hot_end: float = 100.0) -> np.ndarray:
    """A rod of ``n`` cells, cold except for a hot left end (Dirichlet)."""
    if n < 3:
        raise ValueError("the rod needs at least 3 cells")
    u = np.zeros(n, dtype=np.float64)
    u[0] = hot_end
    return u


def _step(u: np.ndarray, alpha: float) -> np.ndarray:
    """One explicit step on the interior; ends are fixed (boundary cells)."""
    nxt = u.copy()
    nxt[1:-1] = u[1:-1] + alpha * (u[:-2] - 2.0 * u[1:-1] + u[2:])
    return nxt


def heat_seq(n: int, steps: int, alpha: float = 0.25, hot_end: float = 100.0) -> np.ndarray:
    """Vectorized sequential solver (the learners' baseline)."""
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if not 0.0 < alpha <= 0.5:
        raise ValueError("explicit stability requires 0 < alpha <= 0.5")
    u = initial_rod(n, hot_end)
    for _ in range(steps):
        u = _step(u, alpha)
    return u


def stencil_chunk(src: SharedArray, dst: SharedArray, alpha: float, lo: int, hi: int) -> None:
    """Chunk kernel: one stencil phase over interior offsets ``[lo, hi)``.

    Offsets index the interior (cell ``lo + 1`` .. ``hi``); results land in
    the shared ``dst`` array in place, so the process backend's workers
    write straight into pages the parent sees — no result shipping.
    """
    lo, hi = lo + 1, hi + 1
    u, v = src.array, dst.array
    v[lo:hi] = u[lo:hi] + alpha * (u[lo - 1 : hi - 1] - 2.0 * u[lo:hi] + u[lo + 1 : hi + 1])


def stencil_chunk_loop(
    src: SharedArray, dst: SharedArray, alpha: float, lo: int, hi: int
) -> None:
    """Teaching-reference chunk kernel: the stencil as the handout's loop.

    The stencil exemplar is the one kernel whose production form
    (:func:`stencil_chunk`) was *already* vectorized; this straight-line
    form exists so the loop/vector pairing — and the differential test
    pinning their agreement — covers all five exemplar kernels.
    """
    u, v = src.array, dst.array
    for i in range(lo + 1, hi + 1):
        v[i] = u[i] + alpha * (u[i - 1] - 2.0 * u[i] + u[i + 1])


def _heat_chunked(
    n: int,
    steps: int,
    alpha: float,
    hot_end: float,
    num_threads: int,
    backend: str,
    kernel: str | None = None,
) -> np.ndarray:
    """Per-step chunk fan-out over shared read/write arrays.

    The parent plays the role the barriers play in the thread body: each
    ``run_chunks`` call is a full phase (all writes done on return), after
    which the parent carries the Dirichlet boundaries over and swaps the
    arrays.
    """
    chunk_fn = (
        stencil_chunk
        if resolve_kernel(kernel, data=initial_rod(n, hot_end)) == "vector"
        else stencil_chunk_loop
    )
    current = SharedArray.from_array(initial_rod(n, hot_end))
    nxt = SharedArray.from_array(current.array)
    ranges = chunk_ranges(n - 2, num_threads, "static")
    try:
        for _ in range(steps):
            run_chunks(
                functools.partial(chunk_fn, current, nxt, alpha),
                ranges,
                workers=num_threads,
                backend=backend,
            )
            nxt.array[0], nxt.array[-1] = current.array[0], current.array[-1]
            current, nxt = nxt, current
        return current.array.copy()
    finally:
        current.unlink()
        nxt.unlink()


def heat_omp(
    n: int,
    steps: int,
    alpha: float = 0.25,
    hot_end: float = 100.0,
    num_threads: int = 4,
    backend: str | None = None,
    kernel: str | None = None,
) -> np.ndarray:
    """Thread-parallel solver: block-split interior, barrier between phases.

    The two-array (read/write) scheme plus a barrier per step is the
    shared-memory analogue of the halo exchange: no thread reads a cell
    another thread is writing in the same phase.  Under
    ``backend="processes"`` the same stencil runs as chunk tasks over
    :class:`~repro.openmp.SharedArray` pages with the parent doing the
    boundary carry-over and swap between phases.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if not 0.0 < alpha <= 0.5:
        raise ValueError("explicit stability requires 0 < alpha <= 0.5")
    if resolve_backend(backend) == "processes":
        return _heat_chunked(
            n, steps, alpha, hot_end, num_threads, "processes", kernel
        )
    current = initial_rod(n, hot_end)
    nxt = current.copy()
    state = {"current": current, "next": nxt}

    def body() -> None:
        tid = get_thread_num()
        nthreads = get_num_threads()
        # interior indices 1..n-2, block-split
        interior = n - 2
        base, extra = divmod(interior, nthreads)
        lo = 1 + tid * base + min(tid, extra)
        hi = lo + base + (1 if tid < extra else 0)
        for _ in range(steps):
            u, v = state["current"], state["next"]
            v[lo:hi] = u[lo:hi] + alpha * (
                u[lo - 1 : hi - 1] - 2.0 * u[lo:hi] + u[lo + 1 : hi + 1]
            )
            barrier()  # everyone finished writing this phase
            if tid == 0:
                v[0], v[-1] = u[0], u[-1]  # boundaries carry over
                state["current"], state["next"] = v, u
            barrier()  # swap visible before the next phase

    parallel_region(body, num_threads=num_threads)
    return state["current"]


def heat_mpi(
    n: int,
    steps: int,
    alpha: float = 0.25,
    hot_end: float = 100.0,
    np_procs: int = 4,
) -> np.ndarray:
    """Distributed solver: row-striped cells with one-cell halo exchange.

    Built on a 1-D Cartesian communicator: ``Shift`` yields each rank's
    neighbors, with ``PROC_NULL`` at the rod's ends making the boundary
    exchanges vanish without special-case code.
    """
    if steps < 0:
        raise ValueError("steps must be non-negative")
    if not 0.0 < alpha <= 0.5:
        raise ValueError("explicit stability requires 0 < alpha <= 0.5")
    if n < np_procs:
        raise ValueError(
            f"rod of {n} cells cannot be striped over {np_procs} ranks"
        )

    def body(comm):
        cart = comm.Create_cart((comm.Get_size(),), periods=(False,))
        rank, size = cart.Get_rank(), cart.Get_size()
        left, right = cart.Shift(0, 1)

        full = initial_rod(n, hot_end)
        base, extra = divmod(n, size)
        lo = rank * base + min(rank, extra)
        hi = lo + base + (1 if rank < extra else 0)
        local = full[lo:hi].copy()

        for _step_no in range(steps):
            # Halo exchange.  My left halo is my left neighbor's *last* cell
            # (everyone ships local[-1] rightward) and my right halo is my
            # right neighbor's *first* cell (everyone ships local[0]
            # leftward).  PROC_NULL at the rod ends turns the extra
            # exchanges into no-ops that yield None — no edge special cases.
            left_halo = cart.sendrecv(
                float(local[-1]), dest=right, sendtag=1, source=left, recvtag=1
            )
            right_halo = cart.sendrecv(
                float(local[0]), dest=left, sendtag=2, source=right, recvtag=2
            )
            pad_left = local[0] if left_halo is None else left_halo
            pad_right = local[-1] if right_halo is None else right_halo
            padded = np.concatenate(([pad_left], local, [pad_right]))
            updated = padded[1:-1] + alpha * (
                padded[:-2] - 2.0 * padded[1:-1] + padded[2:]
            )
            # Global boundary cells are Dirichlet: carry them over.
            if rank == 0:
                updated[0] = local[0]
            if rank == size - 1:
                updated[-1] = local[-1]
            local = updated

        gathered = cart.gather(local, root=0)
        if rank == 0:
            return np.concatenate(gathered)
        return None

    return mpirun(body, np_procs)[0]


def heat_workload(n: int, steps: int) -> Workload:
    """Cost-model description: tight per-step halo synchronization.

    5 flops per cell per step; every step exchanges two halo messages per
    interior rank boundary — communication scales with *steps*, unlike the
    Monte-Carlo exemplars, which is exactly why the stencil's efficiency
    curve bends earlier.
    """
    return Workload(
        name=f"heat(n={n}, steps={steps})",
        total_ops=5.0 * n * steps,
        serial_fraction=0.002,
        messages=lambda p: 2.0 * (p - 1) * steps,
        message_bytes=lambda p: 8.0 * 2 * (p - 1) * steps,
        imbalance=0.02,
    )


def trace_demo(paradigm: str = "openmp", backend: str | None = None) -> np.ndarray:
    """Small fixed-size run for ``repro trace heat``."""
    if paradigm == "mpi":
        return heat_mpi(64, steps=4, np_procs=4)
    return heat_omp(64, steps=4, num_threads=4, backend=backend)
