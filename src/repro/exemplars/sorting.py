"""Parallel-sorting exemplar.

The paper's introduction proposes injecting PDC into an Algorithms course
through parallel sorting.  This exemplar provides both classic treatments:

* **task-parallel merge sort** (shared memory): recursive decomposition
  with OpenMP-style tasks, sequential cutoff below a threshold;
* **odd-even transposition sort** (distributed memory): blocks scattered
  across ranks, each locally sorted, then P alternating phases of
  neighbor exchange-and-merge-split — the textbook distributed sort whose
  correctness argument (0-1 principle / sorting network) an Algorithms
  course can actually prove.

Both agree exactly with ``sorted()`` on every input, which the property
tests pin down.
"""

from __future__ import annotations

import functools
import random
from typing import Sequence

import numpy as np

from ..mpi import mpirun
from ..openmp import (
    chunk_ranges,
    parallel_region,
    run_chunks,
    single,
    task,
    taskwait,
)
from ..platforms.simclock import Workload
from .kernels import resolve_kernel

__all__ = [
    "merge",
    "merge_sort_seq",
    "merge_sort_tasks",
    "merge_sort_blocks",
    "sort_block_chunk",
    "sort_block_chunk_vector",
    "odd_even_sort_mpi",
    "sorting_workload",
]


def merge(left: list, right: list) -> list:
    """Stable two-way merge of two sorted lists."""
    out = []
    i = j = 0
    while i < len(left) and j < len(right):
        if right[j] < left[i]:
            out.append(right[j])
            j += 1
        else:
            out.append(left[i])
            i += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return out


def merge_sort_seq(values: Sequence) -> list:
    """Sequential top-down merge sort (the course's baseline)."""
    values = list(values)
    if len(values) <= 1:
        return values
    mid = len(values) // 2
    return merge(merge_sort_seq(values[:mid]), merge_sort_seq(values[mid:]))


def merge_sort_tasks(
    values: Sequence, num_threads: int = 4, cutoff: int = 64
) -> list:
    """Task-parallel merge sort on the OpenMP tasking runtime.

    One thread (the ``single`` winner) seeds the recursion; each split
    spawns a task for the left half while the current task descends into
    the right; below ``cutoff`` elements the sequential sort takes over
    (the granularity-control lesson of tasking).
    """
    if cutoff < 1:
        raise ValueError("cutoff must be positive")
    values = list(values)
    if len(values) <= 1:
        return values
    result: list[list] = [[]]

    def sort(part: list) -> list:
        if len(part) <= cutoff:
            return merge_sort_seq(part)
        mid = len(part) // 2
        left_task = task(sort, part[:mid])
        right = sort(part[mid:])
        return merge(left_task.result(), right)

    def body() -> None:
        if single():
            result[0] = sort(values)
        taskwait()

    parallel_region(body, num_threads=num_threads)
    return result[0]


def sort_block_chunk(values: list, lo: int, hi: int) -> list:
    """Chunk kernel: a sorted copy of ``values[lo:hi]`` (both backends)."""
    return sorted(values[lo:hi])


def sort_block_chunk_vector(values: Sequence, lo: int, hi: int) -> list:
    """Vectorized chunk kernel: ``np.sort`` over the block.

    Agreement with :func:`sort_block_chunk` needs homogeneous comparable
    values (NumPy coerces the block to one dtype); the block-merge driver
    only selects this variant for numeric input.
    """
    return np.sort(np.asarray(values[lo:hi]), kind="stable").tolist()


def merge_sort_blocks(
    values: Sequence,
    num_workers: int = 4,
    backend: str | None = None,
    kernel: str | None = None,
) -> list:
    """Block-parallel merge sort: sort blocks on the team, merge in parent.

    The data-parallel counterpart to :func:`merge_sort_tasks`: blocks are
    sorted concurrently (pool workers under ``backend="processes"``, team
    threads otherwise) and the parent folds the sorted runs with the same
    stable :func:`merge` the recursive version uses.  Output equals
    ``sorted(values)`` exactly on every input.  ``kernel`` picks the block
    sorter; ndarray input auto-selects the ``np.sort`` variant.
    """
    variant = resolve_kernel(kernel, data=values)
    values = list(values)
    if len(values) <= 1:
        return values
    chunk_fn = sort_block_chunk_vector if variant == "vector" else sort_block_chunk
    ranges = chunk_ranges(len(values), num_workers, "static")
    runs = run_chunks(
        functools.partial(chunk_fn, values),
        ranges,
        workers=num_workers,
        backend=backend,
    )
    # Balanced pairwise merging keeps the fold at O(n log k) comparisons.
    while len(runs) > 1:
        runs = [
            merge(runs[i], runs[i + 1]) if i + 1 < len(runs) else runs[i]
            for i in range(0, len(runs), 2)
        ]
    return runs[0]


def _merge_split(
    mine: list, theirs: list, keep_low: bool
) -> list:
    """Exchange-and-keep step of odd-even transposition: both partners merge
    the union; the lower rank keeps the low half, the higher rank the high."""
    combined = merge(mine, theirs)
    return combined[: len(mine)] if keep_low else combined[len(combined) - len(mine):]


def odd_even_sort_mpi(values: Sequence, np_procs: int = 4) -> list:
    """Distributed odd-even transposition sort.

    Ranks hold contiguous blocks (sizes differing by at most one).  After a
    local sort, phases alternate even pairs (0-1, 2-3, ...) and odd pairs
    (1-2, 3-4, ...); each pair exchanges blocks and merge-splits.  With
    *equal* blocks the classic result says P phases suffice; with ragged
    blocks the bound grows, so the implementation uses the standard
    termination test instead: stop after a full even+odd sweep in which no
    rank's block changed (detected with an allreduce) — which also teaches
    distributed termination detection.
    """
    values = list(values)

    def body(comm):
        from ..mpi.ops import LOR

        rank, size = comm.Get_rank(), comm.Get_size()
        # Block decomposition at the root, scattered to everyone.
        blocks = None
        if rank == 0:
            base, extra = divmod(len(values), size)
            blocks, start = [], 0
            for r in range(size):
                count = base + (1 if r < extra else 0)
                blocks.append(values[start : start + count])
                start += count
        mine = sorted(comm.scatter(blocks, root=0))

        phase = 0
        while True:
            sweep_changed = False
            for _half in range(2):  # one even phase + one odd phase
                if phase % 2 == 0:  # even phase: pairs (0,1), (2,3), ...
                    partner = rank + 1 if rank % 2 == 0 else rank - 1
                else:  # odd phase: pairs (1,2), (3,4), ...
                    partner = rank + 1 if rank % 2 == 1 else rank - 1
                if 0 <= partner < size:
                    theirs = comm.sendrecv(
                        mine, dest=partner, sendtag=phase % TAG_SPAN,
                        source=partner, recvtag=phase % TAG_SPAN,
                    )
                    if mine or theirs:
                        updated = _merge_split(mine, theirs, keep_low=rank < partner)
                        if updated != mine:
                            sweep_changed = True
                            mine = updated
                phase += 1
            if not comm.allreduce(sweep_changed, op=LOR):
                break

        gathered = comm.gather(mine, root=0)
        if rank == 0:
            return [v for block in gathered for v in block]
        return None

    return mpirun(body, np_procs)[0]


#: Keep sendrecv tags inside the valid user tag range for very long runs.
TAG_SPAN = 1024


def sorting_workload(n: int) -> Workload:
    """Cost-model description of the distributed sort for platform benches.

    Local sorting is O((n/p) log(n/p)); each of the P phases moves a block
    both ways, so communication is O(p^2) messages of n/p elements.
    """
    import math

    return Workload(
        name=f"odd-even-sort(n={n})",
        total_ops=12.0 * n * max(1.0, math.log2(max(2, n))),
        serial_fraction=0.005,
        messages=lambda p: 2.0 * p * p,
        message_bytes=lambda p: 8.0 * n * p,  # each phase ships ~n elements
        imbalance=0.05,
    )


def trace_demo(paradigm: str = "openmp", backend: str | None = None) -> list:
    """Small fixed-size run for ``repro trace sorting``."""
    rng = random.Random(7)
    values = [rng.randrange(1000) for _ in range(240)]
    if paradigm == "mpi":
        return odd_even_sort_mpi(values, np_procs=4)
    return merge_sort_blocks(values, num_workers=4, backend=backend)
