"""Drug-design exemplar: ligand-protein matching by longest common subsequence.

The CSinParallel drug-design exemplar (used in *both* modules of the paper)
scores a pool of randomly generated candidate ligands against a protein by
the length of their longest common subsequence (LCS), then reports the
maximal score and the ligands achieving it.  Work per ligand is
``O(len(ligand) * len(protein))`` — strongly length-dependent, which is
exactly why the exemplar motivates dynamic scheduling (OpenMP) and
master-worker task farming (MPI).
"""

from __future__ import annotations

import functools
import random
import string
from dataclasses import dataclass

import numpy as np

from ..mpi import ANY_SOURCE, ANY_TAG, Status, mpirun
from ..openmp import parallel_for_chunks
from ..platforms.simclock import Workload
from .kernels import resolve_kernel

__all__ = [
    "DEFAULT_PROTEIN",
    "generate_ligands",
    "lcs_length",
    "score_ligand",
    "score_chunk",
    "score_chunk_vector",
    "DrugDesignResult",
    "run_seq",
    "run_omp",
    "run_mpi_master_worker",
    "drugdesign_workload",
]

#: Protein string used by the CSinParallel exemplar materials.
DEFAULT_PROTEIN = "the cat in the hat wore the hat to the cat hat party"


def generate_ligands(
    count: int, max_len: int = 6, seed: int | None = 42, min_len: int = 2
) -> list[str]:
    """Random lowercase candidate ligands, reproducible for a given seed."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if not 1 <= min_len <= max_len:
        raise ValueError(f"need 1 <= min_len <= max_len, got {min_len}..{max_len}")
    rng = random.Random(seed)
    return [
        "".join(
            rng.choice(string.ascii_lowercase)
            for _ in range(rng.randint(min_len, max_len))
        )
        for _ in range(count)
    ]


def lcs_length(a: str, b: str) -> int:
    """Longest-common-subsequence length via the rolling-row DP.

    Vectorized over ``b`` where possible: for each character of ``a`` the
    candidate values are computed with NumPy and the running maximum is
    fixed up with a cumulative maximum — O(len(a)) NumPy passes instead of
    O(len(a)*len(b)) Python steps.
    """
    if not a or not b:
        return 0
    bs = np.frombuffer(b.encode("latin-1"), dtype=np.uint8)
    prev = np.zeros(len(bs) + 1, dtype=np.int32)
    for ch in a.encode("latin-1"):
        match = prev[:-1] + (bs == ch)
        # cur[j+1] = max(match[j], cur[j], prev[j+1]) -- the cur[j] term is a
        # running maximum, realized with np.maximum.accumulate.
        cur = np.maximum(match, prev[1:])
        np.maximum.accumulate(cur, out=cur)
        prev[1:] = cur
    return int(prev[-1])


def score_ligand(ligand: str, protein: str = DEFAULT_PROTEIN) -> int:
    """The exemplar's score: LCS length of the ligand against the protein."""
    return lcs_length(ligand, protein)


@dataclass
class DrugDesignResult:
    """Outcome of one scoring campaign."""

    protein: str
    ligands: list[str]
    scores: list[int]
    mode: str

    @property
    def max_score(self) -> int:
        return max(self.scores) if self.scores else 0

    @property
    def best_ligands(self) -> list[str]:
        best = self.max_score
        return sorted(l for l, s in zip(self.ligands, self.scores) if s == best)

    def summary(self) -> str:
        return (
            f"[{self.mode}] {len(self.ligands)} ligands; max score "
            f"{self.max_score} achieved by {self.best_ligands}"
        )


def run_seq(ligands: list[str], protein: str = DEFAULT_PROTEIN) -> DrugDesignResult:
    """Sequential baseline."""
    scores = [score_ligand(l, protein) for l in ligands]
    return DrugDesignResult(protein, list(ligands), scores, mode="seq")


def score_chunk(
    ligands: list[str], protein: str, lo: int, hi: int
) -> list[int]:
    """Chunk kernel: scores for ``ligands[lo:hi]`` (both backends run this)."""
    return [score_ligand(ligands[i], protein) for i in range(lo, hi)]


def score_chunk_vector(
    ligands: list[str], protein: str, lo: int, hi: int
) -> list[int]:
    """Vectorized chunk kernel: the whole batch's LCS DPs advance together.

    :func:`lcs_length` already vectorizes each DP row over the protein;
    this variant stacks the rows of every ligand in the chunk into one
    2-D array, so each character position is a single batched NumPy pass
    instead of a per-ligand Python iteration.  Ligands shorter than the
    longest simply stop updating their row (their scores are final).
    """
    batch = [ligands[i] for i in range(lo, hi)]
    if not batch or not protein:
        return [0] * len(batch)
    bs = np.frombuffer(protein.encode("latin-1"), dtype=np.uint8)
    lens = np.array([len(l) for l in batch], dtype=np.int64)
    maxlen = int(lens.max())
    if maxlen == 0:
        return [0] * len(batch)
    chars = np.zeros((len(batch), maxlen), dtype=np.uint8)
    for i, lig in enumerate(batch):
        enc = np.frombuffer(lig.encode("latin-1"), dtype=np.uint8)
        chars[i, : len(enc)] = enc
    prev = np.zeros((len(batch), len(bs) + 1), dtype=np.int32)
    for j in range(maxlen):
        active = lens > j
        if not active.any():
            break
        match = prev[:, :-1] + (bs[None, :] == chars[:, j][:, None])
        cur = np.maximum(match, prev[:, 1:])
        np.maximum.accumulate(cur, axis=1, out=cur)
        prev[active, 1:] = cur[active]
    return [int(v) for v in prev[:, -1]]


def run_omp(
    ligands: list[str],
    protein: str = DEFAULT_PROTEIN,
    num_threads: int = 4,
    schedule: str = "dynamic",
    chunk: int = 1,
    backend: str | None = None,
    kernel: str | None = None,
) -> DrugDesignResult:
    """Parallel scoring; dynamic schedule absorbs the length skew.

    Under ``backend="processes"`` the chunk kernel runs on pool workers —
    the LCS dynamic program is pure CPU, so this is the exemplar where
    real multicore speedup shows up first.  ``kernel="vector"`` batches
    the chunk's DPs into stacked NumPy passes.
    """
    chunk_fn = (
        score_chunk_vector if resolve_kernel(kernel) == "vector" else score_chunk
    )
    chunk_kernel = functools.partial(chunk_fn, list(ligands), protein)
    chunks = parallel_for_chunks(
        len(ligands),
        chunk_kernel,
        num_workers=num_threads,
        schedule=schedule,
        chunk=chunk,
        backend=backend,
    )
    scores = [s for part in chunks for s in part]
    return DrugDesignResult(protein, list(ligands), scores, mode="omp")


_TAG_TASK = 1
_TAG_RESULT = 2
_TAG_STOP = 3


def run_mpi_master_worker(
    ligands: list[str],
    protein: str = DEFAULT_PROTEIN,
    np_procs: int = 4,
) -> DrugDesignResult:
    """MPI master-worker task farm, the distributed module's exemplar form.

    The master deals one ligand at a time to whichever worker reports in,
    so long ligands do not stall the pool — dynamic load balancing by
    construction.
    """
    if np_procs < 2:
        raise ValueError("master-worker needs at least 2 processes")

    def body(comm):
        rank, size = comm.Get_rank(), comm.Get_size()
        if rank == 0:
            scores: list[int] = [0] * len(ligands)
            status = Status()
            next_task = 0
            outstanding = 0
            for worker in range(1, size):
                if next_task < len(ligands):
                    comm.send((next_task, ligands[next_task]), dest=worker, tag=_TAG_TASK)
                    next_task += 1
                    outstanding += 1
                else:
                    comm.send(None, dest=worker, tag=_TAG_STOP)
            while outstanding:
                idx, score = comm.recv(source=ANY_SOURCE, tag=_TAG_RESULT, status=status)
                scores[idx] = score
                outstanding -= 1
                worker = status.Get_source()
                if next_task < len(ligands):
                    comm.send((next_task, ligands[next_task]), dest=worker, tag=_TAG_TASK)
                    next_task += 1
                    outstanding += 1
                else:
                    comm.send(None, dest=worker, tag=_TAG_STOP)
            return scores
        # Worker: score ligands until the stop tag.
        status = Status()
        handled = 0
        while True:
            task = comm.recv(source=0, tag=ANY_TAG, status=status)
            if status.Get_tag() == _TAG_STOP:
                return handled
            idx, ligand = task
            comm.send((idx, score_ligand(ligand, protein)), dest=0, tag=_TAG_RESULT)
            handled += 1

    outs = mpirun(body, np_procs)
    return DrugDesignResult(protein, list(ligands), outs[0], mode="mpi")


def drugdesign_workload(
    num_ligands: int,
    max_len: int = 24,
    protein_len: int | None = None,
    batch: int = 64,
    imbalance: float = 0.2,
) -> Workload:
    """Cost-model description: LCS cost is len(ligand)*len(protein) ops.

    Ligand lengths are uniform on [2, max_len], so static block decomposition
    leaves meaningful imbalance (default 20%); pass ``imbalance=0.02`` to
    model the master-worker/dynamic variant, which the ablation bench
    contrasts.  Task distribution is batched (``batch`` ligands per message),
    as the real exemplar does, so messaging stays O(m / batch).
    """
    plen = protein_len if protein_len is not None else len(DEFAULT_PROTEIN)
    mean_len = (2 + max_len) / 2
    batches = max(1.0, num_ligands / batch)
    return Workload(
        name=f"drugdesign(m={num_ligands})",
        total_ops=25.0 * num_ligands * mean_len * plen,
        serial_fraction=0.002,
        messages=lambda p: 2.0 * batches + 2.0 * (p - 1),
        message_bytes=lambda p: 32.0 * num_ligands,
        imbalance=imbalance,
    )


def trace_demo(
    paradigm: str = "openmp", backend: str | None = None
) -> DrugDesignResult:
    """Small fixed-size run for ``repro trace drugdesign``."""
    ligands = generate_ligands(12, max_len=6, seed=2020)
    if paradigm == "mpi":
        return run_mpi_master_worker(ligands, np_procs=4)
    return run_omp(ligands, num_threads=4, backend=backend)
