"""Kernel-variant selection for the exemplar chunk kernels.

Every exemplar keeps its original straight-line Python chunk kernel — the
*teaching* form, matching the loop the handouts walk through — and gains a
NumPy-vectorized variant that does the same arithmetic as whole-array
operations.  This module is the single knob that picks between them:

* an explicit ``kernel="loop"`` / ``kernel="vector"`` argument wins,
* else the ``REPRO_KERNEL`` environment variable (same two values),
* else ``"vector"`` when the input data is already a NumPy array (the
  caller has opted into array semantics, so give them array speed),
* else ``"loop"`` — the teaching default.

The differential tests pin the contract: for every exemplar, the two
variants produce identical results (bit-identical where the computation
is integral or seeded, to float tolerance where summation order differs).
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

__all__ = ["KERNEL_VARIANTS", "resolve_kernel", "select_kernel"]

#: The recognized kernel variants.
KERNEL_VARIANTS = ("loop", "vector")


def resolve_kernel(kernel: str | None = None, data: Any = None) -> str:
    """Resolve a kernel-variant request to ``"loop"`` or ``"vector"``.

    Precedence: explicit argument, then the ``REPRO_KERNEL`` environment
    variable, then ``"vector"`` if ``data`` is an ndarray, else ``"loop"``.
    """
    if kernel is None:
        env = os.environ.get("REPRO_KERNEL", "").strip()
        kernel = env or None
    if kernel is None:
        kernel = "vector" if isinstance(data, np.ndarray) else "loop"
    if kernel not in KERNEL_VARIANTS:
        raise ValueError(
            f"unknown kernel variant {kernel!r}; expected one of {KERNEL_VARIANTS}"
        )
    return kernel


def select_kernel(kernel: str | None, data: Any, loop_fn: Any, vector_fn: Any) -> Any:
    """The chunk function for the resolved variant (tiny dispatch helper)."""
    return vector_fn if resolve_kernel(kernel, data) == "vector" else loop_fn
