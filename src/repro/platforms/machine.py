"""Machine models for the platforms the paper's materials run on.

Each :class:`Machine` captures the parameters that matter for the
*qualitative* performance claims of the paper: core count (Colab's unicore
VM cannot show speedup; the St. Olaf VM's 64 cores can), clock rate, and
interconnect characteristics for clustered platforms.

These are calibration inputs to the deterministic execution-time model in
:mod:`repro.platforms.simclock`, not attempts at cycle accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "Machine",
    "Cluster",
    "RASPBERRY_PI_3B",
    "RASPBERRY_PI_4",
    "COLAB_VM",
    "ST_OLAF_VM",
    "CHAMELEON_NODE",
    "STUDENT_LAPTOP",
    "chameleon_cluster",
    "pi_beowulf_cluster",
    "PLATFORMS",
]


@dataclass(frozen=True)
class Machine:
    """A single (possibly multicore) host.

    Attributes
    ----------
    name:
        Display name.
    cores:
        Hardware parallelism available to one job.
    clock_ghz:
        Per-core clock; with ``ops_per_cycle`` this sets the serial rate.
    ops_per_cycle:
        Abstract work units retired per cycle (absorbs ILP/vectorization).
    intra_latency_s / intra_bandwidth_gbps:
        Cost of moving a message between two processes on this host
        (shared-memory transport).
    kind:
        ``"sbc"`` (single-board computer), ``"vm"``, ``"server"``,
        ``"laptop"`` — used by the teaching materials to describe the
        platform to learners.
    """

    name: str
    cores: int
    clock_ghz: float
    ops_per_cycle: float = 1.0
    intra_latency_s: float = 2e-6
    intra_bandwidth_gbps: float = 40.0
    kind: str = "server"

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"{self.name}: cores must be >= 1")
        if self.clock_ghz <= 0:
            raise ValueError(f"{self.name}: clock must be positive")

    @property
    def serial_rate(self) -> float:
        """Work units per second on one core."""
        return self.clock_ghz * 1e9 * self.ops_per_cycle

    def with_cores(self, cores: int) -> "Machine":
        """A copy with a different core count (for what-if studies)."""
        return replace(self, cores=cores)


@dataclass(frozen=True)
class Cluster:
    """Multiple identical nodes joined by a network.

    ``slots`` is the total process capacity; processes are packed onto
    nodes first (cheap intra-node messaging), spilling across the network
    (expensive inter-node messaging) as the job grows.
    """

    name: str
    node: Machine
    num_nodes: int
    net_latency_s: float = 1e-4
    net_bandwidth_gbps: float = 1.0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"{self.name}: need at least one node")

    @property
    def cores(self) -> int:
        return self.node.cores * self.num_nodes

    @property
    def serial_rate(self) -> float:
        return self.node.serial_rate

    def nodes_for(self, procs: int) -> int:
        """How many nodes a ``procs``-process job spans (packed placement)."""
        return min(self.num_nodes, -(-procs // self.node.cores))


# --- The platforms named in the paper -------------------------------------------

#: Raspberry Pi 3B: the oldest model the custom image supports.
RASPBERRY_PI_3B = Machine(
    "Raspberry Pi 3B", cores=4, clock_ghz=1.2, ops_per_cycle=0.5,
    intra_latency_s=5e-6, intra_bandwidth_gbps=4.0, kind="sbc",
)

#: Raspberry Pi 4 (the CanaKit in Table I ships the 2 GB model).
RASPBERRY_PI_4 = Machine(
    "Raspberry Pi 4 (2GB)", cores=4, clock_ghz=1.5, ops_per_cycle=0.8,
    intra_latency_s=4e-6, intra_bandwidth_gbps=8.0, kind="sbc",
)

#: Google Colab free-tier VM: a single core — the paper stresses that this
#: demonstrates message passing but cannot show speedup.
COLAB_VM = Machine(
    "Google Colab VM", cores=1, clock_ghz=2.2, ops_per_cycle=1.0,
    intra_latency_s=3e-6, intra_bandwidth_gbps=16.0, kind="vm",
)

#: The 64-core VM on the big St. Olaf server ("good parallel speedup").
ST_OLAF_VM = Machine(
    "St. Olaf 64-core VM", cores=64, clock_ghz=2.4, ops_per_cycle=1.0,
    intra_latency_s=2e-6, intra_bandwidth_gbps=50.0, kind="vm",
)

#: One Chameleon Cloud bare-metal node.
CHAMELEON_NODE = Machine(
    "Chameleon node", cores=48, clock_ghz=2.6, ops_per_cycle=1.0,
    intra_latency_s=2e-6, intra_bandwidth_gbps=50.0, kind="server",
)

#: A typical student laptop, for comparison exercises.
STUDENT_LAPTOP = Machine(
    "Student laptop", cores=8, clock_ghz=2.8, ops_per_cycle=1.0,
    intra_latency_s=2e-6, intra_bandwidth_gbps=30.0, kind="laptop",
)


def chameleon_cluster(num_nodes: int = 4) -> Cluster:
    """The Jupyter-fronted Chameleon Cloud cluster of the distributed module."""
    return Cluster(
        f"Chameleon cluster ({num_nodes} nodes)",
        node=CHAMELEON_NODE,
        num_nodes=num_nodes,
        net_latency_s=8e-5,
        net_bandwidth_gbps=10.0,
    )


def pi_beowulf_cluster(num_nodes: int = 4) -> Cluster:
    """A classroom Beowulf of Raspberry Pis over 100 Mb Ethernet ([35],[36])."""
    return Cluster(
        f"Raspberry Pi Beowulf ({num_nodes} nodes)",
        node=RASPBERRY_PI_4,
        num_nodes=num_nodes,
        net_latency_s=3e-4,
        net_bandwidth_gbps=0.1,
    )


#: Registry used by the benches and the delivery orchestration.
PLATFORMS: dict[str, Machine | Cluster] = {
    "raspberry-pi-3b": RASPBERRY_PI_3B,
    "raspberry-pi-4": RASPBERRY_PI_4,
    "colab": COLAB_VM,
    "stolaf-vm": ST_OLAF_VM,
    "chameleon-node": CHAMELEON_NODE,
    "laptop": STUDENT_LAPTOP,
    "chameleon-cluster": chameleon_cluster(),
    "pi-beowulf": pi_beowulf_cluster(),
}
