"""Deterministic execution-time model.

Wall-clock speedup of Python threads is GIL-bound, so the reproduction's
platform benches charge *simulated* time instead: a workload description
(total work, serial fraction, communication volume as functions of the
process count) is costed against a machine or cluster model.  The model is
the textbook one the teaching materials themselves use when discussing
speedup:

``T(p) = T_serial + T_parallel(p) + T_comm(p) + T_spawn(p)``

* ``T_serial``   = ``serial_fraction * work / rate``
* ``T_parallel`` = ``(1-serial_fraction) * work / (rate * effective(p))``
  where ``effective(p) = min(p, cores)`` — oversubscribed processes time-
  share cores, which is exactly why Colab's unicore VM shows no speedup;
* ``T_comm``     = ``messages(p) * latency + bytes(p) / bandwidth``, with
  cluster placements paying network costs for inter-node pairs;
* ``T_spawn``    = per-process start-up overhead.

Load imbalance is modeled with an ``imbalance`` factor: the busiest
process carries ``(1 + imbalance)``× the mean parallel share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .machine import Cluster, Machine

__all__ = ["Workload", "CostModel", "TimeBreakdown"]

MessagesFn = Callable[[int], float]
BytesFn = Callable[[int], float]


@dataclass(frozen=True)
class Workload:
    """An abstract parallel job.

    ``total_ops`` is the sequential work in abstract operations;
    ``messages`` / ``message_bytes`` give the communication volume of the
    whole job as a function of process count (e.g. ``lambda p: 2 * (p - 1)``
    for a scatter+reduce).  ``imbalance`` of 0.25 means the busiest rank
    does 25% more than the mean parallel share — dynamic scheduling drives
    this toward 0, static-on-irregular-work pushes it up.
    """

    name: str
    total_ops: float
    serial_fraction: float = 0.0
    messages: MessagesFn = field(default=lambda p: 0.0)
    message_bytes: BytesFn = field(default=lambda p: 0.0)
    imbalance: float = 0.0
    spawn_overhead_s: float = 5e-4

    def __post_init__(self) -> None:
        if self.total_ops <= 0:
            raise ValueError("total_ops must be positive")
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        if self.imbalance < 0:
            raise ValueError("imbalance must be non-negative")


@dataclass(frozen=True)
class TimeBreakdown:
    """Cost-model output for one (workload, platform, procs) point."""

    procs: int
    serial_s: float
    parallel_s: float
    comm_s: float
    spawn_s: float

    @property
    def total_s(self) -> float:
        return self.serial_s + self.parallel_s + self.comm_s + self.spawn_s


class CostModel:
    """Costs workloads against a :class:`Machine` or :class:`Cluster`."""

    def __init__(self, platform: Machine | Cluster) -> None:
        self.platform = platform

    @property
    def name(self) -> str:
        return self.platform.name

    @property
    def cores(self) -> int:
        return self.platform.cores

    def _comm_params(self, procs: int) -> tuple[float, float]:
        """(latency_s, bandwidth_Bps) for the dominant message path."""
        p = self.platform
        if isinstance(p, Cluster):
            if p.nodes_for(procs) > 1:
                return p.net_latency_s, p.net_bandwidth_gbps * 1e9 / 8
            return p.node.intra_latency_s, p.node.intra_bandwidth_gbps * 1e9 / 8
        return p.intra_latency_s, p.intra_bandwidth_gbps * 1e9 / 8

    def time(self, workload: Workload, procs: int) -> TimeBreakdown:
        """Simulated execution time of ``workload`` on ``procs`` processes."""
        if procs < 1:
            raise ValueError(f"procs must be >= 1, got {procs}")
        rate = self.platform.serial_rate
        serial_ops = workload.serial_fraction * workload.total_ops
        parallel_ops = workload.total_ops - serial_ops

        effective = min(procs, self.cores)
        # The busiest rank sets the pace; with one process there is no
        # decomposition and hence no imbalance penalty.
        imbalance = workload.imbalance if procs > 1 else 0.0
        busiest_share = parallel_ops / procs * (1.0 + imbalance)
        # Oversubscription: procs > cores time-share, so the per-rank rate
        # drops by procs/cores while the busiest share stays the same.
        slowdown = procs / effective
        parallel_s = busiest_share * slowdown / rate

        comm_s = 0.0
        spawn_s = 0.0
        if procs > 1:
            latency, bandwidth = self._comm_params(procs)
            comm_s = (
                workload.messages(procs) * latency
                + workload.message_bytes(procs) / bandwidth
            )
            spawn_s = workload.spawn_overhead_s * procs
        return TimeBreakdown(
            procs=procs,
            serial_s=serial_ops / rate,
            parallel_s=parallel_s,
            comm_s=comm_s,
            spawn_s=spawn_s,
        )

    def sweep(self, workload: Workload, proc_counts: list[int]) -> list[TimeBreakdown]:
        """Cost the workload at every process count (a scaling study)."""
        return [self.time(workload, p) for p in proc_counts]
