"""Remote-access gateway with fail2ban-style lockout.

Models the operational incident in Section IV-B: "eager beaver"
participants who raced ahead of the instructions and attempted incorrect
VNC logins triggered a firewall rule that suspended their VNC access —
while ssh continued to work, so they could still finish the exercise.
The failure-injection tests and the workshop simulation use this model to
reproduce (and teach) that lesson.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Protocol", "AccessGateway", "LoginAttempt", "LoginOutcome"]


class Protocol(str, Enum):
    SSH = "ssh"
    VNC = "vnc"


class LoginOutcome(str, Enum):
    SUCCESS = "success"
    BAD_CREDENTIALS = "bad-credentials"
    BLOCKED = "blocked"


@dataclass(frozen=True)
class LoginAttempt:
    """One attempt in the gateway's audit log."""

    user: str
    protocol: Protocol
    time_s: float
    outcome: LoginOutcome


@dataclass
class _UserState:
    failures: int = 0
    blocked_until: float = 0.0


class AccessGateway:
    """Per-protocol login tracking with threshold-based temporary bans.

    Matching the St. Olaf VM's configuration, the ban applies per protocol:
    a VNC lockout does not touch ssh, which is exactly what let the locked-
    out participants complete the exercise over ssh.
    """

    def __init__(
        self,
        max_failures: int = 3,
        ban_duration_s: float = 600.0,
        banned_protocols: tuple[Protocol, ...] = (Protocol.VNC,),
    ) -> None:
        if max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if ban_duration_s <= 0:
            raise ValueError("ban_duration_s must be positive")
        self.max_failures = max_failures
        self.ban_duration_s = ban_duration_s
        self.banned_protocols = banned_protocols
        self._state: dict[tuple[str, Protocol], _UserState] = {}
        self.audit_log: list[LoginAttempt] = []

    def _user(self, user: str, protocol: Protocol) -> _UserState:
        return self._state.setdefault((user, protocol), _UserState())

    def is_blocked(self, user: str, protocol: Protocol, now_s: float) -> bool:
        """Whether this user/protocol pair is currently banned."""
        return self._user(user, protocol).blocked_until > now_s

    def attempt(
        self, user: str, protocol: Protocol, credentials_ok: bool, now_s: float
    ) -> LoginOutcome:
        """Process one login attempt and return its outcome."""
        protocol = Protocol(protocol)
        state = self._user(user, protocol)
        if state.blocked_until > now_s:
            outcome = LoginOutcome.BLOCKED
        elif credentials_ok:
            state.failures = 0
            outcome = LoginOutcome.SUCCESS
        else:
            state.failures += 1
            outcome = LoginOutcome.BAD_CREDENTIALS
            if (
                state.failures >= self.max_failures
                and protocol in self.banned_protocols
            ):
                state.blocked_until = now_s + self.ban_duration_s
        self.audit_log.append(LoginAttempt(user, protocol, now_s, outcome))
        return outcome

    def blocked_users(self, now_s: float) -> list[tuple[str, Protocol]]:
        return [
            (user, proto)
            for (user, proto), st in self._state.items()
            if st.blocked_until > now_s
        ]

    def fallback_available(self, user: str, now_s: float) -> bool:
        """The paper's saving grace: ssh still works when VNC is banned."""
        return not self.is_blocked(user, Protocol.SSH, now_s)
