"""``repro.platforms`` — machine models, simulated timing, and access control.

This package substitutes for the hardware the paper used: Raspberry Pis,
Google Colab's unicore VM, the Chameleon Cloud cluster, and the St. Olaf
64-core VM.  A deterministic cost model reproduces each platform's
qualitative performance behaviour (see DESIGN.md's substitution map).
"""

from .access import AccessGateway, LoginAttempt, LoginOutcome, Protocol
from .machine import (
    CHAMELEON_NODE,
    COLAB_VM,
    PLATFORMS,
    RASPBERRY_PI_3B,
    RASPBERRY_PI_4,
    ST_OLAF_VM,
    STUDENT_LAPTOP,
    Cluster,
    Machine,
    chameleon_cluster,
    pi_beowulf_cluster,
)
from .contention import ContentionPoint, SharedMachineModel
from .simclock import CostModel, TimeBreakdown, Workload
from .speedup import (
    ScalingStudy,
    amdahl_speedup,
    gustafson_speedup,
    karp_flatt_fraction,
    measure_study,
    measure_wall_time,
)

__all__ = [
    "Machine",
    "Cluster",
    "CostModel",
    "Workload",
    "TimeBreakdown",
    "ScalingStudy",
    "SharedMachineModel",
    "ContentionPoint",
    "amdahl_speedup",
    "gustafson_speedup",
    "karp_flatt_fraction",
    "measure_study",
    "measure_wall_time",
    "AccessGateway",
    "Protocol",
    "LoginOutcome",
    "LoginAttempt",
    "RASPBERRY_PI_3B",
    "RASPBERRY_PI_4",
    "COLAB_VM",
    "ST_OLAF_VM",
    "CHAMELEON_NODE",
    "STUDENT_LAPTOP",
    "chameleon_cluster",
    "pi_beowulf_cluster",
    "PLATFORMS",
]
