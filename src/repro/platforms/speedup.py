"""Speedup, efficiency, and scalability analysis.

The closing half hour of the shared-memory module is "a small benchmarking
study": run an exemplar at 1..N threads, tabulate speedup and efficiency,
and compare against Amdahl's bound.  These helpers implement that study's
arithmetic, plus Gustafson scaling and the Karp-Flatt experimentally
determined serial fraction for the extension exercises.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = [
    "ScalingStudy",
    "amdahl_speedup",
    "gustafson_speedup",
    "karp_flatt_fraction",
    "measure_wall_time",
    "measure_study",
]


def amdahl_speedup(serial_fraction: float, procs: int) -> float:
    """Amdahl's law: ``1 / (f + (1-f)/p)``."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    if procs < 1:
        raise ValueError("procs must be >= 1")
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / procs)


def gustafson_speedup(serial_fraction: float, procs: int) -> float:
    """Gustafson's law (scaled speedup): ``p - f * (p - 1)``."""
    if not 0.0 <= serial_fraction <= 1.0:
        raise ValueError("serial fraction must be in [0, 1]")
    if procs < 1:
        raise ValueError("procs must be >= 1")
    return procs - serial_fraction * (procs - 1)


def karp_flatt_fraction(speedup: float, procs: int) -> float:
    """Experimentally determined serial fraction ``e = (1/S - 1/p)/(1 - 1/p)``."""
    if procs < 2:
        raise ValueError("Karp-Flatt needs procs >= 2")
    if speedup <= 0:
        raise ValueError("speedup must be positive")
    return (1.0 / speedup - 1.0 / procs) / (1.0 - 1.0 / procs)


def measure_wall_time(
    fn: Callable[[], object],
    *,
    warmup: int = 1,
    repeat: int = 3,
) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``fn()`` after warmup runs.

    Best-of (not mean) is the standard noise-rejection choice for
    wall-clock microbenchmarks: interference only ever *adds* time.
    """
    if repeat < 1:
        raise ValueError("repeat must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be non-negative")
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    # perf_counter has finite resolution; a 0.0 reading would poison the
    # derived speedup columns, so clamp to one tick.
    return max(best, 1e-9)


def measure_study(
    run: Callable[[int], object],
    proc_counts: Sequence[int],
    *,
    platform: str = "measured",
    workload: str = "workload",
    warmup: int = 1,
    repeat: int = 3,
) -> ScalingStudy:
    """*Measured* wall-clock scaling study (vs. the simulated cost models).

    ``run(p)`` must execute the workload with ``p`` workers; each count is
    timed with :func:`measure_wall_time` and the resulting series feeds the
    same :class:`ScalingStudy` arithmetic the handout's simulated studies
    use — so real and simulated curves are directly comparable.  The first
    count must be 1 (the sequential baseline).
    """
    counts = list(proc_counts)
    times = [
        measure_wall_time(lambda p=p: run(p), warmup=warmup, repeat=repeat)
        for p in counts
    ]
    return ScalingStudy(
        platform=platform,
        workload=workload,
        proc_counts=counts,
        times_s=times,
    )


@dataclass
class ScalingStudy:
    """A (procs, time) series with derived speedup/efficiency columns."""

    platform: str
    workload: str
    proc_counts: list[int]
    times_s: list[float]

    def __post_init__(self) -> None:
        if len(self.proc_counts) != len(self.times_s):
            raise ValueError("proc_counts and times_s must align")
        if not self.proc_counts:
            raise ValueError("a scaling study needs at least one point")
        if self.proc_counts[0] != 1:
            raise ValueError("scaling studies must include the 1-process baseline")
        if any(t <= 0 for t in self.times_s):
            raise ValueError("times must be positive")

    @property
    def baseline_s(self) -> float:
        return self.times_s[0]

    @property
    def speedups(self) -> list[float]:
        return [self.baseline_s / t for t in self.times_s]

    @property
    def efficiencies(self) -> list[float]:
        return [s / p for s, p in zip(self.speedups, self.proc_counts)]

    @property
    def max_speedup(self) -> float:
        return max(self.speedups)

    def shows_speedup(self, threshold: float = 1.5) -> bool:
        """The paper's qualitative claim: does this platform speed up at all?"""
        return self.max_speedup >= threshold

    def crossover_procs(self) -> int | None:
        """First process count where adding processes *hurt* (None if never)."""
        times = self.times_s
        for i in range(1, len(times)):
            if times[i] > times[i - 1]:
                return self.proc_counts[i]
        return None

    def rows(self) -> list[tuple[int, float, float, float]]:
        """(procs, time_s, speedup, efficiency) rows for a report table."""
        return [
            (p, t, s, e)
            for p, t, s, e in zip(
                self.proc_counts, self.times_s, self.speedups, self.efficiencies
            )
        ]

    def format_table(self) -> str:
        """Render the study the way the handout's benchmarking study does."""
        lines = [
            f"{self.workload} on {self.platform}",
            f"{'procs':>6} {'time (s)':>12} {'speedup':>9} {'efficiency':>11}",
        ]
        for p, t, s, e in self.rows():
            lines.append(f"{p:>6} {t:>12.6f} {s:>9.2f} {e:>11.2f}")
        return "\n".join(lines)
