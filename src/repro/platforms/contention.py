"""Shared-machine contention: many learners, one server.

The paper's distributed module points a whole workshop (22 participants)
at shared back-ends — the St. Olaf 64-core VM or a Chameleon allocation.
Asynchronous self-pacing softens the load, but the sizing question is
real: *how many simultaneous learners can a platform carry before their
exemplar runs degrade noticeably?*  This model answers it with the same
deterministic cost accounting as :mod:`repro.platforms.simclock`:

* each active learner runs the same job (``workload`` at ``procs``
  processes);
* when total demanded processes exceed the machine's cores, every job's
  compute phase stretches by the oversubscription factor;
* communication and spawn overheads are per-job and do not contend (they
  are latency-bound, not core-bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from .machine import Cluster, Machine
from .simclock import CostModel, Workload

__all__ = ["ContentionPoint", "SharedMachineModel"]


@dataclass(frozen=True)
class ContentionPoint:
    """Job time with N simultaneous learners on the shared platform."""

    concurrent_learners: int
    demanded_procs: int
    slowdown: float
    job_time_s: float


class SharedMachineModel:
    """Cost model for one platform shared by a class of identical jobs."""

    def __init__(self, platform: Machine | Cluster) -> None:
        self.platform = platform
        self._model = CostModel(platform)

    def job_time(
        self, workload: Workload, procs: int, concurrent_learners: int
    ) -> ContentionPoint:
        """Per-learner job time when ``concurrent_learners`` run at once."""
        if concurrent_learners < 1:
            raise ValueError("need at least one learner")
        solo = self._model.time(workload, procs)
        demanded = procs * concurrent_learners
        slowdown = max(1.0, demanded / self.platform.cores)
        return ContentionPoint(
            concurrent_learners=concurrent_learners,
            demanded_procs=demanded,
            slowdown=slowdown,
            job_time_s=solo.parallel_s * slowdown
            + solo.serial_s
            + solo.comm_s
            + solo.spawn_s,
        )

    def capacity(
        self,
        workload: Workload,
        procs: int,
        max_slowdown: float = 2.0,
        ceiling: int = 1024,
    ) -> int:
        """Most simultaneous learners whose jobs stay within ``max_slowdown``
        of the solo job time."""
        if max_slowdown < 1.0:
            raise ValueError("max_slowdown must be >= 1.0")
        solo = self.job_time(workload, procs, 1).job_time_s
        best = 0
        for learners in range(1, ceiling + 1):
            point = self.job_time(workload, procs, learners)
            if point.job_time_s <= solo * max_slowdown:
                best = learners
            else:
                break
        return best

    def sweep(
        self, workload: Workload, procs: int, learner_counts: list[int]
    ) -> list[ContentionPoint]:
        return [self.job_time(workload, procs, n) for n in learner_counts]

    def format_table(
        self, workload: Workload, procs: int, learner_counts: list[int]
    ) -> str:
        lines = [
            f"{workload.name} at {procs} procs/learner on {self.platform.name}",
            f"{'learners':>9} {'demand':>7} {'slowdown':>9} {'job time (s)':>13}",
        ]
        for point in self.sweep(workload, procs, learner_counts):
            lines.append(
                f"{point.concurrent_learners:>9} {point.demanded_procs:>7} "
                f"{point.slowdown:>9.2f} {point.job_time_s:>13.4f}"
            )
        return "\n".join(lines)
