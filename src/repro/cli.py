"""Command-line interface: ``python -m repro <command>``.

Gives instructors and students the whole toolkit without writing Python:

* ``list`` — enumerate the patternlet catalog;
* ``run <paradigm> <name>`` — run one patternlet and show its trace;
* ``analyze <name>`` — run a patternlet under the happens-before race
  detector (openmp) or the MPI correctness checker (mpi) and report
  diagnostics (``--json`` for machine-readable output);
* ``lint <path|patternlet> ...`` — pdclint, the static analyzer: AST rules
  over learner Python plus ``#pragma omp`` checks on the C listings,
  without running anything (``--select``/``--ignore`` filter rules);
* ``notebook [colab|chameleon]`` — execute a notebook, optionally exporting
  the executed ``.ipynb``;
* ``handout`` — render the Raspberry Pi virtual handout (text or HTML);
* ``bench`` — run real wall-clock benchmarks (warmup/repeat control,
  schema-versioned JSON results, regression gate vs a committed baseline);
* ``serve`` — boot the multi-tenant course platform over HTTP (class-code
  join, cached module reads, graded submissions, instructor gradebooks,
  ``/healthz``/``/readyz``/``/metricz``);
* ``serve-load`` — drive thousands of simulated learners through the
  in-process server, closed loop, and report throughput + p50/p99 latency;
* ``trace <name>`` — run a patternlet or exemplar under the ``repro.obs``
  event bus and report lanes, wait attribution, and message traffic
  (``--chrome out.json`` exports a Perfetto-loadable timeline);
* ``explore <name>`` — systematically explore thread schedules (openmp)
  or injected fault plans (mpi) for a patternlet, cross-validated against
  the analysis engines; ``--replay TOKEN`` reproduces one schedule or
  fault plan deterministically, ``--repro-dir`` writes minimized repros;
* ``study <exemplar> <platform>`` — print a platform scaling study;
* ``report`` — regenerate the paper's evaluation artifacts (Tables I-II,
  Figures 3-4, workshop findings);
* ``mpirun -np N <script.py>`` — run a Python script SPMD on the
  in-process runtime.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Hands-on PDC teaching materials (EduPar 2021 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list the patternlet catalog")
    p_list.add_argument("paradigm", nargs="?", choices=("openmp", "mpi"))

    p_run = sub.add_parser("run", help="run one patternlet")
    p_run.add_argument("paradigm", choices=("openmp", "mpi"))
    p_run.add_argument("name")
    p_run.add_argument("--np", type=int, default=4, dest="nprocs",
                       help="processes (mpi) / threads (openmp)")
    p_run.add_argument("--source", action="store_true",
                       help="print the patternlet's code listing instead")

    p_analyze = sub.add_parser(
        "analyze",
        help="run a patternlet under the race detector / MPI checker",
    )
    p_analyze.add_argument("name", help="patternlet to analyze")
    p_analyze.add_argument("--paradigm", choices=("openmp", "mpi"),
                           help="disambiguate when both runtimes have the name")
    p_analyze.add_argument("--np", type=int, default=None, dest="nprocs",
                           help="processes (mpi) / threads (openmp)")
    p_analyze.add_argument("--json", action="store_true", dest="as_json",
                           help="emit the report as JSON instead of text")

    p_lint = sub.add_parser(
        "lint",
        help="static-analyze learner code with pdclint (no execution)",
    )
    p_lint.add_argument(
        "targets", nargs="+", metavar="path|patternlet",
        help="files/directories to lint, a patternlet name, or the special "
             "target 'clistings' (C-listing consistency check)",
    )
    p_lint.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON instead of text")
    p_lint.add_argument("--format", choices=("text", "json", "github"),
                        default=None,
                        help="output format (github: ::error/::warning "
                             "workflow annotations for CI)")
    p_lint.add_argument("--select", metavar="IDS",
                        help="comma-separated rule ids to run (default: all)")
    p_lint.add_argument("--ignore", metavar="IDS",
                        help="comma-separated rule ids to skip")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="ratchet mode: findings fingerprinted in FILE "
                             "are reported as suppressed, only new ones fail")
    p_lint.add_argument("--update-baseline", metavar="FILE",
                        dest="update_baseline",
                        help="write the current findings to FILE as the "
                             "accepted baseline and exit 0")
    p_lint.add_argument("--seed-explore", action="store_true",
                        dest="seed_explore",
                        help="also emit racy/deadlock exploration hints "
                             "(JSON key 'explore_hints')")
    p_lint.add_argument("--cost", action="store_true",
                        help="enable the scalability rules PDC120-PDC122 "
                             "(static cost analysis of every SPMD body)")
    p_lint.add_argument("--cost-report", metavar="FILE", dest="cost_report",
                        help="write the per-file cost models (message/byte "
                             "polynomials, work profiles) as JSON to FILE")
    p_lint.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="lint files with N worker processes "
                             "(output is byte-identical to serial)")
    p_lint.add_argument("--cache", action="store_true",
                        help="reuse per-file results keyed by content hash "
                             "(see --cache-dir)")
    p_lint.add_argument("--cache-dir", metavar="DIR", dest="cache_dir",
                        default=".pdclint_cache",
                        help="cache location for --cache "
                             "(default: .pdclint_cache)")

    p_nb = sub.add_parser("notebook", help="execute a teaching notebook")
    p_nb.add_argument("which", nargs="?", default="colab",
                      choices=("colab", "chameleon"))
    p_nb.add_argument("--np", type=int, default=4, dest="nprocs")
    p_nb.add_argument("--export", metavar="PATH",
                      help="write the executed notebook as .ipynb")

    p_handout = sub.add_parser("handout", help="render the Pi virtual handout")
    p_handout.add_argument("--html", metavar="PATH",
                           help="write HTML to PATH instead of printing text")
    p_handout.add_argument("--section", metavar="N.M",
                           help="render just one section (e.g. 2.3)")

    p_bench = sub.add_parser(
        "bench",
        help="run wall-clock benchmarks with a baseline regression gate",
    )
    p_bench.add_argument(
        "names", nargs="*", metavar="bench",
        help="benchmarks to run (default: all; see --list)",
    )
    p_bench.add_argument("--list", action="store_true", dest="list_benches",
                         help="list registered benchmarks and exit")
    p_bench.add_argument("--quick", action="store_true",
                         help="small problem sizes (CI smoke runs)")
    p_bench.add_argument("--warmup", type=int, default=1,
                         help="warmup runs per benchmark (default 1)")
    p_bench.add_argument("--repeat", type=int, default=3,
                         help="timed runs per benchmark; best is kept (default 3)")
    p_bench.add_argument("--backend", default="threads",
                         choices=("threads", "processes"),
                         help="execution backend for the parallel kernels")
    p_bench.add_argument("--out", metavar="PATH",
                         help="result JSON path (default benchmarks/results/)")
    p_bench.add_argument("--baseline", metavar="PATH",
                         help="baseline JSON (default benchmarks/baseline.json)")
    p_bench.add_argument("--threshold", type=float, default=0.30,
                         help="regression gate as a fraction (default 0.30)")
    p_bench.add_argument("--update-baseline", action="store_true",
                         dest="update_baseline",
                         help="write this run as the new baseline (no gate)")
    p_bench.add_argument("--allow-quick-baseline", action="store_true",
                         dest="allow_quick_baseline",
                         help="let --update-baseline accept a --quick run "
                              "(refused by default: smoke sizes are noisy)")
    p_bench.add_argument("--serialization-report", metavar="PATH",
                         dest="serialization_report",
                         help="also write the per-benchmark pickled-bytes "
                              "report (the zero-copy audit CI uploads)")
    p_bench.add_argument("--trace", action="store_true",
                         help="also record each benchmark on the repro.obs "
                              "event bus and write Chrome traces")

    p_trace = sub.add_parser(
        "trace",
        help="profile a patternlet or exemplar on the repro.obs event bus",
    )
    p_trace.add_argument("name", help="patternlet or exemplar to trace")
    p_trace.add_argument("--paradigm", choices=("openmp", "mpi"),
                         help="disambiguate when both runtimes have the name")
    p_trace.add_argument("--np", type=int, default=None, dest="nprocs",
                         help="processes (mpi) / threads (openmp)")
    p_trace.add_argument("--backend", choices=("threads", "processes"),
                         help="execution backend for both runtimes")
    p_trace.add_argument("--json", action="store_true", dest="as_json",
                         help="emit the profile report as JSON")
    p_trace.add_argument("--chrome", metavar="PATH",
                         help="write a Chrome trace-event JSON (Perfetto)")
    p_trace.add_argument("--timeline", action="store_true",
                         help="append the ASCII timeline to the report")

    p_explore = sub.add_parser(
        "explore",
        help="explore schedules (openmp) / fault plans (mpi) for a patternlet",
    )
    p_explore.add_argument("name", help="patternlet to explore")
    p_explore.add_argument("--paradigm", choices=("openmp", "mpi"),
                           help="disambiguate when both runtimes have the name")
    p_explore.add_argument("--seed", type=int, default=0,
                           help="seed for random strategies and fault plans")
    p_explore.add_argument("--schedules", type=int, default=24,
                           help="schedule / fault-plan budget (default 24)")
    p_explore.add_argument("--strategy", default="dfs",
                           choices=("dfs", "random", "rr"),
                           help="schedule search strategy (openmp targets)")
    p_explore.add_argument("--preemption-bound", type=int, default=2,
                           dest="preemption_bound",
                           help="max preemptions per schedule in dfs (default 2)")
    p_explore.add_argument("--faults", metavar="PLAN",
                           help="fault plan for mpi targets: 'random' or e.g. "
                                "'drop:src=0,dst=1,nth=1;crash:rank=1,at=1'")
    p_explore.add_argument("--replay", metavar="TOKEN",
                           help="replay one o1./f1. token twice and verify "
                                "the outcome is identical")
    p_explore.add_argument("--np", type=int, default=None, dest="nprocs",
                           help="processes (mpi) / threads (openmp)")
    p_explore.add_argument("--seed-from-lint", action="store_true",
                           dest="seed_from_lint",
                           help="lint the target first and use the static "
                                "racy/deadlock hints to prioritize schedules")
    p_explore.add_argument("--json", action="store_true", dest="as_json",
                           help="emit the result as JSON instead of text")
    p_explore.add_argument("--repro-dir", metavar="DIR", dest="repro_dir",
                           help="write minimized repro bundle + timeline here")

    p_serve = sub.add_parser(
        "serve",
        help="serve the course platform over HTTP (join/read/submit/gradebook)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642)
    p_serve.add_argument("--persist", choices=("memory", "jsonl"),
                         default="memory",
                         help="progress persistence backend (default memory)")
    p_serve.add_argument("--data-dir", metavar="DIR", dest="data_dir",
                         default="serve-data",
                         help="JSONL log directory for --persist jsonl")
    p_serve.add_argument("--cache-capacity", type=int, default=64,
                         dest="cache_capacity",
                         help="rendered-module LRU entries (default 64)")
    p_serve.add_argument("--max-inflight", type=int, default=8,
                         dest="max_inflight",
                         help="concurrent requests before queuing (default 8)")
    p_serve.add_argument("--max-queue", type=int, default=32,
                         dest="max_queue",
                         help="queued requests before 503 shedding (default 32)")
    p_serve.add_argument("--deadline", type=float, default=2.0,
                         help="per-request deadline in seconds (default 2.0)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each request to stderr")

    p_load = sub.add_parser(
        "serve-load",
        help="drive simulated learners through the in-process course server",
    )
    p_load.add_argument("--learners", type=int, default=1000,
                        help="simulated learners (default 1000)")
    p_load.add_argument("--workers", type=int, default=8,
                        help="closed-loop client threads (default 8)")
    p_load.add_argument("--reads", type=int, default=2,
                        help="module reads per learner (default 2)")
    p_load.add_argument("--submit-questions", type=int, default=3,
                        dest="submit_questions",
                        help="questions each learner answers (default 3)")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--max-inflight", type=int, default=8,
                        dest="max_inflight",
                        help="server concurrency limit under test (default 8)")
    p_load.add_argument("--max-queue", type=int, default=32, dest="max_queue",
                        help="server queue bound under test (default 32)")
    p_load.add_argument("--json", action="store_true", dest="as_json",
                        help="print the report as JSON instead of text")
    p_load.add_argument("--out", metavar="PATH",
                        help="also write the JSON latency report to PATH "
                             "(the artifact CI uploads)")

    p_study = sub.add_parser("study", help="platform scaling study")
    p_study.add_argument(
        "exemplar",
        choices=("integration", "forestfire", "drugdesign", "heat", "sorting"),
    )
    p_study.add_argument("platform")

    sub.add_parser("report", help="regenerate the paper's evaluation artifacts")

    p_validate = sub.add_parser(
        "validate", help="lint a teaching module's content"
    )
    p_validate.add_argument(
        "module", nargs="?", default="all",
        choices=("raspberry-pi", "distributed", "all"),
    )

    p_mpirun = sub.add_parser("mpirun", help="run a script SPMD in-process")
    p_mpirun.add_argument("-np", "--np", type=int, default=4, dest="nprocs")
    p_mpirun.add_argument("script")
    p_mpirun.add_argument("args", nargs="*")
    return parser


def _cmd_list(args: argparse.Namespace) -> int:
    from .patternlets import all_patternlets

    for p in all_patternlets(args.paradigm):
        print(f"{p.paradigm:6s} {p.order:02d}  {p.name:22s} {p.pattern}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .patternlets import get_patternlet

    patternlet = get_patternlet(args.paradigm, args.name)
    if args.source:
        print(patternlet.source)
        return 0
    kwargs = {"np": args.nprocs} if args.paradigm == "mpi" else {
        "num_threads": args.nprocs
    }
    if args.name == "allreduceArrays":
        kwargs = {"np_procs": args.nprocs}
    try:
        result = patternlet.run(**kwargs)
    except TypeError:
        result = patternlet.run()
    print(result.text or "(no trace)")
    print()
    for key, value in result.values.items():
        print(f"  {key} = {value}")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import analyze, emit_report

    try:
        report = analyze(args.name, paradigm=args.paradigm, nprocs=args.nprocs)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    return emit_report(report, args.as_json)


def _write_cost_report(targets: list[str], out_path: str) -> None:
    """Dump per-file cost models for every Python file in ``targets``."""
    import json
    from pathlib import Path

    from .analysis.lint.engine import _collect_files
    from .analysis.scale.cost import cost_report

    files: list[Path] = []
    for raw in targets:
        path = Path(raw)
        if path.is_dir():
            files.extend(p for p in _collect_files(path)
                         if p.suffix == ".py")
        elif path.is_file() and path.suffix == ".py":
            files.append(path)
    reports = []
    for file in files:
        try:
            text = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            continue
        rep = cost_report(text, str(file))
        if rep.models or rep.notes:
            reports.append(rep.to_dict())
    Path(out_path).write_text(json.dumps(
        {"engine": "pdclint-cost", "files": reports}, indent=2))
    print(f"cost report written to {out_path} "
          f"({len(reports)} file(s) with SPMD bodies)")


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .analysis import emit_report, lint_targets
    from .analysis.lint.baseline import (
        apply_baseline,
        explore_hints,
        load_baseline,
        render_github,
        write_baseline,
    )

    from pathlib import Path

    enable = ["PDC120", "PDC121", "PDC122"] if args.cost else None
    use_driver = (args.jobs > 1 or args.cache) and all(
        Path(t).exists() for t in args.targets)
    try:
        if use_driver:
            from .analysis.scale.driver import lint_corpus

            corpus = lint_corpus(
                args.targets, jobs=args.jobs,
                cache_dir=args.cache_dir if args.cache else None,
                select=args.select, ignore=args.ignore, enable=enable)
            report = corpus.report
            stats = corpus.stats
            print(f"pdclint: {stats['files']} file(s), "
                  f"{stats['cache_hits']} cached, "
                  f"{stats['cache_misses']} linted, jobs={stats['jobs']}",
                  file=sys.stderr)
        else:
            report = lint_targets(args.targets, select=args.select,
                                  ignore=args.ignore, enable=enable)
    except (KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.cost_report:
        _write_cost_report(args.targets, args.cost_report)
    if args.update_baseline:
        delta = write_baseline(report, args.update_baseline)
        print(f"pdclint baseline written to {delta.path} ({delta.summary()})")
        return 0
    if args.baseline:
        try:
            apply_baseline(report, load_baseline(args.baseline))
        except (OSError, ValueError) as exc:
            print(f"bad baseline {args.baseline}: {exc}", file=sys.stderr)
            return 2
    fmt = args.format or ("json" if args.as_json else "text")
    if fmt == "github":
        print(render_github(report))
        return 1 if report.errors else 0
    if fmt == "json":
        payload = report.to_dict()
        if args.seed_explore:
            payload["explore_hints"] = explore_hints(report)
        print(json.dumps(payload, indent=2))
        return 1 if report.errors else 0
    code = emit_report(report, False)
    if args.seed_explore:
        hints = explore_hints(report)
        print(f"explore hints: {len(hints['racy'])} racy, "
              f"{len(hints['deadlock'])} deadlock "
              "(feed to `repro explore <target> --seed-from-lint`)")
    return code


def _cmd_notebook(args: argparse.Namespace) -> int:
    from .runestone import build_chameleon_notebook, build_mpi_colab_notebook

    builder = (
        build_mpi_colab_notebook if args.which == "colab" else build_chameleon_notebook
    )
    notebook = builder(np=args.nprocs)
    results = notebook.run_all()
    failures = 0
    for result in results:
        cell = notebook.cells[result.cell_index]
        if result.kind == "markdown":
            print(f"\n--- {cell.source.splitlines()[0]} ---")
        elif result.ok:
            if result.stdout:
                print(result.stdout)
        else:
            failures += 1
            print(f"[cell {result.cell_index}] ERROR: {result.error}",
                  file=sys.stderr)
    if args.export:
        path = notebook.save_ipynb(args.export, results)
        print(f"\nexecuted notebook written to {path}")
    return 1 if failures else 0


def _cmd_handout(args: argparse.Namespace) -> int:
    from .runestone import (
        build_raspberry_pi_module,
        render_html,
        render_section_text,
        render_text,
    )

    module = build_raspberry_pi_module()
    if args.html:
        Path(args.html).write_text(render_html(module))
        print(f"handout written to {args.html}")
        return 0
    if args.section:
        print(render_section_text(module.find_section(args.section)))
        return 0
    print(render_text(module))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import main as bench_main

    return bench_main(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import CourseApp, demo_registry, serve_forever

    registry = demo_registry(
        backend=args.persist,
        data_dir=args.data_dir,
    )
    app = CourseApp(
        registry,
        cache_capacity=args.cache_capacity,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        deadline_s=args.deadline,
    )
    if app.replayed_records:
        print(f"replayed {app.replayed_records} progress record(s) "
              f"from {args.data_dir}")
    serve_forever(app, args.host, args.port, verbose=args.verbose)
    return 0


def _cmd_serve_load(args: argparse.Namespace) -> int:
    import json

    from .serve import CourseApp, run_load

    app = CourseApp(
        metrics_name=None,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
    )
    report = run_load(
        app,
        learners=args.learners,
        workers=args.workers,
        reads=args.reads,
        submit_questions=args.submit_questions,
        seed=args.seed,
    )
    app.close()
    if args.as_json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if args.out:
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
        print(f"latency report written to {out}", file=sys.stderr)
    return 1 if report.errors else 0


def _cmd_study(args: argparse.Namespace) -> int:
    from .core import run_exemplar_study

    run = run_exemplar_study(args.exemplar, args.platform)
    print(run.study.format_table())
    print(f"\n{run.learner_takeaway()}")
    return 0


def _cmd_report(_args: argparse.Namespace) -> int:
    from .assessment import figure3, figure4, table2
    from .core import simulate_workshop
    from .kits import render_table1

    print(render_table1())
    print()
    print(table2().render())
    print()
    print(figure3().render())
    print()
    print(figure4().render())
    print()
    report = simulate_workshop()
    for finding in report.headline_findings():
        print(f"- {finding}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .runestone import (
        build_distributed_module,
        build_raspberry_pi_module,
        validate_module,
    )

    builders = {
        "raspberry-pi": [build_raspberry_pi_module],
        "distributed": [build_distributed_module],
        "all": [build_raspberry_pi_module, build_distributed_module],
    }[args.module]
    worst = 0
    for builder in builders:
        module = builder()
        findings = validate_module(module, run_activities=True)
        if findings:
            print(f"{module.slug}: {len(findings)} finding(s)")
            for finding in findings:
                print(f"  {finding}")
            if any(f.level == "error" for f in findings):
                worst = 1
        else:
            print(f"{module.slug}: clean")
    return worst


def _cmd_mpirun(args: argparse.Namespace) -> int:
    from .mpi import run_script

    source = Path(args.script).read_text()
    result = run_script(
        source, args.nprocs, script_name=args.script, argv=args.args
    )
    print(result.stdout)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .obs import (
        profile_report,
        render_text,
        render_timeline,
        trace_target,
        write_chrome_trace,
    )

    try:
        profile, _result = trace_target(
            args.name,
            paradigm=args.paradigm,
            nprocs=args.nprocs,
            backend=args.backend,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(profile_report(profile), indent=2))
    else:
        print(render_text(profile))
        if args.timeline:
            print(render_timeline(profile))
    if args.chrome:
        out = write_chrome_trace(args.chrome, profile)
        print(f"chrome trace written to {out}", file=sys.stderr)
    if not profile.lanes:
        print("no events were recorded", file=sys.stderr)
        return 1
    return 0


def _cmd_explore(args: argparse.Namespace) -> int:
    import json

    from .testkit import explore_target, replay_faults, replay_schedule

    if args.replay:
        try:
            replay = replay_schedule if args.replay.startswith("o1.") else replay_faults
            first = replay(args.name, args.replay, paradigm=args.paradigm,
                           nprocs=args.nprocs)
            second = replay(args.name, args.replay, paradigm=args.paradigm,
                            nprocs=args.nprocs)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        identical = first.to_dict() == second.to_dict()
        payload = {
            "replay": args.replay,
            "deterministic": identical,
            "outcome": first.to_dict(),
        }
        if args.as_json:
            print(json.dumps(payload, indent=2))
        else:
            verdict = "deterministic" if identical else "NONDETERMINISTIC"
            print(f"replay {args.replay}: {verdict}")
            for key, value in first.to_dict().items():
                print(f"  {key} = {value}")
        if not identical:
            return 1
        return 1 if first.flagged else 0

    seed_hints = None
    if args.seed_from_lint:
        from .analysis.lint.baseline import explore_hints
        from .analysis.lint.engine import lint_patternlet

        try:
            seed_hints = explore_hints(
                lint_patternlet(args.name, args.paradigm))
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        print(f"seeded from lint: {len(seed_hints['racy'])} racy, "
              f"{len(seed_hints['deadlock'])} deadlock hint(s)",
              file=sys.stderr)

    try:
        result = explore_target(
            args.name,
            paradigm=args.paradigm,
            seed=args.seed,
            max_schedules=args.schedules,
            strategy=args.strategy,
            preemption_bound=args.preemption_bound,
            faults=args.faults,
            nprocs=args.nprocs,
            with_timeline=args.repro_dir is not None,
            seed_hints=seed_hints,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(json.dumps(result.to_dict(), indent=2) if args.as_json
          else result.render())
    if args.repro_dir and result.minimized:
        out = Path(args.repro_dir)
        out.mkdir(parents=True, exist_ok=True)
        bundle = out / f"{args.name}-repro.json"
        bundle.write_text(json.dumps({
            "target": result.target,
            "token": result.minimized,
            "replay": f"repro explore {args.name} --replay {result.minimized}",
            "seed": result.seed,
            "strategy": result.strategy,
        }, indent=2) + "\n")
        print(f"minimized repro written to {bundle}", file=sys.stderr)
        if result.timeline:
            tl = out / f"{args.name}-timeline.txt"
            tl.write_text(result.timeline + "\n")
            print(f"timeline written to {tl}", file=sys.stderr)
    if not result.agreement:
        print("warning: explorer and analyzer verdicts disagree",
              file=sys.stderr)
    return 1 if result.flagged else 0


_HANDLERS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "analyze": _cmd_analyze,
    "lint": _cmd_lint,
    "notebook": _cmd_notebook,
    "handout": _cmd_handout,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "serve-load": _cmd_serve_load,
    "trace": _cmd_trace,
    "explore": _cmd_explore,
    "study": _cmd_study,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "mpirun": _cmd_mpirun,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _HANDLERS[args.command](args)
    except BrokenPipeError:  # output piped into head/less that closed early
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
