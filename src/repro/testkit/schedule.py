"""Deterministic schedule control for the ``repro.openmp`` runtime.

The shared-memory runtime already announces every synchronization and
memory event through :mod:`repro.openmp.hooks` — and observers run *in
the emitting thread*, which means an observer can park that thread.  The
:class:`ScheduleController` exploits this: it serializes a team so that
exactly one member runs at a time, and at every instrumented yield point
(shared reads/writes, lock acquisitions, barriers) it hands the turn to
whichever thread a pluggable :class:`Scheduler` picks.  The result is a
*deterministic* interleaving: the same scheduler decisions produce the
same execution, every run, on any machine.

Yield discipline.  Events are emitted *before* the operation they
announce (``read``/``write`` precede the access, ``acquire_enter``
precedes the lock attempt), so a thread parked at an event has not yet
performed the operation — the granted thread always executes exactly its
announced pending op.  Threads never block on a real lock while
unscheduled: a thread wanting a held lock parks on its turn gate and only
becomes runnable once the owner has released, so multi-waiter lock
handoff is scheduler-chosen, not OS-chosen.

Schedules are summarized as compact **replay tokens**: at each decision
with more than one runnable thread, the chosen team-thread number is
appended (base-36); forced decisions are omitted.  ``o1.<nthreads>.<chars>``
replays byte-for-byte via :class:`ReplayScheduler`.

The controller fails *open*: a stall watchdog releases every gate if no
progress happens for ``stall_timeout`` seconds (e.g. a body blocked on an
uninstrumented primitive), so a bad schedule degrades to a free-running
— but flagged — execution instead of hanging the test suite.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..openmp import hooks as _hooks

__all__ = [
    "Decision",
    "ScheduledRun",
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "ReplayScheduler",
    "ConflictEagerScheduler",
    "ScheduleController",
    "run_scheduled",
    "encode_token",
    "decode_token",
    "lost_update_witness",
]

# Thread states.  WAITING threads are parked on their turn gate and
# runnable (subject to lock availability); BARRIER threads sit in the real
# team barrier; TRANSIT threads were released by the barrier and are racing
# to their next park point (no decisions fire until they all re-park).
WAITING, RUNNING, BARRIER, TRANSIT, DONE = (
    "waiting", "running", "barrier", "transit", "done",
)

_TOKEN_DIGITS = "0123456789abcdefghijklmnopqrstuvwxyz"


@dataclass(frozen=True)
class Decision:
    """One scheduling decision: who could run, what they would do, who ran."""

    index: int
    runnable: tuple[int, ...]
    pending: dict[int, tuple]
    chosen: int

    @property
    def forced(self) -> bool:
        return len(self.runnable) == 1


class Scheduler:
    """Strategy interface: consulted only at branch points (>1 runnable)."""

    def choose(
        self, runnable: Sequence[int], pending: dict[int, tuple], last: int | None
    ) -> int:
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Seeded uniform choice — the fuzzing strategy."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, runnable, pending, last):
        return self._rng.choice(list(runnable))


class RoundRobinScheduler(Scheduler):
    """Fair rotation: the lowest thread above the last choice, cycling."""

    def __init__(self) -> None:
        self._last = -1

    def choose(self, runnable, pending, last):
        above = [t for t in runnable if t > self._last]
        choice = min(above) if above else min(runnable)
        self._last = choice
        return choice


class ReplayScheduler(Scheduler):
    """Replay a recorded branch-choice sequence; deterministic fill beyond it.

    When the recorded choice is impossible (the workload changed shape) the
    scheduler falls back to the lowest runnable thread and clears
    :attr:`faithful`, so callers can tell an exact replay from a best-effort
    one.  Past the end of the sequence it prefers to keep the current thread
    running (fewest context switches), else picks the lowest runnable.
    """

    def __init__(self, choices: Sequence[int]) -> None:
        self.choices = list(choices)
        self.consumed = 0
        self.faithful = True

    def choose(self, runnable, pending, last):
        if self.consumed < len(self.choices):
            want = self.choices[self.consumed]
            self.consumed += 1
            if want in runnable:
                return want
            self.faithful = False
            return min(runnable)
        if last is not None and last in runnable:
            return last
        return min(runnable)


class ConflictEagerScheduler(Scheduler):
    """Deterministic lost-update hunter, used by lint-seeded exploration.

    Tracks open read→write windows the way :func:`lost_update_witness`
    does and, at every branch, prefers in order: a write landing inside
    another thread's open window (that *is* the witness), a read
    overlapping someone else's window, any other shared read, waking a
    parked thread.  Ties break toward the lowest thread number, so the
    schedule — and its replay token — is fully deterministic.
    """

    def __init__(self) -> None:
        self._open: dict[Any, set[int]] = {}

    def _rank(self, t: int, op: tuple) -> int:
        kind = op[0]
        if kind == "write" and self._open.get(op[1], set()) - {t}:
            return 0
        if kind == "read":
            return 1 if self._open.get(op[1], set()) - {t} else 2
        if kind in ("start", "resume"):
            return 3
        return 4

    def choose(self, runnable, pending, last):
        chosen = min(runnable, key=lambda t: (self._rank(t, pending[t]), t))
        op = pending[chosen]
        if op[0] == "read":
            self._open.setdefault(op[1], set()).add(chosen)
        elif op[0] == "write":
            self._open.get(op[1], set()).discard(chosen)
        return chosen


def encode_token(nthreads: int, decisions: Sequence[Decision]) -> str:
    """Compact replay token: version, team width, branch choices (base-36)."""
    chars = "".join(
        _TOKEN_DIGITS[d.chosen] for d in decisions if not d.forced
    )
    return f"o1.{nthreads}.{chars or '-'}"


def decode_token(token: str) -> tuple[int, list[int]]:
    """Parse a replay token into ``(nthreads, branch_choices)``."""
    parts = token.split(".")
    if len(parts) != 3 or parts[0] != "o1":
        raise ValueError(
            f"bad schedule token {token!r}: expected 'o1.<nthreads>.<choices>'"
        )
    try:
        nthreads = int(parts[1])
    except ValueError:
        raise ValueError(f"bad thread count in schedule token {token!r}") from None
    if parts[2] == "-":
        return nthreads, []
    try:
        choices = [_TOKEN_DIGITS.index(c) for c in parts[2]]
    except ValueError:
        raise ValueError(f"bad choice characters in schedule token {token!r}") from None
    return nthreads, choices


class ScheduleController:
    """Observer that serializes a team and drives it from a :class:`Scheduler`.

    Attach with ``hooks.attach(controller)`` (plain observer); the first
    ``fork`` it sees becomes the controlled region.  Nested regions are
    serialized by the runtime (team of one) and pass through uncontrolled.
    """

    def __init__(self, scheduler: Scheduler, stall_timeout: float = 10.0) -> None:
        self.scheduler = scheduler
        self.stall_timeout = stall_timeout
        self.decisions: list[Decision] = []
        self.stalled = False
        self.nthreads = 0

        self._mutex = threading.Lock()
        self._active_team: int | None = None
        self._threads: dict[int, int] = {}  # OS ident -> team thread num
        self._gates: dict[int, threading.Semaphore] = {}
        self._states: dict[int, str] = {}
        self._pending: dict[int, tuple] = {}
        self._lock_owner: dict[Any, int] = {}
        self._barrier_set: set[int] = set()
        self._transit = 0
        self._registered = 0
        self._done = 0
        self._started = False
        self._current: int | None = None
        self._last: int | None = None
        self._heartbeat = 0
        self._closed = False

    # ------------------------------------------------------------- scheduling
    def _runnable(self, t: int) -> bool:
        state = self._states[t]
        if state != WAITING:
            return False
        op = self._pending[t]
        if op[0] == "acquire":  # parked before a lock attempt: needs it free
            return op[1] not in self._lock_owner
        return True

    def _dispatch(self) -> None:
        """Pick and grant the next thread.  Caller holds ``_mutex``."""
        if self._current is not None or self._transit or not self._started:
            return
        runnable = tuple(t for t in sorted(self._states) if self._runnable(t))
        if not runnable:
            return  # everyone is in the barrier (or finished)
        if len(runnable) == 1:
            chosen = runnable[0]
        else:
            chosen = self.scheduler.choose(
                runnable, {t: self._pending[t] for t in runnable}, self._last
            )
            if chosen not in runnable:  # defensive: a broken strategy
                chosen = min(runnable)
        self.decisions.append(
            Decision(
                index=len(self.decisions),
                runnable=runnable,
                pending={t: self._pending[t] for t in runnable},
                chosen=chosen,
            )
        )
        self._current = chosen
        self._last = chosen
        self._states[chosen] = RUNNING
        self._gates[chosen].release()

    def _park(self, t: int, op: tuple) -> None:
        """Announce ``op``, give up the turn, wait to be granted it back."""
        with self._mutex:
            self._heartbeat += 1
            self._states[t] = WAITING
            self._pending[t] = op
            if self._current == t:
                self._current = None
            self._dispatch()
        self._gates[t].acquire()

    # --------------------------------------------------------------- observer
    def __call__(self, event: str, *args: Any) -> None:
        if self.stalled or self._closed:
            return
        handler = getattr(self, f"_ev_{event}", None)
        if handler is not None:
            handler(*args)

    def _tnum(self) -> int | None:
        return self._threads.get(threading.get_ident())

    # -- region lifecycle --------------------------------------------------
    def _ev_fork(self, team: Any) -> None:
        with self._mutex:
            if self._active_team is None:
                self._active_team = id(team)
                self.nthreads = team.num_threads

    def _ev_thread_begin(self, team: Any, n: int) -> None:
        if id(team) != self._active_team:
            return
        ident = threading.get_ident()
        with self._mutex:
            self._threads[ident] = n
            self._gates[n] = threading.Semaphore(0)
            self._states[n] = WAITING
            self._pending[n] = ("start",)
            self._registered += 1
            self._heartbeat += 1
            if self._registered == self.nthreads:
                self._started = True
                self._dispatch()
        self._gates[n].acquire()

    def _ev_thread_end(self, team: Any, n: int) -> None:
        t = self._tnum()
        if t is None or id(team) != self._active_team:
            return
        with self._mutex:
            self._heartbeat += 1
            if self._states.get(t) == TRANSIT:  # died inside a broken barrier
                self._transit -= 1
            self._barrier_set.discard(t)
            self._states[t] = DONE
            self._done += 1
            if self._current == t:
                self._current = None
            self._dispatch()

    def _ev_join(self, team: Any) -> None:
        if id(team) != self._active_team:
            return
        with self._mutex:
            # Reset so a subsequent region in the same run is controlled too.
            self._active_team = None
            self._threads.clear()
            self._states.clear()
            self._pending.clear()
            self._gates.clear()
            self._lock_owner.clear()
            self._barrier_set.clear()
            self._transit = 0
            self._registered = 0
            self._done = 0
            self._started = False
            self._current = None

    # -- yield points ------------------------------------------------------
    def _ev_read(self, key: Any, obj: Any) -> None:
        t = self._tnum()
        if t is not None and self._states.get(t) == RUNNING:
            self._park(t, ("read", key))

    def _ev_write(self, key: Any, obj: Any) -> None:
        t = self._tnum()
        if t is not None and self._states.get(t) == RUNNING:
            self._park(t, ("write", key))

    def _ev_acquire_enter(self, key: Any) -> None:
        t = self._tnum()
        if t is not None and self._states.get(t) == RUNNING:
            # Park *before* the real acquire; _runnable() admits the thread
            # only once the lock is free, so it never blocks unscheduled.
            self._park(t, ("acquire", key))

    def _ev_acquire(self, key: Any) -> None:
        t = self._tnum()
        if t is not None and self._states.get(t) == RUNNING:
            with self._mutex:
                self._lock_owner[key] = t

    def _ev_release(self, key: Any) -> None:
        t = self._tnum()
        if t is not None and self._states.get(t) == RUNNING:
            with self._mutex:
                self._lock_owner.pop(key, None)

    # -- barriers ----------------------------------------------------------
    def _ev_barrier_enter(self, team: Any) -> None:
        t = self._tnum()
        if t is None or id(team) != self._active_team:
            return
        with self._mutex:
            self._heartbeat += 1
            self._states[t] = BARRIER
            self._barrier_set.add(t)
            self._pending[t] = ("barrier",)
            if self._current == t:
                self._current = None
            live = {u for u, s in self._states.items() if s != DONE}
            if self._barrier_set >= live:
                # Last arrival: the real barrier is about to release everyone
                # at once.  Hold decisions until each member re-parks.
                for m in self._barrier_set:
                    self._states[m] = TRANSIT
                self._transit = len(self._barrier_set)
                self._barrier_set.clear()
            else:
                self._dispatch()
        # fall through to the real team barrier

    def _ev_barrier_exit(self, team: Any) -> None:
        t = self._tnum()
        if t is None or id(team) != self._active_team:
            return
        if self._states.get(t) != TRANSIT:
            return
        with self._mutex:
            self._heartbeat += 1
            self._transit -= 1
            self._states[t] = WAITING
            self._pending[t] = ("resume",)
            if self._transit == 0:
                self._dispatch()
        self._gates[t].acquire()

    # ------------------------------------------------------------- fail-open
    def close(self) -> None:
        """Stop controlling; release every parked thread (idempotent)."""
        with self._mutex:
            self._closed = True
            gates = list(self._gates.values())
        for gate in gates:
            for _ in range(64):
                gate.release()

    def _watch(self, finished: threading.Event) -> None:
        last_beat = -1
        while not finished.wait(self.stall_timeout):
            with self._mutex:
                beat = self._heartbeat
            if beat == last_beat:
                self.stalled = True
                self.close()
                return
            last_beat = beat


@dataclass
class ScheduledRun:
    """Outcome of :func:`run_scheduled`."""

    result: Any
    error: BaseException | None
    decisions: list[Decision]
    nthreads: int
    stalled: bool
    faithful: bool = True
    token: str = ""

    @property
    def ok(self) -> bool:
        return self.error is None and not self.stalled


def run_scheduled(
    fn: Callable[[], Any],
    scheduler: Scheduler,
    stall_timeout: float = 10.0,
) -> ScheduledRun:
    """Run ``fn`` with its parallel regions driven by ``scheduler``.

    Returns the function's result (or captured exception), the decision
    trace, and the replay token that reproduces this exact interleaving.
    """
    controller = ScheduleController(scheduler, stall_timeout=stall_timeout)
    finished = threading.Event()
    watchdog = threading.Thread(
        target=controller._watch, args=(finished,),
        name="testkit-watchdog", daemon=True,
    )
    _hooks.attach(controller)
    watchdog.start()
    result: Any = None
    error: BaseException | None = None
    try:
        result = fn()
    except BaseException as exc:  # noqa: BLE001 - reported, not swallowed
        error = exc
    finally:
        finished.set()
        _hooks.detach(controller)
        controller.close()
    faithful = getattr(scheduler, "faithful", True)
    return ScheduledRun(
        result=result,
        error=error,
        decisions=controller.decisions,
        nthreads=controller.nthreads,
        stalled=controller.stalled,
        faithful=faithful,
        token=encode_token(controller.nthreads, controller.decisions),
    )


def lost_update_witness(decisions: Sequence[Decision]) -> tuple | None:
    """Find an overlapping read-modify-write in a decision trace.

    Returns ``(key, reader, writer)`` when thread ``writer`` wrote ``key``
    while ``reader`` was between its read and its write of the same key —
    the interleaving that *guarantees* a lost update — else ``None``.
    Granted ops are executed in decision order, so scanning the trace is
    exact, not heuristic.
    """
    open_rmw: dict[Any, set[int]] = {}  # key -> threads mid read...write
    for d in decisions:
        op = d.pending[d.chosen]
        if op[0] == "read":
            open_rmw.setdefault(op[1], set()).add(d.chosen)
        elif op[0] == "write":
            readers = open_rmw.get(op[1], set())
            others = readers - {d.chosen}
            if others:
                return (op[1], min(others), d.chosen)
            readers.discard(d.chosen)
    return None
