"""``repro.testkit`` — deterministic schedule exploration and fault injection.

Three layers, mirroring the failure modes the course materials teach:

* :mod:`repro.testkit.schedule` — a cooperative schedule controller for the
  ``repro.openmp`` runtime.  It serializes a team so exactly one thread runs
  between synchronization events, with the interleaving chosen by a seedable
  :class:`Scheduler`.  Any run is captured as a compact replay token
  (``o1.<threads>.<choices>``) that reproduces the identical interleaving.
* :mod:`repro.testkit.faults` — a message-level fault injector for the
  ``repro.mpi`` runtimes (thread ranks *and* forked-process ranks): seeded
  plans drop, duplicate, delay, or reorder messages and crash ranks
  mid-collective, deterministically.
* :mod:`repro.testkit.explore` / :mod:`repro.testkit.diff` — the drivers:
  preemption-bounded systematic schedule search cross-validated against the
  happens-before race detector, and differential property testing that runs
  the paper's exemplars across backends and asserts result equivalence.

``explore`` and ``diff`` are re-exported lazily: they import the patternlet
and analysis packages, which themselves import :mod:`repro.testkit` — a
module-level import here would complete the cycle.
"""

from .faults import (
    FaultInjector,
    FaultPlan,
    FaultRule,
    active_fault_plan,
    fault_injection,
    parse_plan,
)
from .schedule import (
    Decision,
    RandomScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    ScheduledRun,
    Scheduler,
    decode_token,
    encode_token,
    lost_update_witness,
    run_scheduled,
)

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "ReplayScheduler",
    "Decision",
    "ScheduledRun",
    "run_scheduled",
    "encode_token",
    "decode_token",
    "lost_update_witness",
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "fault_injection",
    "parse_plan",
    "active_fault_plan",
    # lazily resolved (import cycle through patternlets/analysis):
    "explore_target",
    "replay_schedule",
    "replay_faults",
    "ExploreResult",
    "ScheduleOutcome",
    "FaultOutcome",
    "EXPLORE_PARAMS",
    "diff_exemplar",
    "DIFF_TARGETS",
    "DiffOutcome",
]

_LAZY = {
    "explore_target": "explore",
    "replay_schedule": "explore",
    "replay_faults": "explore",
    "ExploreResult": "explore",
    "ScheduleOutcome": "explore",
    "FaultOutcome": "explore",
    "EXPLORE_PARAMS": "explore",
    "diff_exemplar": "diff",
    "DIFF_TARGETS": "diff",
    "DiffOutcome": "diff",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    return getattr(module, name)
