"""Seeded fault injection for the ``repro.mpi`` runtimes.

A :class:`FaultPlan` is a small, declarative list of rules — drop,
duplicate, or delay the *nth* message on a (source, destination) edge, or
crash a rank at its *nth* communication operation — with a canonical
string form that doubles as the replay token (``f1.<spec>``).  Because
rules match on deterministic counters (per-edge message ordinals, per-rank
operation ordinals) rather than wall-clock time, a plan reproduces the
same failure on every run, on both the thread-rank and process-rank
backends.

The delivery seams live in :mod:`repro.mpi.comm` (thread ranks: user
messages and collective phases) and :mod:`repro.mpi.procs` (process
ranks); both consult the world's attached :class:`FaultInjector`.  Use
:func:`fault_injection` to arm a plan for a ``with`` block — it hooks
every world created inside the block, including worlds that patternlets
and exemplars create internally.

Rule reference (spec grammar: ``action:key=val,key=val;action:...``):

===========  =====================================================
``drop``     swallow the nth message from ``src`` to ``dst``
``dup``      deliver it ``times`` times (default 2)
``delay``    hold it back until ``after`` later src→dst messages
             have been delivered (a deterministic reorder)
``crash``    raise :class:`~repro.mpi.errors.RankCrashedError` when
             ``rank`` starts its ``at``-th communication operation
===========  =====================================================
"""

from __future__ import annotations

import contextlib
import random
import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator

from ..mpi.errors import RankCrashedError
from ..mpi.runtime import add_world_hook, remove_world_hook

__all__ = [
    "FaultRule",
    "FaultPlan",
    "FaultInjector",
    "fault_injection",
    "active_fault_plan",
    "parse_plan",
]

_ACTIONS = ("drop", "dup", "delay", "crash")

#: Plan armed by :func:`fault_injection`, module-global so forked process
#: ranks inherit it (closures cross ``fork`` but not pickling).
_ACTIVE_PLAN: "FaultPlan | None" = None


def active_fault_plan() -> "FaultPlan | None":
    """The plan armed by the innermost :func:`fault_injection`, if any."""
    return _ACTIVE_PLAN


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault: what to do, where, and when."""

    action: str  # drop | dup | delay | crash
    src: int = -1
    dst: int = -1
    nth: int = 1  # which src->dst message (1-based)
    times: int = 2  # dup: delivery count
    after: int = 1  # delay: deliver after this many later messages
    rank: int = -1  # crash: which rank
    at: int = 1  # crash: at which operation (1-based)

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; expected one of {_ACTIONS}"
            )
        if self.action == "crash":
            if self.rank < 0:
                raise ValueError("crash rule needs rank >= 0")
        elif self.src < 0 or self.dst < 0:
            raise ValueError(f"{self.action} rule needs src >= 0 and dst >= 0")

    def format(self) -> str:
        if self.action == "crash":
            return f"crash:rank={self.rank},at={self.at}"
        fields = [f"src={self.src}", f"dst={self.dst}", f"nth={self.nth}"]
        if self.action == "dup" and self.times != 2:
            fields.append(f"times={self.times}")
        if self.action == "delay" and self.after != 1:
            fields.append(f"after={self.after}")
        return f"{self.action}:{','.join(fields)}"


def _parse_rule(text: str) -> FaultRule:
    action, _, rest = text.partition(":")
    action = action.strip()
    if action not in _ACTIONS:
        raise ValueError(
            f"unknown fault action {action!r}; expected one of {_ACTIONS}"
        )
    fields: dict[str, int] = {}
    if rest.strip():
        for pair in rest.split(","):
            key, _, value = pair.partition("=")
            key = key.strip()
            if key not in ("src", "dst", "nth", "times", "after", "rank", "at"):
                raise ValueError(f"unknown fault field {key!r} in {text!r}")
            try:
                fields[key] = int(value)
            except ValueError:
                raise ValueError(f"bad integer for {key!r} in {text!r}") from None
    if action == "crash":
        if "rank" not in fields:
            raise ValueError(f"crash rule needs rank=N: {text!r}")
    elif "src" not in fields or "dst" not in fields:
        raise ValueError(f"{action} rule needs src=N,dst=M: {text!r}")
    return FaultRule(action=action, **fields)


@dataclass(frozen=True)
class FaultPlan:
    """An ordered set of fault rules with a canonical token form."""

    rules: tuple[FaultRule, ...] = ()

    @property
    def token(self) -> str:
        return f"f1.{self.format()}"

    def format(self) -> str:
        return ";".join(r.format() for r in self.rules) or "none"

    def __bool__(self) -> bool:
        return bool(self.rules)

    def without(self, index: int) -> "FaultPlan":
        """A copy with rule ``index`` removed (for shrinking)."""
        return FaultPlan(self.rules[:index] + self.rules[index + 1:])

    def shrink(self) -> Iterator["FaultPlan"]:
        """Candidate simpler plans: each single-rule removal."""
        for i in range(len(self.rules)):
            yield self.without(i)

    @classmethod
    def random(
        cls,
        seed: int,
        size: int,
        actions: tuple[str, ...] = ("drop", "crash"),
    ) -> "FaultPlan":
        """A seeded plan against a world of ``size`` ranks.

        One rule per requested action, placed by the seeded RNG — the
        fuzzing entry point for ``repro explore --faults random``.
        """
        rng = random.Random(seed)
        rules = []
        for action in actions:
            if action == "crash":
                rules.append(
                    FaultRule(
                        "crash",
                        rank=rng.randrange(size),
                        at=rng.randint(1, 4),
                    )
                )
            else:
                src = rng.randrange(size)
                dst = rng.choice([r for r in range(size) if r != src] or [src])
                rules.append(
                    FaultRule(action, src=src, dst=dst, nth=rng.randint(1, 2))
                )
        return cls(tuple(rules))


def parse_plan(spec: str) -> FaultPlan:
    """Parse a plan spec or token (``f1.`` prefix optional); 'none' = empty."""
    spec = spec.strip()
    if spec.startswith("f1."):
        spec = spec[3:]
    if spec in ("", "none"):
        return FaultPlan()
    return FaultPlan(
        tuple(_parse_rule(part) for part in spec.split(";") if part.strip())
    )


class FaultInjector:
    """Runtime state of one armed plan: deterministic per-edge counters.

    The delivery seams call :meth:`dispositions` with a thunk that performs
    one real delivery; the injector invokes it zero or more times.  Crash
    rules fire from :meth:`on_op`, which the verb entry points call with
    the world rank — the raised :class:`RankCrashedError` then surfaces
    through the runtime's normal failure aggregation as a deterministic
    :class:`~repro.mpi.errors.RankFailedError`.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._edge_count: dict[tuple[int, int], int] = {}
        self._op_count: dict[int, int] = {}
        self._held: dict[tuple[int, int], list[list[Any]]] = {}
        self.log: list[str] = []

    # -- message path -------------------------------------------------------
    def dispositions(
        self, src: int, dst: int, deliver: Callable[[], None]
    ) -> None:
        """Apply message rules for one src→dst send, then deliver."""
        with self._lock:
            n = self._edge_count.get((src, dst), 0) + 1
            self._edge_count[(src, dst)] = n
            copies = 1
            held_here = False
            for rule in self.plan.rules:
                if rule.action == "crash":
                    continue
                if rule.src != src or rule.dst != dst or rule.nth != n:
                    continue
                if rule.action == "drop":
                    copies = 0
                    self.log.append(f"drop {src}->{dst} #{n}")
                elif rule.action == "dup":
                    copies = rule.times
                    self.log.append(f"dup x{rule.times} {src}->{dst} #{n}")
                elif rule.action == "delay":
                    copies = 0
                    held_here = True
                    self._held.setdefault((src, dst), []).append(
                        [rule.after, deliver]
                    )
                    self.log.append(
                        f"delay {src}->{dst} #{n} (after {rule.after})"
                    )
            ready: list[Callable[[], None]] = []
            if not held_here:
                for entry in self._held.get((src, dst), []):
                    entry[0] -= 1
                for entry in list(self._held.get((src, dst), [])):
                    if entry[0] <= 0:
                        ready.append(entry[1])
                        self._held[(src, dst)].remove(entry)
        for _ in range(copies):
            deliver()
        for held_deliver in ready:
            held_deliver()

    # -- crash path ---------------------------------------------------------
    def on_op(self, rank: int) -> None:
        """Count one communication operation for ``rank``; maybe crash it."""
        with self._lock:
            n = self._op_count.get(rank, 0) + 1
            self._op_count[rank] = n
        for rule in self.plan.rules:
            if rule.action == "crash" and rule.rank == rank and rule.at == n:
                self.log.append(f"crash rank {rank} at op {n}")
                raise RankCrashedError(rank, n)


@contextlib.contextmanager
def fault_injection(plan: FaultPlan | str) -> Iterator[FaultInjector]:
    """Arm ``plan`` for every MPI world created inside the block.

    Works for worlds the caller never sees (patternlets build their own)
    via the runtime's world-creation hook, and for forked process ranks
    via a module global the children inherit.
    """
    global _ACTIVE_PLAN
    if isinstance(plan, str):
        plan = parse_plan(plan)
    injector = FaultInjector(plan)

    def hook(world: Any) -> None:
        world.injector = injector

    add_world_hook(hook)
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield injector
    finally:
        _ACTIVE_PLAN = previous
        remove_world_hook(hook)
