"""Schedule and fault-plan exploration: ``repro explore`` back end.

For shared-memory (openmp) targets the explorer runs the patternlet under
a small deterministic workload many times, each time driving the team with
a different schedule:

* ``dfs`` (default) — a preemption-bounded systematic search.  Starting
  from the default schedule it branches only at decisions where an
  alternative thread's pending operation *conflicts* with the chosen one
  (same location with a write involved, or the same lock) — the
  persistent-set insight of DPOR — and prunes revisited prefixes (a
  sleep-set-style memo), so the handful of schedules that can change the
  outcome are explored without enumerating every interleaving.
* ``random`` — seeded fuzzing: ``--schedules N`` runs with derived seeds.
* ``rr`` — a single round-robin schedule (the fairness baseline).

Each explored schedule is assessed three ways: the patternlet's own
property (``expected == actual``), an exact lost-update *witness* scanned
from the decision trace, and — for flagged schedules — a replay under the
PR-1 happens-before race detector, cross-validating the two engines
against each other.  The first flagged schedule is shrunk (greedy ddmin
over its branch choices) into a minimized replay token, and rerun under
the ``repro.obs`` recorder to capture a timeline of the failure.

For distributed (mpi) targets the explorer runs the patternlet under
seeded :class:`~repro.testkit.faults.FaultPlan`\\ s instead: message drops
surface as deterministic ``DeadlockError``, rank crashes as deterministic
``RankFailedError``; failing plans are shrunk rule-by-rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from .faults import FaultPlan, fault_injection, parse_plan
from .schedule import (
    ConflictEagerScheduler,
    Decision,
    RandomScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    ScheduledRun,
    decode_token,
    lost_update_witness,
    run_scheduled,
)

__all__ = [
    "EXPLORE_PARAMS",
    "ScheduleOutcome",
    "FaultOutcome",
    "ExploreResult",
    "explore_target",
    "replay_schedule",
    "replay_faults",
]

#: Small deterministic workloads for exploration runs.  Coverage of the
#: access pattern is what matters; two iterations of a racy loop already
#: contain every interleaving class the full-size run does.
EXPLORE_PARAMS: dict[tuple[str, str], dict[str, Any]] = {
    ("openmp", "race"): {"num_threads": 2, "iterations": 2},
    ("openmp", "critical"): {"num_threads": 2, "iterations": 2},
    ("openmp", "atomic"): {"num_threads": 2, "iterations": 2},
    ("openmp", "reduction"): {"num_threads": 2, "n": 8},
    ("mpi", "deadlock"): {"np": 2, "timeout": 2.5},
    ("mpi", "broadcast"): {"np": 2},
    ("mpi", "reduce"): {"np": 2},
}


@dataclass
class ScheduleOutcome:
    """Verdict for one explored schedule of an openmp target."""

    token: str
    choices: tuple[int, ...]
    property_ok: bool
    witness: tuple | None
    error: str | None
    stalled: bool
    expected: Any = None
    actual: Any = None
    detector_errors: int | None = None  # filled for flagged schedules

    @property
    def flagged(self) -> bool:
        return bool(self.witness) or not self.property_ok or bool(self.error)

    def to_dict(self) -> dict[str, Any]:
        # The witness key is the shared object's id() — stable within a run,
        # meaningless across runs — so only the thread pair is serialized.
        return {
            "token": self.token,
            "flagged": self.flagged,
            "property_ok": self.property_ok,
            "witness": {"reader": self.witness[1], "writer": self.witness[2]}
            if self.witness
            else None,
            "error": self.error,
            "stalled": self.stalled,
            "expected": self.expected,
            "actual": self.actual,
            "detector_errors": self.detector_errors,
        }


@dataclass
class FaultOutcome:
    """Verdict for one fault plan against an mpi target."""

    token: str
    verdict: str  # "ok" | "deadlock" | "rank-failed:<ExcType>" | "error:<ExcType>"
    detail: str = ""

    @property
    def flagged(self) -> bool:
        return self.verdict != "ok"

    def to_dict(self) -> dict[str, Any]:
        return {"token": self.token, "verdict": self.verdict, "detail": self.detail}


@dataclass
class ExploreResult:
    """Everything ``repro explore`` reports for one target."""

    target: str
    paradigm: str
    mode: str  # "schedules" | "faults"
    strategy: str
    seed: int
    outcomes: list = field(default_factory=list)
    analyzer_errors: int = 0
    agreement: bool = True
    minimized: str | None = None
    timeline: str | None = None
    seeded: dict | None = None  # lint hints used to steer the search

    @property
    def flagged(self) -> list:
        return [o for o in self.outcomes if o.flagged]

    def to_dict(self) -> dict[str, Any]:
        payload = {
            "target": self.target,
            "paradigm": self.paradigm,
            "mode": self.mode,
            "strategy": self.strategy,
            "seed": self.seed,
            "schedules_explored": len(self.outcomes),
            "flagged": len(self.flagged),
            "analyzer_errors": self.analyzer_errors,
            "agreement": self.agreement,
            "minimized": self.minimized,
            "outcomes": [o.to_dict() for o in self.outcomes],
        }
        if self.seeded is not None:
            payload["seeded"] = self.seeded
        return payload

    def render(self) -> str:
        lines = [
            f"explore {self.target} [{self.mode}, strategy={self.strategy}, "
            f"seed={self.seed}]",
            f"  explored: {len(self.outcomes)}   flagged: {len(self.flagged)}",
        ]
        for outcome in self.outcomes:
            mark = "FAIL" if outcome.flagged else "ok  "
            detail = ""
            if isinstance(outcome, ScheduleOutcome):
                if outcome.witness:
                    key, reader, writer = outcome.witness
                    detail = (
                        f" lost update: thread {writer} wrote mid-RMW of "
                        f"thread {reader}"
                    )
                elif not outcome.property_ok:
                    detail = f" expected {outcome.expected}, got {outcome.actual}"
                if outcome.error:
                    detail += f" error={outcome.error}"
            else:
                detail = f" {outcome.verdict}"
                if outcome.detail:
                    detail += f": {outcome.detail}"
            lines.append(f"  {mark} {outcome.token}{detail}")
        lines.append(
            f"  analyzer: {self.analyzer_errors} error(s) — "
            + ("verdicts agree" if self.agreement else "VERDICTS DISAGREE")
        )
        if self.minimized:
            lines.append(f"  minimized repro: {self.minimized}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Target resolution and invocation
# ---------------------------------------------------------------------------

def _resolve(name: str, paradigm: str | None):
    from ..analysis.runner import _resolve as resolve_patternlet

    return resolve_patternlet(name, paradigm)


def _params_for(paradigm: str, name: str, nprocs: int | None) -> dict[str, Any]:
    params = dict(
        EXPLORE_PARAMS.get(
            (paradigm, name),
            {"num_threads": 2} if paradigm == "openmp" else {"np": 2},
        )
    )
    if nprocs is not None:
        params["num_threads" if paradigm == "openmp" else "np"] = nprocs
    return params


def _run_patternlet(patternlet: Any, params: dict[str, Any]) -> Any:
    from ..analysis.runner import invoke_patternlet

    return invoke_patternlet(patternlet, params)


def _assess(sr: ScheduledRun) -> ScheduleOutcome:
    expected = actual = None
    property_ok = True
    if sr.result is not None:
        values = getattr(sr.result, "values", {})
        expected = values.get("expected")
        actual = values.get("actual")
        if expected is not None:
            property_ok = expected == actual
    return ScheduleOutcome(
        token=sr.token,
        choices=tuple(d.chosen for d in sr.decisions if not d.forced),
        property_ok=property_ok,
        witness=lost_update_witness(sr.decisions),
        error=f"{type(sr.error).__name__}: {sr.error}" if sr.error else None,
        stalled=sr.stalled,
        expected=expected,
        actual=actual,
    )


# ---------------------------------------------------------------------------
# Schedule exploration (openmp)
# ---------------------------------------------------------------------------

#: Pending ops whose *next* real operation is unknown (the thread has not
#: announced a memory/lock access yet).  They must be treated as possibly
#: conflicting with anything, or the search would never wake a thread that
#: the default schedule happens to leave parked at its start.
_WILDCARD = ("start", "resume")


def _conflicts(op_a: tuple, op_b: tuple) -> bool:
    """Would reordering these two pending ops change anything observable?"""
    kind_a, kind_b = op_a[0], op_b[0]
    if kind_a in _WILDCARD or kind_b in _WILDCARD:
        return True
    if kind_a == "acquire" and kind_b == "acquire":
        return op_a[1] == op_b[1]
    if kind_a in ("read", "write") and kind_b in ("read", "write"):
        return op_a[1] == op_b[1] and "write" in (kind_a, kind_b)
    return False


def _preemptions(decisions: Sequence[Decision]) -> int:
    count = 0
    prev: int | None = None
    for d in decisions:
        if prev is not None and prev in d.runnable and d.chosen != prev:
            count += 1
        prev = d.chosen
    return count


def _branch_priority(decision: Decision, alt: int) -> int:
    """How promising is flipping this branch, given a racy lint hint?

    Reordering two *data* accesses to the same location is what flips a
    lost update, so those branches rank first; lock-order branches next;
    wildcard (thread start/resume) branches stay at the default rank.
    """
    op_alt = decision.pending[alt]
    op_chosen = decision.pending[decision.chosen]
    kinds = (op_alt[0], op_chosen[0])
    if all(k in ("read", "write") for k in kinds):
        return 2
    if "acquire" in kinds:
        return 1
    return 0


def _explore_dfs(
    run_with: Callable[[ReplayScheduler], ScheduledRun],
    max_schedules: int,
    preemption_bound: int,
    prioritize: bool = False,
) -> list[tuple[ScheduleOutcome, ScheduledRun]]:
    outcomes: list[tuple[ScheduleOutcome, ScheduledRun]] = []
    # Frontier entries are (priority, push-order, prefix) and the highest
    # (priority, push-order) is explored next.  Unseeded, every priority
    # is 0 and the newest push wins — exactly the plain LIFO stack the
    # explorer has always used, so default schedule order is unchanged.
    frontier: list[tuple[int, int, tuple[int, ...]]] = [(0, 0, ())]
    pushes = 0
    visited: set[tuple[int, ...]] = set()
    while frontier and len(outcomes) < max_schedules:
        best = max(range(len(frontier)), key=lambda i: frontier[i][:2])
        _, _, prefix = frontier.pop(best)
        if prefix in visited:
            continue
        visited.add(prefix)
        sr = run_with(ReplayScheduler(list(prefix)))
        outcomes.append((_assess(sr), sr))
        if sr.stalled:
            continue
        branches = [d for d in sr.decisions if not d.forced]
        executed = [d.chosen for d in branches]
        for pos in range(len(prefix), len(branches)):
            d = branches[pos]
            for alt in d.runnable:
                if alt == d.chosen:
                    continue
                # Persistent-set pruning: branch only where swapping the
                # order of the two pending ops could matter.
                if not _conflicts(d.pending[alt], d.pending[d.chosen]):
                    continue
                child = tuple(executed[:pos]) + (alt,)
                if child in visited:
                    continue
                if _preemptions(sr.decisions[: d.index]) + 1 > preemption_bound:
                    continue
                pushes += 1
                priority = _branch_priority(d, alt) if prioritize else 0
                frontier.append((priority, pushes, child))
    return outcomes


def _minimize_choices(
    run_with: Callable[[ReplayScheduler], ScheduledRun],
    choices: Sequence[int],
) -> tuple[int, ...]:
    """Greedy ddmin: drop branch choices one at a time while still failing."""
    current = list(choices)
    changed = True
    while changed:
        changed = False
        for i in range(len(current)):
            candidate = current[:i] + current[i + 1:]
            if _assess(run_with(ReplayScheduler(candidate))).flagged:
                current = candidate
                changed = True
                break
    return tuple(current)


def _detector_errors_for(
    run_with: Callable[[ReplayScheduler], ScheduledRun],
    choices: Sequence[int],
) -> int:
    """Replay one schedule under the happens-before detector; count errors."""
    from ..analysis.race import race_detector

    with race_detector(target="testkit:replay") as detector:
        run_with(ReplayScheduler(list(choices)))
    return len(detector.report().errors)


def _capture_timeline(run: Callable[[], Any]) -> str | None:
    from ..obs import record, timeline_from_events

    try:
        with record() as recorder:
            run()
        return timeline_from_events(recorder.events(), recorder.dropped)
    except RuntimeError:  # a recorder is already active upstream
        return None


def _explore_openmp(
    name: str,
    patternlet: Any,
    params: dict[str, Any],
    *,
    strategy: str,
    seed: int,
    max_schedules: int,
    preemption_bound: int,
    with_timeline: bool,
    seed_hints: dict | None = None,
) -> ExploreResult:
    def run_with(scheduler) -> ScheduledRun:
        return run_scheduled(lambda: _run_patternlet(patternlet, params), scheduler)

    prioritize = bool(seed_hints and seed_hints.get("racy"))
    if strategy == "dfs":
        outcomes = []
        if prioritize:
            # A racy lint hint names the bug class (lost update), so spend
            # the first schedule aiming straight at it before the
            # systematic search takes over.
            outcomes.append(_assess(run_with(ConflictEagerScheduler())))
        assessed = _explore_dfs(run_with, max_schedules - len(outcomes),
                                preemption_bound, prioritize=prioritize)
        outcomes.extend(o for o, _ in assessed)
    elif strategy == "random":
        outcomes = [
            _assess(run_with(RandomScheduler(seed + i)))
            for i in range(max_schedules)
        ]
    elif strategy == "rr":
        outcomes = [_assess(run_with(RoundRobinScheduler()))]
    else:
        raise ValueError(f"unknown strategy {strategy!r}")

    # Cross-validation, schedule level: every schedule the explorer flags
    # must also be flagged by the happens-before detector.
    for outcome in outcomes:
        if outcome.flagged:
            outcome.detector_errors = _detector_errors_for(
                run_with, outcome.choices
            )

    # Cross-validation, target level: detector verdict vs explorer verdict.
    from ..analysis import analyze

    analyzer_errors = len(analyze(name, paradigm="openmp").errors)
    flagged = [o for o in outcomes if o.flagged]
    agreement = bool(flagged) == bool(analyzer_errors) and all(
        o.detector_errors for o in flagged
    )

    result = ExploreResult(
        target=f"openmp:{name}",
        paradigm="openmp",
        mode="schedules",
        strategy=strategy,
        seed=seed,
        outcomes=outcomes,
        analyzer_errors=analyzer_errors,
        agreement=agreement,
        seeded=seed_hints,
    )
    if flagged:
        minimized = _minimize_choices(run_with, flagged[0].choices)
        result.minimized = _token_for(params.get("num_threads", 2), minimized)
        if with_timeline:
            result.timeline = _capture_timeline(
                lambda: run_with(ReplayScheduler(list(minimized)))
            )
    return result


def _token_for(nthreads: int, choices: Sequence[int]) -> str:
    from .schedule import _TOKEN_DIGITS

    chars = "".join(_TOKEN_DIGITS[c] for c in choices)
    return f"o1.{nthreads}.{chars or '-'}"


# ---------------------------------------------------------------------------
# Fault exploration (mpi)
# ---------------------------------------------------------------------------

def _run_under_plan(patternlet: Any, params: dict[str, Any], plan: FaultPlan) -> FaultOutcome:
    from ..mpi.errors import DeadlockError, MPIError, RankFailedError

    try:
        with fault_injection(plan):
            result = _run_patternlet(patternlet, params)
    except DeadlockError as exc:
        return FaultOutcome(plan.token, "deadlock", str(exc))
    except RankFailedError as exc:
        inner = sorted(type(e).__name__ for e in exc.failures.values())
        return FaultOutcome(
            plan.token, f"rank-failed:{','.join(inner)}", str(exc)
        )
    except MPIError as exc:
        return FaultOutcome(plan.token, f"error:{type(exc).__name__}", str(exc))
    values = getattr(result, "values", {})
    if values.get("deadlocked"):
        return FaultOutcome(plan.token, "deadlock", "patternlet reported deadlock")
    return FaultOutcome(plan.token, "ok")


def _explore_mpi(
    name: str,
    patternlet: Any,
    params: dict[str, Any],
    *,
    seed: int,
    max_schedules: int,
    faults: str | None,
    with_timeline: bool,
) -> ExploreResult:
    size = params.get("np", params.get("np_procs", 2))
    if faults and faults != "random":
        plans = [parse_plan(faults)]
    elif faults == "random":
        plans = [FaultPlan()] + [
            FaultPlan.random(seed + i, size) for i in range(max(1, max_schedules))
        ]
    else:
        plans = [FaultPlan()]

    outcomes = [_run_under_plan(patternlet, params, plan) for plan in plans]

    from ..analysis import analyze

    analyzer_errors = len(analyze(name, paradigm="mpi").errors)
    # The no-fault outcome is the one comparable with the analyzer: injected
    # faults legitimately break programs the checker deems correct.
    baseline_flagged = outcomes[0].flagged if plans[0].rules == () else None
    agreement = (
        baseline_flagged == bool(analyzer_errors)
        if baseline_flagged is not None
        else True
    )

    result = ExploreResult(
        target=f"mpi:{name}",
        paradigm="mpi",
        mode="faults",
        strategy="faults",
        seed=seed,
        outcomes=outcomes,
        analyzer_errors=analyzer_errors,
        agreement=agreement,
    )
    flagged = [
        (plan, o) for plan, o in zip(plans, outcomes) if o.flagged and plan.rules
    ]
    if flagged:
        plan, outcome = flagged[0]
        minimized = _minimize_plan(patternlet, params, plan, outcome.verdict)
        result.minimized = minimized.token
        if with_timeline:
            result.timeline = _capture_timeline(
                lambda: _run_under_plan(patternlet, params, minimized)
            )
    elif outcomes[0].flagged:
        result.minimized = plans[0].token  # fails with no faults at all
        if with_timeline:
            result.timeline = _capture_timeline(
                lambda: _run_under_plan(patternlet, params, plans[0])
            )
    return result


def _minimize_plan(
    patternlet: Any, params: dict[str, Any], plan: FaultPlan, verdict: str
) -> FaultPlan:
    """Drop rules while the same verdict class still reproduces."""
    changed = True
    while changed and len(plan.rules) > 1:
        changed = False
        for candidate in plan.shrink():
            if _run_under_plan(patternlet, params, candidate).verdict == verdict:
                plan = candidate
                changed = True
                break
    return plan


# ---------------------------------------------------------------------------
# Public entry points
# ---------------------------------------------------------------------------

def explore_target(
    name: str,
    paradigm: str | None = None,
    *,
    seed: int = 0,
    max_schedules: int = 24,
    strategy: str = "dfs",
    preemption_bound: int = 2,
    faults: str | None = None,
    nprocs: int | None = None,
    with_timeline: bool = False,
    seed_hints: dict | None = None,
) -> ExploreResult:
    """Explore schedules (openmp) or fault plans (mpi) for a patternlet.

    ``seed_hints`` (the ``explore_hints`` dict from a pdclint report)
    steers the DFS: with racy hints present, branches that reorder two
    data accesses are explored before thread-wakeup branches.

    Raises ``KeyError`` for an unknown target — the CLI maps that to the
    analyze/lint-consistent exit code 2.
    """
    paradigm, patternlet = _resolve(name, paradigm)
    params = _params_for(paradigm, name, nprocs)
    if paradigm == "openmp":
        return _explore_openmp(
            name, patternlet, params,
            strategy=strategy, seed=seed, max_schedules=max_schedules,
            preemption_bound=preemption_bound, with_timeline=with_timeline,
            seed_hints=seed_hints,
        )
    result = _explore_mpi(
        name, patternlet, params,
        seed=seed, max_schedules=max_schedules, faults=faults,
        with_timeline=with_timeline,
    )
    result.seeded = seed_hints
    return result


def replay_schedule(
    name: str,
    token: str,
    paradigm: str | None = None,
    nprocs: int | None = None,
) -> ScheduleOutcome:
    """Re-execute one recorded schedule; deterministic for a fixed token."""
    paradigm, patternlet = _resolve(name, paradigm)
    if paradigm != "openmp":
        raise ValueError(f"schedule tokens replay openmp targets, not {paradigm}")
    nthreads, choices = decode_token(token)
    params = _params_for(paradigm, name, nprocs if nprocs is not None else nthreads)
    sr = run_scheduled(
        lambda: _run_patternlet(patternlet, params), ReplayScheduler(choices)
    )
    return _assess(sr)


def replay_faults(
    name: str,
    token: str,
    paradigm: str | None = None,
    nprocs: int | None = None,
) -> FaultOutcome:
    """Re-execute one fault plan against an mpi target."""
    paradigm, patternlet = _resolve(name, paradigm)
    if paradigm != "mpi":
        raise ValueError(f"fault tokens replay mpi targets, not {paradigm}")
    params = _params_for(paradigm, name, nprocs)
    return _run_under_plan(patternlet, params, parse_plan(token))
