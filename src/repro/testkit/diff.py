"""Differential property testing across the paper's five exemplars.

Each exemplar ships a sequential baseline and parallel variants on both
runtimes (shared-memory ``repro.openmp`` and distributed ``repro.mpi``).
The differential property is the one the course teaches implicitly every
time it shows the same answer from a different decomposition: *every
variant computes the same result as the sequential baseline*, for any
seeded workload, any thread/rank count, and either execution backend.

:func:`diff_exemplar` runs one seeded workload through all variants and
reports mismatches; ``tests/test_testkit_properties.py`` sweeps it over
many seeds.  Integer/list results must match exactly; floating-point
reductions may differ by summation order, so those compare with a tight
relative tolerance.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any

__all__ = ["DIFF_TARGETS", "DiffOutcome", "diff_exemplar"]

#: Exemplars the differential layer knows how to drive.
DIFF_TARGETS = ("integration", "forestfire", "drugdesign", "heat", "sorting")

_REL_TOL = 1e-9


@dataclass
class DiffOutcome:
    """Result of one differential run: baseline vs every variant."""

    exemplar: str
    seed: int
    workload: dict[str, Any]
    reference: Any
    variants: dict[str, Any] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        status = "ok" if self.ok else "MISMATCH"
        detail = "; ".join(self.mismatches)
        return (
            f"diff {self.exemplar} seed={self.seed} workload={self.workload} "
            f"variants={sorted(self.variants)}: {status}"
            + (f" ({detail})" if detail else "")
        )


def _close(a: float, b: float) -> bool:
    return math.isclose(a, b, rel_tol=_REL_TOL, abs_tol=1e-12)


def _check(outcome: DiffOutcome, variant: str, equal: bool, got: Any) -> None:
    outcome.variants[variant] = got
    if not equal:
        outcome.mismatches.append(
            f"{variant}: expected {outcome.reference!r}, got {got!r}"
        )


def _diff_integration(seed: int, backend: str | None) -> DiffOutcome:
    from ..exemplars.integration import integrate_mpi, integrate_omp, integrate_seq, quarter_circle

    rng = random.Random(seed)
    n = rng.randrange(32, 257)
    reference = integrate_seq(quarter_circle, 0.0, 2.0, n)
    outcome = DiffOutcome("integration", seed, {"n": n}, reference)
    for threads in (2, 3):
        for schedule in ("static", "dynamic"):
            got = integrate_omp(
                n, num_threads=threads, schedule=schedule, backend=backend
            )
            _check(
                outcome, f"omp[t={threads},{schedule}]", _close(got, reference), got
            )
    for procs in (2, 3):
        got = integrate_mpi(n, np_procs=procs)
        _check(outcome, f"mpi[np={procs}]", _close(got, reference), got)
    return outcome


def _diff_forestfire(seed: int, backend: str | None) -> DiffOutcome:
    from ..exemplars.forestfire import fire_curve_mpi, fire_curve_omp, fire_curve_seq

    rng = random.Random(seed)
    probs = (0.3, 0.6, 0.9)
    trials = rng.randrange(2, 5)
    size = rng.randrange(7, 12)
    reference = fire_curve_seq(probs, trials=trials, size=size, seed=seed)
    outcome = DiffOutcome(
        "forestfire", seed, {"trials": trials, "size": size}, reference.points
    )
    for threads in (2, 3):
        got = fire_curve_omp(
            probs, trials=trials, size=size, seed=seed,
            num_threads=threads, backend=backend,
        )
        _check(
            outcome, f"omp[t={threads}]", got.points == reference.points, got.points
        )
    for procs in (2, 3):
        got = fire_curve_mpi(probs, trials=trials, size=size, seed=seed, np_procs=procs)
        _check(
            outcome, f"mpi[np={procs}]", got.points == reference.points, got.points
        )
    return outcome


def _diff_drugdesign(seed: int, backend: str | None) -> DiffOutcome:
    from ..exemplars.drugdesign import generate_ligands, run_mpi_master_worker, run_omp, run_seq

    rng = random.Random(seed)
    ligands = generate_ligands(rng.randrange(6, 13), seed=seed)
    reference = run_seq(ligands)
    outcome = DiffOutcome(
        "drugdesign", seed, {"ligands": len(ligands)}, reference.scores
    )
    for threads in (2, 3):
        got = run_omp(ligands, num_threads=threads, backend=backend)
        _check(
            outcome, f"omp[t={threads}]", got.scores == reference.scores, got.scores
        )
    for procs in (2, 3):
        got = run_mpi_master_worker(ligands, np_procs=procs)
        _check(
            outcome, f"mpi[np={procs}]", got.scores == reference.scores, got.scores
        )
    return outcome


def _diff_heat(seed: int, backend: str | None) -> DiffOutcome:
    from ..exemplars.heat import heat_mpi, heat_omp, heat_seq

    rng = random.Random(seed)
    n = rng.randrange(12, 33)
    steps = rng.randrange(3, 9)
    reference = heat_seq(n, steps)
    outcome = DiffOutcome(
        "heat", seed, {"n": n, "steps": steps}, reference.tolist()
    )
    for threads in (2, 3):
        got = heat_omp(n, steps, num_threads=threads, backend=backend)
        _check(
            outcome,
            f"omp[t={threads}]",
            all(_close(x, y) for x, y in zip(got, reference)),
            got.tolist(),
        )
    for procs in (2, 3):
        got = heat_mpi(n, steps, np_procs=procs)
        _check(
            outcome,
            f"mpi[np={procs}]",
            all(_close(x, y) for x, y in zip(got, reference)),
            got.tolist(),
        )
    return outcome


def _diff_sorting(seed: int, backend: str | None) -> DiffOutcome:
    from ..exemplars.sorting import (
        merge_sort_blocks,
        merge_sort_seq,
        merge_sort_tasks,
        odd_even_sort_mpi,
    )

    rng = random.Random(seed)
    values = [rng.randrange(-1000, 1000) for _ in range(rng.randrange(20, 61))]
    reference = merge_sort_seq(values)
    outcome = DiffOutcome("sorting", seed, {"len": len(values)}, reference)
    for threads in (2, 3):
        got = merge_sort_tasks(values, num_threads=threads, cutoff=8)
        _check(outcome, f"tasks[t={threads}]", got == reference, got)
        got = merge_sort_blocks(values, num_workers=threads, backend=backend)
        _check(outcome, f"blocks[w={threads}]", got == reference, got)
    for procs in (2, 3):
        got = odd_even_sort_mpi(values, np_procs=procs)
        _check(outcome, f"mpi[np={procs}]", got == reference, got)
    return outcome


_RUNNERS = {
    "integration": _diff_integration,
    "forestfire": _diff_forestfire,
    "drugdesign": _diff_drugdesign,
    "heat": _diff_heat,
    "sorting": _diff_sorting,
}


def diff_exemplar(
    name: str, seed: int = 0, *, backend: str | None = None
) -> DiffOutcome:
    """Run one seeded workload through every variant of an exemplar.

    ``backend`` is forwarded to the openmp variants that support process
    pools (``"processes"``); ``None`` keeps the default thread backend.
    Raises ``KeyError`` for an unknown exemplar.
    """
    try:
        runner = _RUNNERS[name]
    except KeyError:
        raise KeyError(
            f"no differential runner for {name!r}; available: {list(DIFF_TARGETS)}"
        ) from None
    return runner(seed, backend)
