"""The curriculum model: goals, strategies, and the two teaching modules.

This is the paper's primary contribution expressed as data + behaviour:
three goals (Section I), three strategies (Section V), and two 2-hour
modules, each binding a delivery vehicle (Runestone handout / Colab
notebook), a paradigm's patternlets, exemplars, and the platforms that can
host the hands-on work.  The injection model captures the "inject PDC into
existing core courses" approach the introduction motivates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..patternlets import all_patternlets
from ..platforms.machine import PLATFORMS

__all__ = [
    "Goal",
    "Strategy",
    "GOALS",
    "STRATEGIES",
    "TeachingModule",
    "shared_memory_module",
    "distributed_memory_module",
    "CourseInjection",
    "INJECTION_POINTS",
]


@dataclass(frozen=True)
class Goal:
    """One of the paper's three high-level goals."""

    number: int
    text: str


GOALS: tuple[Goal, ...] = (
    Goal(1, "Provide effective conceptual and hands-on learning about "
            "multicore parallel computing."),
    Goal(2, "Provide effective conceptual and hands-on learning about "
            "distributed parallel computing."),
    Goal(3, "Identify what types of educational PDC experiences are "
            "especially useful to learners."),
)


@dataclass(frozen=True)
class Strategy:
    """One of the paper's three concluding strategies, tied to its goal."""

    number: int
    text: str
    achieves_goal: int


STRATEGIES: tuple[Strategy, ...] = (
    Strategy(1, "Learners can learn multicore computing concepts effectively "
                "in a remote environment by using a Raspberry Pi and our "
                "standalone virtual module.", achieves_goal=1),
    Strategy(2, "Remote learners can learn distributed computing concepts by "
                "using Google Colab and the mpi4py version of the MPI "
                "patternlets, then a remote cluster for speedup.",
             achieves_goal=2),
    Strategy(3, "Remote learners will enjoy highly interactive materials that "
                "they can work through at their own pace.", achieves_goal=3),
)


@dataclass(frozen=True)
class TeachingModule:
    """One of the two 2-hour modules, with everything it depends on."""

    slug: str
    title: str
    paradigm: str  # "openmp" | "mpi"
    delivery: str  # "runestone" | "colab+jupyter"
    platform_keys: tuple[str, ...]
    exemplars: tuple[str, ...]
    goal: int
    requires_kit: bool = False
    requires_google_account: bool = False
    requires_cluster_access: bool = False

    def patternlets(self):
        """The module's patternlet sequence, in handout order."""
        return all_patternlets(self.paradigm)

    def platforms(self):
        return [PLATFORMS[k] for k in self.platform_keys]

    def requirements(self) -> list[str]:
        """What an instructor must arrange before teaching this module."""
        needs = []
        if self.requires_kit:
            needs.append("mail (or have learners buy) a Raspberry Pi kit")
        if self.requires_google_account:
            needs.append("each learner needs a free Google account")
        if self.requires_cluster_access:
            needs.append("arrange Chameleon allocation or a departmental server")
        return needs


def shared_memory_module() -> TeachingModule:
    """Module 1: OpenMP on the Raspberry Pi via the Runestone handout."""
    return TeachingModule(
        slug="shared-memory",
        title="Multicore computing with OpenMP on the Raspberry Pi",
        paradigm="openmp",
        delivery="runestone",
        platform_keys=("raspberry-pi-4", "raspberry-pi-3b"),
        exemplars=("integration", "drugdesign"),
        goal=1,
        requires_kit=True,
    )


def distributed_memory_module() -> TeachingModule:
    """Module 2: MPI patternlets in Colab, exemplars on a cluster/large VM."""
    return TeachingModule(
        slug="distributed-memory",
        title="Distributed computing with mpi4py: Colab + remote cluster",
        paradigm="mpi",
        delivery="colab+jupyter",
        platform_keys=("colab", "chameleon-cluster", "stolaf-vm"),
        exemplars=("forestfire", "drugdesign"),
        goal=2,
        requires_google_account=True,
        requires_cluster_access=True,
    )


@dataclass(frozen=True)
class CourseInjection:
    """Where a PDC topic slots into an existing core course."""

    course: str
    topic: str
    module_slug: str
    patternlets: tuple[str, ...]


#: The introduction's injection examples, mapped onto our modules.
INJECTION_POINTS: tuple[CourseInjection, ...] = (
    CourseInjection(
        "CS1/CS2", "parallel loops and speedup",
        "shared-memory", ("spmd", "forEqualChunks", "reduction"),
    ),
    CourseInjection(
        "Computer Organization", "multicore architecture and threads",
        "shared-memory", ("spmd", "race", "critical", "atomic"),
    ),
    CourseInjection(
        "Algorithms", "parallel decomposition and reductions",
        "shared-memory", ("forEqualChunks", "forChunksOf1", "reduction"),
    ),
    CourseInjection(
        "Programming Languages", "message-passing primitives",
        "distributed-memory", ("sendReceive", "messagePassingRing", "messageTags"),
    ),
    CourseInjection(
        "Systems/Networks", "distributed coordination",
        "distributed-memory", ("masterWorker", "broadcast", "reduce"),
    ),
)
