"""The July 2020 virtual workshop: the paper's evaluation pilot, end to end.

Simulates the 2.5-day workshop of Section IV: 22 participants, the
shared-memory module on morning 1, the distributed module on morning 2
(including the "eager beaver" VNC-firewall incident), and the DHA-style
assessment whose outputs are Table II and Figures 3-4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..assessment.cohort import workshop_cohort
from ..assessment.report import PrePostFigure, Table2, figure3, figure4, table2
from ..platforms.access import AccessGateway, LoginOutcome, Protocol
from ..runestone.modules.mpi_module import build_distributed_module
from ..runestone.modules.raspberry_pi import build_raspberry_pi_module
from .session import SessionConfig, SessionOutcome, run_lab_session

__all__ = ["WorkshopReport", "simulate_workshop", "VncIncident"]


@dataclass(frozen=True)
class VncIncident:
    """The Section IV-B incident: premature logins trip the VNC firewall."""

    locked_out_participants: tuple[str, ...]
    all_finished_via_ssh: bool


@dataclass
class WorkshopReport:
    """Everything the workshop produced."""

    participants: int
    shared_memory_session: SessionOutcome
    distributed_session: SessionOutcome
    vnc_incident: VncIncident
    table2: Table2
    figure3: PrePostFigure
    figure4: PrePostFigure

    def headline_findings(self) -> list[str]:
        """The paper's key claims, checked against this run's data."""
        findings = []
        smo = self.shared_memory_session
        if smo.learners_with_issues == 0:
            findings.append(
                "None of the participants reported technical difficulties "
                "during the shared-memory session."
            )
        rows = dict((r[0], (r[1], r[2])) for r in self.table2.rows)
        openmp = rows["OpenMP on Raspberry Pi"]
        mpi = rows["MPI & Distr. Cluster Computing"]
        if openmp[0] > mpi[0] and openmp[1] > mpi[1]:
            findings.append(
                "The OpenMP-on-Raspberry-Pi session was the highest rated."
            )
        if self.figure3.test.significant() and self.figure4.test.significant():
            findings.append(
                "Participants' confidence and preparedness both increased "
                "significantly (paired t-tests)."
            )
        if self.vnc_incident.all_finished_via_ssh:
            findings.append(
                "Participants locked out of VNC completed the exercise over ssh."
            )
        return findings


def _run_vnc_incident(participant_ids: list[str], eager_beavers: int) -> VncIncident:
    """Replay the incident: some participants race ahead and mislog into VNC."""
    gateway = AccessGateway(max_failures=3, ban_duration_s=900.0)
    clock = 0.0
    locked: list[str] = []
    for pid in participant_ids[:eager_beavers]:
        # Three hasty wrong attempts before reading the instructions...
        for _ in range(3):
            clock += 1.0
            gateway.attempt(pid, Protocol.VNC, credentials_ok=False, now_s=clock)
        clock += 1.0
        # ...so the now-correct login is refused: the firewall has them.
        outcome = gateway.attempt(pid, Protocol.VNC, credentials_ok=True, now_s=clock)
        if outcome is LoginOutcome.BLOCKED:
            locked.append(pid)
    # Everyone else follows the instructions and logs straight in.
    for pid in participant_ids[eager_beavers:]:
        clock += 1.0
        gateway.attempt(pid, Protocol.VNC, credentials_ok=True, now_s=clock)
    # The locked-out participants fall back to ssh, which is not banned.
    ssh_ok = all(
        gateway.attempt(pid, Protocol.SSH, credentials_ok=True, now_s=clock + 10.0)
        is LoginOutcome.SUCCESS
        for pid in locked
    )
    return VncIncident(
        locked_out_participants=tuple(locked),
        all_finished_via_ssh=ssh_ok and bool(locked),
    )


def simulate_workshop(
    seed: int = 2020, eager_beavers: int = 3
) -> WorkshopReport:
    """Run the whole pilot and assemble the assessment report.

    With the default configuration the shared-memory session reproduces the
    paper's "no technical difficulties" outcome, because every setup-issue
    class that occurs is covered by a walkthrough video.
    """
    cohort = workshop_cohort()
    ids = [f"participant-{p.pid:02d}" for p in cohort]

    # Morning 1: the shared-memory module on the mailed Raspberry Pis.
    shared_outcome = run_lab_session(
        build_raspberry_pi_module(), ids, SessionConfig(seed=seed)
    )

    # Morning 2: the distributed module (Colab hour, then cluster hour) —
    # including the "eager beaver" VNC lockout at the platform switch.
    distributed_outcome = run_lab_session(
        build_distributed_module(),
        ids,
        # Colab needs no setup; the platform-switch failure mode is the VNC
        # incident below, so the generic setup-issue channel is empty here.
        SessionConfig(seed=seed + 1, issue_kinds=()),
    )
    incident = _run_vnc_incident(ids, eager_beavers=eager_beavers)

    return WorkshopReport(
        participants=len(cohort),
        shared_memory_session=shared_outcome,
        distributed_session=distributed_outcome,
        vnc_incident=incident,
        table2=table2(),
        figure3=figure3(),
        figure4=figure4(),
    )
