"""Remote-delivery orchestration: pick a platform, run an exemplar, measure.

The distributed module's second hour gives each learner a *choice* of
platform (Chameleon-backed Jupyter or the St. Olaf VM).  This module
implements that flow for the reproduction: resolve a platform key, cost
the chosen exemplar's workload across process counts with the platform's
model, and return the scaling study the learner would plot.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exemplars.drugdesign import drugdesign_workload
from ..exemplars.forestfire import forestfire_workload
from ..exemplars.heat import heat_workload
from ..exemplars.integration import integration_workload
from ..exemplars.sorting import sorting_workload
from ..platforms.machine import PLATFORMS, Cluster, Machine
from ..platforms.simclock import CostModel, Workload
from ..platforms.speedup import ScalingStudy

__all__ = ["ExemplarRun", "available_platforms", "plan_scaling_run", "run_exemplar_study"]

#: Named workload factories the delivery layer understands.
_WORKLOADS = {
    "integration": lambda scale: integration_workload(n=int(5e7 * scale)),
    "drugdesign": lambda scale: drugdesign_workload(num_ligands=int(60_000 * scale)),
    "forestfire": lambda scale: forestfire_workload(size=100, trials=int(128 * scale)),
    "heat": lambda scale: heat_workload(n=int(4e5 * scale), steps=int(500 * scale)),
    "sorting": lambda scale: sorting_workload(n=int(1e6 * scale)),
}

#: Default process counts for a scaling study on each platform family.
_DEFAULT_COUNTS = (1, 2, 4, 8, 16, 32, 64)


@dataclass(frozen=True)
class ExemplarRun:
    """A completed platform study."""

    exemplar: str
    platform_key: str
    study: ScalingStudy

    def learner_takeaway(self) -> str:
        """The observation the module wants the learner to make."""
        if not self.study.shows_speedup():
            return (
                f"{self.study.platform} shows no speedup — with a single core, "
                "more processes only add overhead (but the message-passing "
                "concepts still work)."
            )
        return (
            f"{self.study.platform} reaches {self.study.max_speedup:.1f}x "
            f"speedup on {self.exemplar} — real parallel scalability."
        )


def available_platforms() -> dict[str, Machine | Cluster]:
    """Platform choices the module can offer."""
    return dict(PLATFORMS)


def plan_scaling_run(
    platform_key: str, max_procs: int | None = None
) -> list[int]:
    """Sensible process counts for a platform (never past 2x its cores)."""
    platform = PLATFORMS[platform_key]
    ceiling = max_procs if max_procs is not None else 2 * platform.cores
    counts = [p for p in _DEFAULT_COUNTS if p <= ceiling]
    return counts or [1]


def run_exemplar_study(
    exemplar: str,
    platform_key: str,
    scale: float = 1.0,
    proc_counts: list[int] | None = None,
) -> ExemplarRun:
    """Cost one exemplar on one platform across process counts."""
    try:
        workload_factory = _WORKLOADS[exemplar]
    except KeyError:
        raise KeyError(
            f"unknown exemplar {exemplar!r}; choose from {sorted(_WORKLOADS)}"
        ) from None
    try:
        platform = PLATFORMS[platform_key]
    except KeyError:
        raise KeyError(
            f"unknown platform {platform_key!r}; choose from {sorted(PLATFORMS)}"
        ) from None
    workload: Workload = workload_factory(scale)
    counts = proc_counts or plan_scaling_run(platform_key)
    model = CostModel(platform)
    times = [model.time(workload, p).total_s for p in counts]
    study = ScalingStudy(model.name, workload.name, counts, times)
    return ExemplarRun(exemplar=exemplar, platform_key=platform_key, study=study)
