"""``repro.core`` — the paper's contribution: curriculum, sessions, workshop.

* :mod:`~repro.core.curriculum` — goals, strategies, the two teaching
  modules and the course-injection model;
* :mod:`~repro.core.session` — deterministic simulation of a cohort
  working a module in a 2-hour remote lab;
* :mod:`~repro.core.workshop` — the July 2020 pilot end to end, producing
  Table II and Figures 3-4;
* :mod:`~repro.core.delivery` — platform selection and exemplar scaling
  studies for the distributed module's second hour.
"""

from .agenda import (
    AgendaItem,
    DiscussionOutcome,
    Facilitation,
    SessionKind,
    WorkshopAgenda,
    build_2020_agenda,
    simulate_discussion,
)
from .curriculum import (
    GOALS,
    INJECTION_POINTS,
    STRATEGIES,
    CourseInjection,
    Goal,
    Strategy,
    TeachingModule,
    distributed_memory_module,
    shared_memory_module,
)
from .delivery import (
    ExemplarRun,
    available_platforms,
    plan_scaling_run,
    run_exemplar_study,
)
from .session import SessionConfig, SessionOutcome, run_lab_session
from .workshop import VncIncident, WorkshopReport, simulate_workshop

__all__ = [
    "Goal",
    "Strategy",
    "GOALS",
    "STRATEGIES",
    "TeachingModule",
    "shared_memory_module",
    "distributed_memory_module",
    "CourseInjection",
    "INJECTION_POINTS",
    "SessionConfig",
    "SessionOutcome",
    "run_lab_session",
    "WorkshopReport",
    "VncIncident",
    "simulate_workshop",
    "WorkshopAgenda",
    "AgendaItem",
    "SessionKind",
    "build_2020_agenda",
    "Facilitation",
    "DiscussionOutcome",
    "simulate_discussion",
    "ExemplarRun",
    "available_platforms",
    "plan_scaling_run",
    "run_exemplar_study",
]
