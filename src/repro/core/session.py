"""Lab-session simulation: a cohort working through a module, self-paced.

Models the remote 2-hour session: each learner progresses through the
handout's sections, attempts the interactive questions, and may hit
technical difficulties during setup.  The setup-video coverage model
implements the paper's finding that the walkthrough videos (plus the
flexible image and the kit) eliminated technical issues: an issue only
*persists* if no setup video covers it.

Deterministic for a given seed, so the workshop simulation and the tests
can assert exact outcomes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..runestone.content import Video
from ..runestone.module import Module
from ..runestone.progress import Gradebook
from ..runestone.questions import (
    DragAndDrop,
    FillInTheBlank,
    MultipleChoice,
    OrderingProblem,
)

__all__ = ["SessionConfig", "SessionOutcome", "run_lab_session"]

#: Baseline probability a remote learner hits each class of setup issue.
SETUP_ISSUE_KINDS = (
    "bad-flash",
    "no-boot",
    "hdmi-config",
    "vnc-setup",
    "network-config",
    "firewall",
    "missing-parts",
    "case-assembly",
)


@dataclass(frozen=True)
class SessionConfig:
    """Tunable parameters of the simulated session.

    ``issue_kinds`` names the classes of setup problem this module's
    learners can hit; the Raspberry Pi hardware kinds are the default.
    Modules whose failure modes are modeled elsewhere (e.g. the distributed
    session's VNC-firewall incident) pass an empty tuple.
    """

    seed: int = 2020
    setup_issue_rate: float = 0.18  # chance per issue kind per learner
    first_try_correct_rate: float = 0.72
    give_up_after_attempts: int = 3
    pace_jitter: float = 0.2  # +-20% per-section time variation
    issue_kinds: tuple[str, ...] = SETUP_ISSUE_KINDS


@dataclass
class SessionOutcome:
    """What the instructor sees after the session."""

    module_slug: str
    gradebook: Gradebook
    persistent_issues: dict[str, list[str]]  # learner -> unresolved issue kinds
    resolved_by_videos: int
    mean_minutes: float

    @property
    def learners_with_issues(self) -> int:
        return sum(1 for issues in self.persistent_issues.values() if issues)

    @property
    def completion_rate(self) -> float:
        return self.gradebook.completion_rate()


def _video_coverage(module: Module) -> set[str]:
    """The set of issue kinds some setup video walks learners through."""
    covered: set[str] = set()
    for section in module.all_sections():
        for block in section.blocks:
            if isinstance(block, Video):
                covered.update(block.covers_issues)
    return covered


def _plausible_wrong_answer(question, rng: random.Random):
    if isinstance(question, MultipleChoice):
        wrong = [c.label for c in question.choices if c.label != question.correct_label]
        return rng.choice(wrong)
    if isinstance(question, FillInTheBlank):
        if question.numeric_answer is not None:
            return question.numeric_answer + question.tolerance + 1.0
        return "???"
    if isinstance(question, DragAndDrop):
        terms = [t for t, _d in question.pairs]
        defs = [d for _t, d in question.pairs]
        shuffled = defs[1:] + defs[:1]  # guaranteed off-by-one rotation
        return dict(zip(terms, shuffled))
    if isinstance(question, OrderingProblem):
        return tuple(reversed(question.steps))
    return None


def _correct_answer(question):
    if isinstance(question, MultipleChoice):
        return question.correct_label
    if isinstance(question, FillInTheBlank):
        if question.numeric_answer is not None:
            return question.numeric_answer
        raise ValueError(
            f"{question.activity_id}: pattern-matched blanks need a sample answer"
        )
    if isinstance(question, DragAndDrop):
        return dict(question.pairs)
    if isinstance(question, OrderingProblem):
        return list(question.steps)
    raise TypeError(f"unsupported question type {type(question).__name__}")


def run_lab_session(
    module: Module,
    learners: list[str],
    config: SessionConfig = SessionConfig(),
) -> SessionOutcome:
    """Simulate the cohort working through the module."""
    rng = random.Random(config.seed)
    gradebook = Gradebook(module)
    covered = _video_coverage(module)
    persistent: dict[str, list[str]] = {}
    resolved = 0

    for learner in learners:
        progress = gradebook.enroll(learner)
        # --- setup phase -------------------------------------------------------
        unresolved = []
        for kind in config.issue_kinds:
            if rng.random() < config.setup_issue_rate:
                if kind in covered:
                    resolved += 1  # the video walks them through the fix
                else:
                    unresolved.append(kind)
        persistent[learner] = unresolved
        # --- working through the handout --------------------------------------
        for section in module.all_sections():
            jitter = 1.0 + rng.uniform(-config.pace_jitter, config.pace_jitter)
            progress.complete_section(section.number, minutes=section.minutes * jitter)
            for question in section.questions:
                for attempt in range(config.give_up_after_attempts):
                    if rng.random() < config.first_try_correct_rate or (
                        attempt == config.give_up_after_attempts - 1
                    ):
                        progress.submit(
                            question.activity_id, _correct_answer(question)
                        )
                        break
                    progress.submit(
                        question.activity_id,
                        _plausible_wrong_answer(question, rng),
                    )

    return SessionOutcome(
        module_slug=module.slug,
        gradebook=gradebook,
        persistent_issues=persistent,
        resolved_by_videos=resolved,
        mean_minutes=gradebook.mean_minutes(),
    )
