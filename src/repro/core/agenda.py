"""The 2.5-day workshop agenda and the discussion-participation model.

Section IV describes the pilot's structure (module sessions each morning,
demonstrations and discussions in the afternoons) and Section IV-C's
community-building lessons: shy participants under-contribute in the
online format, extroverts tend to dominate, and it takes deliberate
facilitation to balance a virtual discussion.  This module models both —
the agenda as data, and discussions as a deterministic turn-taking
simulation in which facilitation policies measurably change the balance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

__all__ = [
    "SessionKind",
    "AgendaItem",
    "WorkshopAgenda",
    "build_2020_agenda",
    "Facilitation",
    "DiscussionOutcome",
    "simulate_discussion",
]


class SessionKind(str, Enum):
    HANDS_ON = "hands-on"
    DEMO = "demonstration"
    DISCUSSION = "discussion"
    BREAK = "break"


@dataclass(frozen=True)
class AgendaItem:
    """One scheduled block."""

    day: int
    title: str
    kind: SessionKind
    minutes: int


@dataclass
class WorkshopAgenda:
    """The full schedule."""

    items: list[AgendaItem] = field(default_factory=list)

    def add(self, item: AgendaItem) -> "WorkshopAgenda":
        self.items.append(item)
        return self

    def day(self, day: int) -> list[AgendaItem]:
        return [i for i in self.items if i.day == day]

    def days(self) -> list[int]:
        return sorted({i.day for i in self.items})

    def minutes_of(self, kind: SessionKind) -> int:
        return sum(i.minutes for i in self.items if i.kind == kind)

    def total_minutes(self) -> int:
        return sum(i.minutes for i in self.items)

    def hands_on_fraction(self) -> float:
        """Share of non-break time spent hands-on (the design's emphasis)."""
        working = self.total_minutes() - self.minutes_of(SessionKind.BREAK)
        return self.minutes_of(SessionKind.HANDS_ON) / working if working else 0.0


def build_2020_agenda() -> WorkshopAgenda:
    """The July 2020 pilot: 2.5 days, module mornings, demo/discussion
    afternoons."""
    agenda = WorkshopAgenda()
    # Day 1: shared-memory morning.
    agenda.add(AgendaItem(1, "Welcome and introductions", SessionKind.DISCUSSION, 30))
    agenda.add(AgendaItem(1, "OpenMP on the Raspberry Pi (module 1)",
                          SessionKind.HANDS_ON, 120))
    agenda.add(AgendaItem(1, "Lunch", SessionKind.BREAK, 60))
    agenda.add(AgendaItem(1, "CSinParallel.org overview", SessionKind.DEMO, 60))
    agenda.add(AgendaItem(1, "Teaching PDC in core courses", SessionKind.DISCUSSION, 60))
    # Day 2: distributed morning.
    agenda.add(AgendaItem(2, "MPI & distributed cluster computing (module 2)",
                          SessionKind.HANDS_ON, 120))
    agenda.add(AgendaItem(2, "Lunch", SessionKind.BREAK, 60))
    agenda.add(AgendaItem(2, "Exemplar deep dives", SessionKind.DEMO, 60))
    agenda.add(AgendaItem(2, "Fall 2020 planning under COVID", SessionKind.DISCUSSION, 60))
    # Day 3 (half day): synthesis.
    agenda.add(AgendaItem(3, "Assessment and adoption planning", SessionKind.DISCUSSION, 90))
    agenda.add(AgendaItem(3, "Wrap-up", SessionKind.DISCUSSION, 30))
    return agenda


class Facilitation(str, Enum):
    """Moderation policies for a virtual discussion."""

    NONE = "none"  # open floor: loudest voice wins
    ROUND_ROBIN = "round-robin"  # facilitator calls on everyone in turn
    PROMPTED = "prompted"  # open floor, but quiet members are invited in


@dataclass(frozen=True)
class DiscussionOutcome:
    """Talk-time distribution of one simulated discussion."""

    turns: dict[str, int]
    policy: Facilitation

    @property
    def total_turns(self) -> int:
        return sum(self.turns.values())

    @property
    def silent_participants(self) -> int:
        return sum(1 for n in self.turns.values() if n == 0)

    @property
    def dominance(self) -> float:
        """The top talker's share of all turns (1/n = perfectly balanced)."""
        if self.total_turns == 0:
            return 0.0
        return max(self.turns.values()) / self.total_turns

    def balanced(self, tolerance: float = 2.0) -> bool:
        """Nobody holds more than ``tolerance``x their fair share."""
        n = len(self.turns)
        return n > 0 and self.dominance <= tolerance / n and not self.silent_participants


def simulate_discussion(
    participants: list[str],
    extroversion: dict[str, float] | None = None,
    minutes: int = 60,
    policy: Facilitation = Facilitation.NONE,
    seed: int = 2020,
) -> DiscussionOutcome:
    """Simulate turn-taking in a virtual discussion.

    Each minute one participant speaks.  With no facilitation, the chance
    of taking the floor is proportional to extroversion — so extroverts
    dominate and the shyest members may never speak (the paper's
    observation).  ``ROUND_ROBIN`` ignores extroversion entirely;
    ``PROMPTED`` keeps the open floor but hands the microphone to the
    least-heard participant every third turn (the "special effort to draw
    out shy students").
    """
    if not participants:
        raise ValueError("a discussion needs participants")
    if minutes < 1:
        raise ValueError("minutes must be positive")
    rng = random.Random(seed)
    if extroversion is None:
        # Long-tailed: a few strong extroverts, several quiet members.
        extroversion = {
            p: 0.2 + 4.0 * rng.random() ** 3 for p in participants
        }
    weights = [max(1e-6, extroversion[p]) for p in participants]
    turns = {p: 0 for p in participants}

    for minute in range(minutes):
        if policy is Facilitation.ROUND_ROBIN:
            speaker = participants[minute % len(participants)]
        elif policy is Facilitation.PROMPTED and minute % 3 == 2:
            speaker = min(participants, key=lambda p: (turns[p], p))
        else:
            speaker = rng.choices(participants, weights=weights, k=1)[0]
        turns[speaker] += 1
    return DiscussionOutcome(turns=turns, policy=policy)
