"""repro — reproduction of "Teaching PDC in the Time of COVID: Hands-on
Materials for Remote Learning" (Adams, Brown, Matthews, Shoop; EduPar 2021).

The package rebuilds the paper's teaching-materials system from scratch:

* :mod:`repro.mpi` — an in-process MPI with the mpi4py API (thread-per-rank
  runtime, real collective algorithms, ``mpirun`` emulation);
* :mod:`repro.openmp` — an OpenMP-style shared-memory runtime on threads;
* :mod:`repro.analysis` — a happens-before race detector and an MPI
  correctness checker over the two runtimes (``repro analyze``);
* :mod:`repro.patternlets` — the patternlet catalog for both paradigms;
* :mod:`repro.exemplars` — numerical integration, drug design, forest fire;
* :mod:`repro.platforms` — Raspberry Pi / Colab / Chameleon / St. Olaf VM
  models with deterministic performance simulation;
* :mod:`repro.runestone` — the interactive-handout engine, the Colab
  notebook emulator, and the actual module content;
* :mod:`repro.kits` — the $100 mailed kit (Table I) and system image;
* :mod:`repro.assessment` — survey instruments, a from-scratch paired
  t-test, and the calibrated cohort behind Table II and Figures 3-4;
* :mod:`repro.core` — curriculum, session simulation, the workshop pilot.

Quick start
-----------
>>> from repro import mpirun
>>> mpirun(lambda comm: comm.Get_rank(), 4)
[0, 1, 2, 3]
"""

from .mpi import MPI, mpirun, run_script
from .openmp import parallel_for, parallel_region
from .patternlets import all_patternlets, get_patternlet

__version__ = "1.0.0"

__all__ = [
    "MPI",
    "mpirun",
    "run_script",
    "parallel_for",
    "parallel_region",
    "all_patternlets",
    "get_patternlet",
    "__version__",
]
