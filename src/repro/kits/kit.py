"""Kit composition and cost (regenerates Table I)."""

from __future__ import annotations

from dataclasses import dataclass, field

from .parts import CATALOG, TABLE1_PART_SKUS, Part

__all__ = ["KitSpec", "standard_pi_kit", "render_table1"]


@dataclass
class KitSpec:
    """A bill of materials for one mailable kit."""

    name: str
    items: list[tuple[Part, int]] = field(default_factory=list)

    def add(self, part: Part, quantity: int = 1) -> "KitSpec":
        if quantity < 1:
            raise ValueError("quantity must be at least 1")
        self.items.append((part, quantity))
        return self

    def cost(self, bulk: bool = True) -> float:
        """Total kit cost; ``bulk=False`` prices every part at list.

        The bulk price is the paper's quoted per-part cost (Table I).
        """
        total = 0.0
        for part, qty in self.items:
            price = part.unit_price if bulk else part.price_at(1)
            total += price * qty
        return round(total, 2)

    def rows(self, bulk: bool = True) -> list[tuple[str, float]]:
        """(part name, extended cost) rows in bill-of-materials order."""
        return [
            (
                part.name,
                round((part.unit_price if bulk else part.price_at(1)) * qty, 2),
            )
            for part, qty in self.items
        ]

    def part_count(self) -> int:
        return sum(qty for _p, qty in self.items)


def standard_pi_kit() -> KitSpec:
    """The exact Table I kit: CanaKit, dongles, cable, microSD, and case."""
    kit = KitSpec("Mailed Raspberry Pi kit")
    for sku in TABLE1_PART_SKUS:
        kit.add(CATALOG[sku], 1)
    return kit


def render_table1(kit: KitSpec | None = None) -> str:
    """Render the kit's bill of materials the way Table I prints it."""
    kit = kit or standard_pi_kit()
    lines = [
        "TABLE I — APPROXIMATE COST BREAKDOWN OF MAILED RASPBERRY PI KIT",
        f"{'Part':<34} {'Cost':>8}",
    ]
    for name, cost in kit.rows():
        lines.append(f"{name:<34} ${cost:>7.2f}")
    lines.append(f"{'Total Kit Cost':<34} ${kit.cost():>7.2f}")
    return "\n".join(lines)
