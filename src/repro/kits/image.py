"""The custom Raspberry Pi system image and microSD flashing model.

The paper's image ([45], ``csip-image-3.0.2``) ships the OpenMP code
examples and "was tested and confirmed to work on all Raspberry Pi models
from the 3B onward"; it is kept current with Ansible.  This module models
that artifact: versioned contents, a hardware-compatibility check, and
the flash-to-card step the setup videos walk learners through.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PiModel",
    "SystemImage",
    "MicroSDCard",
    "FlashedCard",
    "CSIP_IMAGE",
    "SUPPORTED_MODELS",
    "UNSUPPORTED_MODELS",
]


@dataclass(frozen=True)
class PiModel:
    """A Raspberry Pi hardware revision."""

    name: str
    generation: float  # 3.0 for 3B, 3.1 for 3B+, 4.0 for 4
    cores: int
    ram_mb: int


#: Models from the 3B onward — the image's supported set.
SUPPORTED_MODELS: tuple[PiModel, ...] = (
    PiModel("Raspberry Pi 3B", 3.0, 4, 1024),
    PiModel("Raspberry Pi 3B+", 3.1, 4, 1024),
    PiModel("Raspberry Pi 4 (2GB)", 4.0, 4, 2048),
    PiModel("Raspberry Pi 4 (4GB)", 4.0, 4, 4096),
    PiModel("Raspberry Pi 4 (8GB)", 4.0, 4, 8192),
)

#: Pre-3B hardware the image does not target.
UNSUPPORTED_MODELS: tuple[PiModel, ...] = (
    PiModel("Raspberry Pi 1B", 1.0, 1, 512),
    PiModel("Raspberry Pi 2B", 2.0, 4, 1024),
    PiModel("Raspberry Pi Zero", 1.5, 1, 512),
)


@dataclass(frozen=True)
class SystemImage:
    """A versioned, flashable system image."""

    name: str
    version: str
    size_mb: int
    min_generation: float
    url: str
    contents: tuple[str, ...] = ()
    maintained_with: str = "ansible"

    def supports(self, model: PiModel) -> bool:
        """Hardware-compatibility check ("all models from the 3B onward")."""
        return model.generation >= self.min_generation

    def includes(self, item: str) -> bool:
        return item in self.contents


@dataclass
class MicroSDCard:
    """A blank (or re-flashable) microSD card."""

    capacity_mb: int

    def __post_init__(self) -> None:
        if self.capacity_mb <= 0:
            raise ValueError("card capacity must be positive")


@dataclass(frozen=True)
class FlashedCard:
    """A card carrying a specific image version."""

    capacity_mb: int
    image: SystemImage

    def boots_on(self, model: PiModel) -> bool:
        return self.image.supports(model)


def flash(card: MicroSDCard, image: SystemImage) -> FlashedCard:
    """Burn the image onto the card ("learners just burn the image...")."""
    if image.size_mb > card.capacity_mb:
        raise ValueError(
            f"image {image.name} ({image.size_mb} MB) does not fit on a "
            f"{card.capacity_mb} MB card"
        )
    return FlashedCard(capacity_mb=card.capacity_mb, image=image)


#: The image the kits ship: CSinParallel image 3.0.2 on a 16 GB card.
CSIP_IMAGE = SystemImage(
    name="csip-image",
    version="3.0.2",
    size_mb=7200,
    min_generation=3.0,
    url="http://csinparallel.cs.stolaf.edu/2020-06-18-csip-image-3.0.2.zip",
    contents=(
        "openmp-patternlets",
        "numerical-integration-exemplar",
        "drug-design-exemplar",
        "gcc-with-openmp",
        "setup-scripts",
    ),
)
