"""Parts catalog for the mailed Raspberry Pi kits (Table I).

Prices are the paper's quoted unit costs, achievable "because several of
these materials can be bought in bulk" — the catalog therefore carries
optional quantity-break pricing used by the inventory planner.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Part", "CATALOG", "TABLE1_PART_SKUS"]


@dataclass(frozen=True)
class Part:
    """One purchasable component.

    ``bulk_breaks`` maps minimum quantity -> per-unit price at or above
    that quantity.  The Table I prices are already the bulk-achieved ones;
    ``list_price`` records the single-unit street price for the cost-
    sensitivity exercise.
    """

    sku: str
    name: str
    unit_price: float
    list_price: float | None = None
    bulk_breaks: dict[int, float] = field(default_factory=dict)
    category: str = "component"

    def __post_init__(self) -> None:
        if self.unit_price < 0:
            raise ValueError(f"{self.sku}: price cannot be negative")
        for qty, price in self.bulk_breaks.items():
            if qty < 1 or price < 0:
                raise ValueError(f"{self.sku}: invalid bulk break {qty} -> {price}")

    def price_at(self, quantity: int) -> float:
        """Per-unit price when buying ``quantity`` at once."""
        if quantity < 1:
            raise ValueError("quantity must be at least 1")
        best = self.list_price if self.list_price is not None else self.unit_price
        for qty, price in sorted(self.bulk_breaks.items()):
            if quantity >= qty:
                best = price
        return best


#: Table I parts, with the paper's exact prices as the bulk-achieved cost.
CATALOG: dict[str, Part] = {
    part.sku: part
    for part in (
        Part(
            "canakit-pi4-2g",
            "CanaKit with 2G Raspberry Pi",
            unit_price=62.99,
            list_price=62.99,  # CanaKit held its price; no bulk break
            category="computer",
        ),
        Part(
            "eth-usb-a",
            "Ethernet-USB A dongle",
            unit_price=15.95,
            list_price=18.99,
            bulk_breaks={10: 15.95},
            category="networking",
        ),
        Part(
            "usb-a-c",
            "USB A-C dongle",
            unit_price=3.99,
            list_price=6.99,
            bulk_breaks={10: 3.99},
            category="networking",
        ),
        Part(
            "eth-cable",
            "Ethernet cable",
            unit_price=1.55,
            list_price=4.49,
            bulk_breaks={10: 1.55},
            category="networking",
        ),
        Part(
            "microsd-16g",
            "16G MicroSD",
            unit_price=5.41,
            list_price=7.99,
            bulk_breaks={10: 5.41},
            category="storage",
        ),
        Part(
            "kit-case",
            "Kit case",
            unit_price=10.77,
            list_price=12.99,
            bulk_breaks={10: 10.77},
            category="packaging",
        ),
    )
}

#: The SKUs that make up one Table I kit, in the table's row order.
TABLE1_PART_SKUS: tuple[str, ...] = (
    "canakit-pi4-2g",
    "eth-usb-a",
    "usb-a-c",
    "eth-cable",
    "microsd-16g",
    "kit-case",
)
