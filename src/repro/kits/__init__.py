"""``repro.kits`` — the mailed Raspberry Pi kit: parts, cost, image, logistics.

Regenerates Table I (:func:`render_table1`) and models the system image and
the assembly/mailing workflow of Sections III-A and IV-A.
"""

from .image import (
    CSIP_IMAGE,
    SUPPORTED_MODELS,
    UNSUPPORTED_MODELS,
    FlashedCard,
    MicroSDCard,
    PiModel,
    SystemImage,
    flash,
)
from .inventory import AssembledKit, KitBuildPlan, KitInventory, KitStatus
from .kit import KitSpec, render_table1, standard_pi_kit
from .parts import CATALOG, TABLE1_PART_SKUS, Part

__all__ = [
    "Part",
    "CATALOG",
    "TABLE1_PART_SKUS",
    "KitSpec",
    "standard_pi_kit",
    "render_table1",
    "PiModel",
    "SystemImage",
    "MicroSDCard",
    "FlashedCard",
    "flash",
    "CSIP_IMAGE",
    "SUPPORTED_MODELS",
    "UNSUPPORTED_MODELS",
    "KitInventory",
    "KitBuildPlan",
    "AssembledKit",
    "KitStatus",
]
