"""Kit assembly and mailing logistics.

Models the workflow in Sections III-A and IV-A: purchase parts (in bulk
where quantity breaks apply), flash cards with the current image, assemble
kits, and mail them to remote participants ahead of the workshop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .image import CSIP_IMAGE, FlashedCard, MicroSDCard, SystemImage, flash
from .kit import KitSpec, standard_pi_kit

__all__ = ["KitStatus", "AssembledKit", "KitBuildPlan", "KitInventory"]


class KitStatus(str, Enum):
    ASSEMBLED = "assembled"
    MAILED = "mailed"
    DELIVERED = "delivered"
    RETURNED = "returned"


@dataclass
class AssembledKit:
    """One physical kit, tracked from bench to mailbox."""

    serial: int
    spec_name: str
    card: FlashedCard
    status: KitStatus = KitStatus.ASSEMBLED
    recipient: str | None = None

    def mail_to(self, recipient: str) -> None:
        if self.status is not KitStatus.ASSEMBLED:
            raise ValueError(f"kit {self.serial} already {self.status.value}")
        self.recipient = recipient
        self.status = KitStatus.MAILED

    def mark_delivered(self) -> None:
        if self.status is not KitStatus.MAILED:
            raise ValueError(f"kit {self.serial} is {self.status.value}, not mailed")
        self.status = KitStatus.DELIVERED


@dataclass(frozen=True)
class KitBuildPlan:
    """Procurement summary for building ``quantity`` kits."""

    quantity: int
    per_kit_bulk: float
    per_kit_list: float
    total_bulk: float
    total_list: float

    @property
    def bulk_savings(self) -> float:
        return round(self.total_list - self.total_bulk, 2)


class KitInventory:
    """Builds, tracks, and mails kits for one workshop offering."""

    def __init__(
        self, spec: KitSpec | None = None, image: SystemImage = CSIP_IMAGE
    ) -> None:
        self.spec = spec or standard_pi_kit()
        self.image = image
        self.kits: list[AssembledKit] = []

    def plan(self, quantity: int) -> KitBuildPlan:
        """Cost the build with and without quantity breaks.

        Bulk pricing engages per part when the order quantity crosses its
        break — this is how the authors hit ~$100/kit.
        """
        if quantity < 1:
            raise ValueError("must plan at least one kit")
        per_bulk = 0.0
        per_list = 0.0
        for part, qty in self.spec.items:
            per_bulk += part.price_at(quantity) * qty
            per_list += part.price_at(1) * qty
        return KitBuildPlan(
            quantity=quantity,
            per_kit_bulk=round(per_bulk, 2),
            per_kit_list=round(per_list, 2),
            total_bulk=round(per_bulk * quantity, 2),
            total_list=round(per_list * quantity, 2),
        )

    def assemble(self, quantity: int, card_capacity_mb: int = 16_000) -> list[AssembledKit]:
        """Flash cards and assemble kits; returns the new kits."""
        new: list[AssembledKit] = []
        for _ in range(quantity):
            card = flash(MicroSDCard(card_capacity_mb), self.image)
            kit = AssembledKit(
                serial=len(self.kits) + 1, spec_name=self.spec.name, card=card
            )
            self.kits.append(kit)
            new.append(kit)
        return new

    def mail_all(self, recipients: list[str]) -> None:
        """Mail one assembled kit to each recipient."""
        ready = [k for k in self.kits if k.status is KitStatus.ASSEMBLED]
        if len(ready) < len(recipients):
            raise ValueError(
                f"only {len(ready)} kits assembled for {len(recipients)} recipients"
            )
        for kit, who in zip(ready, recipients):
            kit.mail_to(who)

    def status_counts(self) -> dict[KitStatus, int]:
        counts = {status: 0 for status in KitStatus}
        for kit in self.kits:
            counts[kit.status] += 1
        return counts
