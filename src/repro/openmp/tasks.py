"""OpenMP 3.0-style tasking: ``task``, ``taskwait``, ``taskgroup``.

Recursive decomposition (the parallel-mergesort exemplar, tree traversals)
doesn't fit worksharing loops; OpenMP solves it with explicit tasks.  This
module provides the same model on the thread-team runtime:

* :func:`task` submits a deferred unit of work to the team's shared pool
  and returns a :class:`TaskHandle`;
* idle team members (and any thread that blocks in :func:`taskwait` or
  ``TaskHandle.result``) *steal* pending tasks while they wait, so
  recursive task trees make progress even on a team of one;
* :class:`taskgroup` waits for all tasks submitted inside its scope.

Outside a parallel region tasks run inline (serial semantics), matching
OpenMP's behaviour for orphaned task constructs.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable

from . import hooks as _hooks
from .team import current_team

__all__ = ["TaskHandle", "task", "taskwait", "taskgroup"]

#: Helping may nest this many task frames per thread before it degrades to
#: plain waiting (bounds stack growth on deep task chains).
_MAX_HELP_DEPTH = 25

_helping = threading.local()


class TaskHandle:
    """Completion handle for one submitted task."""

    __slots__ = (
        "_fn",
        "_args",
        "_kwargs",
        "_done",
        "_result",
        "_error",
        "_lock",
        "_on_inline_done",
    )

    def __init__(self, fn: Callable[..., Any], args: tuple, kwargs: dict) -> None:
        self._fn = fn
        self._args = args
        self._kwargs = kwargs
        self._done = threading.Event()
        self._result: Any = None
        self._error: BaseException | None = None
        self._lock = threading.Lock()
        self._on_inline_done: Callable[[], None] | None = None

    def _claim(self) -> bool:
        """Atomically claim execution rights (each task runs exactly once)."""
        with self._lock:
            if self._fn is None:
                return False
            return True

    def _execute(self) -> None:
        with self._lock:
            fn, self._fn = self._fn, None
        if fn is None:
            return
        if _hooks.enabled:
            _hooks.emit("task_start", id(self))
        try:
            self._result = fn(*self._args, **self._kwargs)
        except BaseException as exc:  # noqa: BLE001 - re-raised at result()
            self._error = exc
        finally:
            if _hooks.enabled:
                _hooks.emit("task_end", id(self))
            self._done.set()
            callback = self._on_inline_done
            if callback is not None:
                self._on_inline_done = None
                callback()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self) -> Any:
        """Wait for completion (helping) and return the value.

        If this task is still pending, the waiting thread executes it
        inline — so stack depth grows only along the dependency chain, as
        with OpenMP's if-clause undeferred tasks.  While the task runs on
        another thread, the waiter helps with *unrelated* pending tasks,
        bounded by a per-thread depth cap (unbounded helping could nest
        arbitrary unrelated chains on one stack).
        """
        pool = _pool()
        if pool is not None and pool.try_remove(self):
            self._execute()
        depth = getattr(_helping, "depth", 0)
        while not self._done.is_set():
            if pool is None or depth >= _MAX_HELP_DEPTH:
                self._done.wait(timeout=0.001)
                continue
            _helping.depth = depth + 1
            try:
                helped = pool.run_one()
            finally:
                _helping.depth = depth
            if not helped:
                self._done.wait(timeout=0.001)
        if _hooks.enabled:
            _hooks.emit("task_join", id(self))
        if self._error is not None:
            raise self._error
        return self._result


class _TaskPool:
    """The team-shared deque of pending tasks."""

    def __init__(self) -> None:
        self._pending: deque[TaskHandle] = deque()
        self._lock = threading.Lock()
        self.outstanding = 0
        self._all_done = threading.Condition(self._lock)

    def submit(self, handle: TaskHandle) -> None:
        with self._lock:
            self._pending.append(handle)
            self.outstanding += 1

    def try_remove(self, handle: TaskHandle) -> bool:
        """Claim a specific pending task for inline execution by a waiter."""
        with self._lock:
            try:
                self._pending.remove(handle)
            except ValueError:
                return False
        # Balance the outstanding count when the inline execution finishes:
        # the waiter calls handle._execute() directly, so decrement here via
        # a completion callback on the handle's done event.
        def _on_done() -> None:
            with self._all_done:
                self.outstanding -= 1
                if self.outstanding == 0:
                    self._all_done.notify_all()

        handle._on_inline_done = _on_done
        return True

    def run_one(self) -> bool:
        """Execute one pending task if any; True if work was done."""
        with self._lock:
            if not self._pending:
                return False
            handle = self._pending.popleft()
        handle._execute()
        with self._all_done:
            self.outstanding -= 1
            if self.outstanding == 0:
                self._all_done.notify_all()
        return True

    def drain(self) -> None:
        """Help until no tasks remain outstanding anywhere in the team."""
        while True:
            if self.run_one():
                continue
            with self._all_done:
                if self.outstanding == 0:
                    return
                self._all_done.wait(timeout=0.001)


def _pool() -> _TaskPool | None:
    team = current_team()
    if team is None:
        return None
    with team._single_guard:
        pool = team.shared.get("__taskpool__")
        if pool is None:
            pool = team.shared["__taskpool__"] = _TaskPool()
        return pool


def task(fn: Callable[..., Any], *args: Any, **kwargs: Any) -> TaskHandle:
    """``#pragma omp task``: submit deferred work to the team's pool.

    Outside a parallel region the task executes immediately (OpenMP's
    serial semantics for orphaned tasks).
    """
    handle = TaskHandle(fn, args, kwargs)
    if _hooks.enabled:
        _hooks.emit("task_submit", id(handle))
    pool = _pool()
    if pool is None:
        handle._execute()
        if handle._error is not None:
            raise handle._error
        return handle
    pool.submit(handle)
    return handle


def taskwait() -> None:
    """``#pragma omp taskwait``: help run tasks until the pool is empty.

    Note: like a taskgroup over *all* outstanding tasks — sufficient for
    the teaching workloads (divide-and-conquer joins), conservative for
    unrelated concurrent task streams.
    """
    pool = _pool()
    if pool is not None:
        pool.drain()
    if _hooks.enabled:
        _hooks.emit("task_join_all")


class taskgroup:
    """``#pragma omp taskgroup``: wait for tasks submitted inside the scope.

    >>> with taskgroup() as tg:
    ...     handles = [task(work, i) for i in range(8)]
    ... # all eight tasks complete here
    """

    def __init__(self) -> None:
        self._handles: list[TaskHandle] = []

    def task(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> TaskHandle:
        handle = task(fn, *args, **kwargs)
        self._handles.append(handle)
        return handle

    def __enter__(self) -> "taskgroup":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return
        pool = _pool()
        for handle in self._handles:
            while not handle.done:
                if pool is None or not pool.run_one():
                    handle._done.wait(timeout=0.001)
            if _hooks.enabled:
                _hooks.emit("task_join", id(handle))
        # surface the first task error, as OpenMP would abort the group
        for handle in self._handles:
            if handle._error is not None:
                raise handle._error
