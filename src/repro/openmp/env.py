"""Runtime configuration: the ``OMP_*`` environment analogue.

OpenMP programs control their team size with ``omp_set_num_threads`` /
``OMP_NUM_THREADS`` and their loop scheduling with ``OMP_SCHEDULE``.  This
module provides the same knobs for the Python runtime, including the
environment-variable override so shell-driven lab exercises behave like
their C counterparts.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass

__all__ = [
    "OpenMPConfig",
    "get_config",
    "set_num_threads",
    "get_max_threads",
    "num_procs",
    "scoped_num_threads",
]

#: Hard ceiling to protect the host from accidental thread bombs.
MAX_TEAM_SIZE = 512


@dataclass
class OpenMPConfig:
    """Mutable global runtime settings (one per process, as in OpenMP)."""

    num_threads: int
    schedule: str = "static"
    chunk: int | None = None
    dynamic_adjust: bool = False


_lock = threading.Lock()
_config: OpenMPConfig | None = None


def _default_num_threads() -> int:
    env = os.environ.get("OMP_NUM_THREADS")
    if env:
        try:
            return max(1, int(env.split(",")[0]))
        except ValueError:
            pass
    return os.cpu_count() or 1


def get_config() -> OpenMPConfig:
    """The process-wide configuration, creating it on first use."""
    global _config
    with _lock:
        if _config is None:
            schedule = "static"
            chunk = None
            env = os.environ.get("OMP_SCHEDULE")
            if env:
                parts = env.split(",")
                schedule = parts[0].strip().lower() or "static"
                if len(parts) > 1 and parts[1].strip():
                    try:
                        chunk = max(1, int(parts[1]))
                    except ValueError:
                        chunk = None
            _config = OpenMPConfig(
                num_threads=_default_num_threads(), schedule=schedule, chunk=chunk
            )
        return _config


def set_num_threads(n: int) -> None:
    """``omp_set_num_threads``: team size for subsequent parallel regions."""
    if not 1 <= n <= MAX_TEAM_SIZE:
        raise ValueError(f"num_threads must be in [1, {MAX_TEAM_SIZE}], got {n}")
    get_config().num_threads = int(n)


def get_max_threads() -> int:
    """``omp_get_max_threads``: team size the next region would use."""
    return get_config().num_threads


def num_procs() -> int:
    """``omp_get_num_procs``: hardware parallelism of the host."""
    return os.cpu_count() or 1


def _reset_for_testing() -> None:
    """Drop the cached config so env-var parsing can be re-exercised."""
    global _config
    with _lock:
        _config = None


@contextlib.contextmanager
def scoped_num_threads(n: int):
    """Temporarily override the default team size (handy in tests/benches)."""
    cfg = get_config()
    old = cfg.num_threads
    set_num_threads(n)
    try:
        yield
    finally:
        cfg.num_threads = old
