"""Runtime configuration: the ``OMP_*`` environment analogue.

OpenMP programs control their team size with ``omp_set_num_threads`` /
``OMP_NUM_THREADS`` and their loop scheduling with ``OMP_SCHEDULE``.  This
module provides the same knobs for the Python runtime, including the
environment-variable override so shell-driven lab exercises behave like
their C counterparts.

Beyond the standard knobs, the runtime adds an *execution backend* axis
(``OMP_BACKEND`` / :attr:`OpenMPConfig.backend`): ``"threads"`` runs
parallel regions on Python threads (concurrent, GIL-bound — races are
real, speedup is not), while ``"processes"`` runs worksharing loops on a
persistent pool of worker processes so CPU-bound loop bodies achieve real
wall-clock speedup on multicore hosts.  See :mod:`repro.openmp.backends`.
"""

from __future__ import annotations

import contextlib
import os
import threading
from dataclasses import dataclass

__all__ = [
    "OpenMPConfig",
    "BACKENDS",
    "get_config",
    "set_num_threads",
    "get_max_threads",
    "num_procs",
    "scoped_num_threads",
    "set_backend",
    "get_backend",
    "scoped",
]

#: Hard ceiling to protect the host from accidental thread bombs.
MAX_TEAM_SIZE = 512

#: The execution backends the worksharing constructs understand.
BACKENDS = ("threads", "processes")


@dataclass
class OpenMPConfig:
    """Mutable global runtime settings (one per process, as in OpenMP)."""

    num_threads: int
    schedule: str = "static"
    chunk: int | None = None
    dynamic_adjust: bool = False
    backend: str = "threads"


_lock = threading.Lock()
_config: OpenMPConfig | None = None


def _default_num_threads() -> int:
    env = os.environ.get("OMP_NUM_THREADS")
    if env:
        try:
            return max(1, int(env.split(",")[0]))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _default_backend() -> str:
    env = (os.environ.get("OMP_BACKEND") or "").strip().lower()
    return env if env in BACKENDS else "threads"


def get_config() -> OpenMPConfig:
    """The process-wide configuration, creating it on first use."""
    global _config
    with _lock:
        if _config is None:
            schedule = "static"
            chunk = None
            env = os.environ.get("OMP_SCHEDULE")
            if env:
                parts = env.split(",")
                schedule = parts[0].strip().lower() or "static"
                if len(parts) > 1 and parts[1].strip():
                    try:
                        chunk = max(1, int(parts[1]))
                    except ValueError:
                        chunk = None
            _config = OpenMPConfig(
                num_threads=_default_num_threads(),
                schedule=schedule,
                chunk=chunk,
                backend=_default_backend(),
            )
        return _config


def set_num_threads(n: int) -> None:
    """``omp_set_num_threads``: team size for subsequent parallel regions."""
    if not 1 <= n <= MAX_TEAM_SIZE:
        raise ValueError(f"num_threads must be in [1, {MAX_TEAM_SIZE}], got {n}")
    get_config().num_threads = int(n)


def get_max_threads() -> int:
    """``omp_get_max_threads``: team size the next region would use."""
    return get_config().num_threads


def num_procs() -> int:
    """``omp_get_num_procs``: hardware parallelism of the host."""
    return os.cpu_count() or 1


def set_backend(name: str) -> None:
    """Select the execution backend for subsequent worksharing loops."""
    name = name.strip().lower()
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
    get_config().backend = name


def get_backend() -> str:
    """The currently selected execution backend."""
    return get_config().backend


def _reset_for_testing() -> None:
    """Drop the cached config so env-var parsing can be re-exercised."""
    global _config
    with _lock:
        _config = None


@contextlib.contextmanager
def scoped_num_threads(n: int):
    """Temporarily override the default team size (handy in tests/benches)."""
    cfg = get_config()
    old = cfg.num_threads
    set_num_threads(n)
    try:
        yield
    finally:
        cfg.num_threads = old


@contextlib.contextmanager
def scoped(
    num_threads: int | None = None,
    schedule: str | None = None,
    chunk: int | None = None,
    backend: str | None = None,
):
    """Temporarily override any combination of runtime settings.

    >>> with scoped(num_threads=4, backend="processes"):
    ...     pass  # worksharing loops here use 4 process workers
    """
    cfg = get_config()
    old = (cfg.num_threads, cfg.schedule, cfg.chunk, cfg.backend)
    try:
        if num_threads is not None:
            set_num_threads(num_threads)
        if schedule is not None:
            cfg.schedule = schedule.strip().lower()
        if chunk is not None:
            cfg.chunk = max(1, int(chunk))
        if backend is not None:
            set_backend(backend)
        yield cfg
    finally:
        cfg.num_threads, cfg.schedule, cfg.chunk, cfg.backend = old
