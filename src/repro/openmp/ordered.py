"""The ``ordered`` construct: sequential sections inside parallel loops.

``#pragma omp ordered`` lets a parallel loop do most of its work
concurrently while forcing one marked section to execute in iteration
order — the classic pattern for ordered output or cumulative state.

Usage::

    gate = OrderedGate(n)
    def body(i):
        partial = expensive(i)          # runs concurrently
        with gate.turn(i):              # runs in iteration order 0,1,2,...
            emit(partial)
    parallel_for(n, body, num_threads=4, schedule="dynamic")

The gate admits iteration ``i`` only after iterations ``0..i-1`` have
completed their ordered sections, whatever schedule assigned them.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Generator

__all__ = ["OrderedGate"]


class OrderedGate:
    """Admission control for ordered sections over iterations ``0..n-1``."""

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("iteration count must be non-negative")
        self.n = n
        self._next = 0
        self._waiting = 0
        self._cond = threading.Condition()

    @contextlib.contextmanager
    def turn(self, i: int) -> Generator[None, None, None]:
        """Block until it is iteration ``i``'s turn; release the next on exit.

        Each iteration index may take its turn exactly once; a repeat (or an
        out-of-range index) is a loop bug and raises immediately.
        """
        if not 0 <= i < self.n:
            raise ValueError(f"iteration {i} outside ordered range 0..{self.n - 1}")
        with self._cond:
            if i < self._next:
                raise RuntimeError(f"ordered section for iteration {i} already ran")
            if self._next != i:
                self._waiting += 1
                self._cond.notify_all()  # wake wait_for_waiters observers
                try:
                    while self._next != i:
                        self._cond.wait()
                finally:
                    self._waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._next += 1
                self._cond.notify_all()

    @property
    def completed(self) -> int:
        """How many ordered sections have finished."""
        with self._cond:
            return self._next

    @property
    def waiting(self) -> int:
        """How many threads are currently blocked for their turn."""
        with self._cond:
            return self._waiting

    def wait_for_waiters(self, count: int, timeout: float = 5.0) -> bool:
        """Block until ``count`` threads are parked at the gate.

        The race-free handshake for tests and demos that need a thread to
        be *provably blocked* before releasing it — polling ``waiting`` or
        sleeping would only make the race rarer, not gone.
        """
        with self._cond:
            return self._cond.wait_for(
                lambda: self._waiting >= count, timeout=timeout
            )

    def finished(self) -> bool:
        return self.completed == self.n
