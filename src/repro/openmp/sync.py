"""Synchronization constructs: critical, atomic, barrier, single, master, locks.

These are the constructs the Runestone shared-memory module teaches as the
*fixes* for race conditions (the ``critical`` and ``atomic`` patternlets)
and as coordination primitives (``barrier``, ``master``, ``single``).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Generator, Iterator

from . import hooks as _hooks
from .team import _claim_single, current_team, get_thread_num

__all__ = [
    "critical",
    "barrier",
    "master",
    "single",
    "Lock",
    "AtomicCounter",
    "AtomicAccumulator",
]


@contextlib.contextmanager
def critical(name: str = "") -> Generator[None, None, None]:
    """``#pragma omp critical [(name)]``: team-wide named mutual exclusion.

    Unnamed critical sections share one lock, exactly as in OpenMP.  Outside
    a parallel region the construct is a no-op (single thread).
    """
    team = current_team()
    if team is None:
        yield
        return
    lock = team.critical_lock(name or "<unnamed>")
    if _hooks.enabled:
        # Before the acquisition attempt: the profiler charges the gap up
        # to ``acquire`` as contention wait (the race detector ignores it).
        _hooks.emit("acquire_enter", ("critical", id(lock)))
    with lock:
        if not _hooks.enabled:
            yield
            return
        _hooks.emit("acquire", ("critical", id(lock)))
        try:
            yield
        finally:
            _hooks.emit("release", ("critical", id(lock)))


def barrier() -> None:
    """``#pragma omp barrier``: wait for every team member."""
    team = current_team()
    if team is not None:
        if _hooks.enabled:
            _hooks.emit("barrier_enter", team)
        team.barrier.wait()
        if _hooks.enabled:
            _hooks.emit("barrier_exit", team)


def master(fn: Callable[[], Any] | None = None) -> Any:
    """``#pragma omp master``: run only on thread 0 (no implied barrier).

    Usable two ways: ``if master():`` as a predicate, or ``master(fn)`` to
    call ``fn`` on the master thread only (returns ``fn()`` there, ``None``
    elsewhere).
    """
    is_master = get_thread_num() == 0
    if fn is None:
        return is_master
    return fn() if is_master else None


def single(fn: Callable[[], Any] | None = None, nowait: bool = False) -> Any:
    """``#pragma omp single``: exactly one (arbitrary) thread executes.

    As a predicate, ``if single():`` elects a winner per call-site
    occurrence; every thread must reach the same occurrence (the standard's
    usual well-formedness requirement).  With ``fn``, the winner calls it.
    An implicit barrier follows unless ``nowait`` — matching OpenMP.
    """
    winner = _claim_single()
    result = None
    if fn is not None and winner:
        result = fn()
    if not nowait and fn is not None:
        barrier()
    if fn is None:
        return winner
    return result


class Lock:
    """``omp_lock_t`` equivalent (init/set/unset/test in OpenMP speak)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def set(self) -> None:
        """``omp_set_lock``: blocking acquire."""
        if _hooks.enabled:
            _hooks.emit("acquire_enter", ("lock", id(self._lock)))
        self._lock.acquire()
        if _hooks.enabled:
            _hooks.emit("acquire", ("lock", id(self._lock)))

    def unset(self) -> None:
        """``omp_unset_lock``: release."""
        if _hooks.enabled:
            _hooks.emit("release", ("lock", id(self._lock)))
        self._lock.release()

    def test(self) -> bool:
        """``omp_test_lock``: nonblocking acquire; True on success."""
        acquired = self._lock.acquire(blocking=False)
        if acquired and _hooks.enabled:
            _hooks.emit("acquire", ("lock", id(self._lock)))
        return acquired

    def __enter__(self) -> "Lock":
        self.set()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.unset()


def _plus(a: int, b: int) -> int:
    """Trivial helper whose call frame gives the scheduler a chance to switch."""
    return a + b


class AtomicCounter:
    """``#pragma omp atomic`` on an integer: indivisible read-modify-write."""

    __slots__ = ("_value", "_lock", "_site")

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._lock = threading.Lock()
        # Allocation site, recorded only under analysis so race reports can
        # name the shared variable; free when no detector is attached.
        self._site = None
        if _hooks.enabled:
            from ..analysis.race import _caller_site

            self._site = _caller_site()

    def _emit_update(self, kind_read: bool = True) -> None:
        _hooks.emit("acquire", ("lock", id(self._lock)))
        if kind_read:
            _hooks.emit("read", id(self), self)
        _hooks.emit("write", id(self), self)

    def add(self, delta: int = 1) -> int:
        """Atomically add; returns the new value."""
        if _hooks.enabled:
            _hooks.emit("acquire_enter", ("lock", id(self._lock)))
        with self._lock:
            if _hooks.enabled:
                self._emit_update()
            self._value += delta
            new = self._value
            if _hooks.enabled:
                _hooks.emit("release", ("lock", id(self._lock)))
            return new

    def increment(self) -> int:
        return self.add(1)

    def decrement(self) -> int:
        return self.add(-1)

    def fetch_and_add(self, delta: int) -> int:
        """Atomically add; returns the *old* value (the dynamic-scheduling
        workhorse)."""
        if _hooks.enabled:
            _hooks.emit("acquire_enter", ("lock", id(self._lock)))
        with self._lock:
            if _hooks.enabled:
                self._emit_update()
            old = self._value
            self._value += delta
            if _hooks.enabled:
                _hooks.emit("release", ("lock", id(self._lock)))
            return old

    @property
    def value(self) -> int:
        with self._lock:
            if _hooks.enabled:
                _hooks.emit("acquire", ("lock", id(self._lock)))
                _hooks.emit("read", id(self), self)
                _hooks.emit("release", ("lock", id(self._lock)))
            return self._value

    def unsafe_read_modify_write(self, delta: int = 1) -> None:
        """The *broken* version: a deliberately non-atomic ``x = x + delta``.

        Exists so the race-condition patternlet can demonstrate lost updates
        against the very same counter object that ``add`` protects.  The
        modify step goes through a function call because CPython (3.10+)
        only checks its thread-switch eval-breaker at call and backward-jump
        boundaries; without a call between the read and the write the window
        would never be preempted and the race would be invisible.
        """
        if _hooks.enabled:
            _hooks.emit("read", id(self), self)
        value = self._value  # read
        value = _plus(value, delta)  # modify (call boundary: preemption point)
        if _hooks.enabled:
            _hooks.emit("write", id(self), self)
        self._value = value  # write


class AtomicAccumulator:
    """Atomic accumulation for floats (``sum += term`` under a lock)."""

    __slots__ = ("_value", "_lock", "_site")

    def __init__(self, initial: float = 0.0) -> None:
        self._value = float(initial)
        self._lock = threading.Lock()
        self._site = None
        if _hooks.enabled:
            from ..analysis.race import _caller_site

            self._site = _caller_site()

    def add(self, delta: float) -> float:
        if _hooks.enabled:
            _hooks.emit("acquire_enter", ("lock", id(self._lock)))
        with self._lock:
            if _hooks.enabled:
                _hooks.emit("acquire", ("lock", id(self._lock)))
                _hooks.emit("read", id(self), self)
                _hooks.emit("write", id(self), self)
            self._value += delta
            new = self._value
            if _hooks.enabled:
                _hooks.emit("release", ("lock", id(self._lock)))
            return new

    @property
    def value(self) -> float:
        with self._lock:
            if _hooks.enabled:
                _hooks.emit("acquire", ("lock", id(self._lock)))
                _hooks.emit("read", id(self), self)
                _hooks.emit("release", ("lock", id(self._lock)))
            return self._value
