"""Reduction clauses: named combiners with identities.

``parallel_for(..., reduction="+")`` gives each thread a private partial
initialized to the identity, then combines the partials after the join —
exactly the semantics of ``reduction(+:var)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

__all__ = ["Reduction", "get_reduction", "REDUCTIONS"]


@dataclass(frozen=True)
class Reduction:
    """A named reduction: identity element plus binary combiner."""

    name: str
    identity: Any
    combine: Callable[[Any, Any], Any]

    def fold(self, partials: Sequence[Any]) -> Any:
        acc = self.identity
        for p in partials:
            acc = self.combine(acc, p)
        return acc


REDUCTIONS: dict[str, Reduction] = {
    "+": Reduction("+", 0, lambda a, b: a + b),
    "*": Reduction("*", 1, lambda a, b: a * b),
    "max": Reduction("max", float("-inf"), max),
    "min": Reduction("min", float("inf"), min),
    "&&": Reduction("&&", True, lambda a, b: bool(a) and bool(b)),
    "||": Reduction("||", False, lambda a, b: bool(a) or bool(b)),
    "&": Reduction("&", ~0, lambda a, b: a & b),
    "|": Reduction("|", 0, lambda a, b: a | b),
    "^": Reduction("^", 0, lambda a, b: a ^ b),
}


def get_reduction(spec: "str | Reduction") -> Reduction:
    """Resolve a reduction by operator name, or pass a custom one through."""
    if isinstance(spec, Reduction):
        return spec
    try:
        return REDUCTIONS[spec]
    except KeyError:
        raise ValueError(
            f"unknown reduction {spec!r}; expected one of {sorted(REDUCTIONS)}"
        ) from None
