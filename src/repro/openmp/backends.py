"""Pluggable execution backends for the worksharing constructs.

The thread backend gives the teaching runtime its *concurrency* semantics
(real races, real locks) but — Python threads being GIL-bound — no
wall-clock speedup for CPU-bound loop bodies.  This module adds the
*parallelism* half: a ``"processes"`` backend that runs worksharing loops
on a persistent :mod:`multiprocessing` worker pool, so the handout's
benchmarking study measures genuine multicore scaling.

Design points:

* **Chunk tasks, not per-index closures.**  Work ships to the pool as
  *batches of indices* ``(lo, hi)``; the loop over the batch runs inside
  the worker.  One pickle round-trip per chunk instead of per iteration.
* **Picklable kernels.**  Anything crossing the process boundary must
  pickle: loop bodies and chunk kernels must be module-level functions (or
  :func:`functools.partial` over them).  A closure raises
  :class:`BackendUnavailable` with a pointed message rather than a bare
  ``PicklingError``.
* **Persistent pool.**  The first process-backend loop forks the pool;
  subsequent loops reuse it (grown on demand), so per-loop overhead is a
  few pipe writes, not ``fork``+``exec``.
* **Shared-memory arrays.**  :class:`SharedArray` wraps
  :mod:`multiprocessing.shared_memory` behind a picklable handle, so NumPy
  exemplars can let workers write results in place instead of shipping
  arrays back through pickles.
"""

from __future__ import annotations

import atexit
import functools
import multiprocessing
import os
import pickle
import time
from typing import Any, Callable, Sequence

import numpy as np

from .env import BACKENDS, get_config
from .reduction import Reduction, get_reduction
from .scheduling import DynamicScheduler, static_block_ranges

__all__ = [
    "BackendUnavailable",
    "SharedArray",
    "chunk_ranges",
    "run_chunks",
    "process_parallel_for",
    "resolve_backend",
    "pool_size",
    "shutdown_pool",
]


class BackendUnavailable(RuntimeError):
    """The requested execution backend cannot run this workload."""


def resolve_backend(backend: str | None) -> str:
    """Normalize an explicit backend choice, defaulting to the config's."""
    name = (backend or get_config().backend).strip().lower()
    if name not in BACKENDS:
        raise ValueError(f"unknown backend {name!r}; expected one of {BACKENDS}")
    return name


# ---------------------------------------------------------------------------
# Persistent worker pool
# ---------------------------------------------------------------------------
# A ProcessPoolExecutor rather than multiprocessing.Pool: when a worker dies
# mid-task (e.g. a payload that pickled fine in the parent but fails to
# resolve in the worker), the executor raises BrokenProcessPool instead of
# hanging on the lost task forever.

_pool: Any = None
_pool_size = 0


def _mp_context():
    """Fork-based context when the platform has it (fast, inherits state)."""
    preferred = os.environ.get("REPRO_MP_START_METHOD")
    methods = multiprocessing.get_all_start_methods()
    if preferred and preferred in methods:
        return multiprocessing.get_context(preferred)
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def _get_pool(workers: int):
    """The persistent pool, created on first use and grown on demand."""
    global _pool, _pool_size
    if _pool is None or _pool_size < workers:
        if _pool is not None:
            _pool.shutdown(wait=False, cancel_futures=True)
        from concurrent.futures import ProcessPoolExecutor

        _pool = ProcessPoolExecutor(max_workers=workers, mp_context=_mp_context())
        _pool_size = workers
    return _pool


def pool_size() -> int:
    """Current size of the persistent worker pool (0 before first use)."""
    return _pool_size if _pool is not None else 0


def shutdown_pool() -> None:
    """Tear down the persistent pool (tests; also registered atexit)."""
    global _pool, _pool_size
    if _pool is not None:
        _pool.shutdown(wait=False, cancel_futures=True)
        _pool = None
        _pool_size = 0


atexit.register(shutdown_pool)


# ---------------------------------------------------------------------------
# Chunk decomposition
# ---------------------------------------------------------------------------

def chunk_ranges(
    n: int,
    workers: int,
    schedule: str = "static",
    chunk: int | None = None,
) -> list[tuple[int, int]]:
    """Split ``range(n)`` into contiguous ``(lo, hi)`` batches.

    The schedule controls granularity exactly as OpenMP's does placement:

    * ``static`` without a chunk: one nearly equal block per worker;
    * ``static`` with chunk ``c`` / ``dynamic``: size-``c`` batches
      (dynamic defaults to ~8 batches per worker so the pool's first-free
      -worker assignment can balance skewed bodies);
    * ``guided``: decaying batch sizes, ``remaining / workers`` bounded
      below by the chunk.

    Empty batches are dropped, so ``n = 0`` yields ``[]``.
    """
    if n < 0:
        raise ValueError(f"iteration count must be non-negative, got {n}")
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    if chunk is not None and chunk < 1:
        raise ValueError(f"chunk must be positive, got {chunk}")
    if n == 0:
        return []
    schedule = schedule.lower()
    if schedule == "static" and chunk is None:
        return [
            (r.start, r.stop)
            for r in static_block_ranges(n, workers)
            if len(r)
        ]
    if schedule in ("static", "dynamic"):
        size = chunk if chunk is not None else max(1, -(-n // (workers * 8)))
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]
    if schedule == "guided":
        floor = chunk or 1
        out: list[tuple[int, int]] = []
        lo = 0
        while lo < n:
            size = min(max(floor, (n - lo) // workers), n - lo)
            out.append((lo, lo + size))
            lo += size
        return out
    raise ValueError(f"unknown schedule {schedule!r}")


# ---------------------------------------------------------------------------
# Chunk execution
# ---------------------------------------------------------------------------

def _require_picklable(obj: Any, what: str) -> None:
    try:
        pickle.dumps(obj)
    except Exception as exc:
        raise BackendUnavailable(
            f"the process backend must pickle {what}, and {obj!r} is not "
            "picklable — use a module-level function (or functools.partial "
            "over one) instead of a closure/lambda, or select "
            "backend='threads'"
        ) from exc


def _threads_run_chunks(
    kernel: Callable[[int, int], Any],
    ranges: Sequence[tuple[int, int]],
    workers: int,
) -> list[Any]:
    """Thread-backend chunk execution: team members pull batches dynamically."""
    from .team import parallel_region

    results: list[Any] = [None] * len(ranges)
    sched = DynamicScheduler(len(ranges), 1)

    def member() -> None:
        for ci in iter(sched):
            lo, hi = ranges[ci]
            results[ci] = kernel(lo, hi)

    parallel_region(member, num_threads=max(1, min(workers, len(ranges))))
    return results


def _process_run_chunks(
    kernel: Callable[[int, int], Any],
    ranges: Sequence[tuple[int, int]],
    workers: int,
) -> list[Any]:
    """Process-backend chunk execution on the persistent pool.

    One future per batch hands work to whichever worker frees up first —
    the pool-side analogue of dynamic self-scheduling — while collecting
    results by future keeps them in batch order.  A worker death surfaces
    as :class:`BackendUnavailable` rather than a hang.
    """
    from concurrent.futures.process import BrokenProcessPool

    _require_picklable(kernel, "the chunk kernel")
    pool = _get_pool(workers)
    from ..obs import recorder as _obs

    tracing = _obs.active() is not None
    task = (
        functools.partial(_obs.run_traced_chunk, kernel) if tracing else kernel
    )
    submit_ts = time.monotonic()
    futures = [pool.submit(task, lo, hi) for lo, hi in ranges]
    try:
        if not tracing:
            return [f.result() for f in futures]
        results = []
        for f in futures:
            result, forwarded = f.result()
            if forwarded is not None:
                _obs.ingest_forwarded(forwarded, submit_ts)
            results.append(result)
        return results
    except BrokenProcessPool as exc:
        shutdown_pool()
        raise BackendUnavailable(
            "a process-backend worker died while running a chunk task "
            "(commonly: the kernel resolves to a name the worker cannot "
            "import, e.g. one defined interactively after the pool started)"
        ) from exc


def run_chunks(
    kernel: Callable[[int, int], Any],
    ranges: Sequence[tuple[int, int]],
    *,
    workers: int,
    backend: str | None = None,
) -> list[Any]:
    """Run ``kernel(lo, hi)`` over every batch; results in batch order."""
    if not ranges:
        return []
    if resolve_backend(backend) == "processes":
        return _process_run_chunks(kernel, ranges, workers)
    return _threads_run_chunks(kernel, ranges, workers)


def _index_chunk(
    body: Callable[[int], Any],
    reduction: "str | Reduction | None",
    lo: int,
    hi: int,
) -> Any:
    """Worker-side driver: run a per-index body over one batch of indices."""
    red = get_reduction(reduction) if reduction is not None else None
    partial = red.identity if red is not None else None
    for i in range(lo, hi):
        value = body(i)
        if red is not None:
            partial = red.combine(partial, value)
    return partial


def process_parallel_for(
    n: int,
    body: Callable[[int], Any],
    workers: int,
    schedule: str,
    chunk: int | None,
    reduction: "str | Reduction | None",
) -> Any:
    """``parallel_for`` on the process backend (called from ``loops``).

    Named reductions travel as their operator string and are resolved
    inside the worker, so the lambda-bearing :class:`Reduction` registry
    entries never cross the pickle boundary.  Without a reduction the body
    runs purely for its side effects, which must land in a
    :class:`SharedArray` (or other cross-process channel) to be visible.
    """
    ranges = chunk_ranges(n, workers, schedule, chunk)
    red = get_reduction(reduction) if reduction is not None else None
    spec = reduction if (reduction is None or isinstance(reduction, str)) else reduction
    if spec is not None and not isinstance(spec, str):
        _require_picklable(spec, "a custom Reduction")
    kernel = functools.partial(_index_chunk, body, spec)
    partials = _process_run_chunks(kernel, ranges, workers) if ranges else []
    if red is not None:
        return red.fold(partials)
    return None


# ---------------------------------------------------------------------------
# Shared-memory arrays
# ---------------------------------------------------------------------------

#: Worker-side cache of attached segments, keyed by shm name, so repeated
#: chunk tasks over the same array attach once per worker process.
_attached: dict[str, "SharedArray"] = {}


def _attach_shared(name: str, shape: tuple[int, ...], dtype: str) -> "SharedArray":
    cached = _attached.get(name)
    if cached is None:
        cached = _attached[name] = SharedArray(shape, dtype, _attach_name=name)
    return cached


class SharedArray:
    """A NumPy array backed by ``multiprocessing.shared_memory``.

    Pickles to a lightweight *handle* (segment name + shape + dtype): a
    worker unpickling the handle attaches to the same physical pages, so
    writes made inside pool tasks are visible to the parent with no result
    shipping.  The creating process owns the segment's lifetime — call
    :meth:`unlink` (or use as a context manager) when done.
    """

    def __init__(
        self,
        shape: tuple[int, ...] | int,
        dtype: Any = np.float64,
        *,
        _attach_name: str | None = None,
    ) -> None:
        # Segment lifetime is owner-managed (the creator unlinks), so the
        # stdlib resource tracker is kept out of it entirely — see
        # repro.mpi.shm._tracker_silenced for why registration from
        # multiple processes corrupts the tracker's bookkeeping.
        from repro.mpi import shm as _shm

        self.shape = tuple(shape) if isinstance(shape, (tuple, list)) else (int(shape),)
        self.dtype = np.dtype(dtype)
        nbytes = int(np.prod(self.shape)) * self.dtype.itemsize
        self._owner = _attach_name is None
        if self._owner:
            self._shm = _shm.create_segment(nbytes)
        else:
            self._shm = _shm.attach_segment(_attach_name)
        self.array = np.ndarray(self.shape, dtype=self.dtype, buffer=self._shm.buf)

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "SharedArray":
        """Create a shared copy of an existing array.

        Non-contiguous (strided-view) input is copied element-by-element
        into the segment's contiguous layout — an explicit
        ``ascontiguousarray``-style normalization, so a sliced view shares
        its *values*, never its stride pattern.  Object dtypes cannot live
        in flat shared bytes and are rejected.
        """
        arr = np.asarray(arr)
        if arr.dtype == object:
            raise TypeError(
                "SharedArray requires a typed NumPy array, got dtype=object"
            )
        if not arr.flags.c_contiguous:
            arr = np.ascontiguousarray(arr)
        shared = cls(arr.shape, arr.dtype)
        shared.array[...] = arr
        return shared

    @property
    def name(self) -> str:
        return self._shm.name

    def __reduce__(self):
        return (_attach_shared, (self._shm.name, self.shape, self.dtype.str))

    def close(self) -> None:
        self.array = None
        self._shm.close()

    def unlink(self) -> None:
        """Release the segment (owner only); the array becomes invalid."""
        from repro.mpi import shm as _shm

        self.array = None
        if self._owner:
            _shm.unlink_segment(self._shm)
        else:
            self._shm.close()

    def __enter__(self) -> "SharedArray":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.unlink()
