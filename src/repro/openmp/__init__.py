"""``repro.openmp`` — an OpenMP-style shared-memory runtime on Python threads.

The paper's shared-memory module teaches OpenMP C/C++ patternlets on a
Raspberry Pi.  This package provides the same constructs for Python, with
genuinely concurrent threads so the race-condition demonstrations exhibit
real lost updates:

* fork-join parallel regions (:func:`parallel_region`) with
  ``omp_get_thread_num``-style introspection,
* worksharing loops (:func:`parallel_for`) with static / dynamic / guided
  scheduling and reduction clauses,
* synchronization: :func:`critical`, :class:`AtomicCounter`,
  :func:`barrier`, :func:`master`, :func:`single`, :class:`Lock`,
* ``parallel sections``.

Quick start
-----------
>>> from repro.openmp import parallel_for
>>> parallel_for(100, lambda i: i * i, num_threads=4, reduction="+")
328350
"""

from .backends import (
    BackendUnavailable,
    SharedArray,
    chunk_ranges,
    resolve_backend,
    run_chunks,
)
from .env import (
    BACKENDS,
    OpenMPConfig,
    get_backend,
    get_config,
    get_max_threads,
    num_procs,
    scoped,
    scoped_num_threads,
    set_backend,
    set_num_threads,
)
from .loops import for_loop, parallel_for, parallel_for_chunks
from .reduction import REDUCTIONS, Reduction, get_reduction
from .scheduling import (
    SCHEDULES,
    DynamicScheduler,
    GuidedScheduler,
    static_block_ranges,
    static_chunks,
)
from .sections import parallel_sections, sections
from .sync import (
    AtomicAccumulator,
    AtomicCounter,
    Lock,
    barrier,
    critical,
    master,
    single,
)
from .ordered import OrderedGate
from .tasks import TaskHandle, task, taskgroup, taskwait
from .team import (
    Team,
    current_team,
    get_num_threads,
    get_thread_num,
    in_parallel,
    parallel_region,
)

__all__ = [
    "parallel_region",
    "parallel_for",
    "for_loop",
    "parallel_for_chunks",
    "parallel_sections",
    "sections",
    "get_thread_num",
    "get_num_threads",
    "in_parallel",
    "current_team",
    "Team",
    "critical",
    "barrier",
    "master",
    "single",
    "Lock",
    "task",
    "taskwait",
    "taskgroup",
    "TaskHandle",
    "OrderedGate",
    "AtomicCounter",
    "AtomicAccumulator",
    "Reduction",
    "REDUCTIONS",
    "get_reduction",
    "static_block_ranges",
    "static_chunks",
    "DynamicScheduler",
    "GuidedScheduler",
    "SCHEDULES",
    "OpenMPConfig",
    "get_config",
    "set_num_threads",
    "get_max_threads",
    "num_procs",
    "scoped_num_threads",
    "scoped",
    "BACKENDS",
    "set_backend",
    "get_backend",
    "BackendUnavailable",
    "SharedArray",
    "chunk_ranges",
    "resolve_backend",
    "run_chunks",
]
