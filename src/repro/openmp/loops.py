"""``parallel for``: the worksharing loop with scheduling and reductions."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from . import hooks as _hooks
from .env import get_config
from .reduction import Reduction, get_reduction
from .scheduling import (
    DynamicScheduler,
    GuidedScheduler,
    static_block_ranges,
    static_chunks,
)
from .team import get_num_threads, get_thread_num, parallel_region

__all__ = ["parallel_for", "for_loop"]


def _thread_indices(
    n: int,
    schedule: str,
    chunk: int | None,
    shared_scheduler: Any,
):
    """The calling thread's iteration stream under the requested schedule."""
    thread = get_thread_num()
    num_threads = get_num_threads()
    if schedule == "static":
        if chunk is None:
            return static_block_ranges(n, num_threads)[thread]
        return static_chunks(n, num_threads, chunk, thread)
    return iter(shared_scheduler)


def for_loop(
    body: Callable[[int], Any],
    n: int,
    schedule: str | None = None,
    chunk: int | None = None,
    reduction: "str | Reduction | None" = None,
) -> Any:
    """Worksharing loop *inside* an existing parallel region.

    Must be reached by every team member (like ``#pragma omp for``).  The
    shared scheduler for dynamic/guided schedules is materialized in team
    shared state by the first arriving thread.

    Returns the reduction result (same value on every thread) if a
    reduction was requested, else ``None``.
    """
    from .sync import barrier
    from .team import current_team

    cfg = get_config()
    schedule = (schedule or cfg.schedule).lower()
    if schedule == "runtime":
        schedule, chunk = cfg.schedule, cfg.chunk
    team = current_team()
    shared_scheduler = None
    if schedule in ("dynamic", "guided"):
        num_threads = get_num_threads()
        if team is None:
            shared_scheduler = (
                DynamicScheduler(n, chunk or 1)
                if schedule == "dynamic"
                else GuidedScheduler(n, num_threads, chunk or 1)
            )
        else:
            key = f"for#{id(body)}#{n}#{schedule}"
            with team._single_guard:
                if key not in team.shared:
                    team.shared[key] = (
                        DynamicScheduler(n, chunk or 1)
                        if schedule == "dynamic"
                        else GuidedScheduler(n, num_threads, chunk or 1)
                    )
                shared_scheduler = team.shared[key]
    elif schedule != "static":
        raise ValueError(f"unknown schedule {schedule!r}")

    red = get_reduction(reduction) if reduction is not None else None
    if red is not None and _hooks.enabled:
        _hooks.emit("reduction", red.name)
    partial = red.identity if red is not None else None
    for i in _thread_indices(n, schedule, chunk, shared_scheduler):
        value = body(i)
        if red is not None:
            partial = red.combine(partial, value)

    if red is None:
        barrier()
        return None
    # Combine partials through team shared state, then broadcast the result.
    if team is None:
        return partial
    with team._single_guard:
        if _hooks.enabled:
            _hooks.emit("acquire", ("lock", id(team._single_guard)))
        team.shared.setdefault("__partials__", []).append(partial)
        if _hooks.enabled:
            _hooks.emit("release", ("lock", id(team._single_guard)))
    barrier()
    thread = get_thread_num()
    if thread == 0:
        team.shared["__result__"] = red.fold(team.shared.pop("__partials__"))
    barrier()
    return team.shared["__result__"]


def parallel_for(
    n: int,
    body: Callable[[int], Any],
    num_threads: int | None = None,
    schedule: str = "static",
    chunk: int | None = None,
    reduction: "str | Reduction | None" = None,
) -> Any:
    """``#pragma omp parallel for``: fork, share the loop, join.

    Parameters
    ----------
    n:
        Iteration count; the loop body is called once per ``i in range(n)``.
    body:
        ``body(i)``; its return value feeds the reduction if one is given.
    schedule, chunk:
        OpenMP schedule kind (``static``/``dynamic``/``guided``) and chunk.
    reduction:
        Operator name (``"+"``, ``"*"``, ``"max"``, ...) or a custom
        :class:`~repro.openmp.reduction.Reduction`.

    Returns the reduction result, or ``None`` when no reduction was asked.

    Example
    -------
    >>> parallel_for(1000, lambda i: i, num_threads=4, reduction="+")
    499500
    """
    if n < 0:
        raise ValueError(f"iteration count must be non-negative, got {n}")
    red = get_reduction(reduction) if reduction is not None else None
    if red is not None and _hooks.enabled:
        _hooks.emit("reduction", red.name)

    shared_scheduler: Any = None
    schedule = schedule.lower()
    cfg = get_config()
    if schedule == "runtime":
        schedule, chunk = cfg.schedule, cfg.chunk
    nthreads = num_threads if num_threads is not None else cfg.num_threads
    if schedule == "dynamic":
        shared_scheduler = DynamicScheduler(n, chunk or 1)
    elif schedule == "guided":
        shared_scheduler = GuidedScheduler(n, nthreads, chunk or 1)
    elif schedule != "static":
        raise ValueError(f"unknown schedule {schedule!r}")

    def member() -> Any:
        partial = red.identity if red is not None else None
        for i in _thread_indices(n, schedule, chunk, shared_scheduler):
            value = body(i)
            if red is not None:
                partial = red.combine(partial, value)
        return partial

    partials = parallel_region(member, num_threads=nthreads)
    if red is not None:
        return red.fold(partials)
    return None
