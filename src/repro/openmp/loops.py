"""``parallel for``: the worksharing loop with scheduling and reductions."""

from __future__ import annotations

from typing import Any, Callable

from . import backends as _backends
from . import hooks as _hooks
from .env import get_config
from .reduction import Reduction, get_reduction
from .scheduling import (
    DynamicScheduler,
    GuidedScheduler,
    static_block_ranges,
    static_chunks,
)
from .team import get_num_threads, get_thread_num, parallel_region

__all__ = ["parallel_for", "for_loop", "parallel_for_chunks"]


def _thread_indices(
    n: int,
    schedule: str,
    chunk: int | None,
    shared_scheduler: Any,
):
    """The calling thread's iteration stream under the requested schedule."""
    thread = get_thread_num()
    num_threads = get_num_threads()
    if schedule == "static":
        if chunk is None:
            return static_block_ranges(n, num_threads)[thread]
        return static_chunks(n, num_threads, chunk, thread)
    return iter(shared_scheduler)


def for_loop(
    body: Callable[[int], Any],
    n: int,
    schedule: str | None = None,
    chunk: int | None = None,
    reduction: "str | Reduction | None" = None,
) -> Any:
    """Worksharing loop *inside* an existing parallel region.

    Must be reached by every team member (like ``#pragma omp for``).  The
    shared scheduler for dynamic/guided schedules is materialized in team
    shared state by the first arriving thread.

    Returns the reduction result (same value on every thread) if a
    reduction was requested, else ``None``.
    """
    from .sync import barrier
    from .team import _next_worksharing_occurrence, current_team

    cfg = get_config()
    schedule = (schedule or cfg.schedule).lower()
    if schedule == "runtime":
        schedule, chunk = cfg.schedule, cfg.chunk
    team = current_team()
    occurrence = _next_worksharing_occurrence()
    shared_scheduler = None
    if schedule in ("dynamic", "guided"):
        num_threads = get_num_threads()
        if team is None:
            shared_scheduler = (
                DynamicScheduler(n, chunk or 1)
                if schedule == "dynamic"
                else GuidedScheduler(n, num_threads, chunk or 1)
            )
        else:
            # Keyed by the region's Nth-worksharing-loop occurrence, not by
            # id(body): the same body object reaching a second loop must get
            # a fresh scheduler, not the first loop's exhausted one.
            key = f"for#{occurrence}#{n}#{schedule}"
            with team._single_guard:
                if key not in team.shared:
                    team.shared[key] = (
                        DynamicScheduler(n, chunk or 1)
                        if schedule == "dynamic"
                        else GuidedScheduler(n, num_threads, chunk or 1)
                    )
                shared_scheduler = team.shared[key]
    elif schedule != "static":
        raise ValueError(f"unknown schedule {schedule!r}")

    red = get_reduction(reduction) if reduction is not None else None
    if red is not None and _hooks.enabled:
        _hooks.emit("reduction", red.name)
    if _hooks.enabled:
        _hooks.emit("ws_loop_begin", n, schedule)
    partial = red.identity if red is not None else None
    for i in _thread_indices(n, schedule, chunk, shared_scheduler):
        value = body(i)
        if red is not None:
            partial = red.combine(partial, value)
    if _hooks.enabled:
        _hooks.emit("ws_loop_end", n)

    if red is None:
        barrier()
        return None
    # Combine partials through team shared state, then broadcast the result.
    if team is None:
        return partial
    with team._single_guard:
        if _hooks.enabled:
            _hooks.emit("acquire", ("lock", id(team._single_guard)))
        team.shared.setdefault("__partials__", []).append(partial)
        if _hooks.enabled:
            _hooks.emit("release", ("lock", id(team._single_guard)))
    barrier()
    thread = get_thread_num()
    if thread == 0:
        team.shared["__result__"] = red.fold(team.shared.pop("__partials__"))
    barrier()
    return team.shared["__result__"]


def parallel_for(
    n: int,
    body: Callable[[int], Any],
    num_threads: int | None = None,
    schedule: str = "static",
    chunk: int | None = None,
    reduction: "str | Reduction | None" = None,
    backend: str | None = None,
) -> Any:
    """``#pragma omp parallel for``: fork, share the loop, join.

    Parameters
    ----------
    n:
        Iteration count; the loop body is called once per ``i in range(n)``.
    body:
        ``body(i)``; its return value feeds the reduction if one is given.
    schedule, chunk:
        OpenMP schedule kind (``static``/``dynamic``/``guided``) and chunk.
    reduction:
        Operator name (``"+"``, ``"*"``, ``"max"``, ...) or a custom
        :class:`~repro.openmp.reduction.Reduction`.
    backend:
        ``"threads"`` (concurrent, GIL-bound) or ``"processes"`` (real
        multicore parallelism; ``body`` must be picklable).  ``None``
        defers to :func:`~repro.openmp.env.get_config` / ``OMP_BACKEND``.

    Returns the reduction result, or ``None`` when no reduction was asked.

    Example
    -------
    >>> parallel_for(1000, lambda i: i, num_threads=4, reduction="+")
    499500
    """
    if n < 0:
        raise ValueError(f"iteration count must be non-negative, got {n}")
    red = get_reduction(reduction) if reduction is not None else None
    if red is not None and _hooks.enabled:
        _hooks.emit("reduction", red.name)

    shared_scheduler: Any = None
    schedule = schedule.lower()
    cfg = get_config()
    if schedule == "runtime":
        schedule, chunk = cfg.schedule, cfg.chunk
    nthreads = num_threads if num_threads is not None else cfg.num_threads
    if _backends.resolve_backend(backend) == "processes" and nthreads > 1 and n > 0:
        if schedule not in ("static", "dynamic", "guided"):
            raise ValueError(f"unknown schedule {schedule!r}")
        return _backends.process_parallel_for(
            n, body, nthreads, schedule, chunk, reduction
        )
    if schedule == "dynamic":
        shared_scheduler = DynamicScheduler(n, chunk or 1)
    elif schedule == "guided":
        shared_scheduler = GuidedScheduler(n, nthreads, chunk or 1)
    elif schedule != "static":
        raise ValueError(f"unknown schedule {schedule!r}")

    def member() -> Any:
        if _hooks.enabled:
            _hooks.emit("ws_loop_begin", n, schedule)
        partial = red.identity if red is not None else None
        for i in _thread_indices(n, schedule, chunk, shared_scheduler):
            value = body(i)
            if red is not None:
                partial = red.combine(partial, value)
        if _hooks.enabled:
            _hooks.emit("ws_loop_end", n)
        return partial

    partials = parallel_region(member, num_threads=nthreads)
    if red is not None:
        return red.fold(partials)
    return None


def parallel_for_chunks(
    n: int,
    kernel: Callable[[int, int], Any],
    num_workers: int | None = None,
    schedule: str | None = None,
    chunk: int | None = None,
    reduction: "str | Reduction | None" = None,
    backend: str | None = None,
) -> Any:
    """Chunked worksharing: ``kernel(lo, hi)`` per contiguous index batch.

    The batch decomposition (:func:`~repro.openmp.backends.chunk_ranges`)
    is identical for both backends, so an exemplar written against this
    entry point runs the same kernel under threads and processes — only
    the executor changes.  With a reduction, per-chunk results are folded;
    otherwise the per-chunk results are returned in batch order.

    Under ``backend="processes"`` the kernel must be picklable (module-
    level function or ``functools.partial`` over one).
    """
    if n < 0:
        raise ValueError(f"iteration count must be non-negative, got {n}")
    cfg = get_config()
    schedule = (schedule or cfg.schedule).lower()
    if schedule == "runtime":
        schedule, chunk = cfg.schedule, cfg.chunk
    workers = num_workers if num_workers is not None else cfg.num_threads
    ranges = _backends.chunk_ranges(n, workers, schedule, chunk)
    results = _backends.run_chunks(
        kernel, ranges, workers=workers, backend=backend
    )
    if reduction is not None:
        red = get_reduction(reduction)
        if _hooks.enabled:
            _hooks.emit("reduction", red.name)
        return red.fold(results)
    return results
