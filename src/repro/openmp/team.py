"""Thread teams and the fork-join parallel region.

``parallel_region(body, num_threads=N)`` is the ``#pragma omp parallel``
equivalent: it forks a team of N threads, runs ``body`` on every member,
joins them all (propagating the first exception), and returns the per-thread
return values.  Inside the body, :func:`get_thread_num` /
:func:`get_num_threads` behave like their ``omp_*`` namesakes, resolved
through a thread-local so nested helper functions need no plumbing.

Nested parallel regions follow OpenMP's default: a nested region executes
with a team of one (serialized) unless explicitly enabled.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from . import hooks as _hooks
from .env import MAX_TEAM_SIZE, get_config

__all__ = [
    "Team",
    "parallel_region",
    "get_thread_num",
    "get_num_threads",
    "in_parallel",
    "current_team",
]

_tls = threading.local()


class Team:
    """One fork-join team: shared barrier, named critical locks, single/master
    coordination, and a per-region scratch space for reductions."""

    def __init__(self, num_threads: int) -> None:
        self.num_threads = num_threads
        self.barrier = threading.Barrier(num_threads)
        self._critical_locks: dict[str, threading.Lock] = {}
        self._critical_guard = threading.Lock()
        self._single_done: set[int] = set()
        self._single_guard = threading.Lock()
        self.shared: dict[str, Any] = {}

    def critical_lock(self, name: str) -> threading.Lock:
        """The lock backing ``critical(name)`` — one per name per team."""
        with self._critical_guard:
            lock = self._critical_locks.get(name)
            if lock is None:
                lock = self._critical_locks[name] = threading.Lock()
            return lock

    def claim_single(self, occurrence: int) -> bool:
        """First thread to arrive at ``single`` occurrence wins."""
        with self._single_guard:
            if occurrence in self._single_done:
                return False
            self._single_done.add(occurrence)
            return True


class _ThreadCtx:
    __slots__ = ("team", "thread_num", "single_counter", "worksharing_counter")

    def __init__(self, team: Team, thread_num: int) -> None:
        self.team = team
        self.thread_num = thread_num
        self.single_counter = 0
        self.worksharing_counter = 0


def _ctx_stack() -> list[_ThreadCtx]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current_team() -> Team | None:
    """The innermost active team for the calling thread, if any."""
    stack = _ctx_stack()
    return stack[-1].team if stack else None


def _current_ctx() -> _ThreadCtx | None:
    stack = _ctx_stack()
    return stack[-1] if stack else None


def get_thread_num() -> int:
    """``omp_get_thread_num``: 0 outside any parallel region."""
    ctx = _current_ctx()
    return ctx.thread_num if ctx else 0


def get_num_threads() -> int:
    """``omp_get_num_threads``: 1 outside any parallel region."""
    ctx = _current_ctx()
    return ctx.team.num_threads if ctx else 1


def in_parallel() -> bool:
    """``omp_in_parallel``."""
    return _current_ctx() is not None


def _next_worksharing_occurrence() -> int:
    """Per-thread monotonic counter of worksharing constructs encountered.

    Every team member reaches worksharing loops in the same order (the
    standard's well-formedness requirement), so this occurrence number is a
    team-consistent identity for "the Nth loop of this region" — unlike
    ``id(body)``, which collides when the same body object reaches a second
    loop (and would hand the second loop an exhausted shared scheduler).
    """
    ctx = _current_ctx()
    if ctx is None:
        return 0
    occurrence = ctx.worksharing_counter
    ctx.worksharing_counter += 1
    return occurrence


def _claim_single() -> bool:
    """Internal hook for ``sync.single``: per-call-site winner election."""
    ctx = _current_ctx()
    if ctx is None:
        return True
    occurrence = ctx.single_counter
    ctx.single_counter += 1
    return ctx.team.claim_single(occurrence)


def parallel_region(
    body: Callable[..., Any],
    num_threads: int | None = None,
    args: tuple[Any, ...] = (),
) -> list[Any]:
    """Fork a team, run ``body(*args)`` on each member, join, return results.

    The master thread (thread 0) runs in the caller, as in OpenMP.  If any
    member raises, every member is still joined, and the lowest-numbered
    failing thread's exception is re-raised with the others attached as
    ``__exceptions__``.
    """
    if num_threads is None:
        num_threads = get_config().num_threads
    if not 1 <= num_threads <= MAX_TEAM_SIZE:
        raise ValueError(
            f"num_threads must be in [1, {MAX_TEAM_SIZE}], got {num_threads}"
        )
    if in_parallel():
        # OpenMP default: nested parallelism disabled -> serialize inner team.
        num_threads = 1

    team = Team(num_threads)
    results: list[Any] = [None] * num_threads
    errors: dict[int, BaseException] = {}
    if _hooks.enabled:
        _hooks.emit("fork", team)

    def member(thread_num: int) -> None:
        stack = _ctx_stack()
        stack.append(_ThreadCtx(team, thread_num))
        if _hooks.enabled:
            _hooks.emit("thread_begin", team, thread_num)
        try:
            results[thread_num] = body(*args)
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            errors[thread_num] = exc
            team.barrier.abort()
        finally:
            if _hooks.enabled:
                _hooks.emit("thread_end", team, thread_num)
            stack.pop()

    workers = [
        threading.Thread(target=member, args=(t,), name=f"omp-thread-{t}")
        for t in range(1, num_threads)
    ]
    for w in workers:
        w.start()
    member(0)
    for w in workers:
        w.join()
    if _hooks.enabled:
        _hooks.emit("join", team)
    if errors:
        first = errors[min(errors)]
        first.__exceptions__ = errors  # type: ignore[attr-defined]
        raise first
    return results
