"""Runtime instrumentation hooks for the shared-memory runtime.

The correctness-analysis layer (:mod:`repro.analysis`) needs to observe
synchronization and memory events inside the OpenMP runtime without the
runtime importing the analysis package (that would be a circular, and —
worse — a permanent tax on uninstrumented runs).  This module is the thin
seam between the two: runtime call sites check the module-level
:data:`enabled` flag and, only when an observer is attached, emit events.

Event vocabulary (``emit(event, *args)``; the emitting OS thread is
implicit — observers call ``threading.get_ident()``):

========================  =====================================================
``fork``, team            a parallel region is forking ``team``
``thread_begin``, team, n team member ``n`` starts running the region body
``thread_end``, team, n   team member ``n`` finished the region body
``join``, team            all members of ``team`` joined
``barrier_enter``, team   calling thread arrived at a team barrier
``barrier_exit``, team    calling thread passed the team barrier
``acquire``, key          calling thread now holds lock ``key``
``release``, key          calling thread is about to drop lock ``key``
``read``, key, obj        shared-location read (``obj`` describes the location)
``write``, key, obj       shared-location write
``task_submit``, hid      a task was submitted (``hid`` = handle id)
``task_start``, hid       a thread began executing the task
``task_end``, hid         the task body finished
``task_join``, hid        calling thread observed the task's completion
``task_join_all``         calling thread waited for *all* outstanding tasks
``reduction``, name       a reduction clause combined private partials
``acquire_enter``, key    calling thread is about to block acquiring ``key``
``ws_loop_begin``, n, sch calling thread entered a worksharing loop
``ws_loop_end``, n        calling thread drained its share of the loop
``chunk_begin``, lo, hi   a process-backend worker started a chunk task
``chunk_end``, lo, hi     the chunk task finished
========================  =====================================================

Ordering discipline for lock events: ``acquire`` is emitted *after* the
real lock is taken and ``release`` *before* it is dropped, so observer-side
vector clocks can never see two owners of the same lock out of order.
``acquire_enter`` (wanted only by the profiler, to measure contention) is
emitted *before* the acquisition attempt; observers that only care about
ownership can ignore it.

Two observer flavors share the seam:

* plain observers (``attach(obs)``) receive ``obs(event, *args)`` — the
  protocol the race detector uses;
* timestamped observers (``attach(obs, timestamped=True)``) receive
  ``obs(ts, event, *args)`` with ``ts`` from :func:`time.monotonic` — the
  protocol the :mod:`repro.obs` recorders use.  The clock is read once per
  ``emit`` and only when a timestamped observer is attached, so plain
  instrumentation (and uninstrumented runs) never pay for it.  Call sites
  that already hold a timestamp (e.g. forwarded worker events) may pass it
  via ``emit(..., ts=...)``.
"""

from __future__ import annotations

import time
from typing import Any, Callable

__all__ = ["enabled", "attach", "detach", "emit"]

#: Fast-path flag: call sites test this before paying for an ``emit`` call.
enabled = False

#: Immutable snapshot of the observer set.  ``attach``/``detach`` replace the
#: tuple wholesale, so ``emit`` can iterate it directly — no per-event copy —
#: while an observer detaching mid-delivery still sees a consistent snapshot.
_observers: tuple[Callable[..., None], ...] = ()

#: Timestamped observers, delivered ``observer(ts, event, *args)``.
_ts_observers: tuple[Callable[..., None], ...] = ()

_monotonic = time.monotonic


def attach(observer: Callable[..., None], timestamped: bool = False) -> None:
    """Register an event observer.

    Plain observers are called ``observer(event, *args)``; timestamped ones
    ``observer(ts, event, *args)`` with a shared monotonic timestamp.
    """
    global enabled, _observers, _ts_observers
    if timestamped:
        if observer not in _ts_observers:
            _ts_observers = _ts_observers + (observer,)
    elif observer not in _observers:
        _observers = _observers + (observer,)
    enabled = True


def detach(observer: Callable[..., None]) -> None:
    """Unregister an observer; clears the fast-path flag with the last one."""
    global enabled, _observers, _ts_observers
    # Filter by equality, not identity: observers registered as bound
    # methods (e.g. ``recorder._on_openmp``) produce a fresh method object
    # on every attribute access, and those compare ``==`` but never ``is``.
    if observer in _observers:
        _observers = tuple(o for o in _observers if o != observer)
    if observer in _ts_observers:
        _ts_observers = tuple(o for o in _ts_observers if o != observer)
    enabled = bool(_observers or _ts_observers)


def emit(event: str, *args: Any, ts: float | None = None) -> None:
    """Deliver one runtime event to every attached observer.

    Cheap when instrumentation is off: call sites are expected to guard with
    :data:`enabled`, and ``emit`` itself early-returns as a second line of
    defense so an unguarded call costs one predictable branch.  The
    monotonic clock is read only when a timestamped observer is attached
    and no explicit ``ts`` was supplied.
    """
    if not enabled:
        return
    for observer in _observers:
        observer(event, *args)
    ts_observers = _ts_observers
    if ts_observers:
        if ts is None:
            ts = _monotonic()
        for observer in ts_observers:
            observer(ts, event, *args)
