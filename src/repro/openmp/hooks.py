"""Runtime instrumentation hooks for the shared-memory runtime.

The correctness-analysis layer (:mod:`repro.analysis`) needs to observe
synchronization and memory events inside the OpenMP runtime without the
runtime importing the analysis package (that would be a circular, and —
worse — a permanent tax on uninstrumented runs).  This module is the thin
seam between the two: runtime call sites check the module-level
:data:`enabled` flag and, only when an observer is attached, emit events.

Event vocabulary (``emit(event, *args)``; the emitting OS thread is
implicit — observers call ``threading.get_ident()``):

========================  =====================================================
``fork``, team            a parallel region is forking ``team``
``thread_begin``, team, n team member ``n`` starts running the region body
``thread_end``, team, n   team member ``n`` finished the region body
``join``, team            all members of ``team`` joined
``barrier_enter``, team   calling thread arrived at a team barrier
``barrier_exit``, team    calling thread passed the team barrier
``acquire``, key          calling thread now holds lock ``key``
``release``, key          calling thread is about to drop lock ``key``
``read``, key, obj        shared-location read (``obj`` describes the location)
``write``, key, obj       shared-location write
``task_submit``, hid      a task was submitted (``hid`` = handle id)
``task_start``, hid       a thread began executing the task
``task_end``, hid         the task body finished
``task_join``, hid        calling thread observed the task's completion
``task_join_all``         calling thread waited for *all* outstanding tasks
``reduction``, name       a reduction clause combined private partials
========================  =====================================================

Ordering discipline for lock events: ``acquire`` is emitted *after* the
real lock is taken and ``release`` *before* it is dropped, so observer-side
vector clocks can never see two owners of the same lock out of order.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["enabled", "attach", "detach", "emit"]

#: Fast-path flag: call sites test this before paying for an ``emit`` call.
enabled = False

#: Immutable snapshot of the observer set.  ``attach``/``detach`` replace the
#: tuple wholesale, so ``emit`` can iterate it directly — no per-event copy —
#: while an observer detaching mid-delivery still sees a consistent snapshot.
_observers: tuple[Callable[..., None], ...] = ()


def attach(observer: Callable[..., None]) -> None:
    """Register an event observer (a callable ``observer(event, *args)``)."""
    global enabled, _observers
    if observer not in _observers:
        _observers = _observers + (observer,)
    enabled = True


def detach(observer: Callable[..., None]) -> None:
    """Unregister an observer; clears the fast-path flag with the last one."""
    global enabled, _observers
    if observer in _observers:
        _observers = tuple(o for o in _observers if o is not observer)
    enabled = bool(_observers)


def emit(event: str, *args: Any) -> None:
    """Deliver one runtime event to every attached observer.

    Cheap when instrumentation is off: call sites are expected to guard with
    :data:`enabled`, and ``emit`` itself early-returns as a second line of
    defense so an unguarded call costs one predictable branch.
    """
    if not enabled:
        return
    for observer in _observers:
        observer(event, *args)
