"""Loop-iteration scheduling: static, dynamic, guided, runtime.

The ``parallel for`` patternlets contrast *equal chunks* (static) with
*chunks of one* (static,1 — round-robin) and dynamic self-scheduling; the
drug-design exemplar shows why dynamic wins on imbalanced work.  These
partitioners implement the OpenMP semantics exactly:

* ``static`` without a chunk: split into ``num_threads`` nearly equal
  contiguous blocks (remainder spread over the leading threads);
* ``static`` with chunk ``c``: round-robin assignment of size-``c`` chunks;
* ``dynamic``: threads grab the next ``c`` iterations from a shared counter;
* ``guided``: grabbed chunk size decays as ``remaining / num_threads``,
  bounded below by ``c``.
"""

from __future__ import annotations

import threading
from typing import Iterator, Sequence

__all__ = [
    "static_block_ranges",
    "static_chunks",
    "DynamicScheduler",
    "GuidedScheduler",
    "iterations_for_thread",
    "SCHEDULES",
]

SCHEDULES = ("static", "dynamic", "guided", "runtime")


def static_block_ranges(n: int, num_threads: int) -> list[range]:
    """Nearly equal contiguous blocks; the classic "equal chunks" split.

    The first ``n % num_threads`` threads get one extra iteration, so every
    index in ``range(n)`` is covered exactly once.
    """
    if n < 0:
        raise ValueError(f"iteration count must be non-negative, got {n}")
    if num_threads < 1:
        raise ValueError(f"num_threads must be positive, got {num_threads}")
    base, extra = divmod(n, num_threads)
    ranges = []
    start = 0
    for t in range(num_threads):
        count = base + (1 if t < extra else 0)
        ranges.append(range(start, start + count))
        start += count
    return ranges


def static_chunks(n: int, num_threads: int, chunk: int, thread: int) -> Iterator[int]:
    """Round-robin chunks of fixed size (``schedule(static, chunk)``)."""
    if chunk < 1:
        raise ValueError(f"chunk must be positive, got {chunk}")
    stride = num_threads * chunk
    for chunk_start in range(thread * chunk, n, stride):
        yield from range(chunk_start, min(chunk_start + chunk, n))


class DynamicScheduler:
    """Shared work counter for ``schedule(dynamic, chunk)``.

    Each call to :meth:`next_chunk` atomically claims the next ``chunk``
    iterations; an empty range signals completion.
    """

    def __init__(self, n: int, chunk: int = 1) -> None:
        if chunk < 1:
            raise ValueError(f"chunk must be positive, got {chunk}")
        self._n = n
        self._chunk = chunk
        self._next = 0
        self._lock = threading.Lock()

    def next_chunk(self) -> range:
        with self._lock:
            start = self._next
            if start >= self._n:
                return range(0, 0)
            end = min(start + self._chunk, self._n)
            self._next = end
        return range(start, end)

    def __iter__(self) -> Iterator[int]:
        """Iterate this thread's dynamically claimed indices."""
        while True:
            chunk = self.next_chunk()
            if not chunk:
                return
            yield from chunk


class GuidedScheduler:
    """Decaying chunk sizes for ``schedule(guided, min_chunk)``."""

    def __init__(self, n: int, num_threads: int, min_chunk: int = 1) -> None:
        if min_chunk < 1:
            raise ValueError(f"min_chunk must be positive, got {min_chunk}")
        self._n = n
        self._threads = max(1, num_threads)
        self._min = min_chunk
        self._next = 0
        self._lock = threading.Lock()

    def next_chunk(self) -> range:
        with self._lock:
            start = self._next
            remaining = self._n - start
            if remaining <= 0:
                return range(0, 0)
            size = max(self._min, remaining // self._threads)
            size = min(size, remaining)
            self._next = start + size
        return range(start, start + size)

    def __iter__(self) -> Iterator[int]:
        while True:
            chunk = self.next_chunk()
            if not chunk:
                return
            yield from chunk


def iterations_for_thread(
    n: int,
    num_threads: int,
    thread: int,
    schedule: str = "static",
    chunk: int | None = None,
) -> Sequence[int] | Iterator[int]:
    """Static-schedule index sequence for one thread (dynamic/guided need a
    shared scheduler object and are handled by ``loops.parallel_for``)."""
    if schedule != "static":
        raise ValueError(
            "iterations_for_thread only handles static schedules; "
            f"got {schedule!r}"
        )
    if chunk is None:
        return static_block_ranges(n, num_threads)[thread]
    return static_chunks(n, num_threads, chunk, thread)
