"""``parallel sections``: one-off task distribution across a team."""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .sync import barrier
from .team import current_team, get_num_threads, parallel_region

__all__ = ["parallel_sections", "sections"]


def sections(tasks: Sequence[Callable[[], Any]]) -> list[Any]:
    """``#pragma omp sections`` inside an existing region.

    Tasks are claimed dynamically (first-come), matching how OpenMP
    distributes sections when there are more sections than threads.
    Returns the results list (in task order) on every thread.
    """
    team = current_team()
    if team is None:
        return [task() for task in tasks]
    key = f"sections#{id(tasks)}"
    with team._single_guard:
        if key not in team.shared:
            team.shared[key] = {
                "next": 0,
                "results": [None] * len(tasks),
            }
        state = team.shared[key]

    while True:
        with team._single_guard:
            idx = state["next"]
            if idx >= len(tasks):
                break
            state["next"] = idx + 1
        state["results"][idx] = tasks[idx]()
    barrier()
    return state["results"]


def parallel_sections(
    tasks: Sequence[Callable[[], Any]], num_threads: int | None = None
) -> list[Any]:
    """``#pragma omp parallel sections``: fork a team, run the task list.

    Each task runs exactly once; results are returned in task order.
    """
    tasks = list(tasks)
    if not tasks:
        return []
    if num_threads is None:
        num_threads = min(len(tasks), get_num_threads() or len(tasks)) or len(tasks)

    def member() -> Any:
        return sections(tasks)

    results = parallel_region(member, num_threads=num_threads)
    return results[0]
