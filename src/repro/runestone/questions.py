"""Interactive question types with grading and feedback.

Implements the Runestone activity types the paper's virtual handout uses:
multiple choice, fill-in-the-blank, drag-and-drop matching, plus a
Parsons-style ordering problem.  Every question grades an answer into a
:class:`GradeResult` with per-answer feedback, which the progress tracker
records.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Sequence

from .content import Block

__all__ = [
    "GradeResult",
    "Question",
    "MultipleChoice",
    "Choice",
    "FillInTheBlank",
    "DragAndDrop",
    "OrderingProblem",
]


@dataclass(frozen=True)
class GradeResult:
    """Outcome of grading one submission."""

    activity_id: str
    correct: bool
    feedback: str
    score: float  # in [0, 1]; partial credit for multi-part questions

    def __post_init__(self) -> None:
        if not 0.0 <= self.score <= 1.0:
            raise ValueError(f"score must be in [0, 1], got {self.score}")


@dataclass(frozen=True)
class Question(Block):
    """Base class: every question has a stable activity id and a prompt."""

    activity_id: str
    prompt: str

    def grade(self, answer: Any) -> GradeResult:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class Choice:
    """One multiple-choice option with its targeted feedback."""

    label: str  # "A", "B", ...
    text: str
    feedback: str = ""


@dataclass(frozen=True)
class MultipleChoice(Question):
    """Single-answer multiple choice (Fig. 1's question type)."""

    choices: tuple[Choice, ...] = ()
    correct_label: str = ""

    def __post_init__(self) -> None:
        labels = [c.label for c in self.choices]
        if len(set(labels)) != len(labels):
            raise ValueError(f"{self.activity_id}: duplicate choice labels")
        if self.correct_label not in labels:
            raise ValueError(
                f"{self.activity_id}: correct label {self.correct_label!r} is not "
                f"among {labels}"
            )

    def grade(self, answer: str) -> GradeResult:
        answer = str(answer).strip().upper()
        chosen = next((c for c in self.choices if c.label == answer), None)
        if chosen is None:
            return GradeResult(
                self.activity_id,
                correct=False,
                feedback=f"'{answer}' is not one of the options",
                score=0.0,
            )
        correct = chosen.label == self.correct_label
        feedback = chosen.feedback or ("Correct!" if correct else "Try again.")
        return GradeResult(
            self.activity_id, correct=correct, feedback=feedback,
            score=1.0 if correct else 0.0,
        )


@dataclass(frozen=True)
class FillInTheBlank(Question):
    """Text/numeric blank with regex or tolerance matching."""

    answer_pattern: str = ""
    numeric_answer: float | None = None
    tolerance: float = 0.0
    correct_feedback: str = "Correct!"
    incorrect_feedback: str = "Not quite — review the section above."

    def grade(self, answer: Any) -> GradeResult:
        if self.numeric_answer is not None:
            try:
                value = float(answer)
            except (TypeError, ValueError):
                return GradeResult(
                    self.activity_id, False, "Please enter a number.", 0.0
                )
            ok = abs(value - self.numeric_answer) <= self.tolerance
        else:
            ok = re.fullmatch(self.answer_pattern, str(answer).strip(), re.I) is not None
        return GradeResult(
            self.activity_id,
            correct=ok,
            feedback=self.correct_feedback if ok else self.incorrect_feedback,
            score=1.0 if ok else 0.0,
        )


@dataclass(frozen=True)
class DragAndDrop(Question):
    """Match terms to definitions; graded with partial credit."""

    pairs: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        terms = [t for t, _d in self.pairs]
        if len(set(terms)) != len(terms):
            raise ValueError(f"{self.activity_id}: duplicate terms")
        if not self.pairs:
            raise ValueError(f"{self.activity_id}: needs at least one pair")

    def grade(self, answer: dict[str, str]) -> GradeResult:
        # Served, untrusted input: a payload of the wrong shape is a wrong
        # answer with feedback, never an exception out of the grader.
        if not isinstance(answer, dict):
            return GradeResult(
                self.activity_id,
                False,
                "Answer must map each term to a definition.",
                0.0,
            )
        key = dict(self.pairs)
        right = sum(1 for term, defn in answer.items() if key.get(term) == defn)
        score = right / len(self.pairs)
        return GradeResult(
            self.activity_id,
            correct=score == 1.0,
            feedback=f"{right}/{len(self.pairs)} matches correct",
            score=score,
        )


@dataclass(frozen=True)
class OrderingProblem(Question):
    """Parsons-style: put the steps (or code lines) in the right order."""

    steps: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.steps) < 2:
            raise ValueError(f"{self.activity_id}: needs at least two steps")

    def grade(self, answer: Sequence[str]) -> GradeResult:
        # A string is iterable but is one answer, not a step list; anything
        # non-iterable or mixed-type is likewise a wrong answer, not a crash.
        if isinstance(answer, (str, bytes)) or not isinstance(answer, (list, tuple)):
            return GradeResult(
                self.activity_id, False, "Provide the steps as a list.", 0.0
            )
        answer = [str(step) for step in answer]
        if sorted(answer) != sorted(self.steps):
            return GradeResult(
                self.activity_id, False, "Use each given step exactly once.", 0.0
            )
        right = sum(1 for a, b in zip(answer, self.steps) if a == b)
        score = right / len(self.steps)
        return GradeResult(
            self.activity_id,
            correct=score == 1.0,
            feedback=f"{right}/{len(self.steps)} steps in place",
            score=score,
        )
