"""Practice quizzes assembled from a module's question bank.

Runestone's course-support side includes assessment reuse: instructors pull
a module's interactive questions into a graded quiz.  :func:`build_quiz`
samples ``k`` questions reproducibly (seeded), and :class:`QuizAttempt`
grades a full submission with per-question feedback and a total score —
the machinery behind the "check your understanding" checkpoints.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from .module import Module
from .questions import GradeResult, Question

__all__ = ["Quiz", "QuizAttempt", "build_quiz"]


@dataclass(frozen=True)
class Quiz:
    """An ordered selection of questions drawn from a module."""

    module_slug: str
    questions: tuple[Question, ...]
    seed: int

    def __len__(self) -> int:
        return len(self.questions)

    def question_ids(self) -> list[str]:
        return [q.activity_id for q in self.questions]

    def start(self, learner: str) -> "QuizAttempt":
        return QuizAttempt(quiz=self, learner=learner)


@dataclass
class QuizAttempt:
    """One learner's pass through a quiz."""

    quiz: Quiz
    learner: str
    results: dict[str, GradeResult] = field(default_factory=dict)

    def answer(self, activity_id: str, answer: Any) -> GradeResult:
        """Grade one answer; re-answering replaces the previous grade."""
        question = next(
            (q for q in self.quiz.questions if q.activity_id == activity_id), None
        )
        if question is None:
            raise KeyError(
                f"question {activity_id!r} is not on this quiz "
                f"({self.quiz.question_ids()})"
            )
        result = question.grade(answer)
        self.results[activity_id] = result
        return result

    def submit_all(self, answers: dict[str, Any]) -> "QuizAttempt":
        for activity_id, answer in answers.items():
            self.answer(activity_id, answer)
        return self

    @property
    def answered(self) -> int:
        return len(self.results)

    @property
    def complete(self) -> bool:
        return self.answered == len(self.quiz)

    @property
    def score(self) -> float:
        """Mean score over the quiz's questions (unanswered count as 0)."""
        if not self.quiz.questions:
            return 1.0
        total = sum(
            self.results[q.activity_id].score
            for q in self.quiz.questions
            if q.activity_id in self.results
        )
        return total / len(self.quiz)

    def feedback(self) -> list[tuple[str, str]]:
        """(activity id, feedback) for every answered question, quiz order."""
        return [
            (q.activity_id, self.results[q.activity_id].feedback)
            for q in self.quiz.questions
            if q.activity_id in self.results
        ]


def build_quiz(module: Module, k: int, seed: int = 0) -> Quiz:
    """Sample ``k`` distinct questions from the module, reproducibly.

    Raises if the module's bank is smaller than ``k`` — an instructor error
    worth failing loudly on.
    """
    bank = module.all_questions()
    if k < 1:
        raise ValueError("a quiz needs at least one question")
    if k > len(bank):
        raise ValueError(
            f"module {module.slug!r} has {len(bank)} questions; cannot build "
            f"a {k}-question quiz"
        )
    rng = random.Random(seed)
    chosen = rng.sample(bank, k)
    return Quiz(module_slug=module.slug, questions=tuple(chosen), seed=seed)
