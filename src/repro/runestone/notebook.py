"""Colab/Jupyter notebook emulation.

The distributed module delivers the MPI patternlets as a Google Colab
notebook whose code cells follow one idiom (visible in the paper's Fig. 2):

* a ``%%writefile NNname.py`` cell that saves the patternlet source, then
* a ``!mpirun --allow-run-as-root -np 4 python NNname.py`` cell that runs it.

This module models exactly that: a :class:`Notebook` of markdown/code
cells, a virtual file store for ``%%writefile``, shell-escape execution of
``mpirun`` commands against :mod:`repro.mpi`, and plain-Python cells
executed in a persistent namespace — enough to run the whole patternlets
notebook headlessly and capture every output.
"""

from __future__ import annotations

import contextlib
import io
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..mpi.launcher import parse_mpirun_command, run_script

__all__ = ["MarkdownCell", "CodeCell", "CellResult", "Notebook"]


@dataclass(frozen=True)
class MarkdownCell:
    """Expository prose between code cells."""

    source: str


@dataclass(frozen=True)
class CodeCell:
    """A runnable cell: magic, shell escape, or plain Python."""

    source: str

    @property
    def first_line(self) -> str:
        for line in self.source.splitlines():
            if line.strip():
                return line.strip()
        return ""

    @property
    def is_writefile(self) -> bool:
        return self.first_line.startswith("%%writefile")

    @property
    def is_shell(self) -> bool:
        return self.first_line.startswith("!")


@dataclass
class CellResult:
    """Captured outcome of executing one cell."""

    cell_index: int
    kind: str  # "markdown" | "writefile" | "mpirun" | "python"
    stdout: str = ""
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class Notebook:
    """An executable notebook with a virtual filesystem."""

    title: str
    cells: list[MarkdownCell | CodeCell] = field(default_factory=list)
    files: dict[str, str] = field(default_factory=dict)
    namespace: dict[str, Any] = field(default_factory=dict)
    default_np: int = 4

    def md(self, source: str) -> "Notebook":
        self.cells.append(MarkdownCell(source))
        return self

    def code(self, source: str) -> "Notebook":
        self.cells.append(CodeCell(source))
        return self

    # ------------------------------------------------------------------ execution
    def run_cell(self, index: int) -> CellResult:
        """Execute one cell by position and capture its output."""
        cell = self.cells[index]
        if isinstance(cell, MarkdownCell):
            return CellResult(index, "markdown")
        try:
            if cell.is_writefile:
                return self._run_writefile(index, cell)
            if cell.is_shell:
                return self._run_shell(index, cell)
            return self._run_python(index, cell)
        except Exception as exc:  # noqa: BLE001 - surfaced as the cell's error
            kind = (
                "writefile" if cell.is_writefile
                else "mpirun" if cell.is_shell
                else "python"
            )
            return CellResult(index, kind, error=f"{type(exc).__name__}: {exc}")

    def run_all(self) -> list[CellResult]:
        """Execute every cell top to bottom (Colab's 'Run all')."""
        return [self.run_cell(i) for i in range(len(self.cells))]

    def _run_writefile(self, index: int, cell: CodeCell) -> CellResult:
        header, _, body = cell.source.partition("\n")
        parts = header.split()
        if len(parts) != 2:
            raise ValueError(f"malformed writefile magic: {header!r}")
        filename = parts[1]
        self.files[filename] = body
        return CellResult(index, "writefile", stdout=f"Writing {filename}")

    def _run_shell(self, index: int, cell: CodeCell) -> CellResult:
        command = cell.first_line[1:].strip()
        if not command.startswith(("mpirun", "mpiexec")):
            raise ValueError(
                f"the notebook emulator only supports mpirun shell escapes, got "
                f"{command!r}"
            )
        invocation = parse_mpirun_command(command)
        try:
            source = self.files[invocation.script]
        except KeyError:
            raise FileNotFoundError(
                f"{invocation.script}: write it first with %%writefile"
            ) from None
        result = run_script(
            source,
            invocation.np,
            script_name=invocation.script,
            argv=invocation.extra_args,
        )
        return CellResult(index, "mpirun", stdout=result.stdout)

    def _run_python(self, index: int, cell: CodeCell) -> CellResult:
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            exec(compile(cell.source, f"<cell {index}>", "exec"), self.namespace)
        return CellResult(index, "python", stdout=buffer.getvalue().rstrip("\n"))

    # ---------------------------------------------------------------- export
    def to_ipynb(self, results: list[CellResult] | None = None) -> dict[str, Any]:
        """Export as an nbformat-4 notebook document (a real ``.ipynb``).

        With ``results`` (from :meth:`run_all`), captured stdout is attached
        as each code cell's output stream — so the exported file looks like
        an executed Colab notebook.
        """
        by_index = {r.cell_index: r for r in (results or [])}
        cells: list[dict[str, Any]] = []
        for index, cell in enumerate(self.cells):
            if isinstance(cell, MarkdownCell):
                cells.append(
                    {"cell_type": "markdown", "metadata": {},
                     "source": cell.source.splitlines(keepends=True)}
                )
                continue
            outputs = []
            result = by_index.get(index)
            if result is not None and result.stdout:
                outputs.append(
                    {
                        "output_type": "stream",
                        "name": "stdout",
                        "text": (result.stdout + "\n").splitlines(keepends=True),
                    }
                )
            cells.append(
                {
                    "cell_type": "code",
                    "execution_count": index if result is not None else None,
                    "metadata": {},
                    "source": cell.source.splitlines(keepends=True),
                    "outputs": outputs,
                }
            )
        return {
            "nbformat": 4,
            "nbformat_minor": 5,
            "metadata": {
                "title": self.title,
                "kernelspec": {
                    "display_name": "Python 3",
                    "language": "python",
                    "name": "python3",
                },
                "language_info": {"name": "python"},
            },
            "cells": cells,
        }

    def save_ipynb(
        self, path: "str | Path", results: list[CellResult] | None = None
    ) -> Path:
        """Write the nbformat JSON to disk; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_ipynb(results), indent=1))
        return path
