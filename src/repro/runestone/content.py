"""Content blocks for interactive modules: text, video, code, figures.

A Runestone-style module is a tree of chapters and sections whose leaves
are *blocks*.  Expository blocks live here; interactive question blocks
live in :mod:`repro.runestone.questions`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Block", "Text", "Video", "CodeListing", "FigureRef", "Callout"]


@dataclass(frozen=True)
class Block:
    """Base class for module content blocks."""

    def kind(self) -> str:
        return type(self).__name__.lower()


@dataclass(frozen=True)
class Text(Block):
    """Expository prose (markdown-ish plain text)."""

    body: str


@dataclass(frozen=True)
class Video(Block):
    """An instructional video (the setup walkthroughs of Section IV-A).

    The reproduction stores metadata only; ``covers_issues`` lists the
    common setup problems the video pre-empts, which the delivery
    simulation uses to model reduced technical-difficulty rates.
    """

    title: str
    duration_s: int
    url: str = ""
    covers_issues: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("video duration must be positive")

    @property
    def duration_label(self) -> str:
        m, s = divmod(self.duration_s, 60)
        return f"{m}:{s:02d}"


@dataclass(frozen=True)
class CodeListing(Block):
    """A code listing the learner reads (and runs on their own device)."""

    language: str
    code: str
    caption: str = ""
    runnable_on: str = "raspberry-pi"

    @property
    def line_count(self) -> int:
        return len(self.code.strip().splitlines())


@dataclass(frozen=True)
class FigureRef(Block):
    """A figure/diagram placeholder with alt text."""

    caption: str
    alt_text: str = ""


@dataclass(frozen=True)
class Callout(Block):
    """A highlighted note (tips, warnings, troubleshooting boxes)."""

    style: str  # "tip" | "warning" | "troubleshooting"
    body: str
