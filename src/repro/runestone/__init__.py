"""``repro.runestone`` — the interactive-module engine and notebook emulator.

Rebuilds the delivery layer of the paper's materials: Runestone-style
virtual handouts (content blocks, autograded questions, progress tracking,
text/HTML rendering) and Colab-style notebooks whose ``%%writefile`` /
``!mpirun`` cells execute against :mod:`repro.mpi`.

The actual content lives in :mod:`repro.runestone.modules`:
:func:`build_raspberry_pi_module` (the Fig. 1 handout) and
:func:`build_mpi_colab_notebook` (the Fig. 2 notebook).
"""

from .content import Callout, CodeListing, FigureRef, Text, Video
from .module import Chapter, HandsOnActivity, Module, Section
from .modules import (
    RACE_CONDITION_QUESTION,
    SPMD_CELL_SOURCE,
    SPMD_RUN_COMMAND,
    build_chameleon_notebook,
    build_distributed_module,
    build_mpi_colab_notebook,
    build_raspberry_pi_module,
)
from .notebook import CellResult, CodeCell, MarkdownCell, Notebook
from .progress import Attempt, Gradebook, LearnerProgress
from .quiz import Quiz, QuizAttempt, build_quiz
from .questions import (
    Choice,
    DragAndDrop,
    FillInTheBlank,
    GradeResult,
    MultipleChoice,
    OrderingProblem,
    Question,
)
from .render import render_html, render_section_text, render_text
from .validate import Finding, validate_module

__all__ = [
    "Text",
    "Video",
    "CodeListing",
    "Callout",
    "FigureRef",
    "Module",
    "Chapter",
    "Section",
    "HandsOnActivity",
    "Question",
    "MultipleChoice",
    "Choice",
    "FillInTheBlank",
    "DragAndDrop",
    "OrderingProblem",
    "GradeResult",
    "LearnerProgress",
    "Gradebook",
    "Attempt",
    "Quiz",
    "QuizAttempt",
    "build_quiz",
    "validate_module",
    "Finding",
    "Notebook",
    "MarkdownCell",
    "CodeCell",
    "CellResult",
    "render_text",
    "render_section_text",
    "render_html",
    "build_raspberry_pi_module",
    "build_distributed_module",
    "build_mpi_colab_notebook",
    "build_chameleon_notebook",
    "RACE_CONDITION_QUESTION",
    "SPMD_CELL_SOURCE",
    "SPMD_RUN_COMMAND",
]
