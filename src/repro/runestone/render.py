"""Renderers: module trees to terminal text or simple HTML.

The text renderer produces the view the benches print (Fig. 1 shows a
rendered section of the Raspberry Pi handout); the HTML renderer exists so
an instructor can actually serve the module from a static page.
"""

from __future__ import annotations

import html

from .content import Callout, CodeListing, FigureRef, Text, Video
from .module import HandsOnActivity, Module, Section
from .questions import (
    DragAndDrop,
    FillInTheBlank,
    MultipleChoice,
    OrderingProblem,
    Question,
)

__all__ = ["render_text", "render_section_text", "render_html"]


def _render_block_text(block) -> list[str]:
    if isinstance(block, Text):
        return [block.body, ""]
    if isinstance(block, Video):
        return [f"[VIDEO] {block.title}  ({block.duration_label})", ""]
    if isinstance(block, CodeListing):
        lines = [f"--- {block.caption or block.language} ---"]
        lines += block.code.strip("\n").splitlines()
        lines += ["-" * 30, ""]
        return lines
    if isinstance(block, Callout):
        return [f"[{block.style.upper()}] {block.body}", ""]
    if isinstance(block, FigureRef):
        return [f"[FIGURE] {block.caption}", ""]
    if isinstance(block, HandsOnActivity):
        return [
            f"[HANDS-ON] {block.title} (patternlet {block.paradigm}:{block.patternlet})",
            block.instructions,
            "",
        ]
    if isinstance(block, MultipleChoice):
        lines = [f"Q: {block.prompt}"]
        for choice in block.choices:
            lines.append(f"  ( ) {choice.label}. {choice.text}")
        lines += [f"  [Check me]    Activity: {block.activity_id}", ""]
        return lines
    if isinstance(block, FillInTheBlank):
        return [f"Q: {block.prompt}", f"  answer: ________   Activity: {block.activity_id}", ""]
    if isinstance(block, DragAndDrop):
        lines = [f"Q: {block.prompt}"]
        for term, _definition in block.pairs:
            lines.append(f"  [drag] {term}")
        lines += [f"  Activity: {block.activity_id}", ""]
        return lines
    if isinstance(block, OrderingProblem):
        lines = [f"Q: {block.prompt}"]
        lines += [f"  [step] {s}" for s in sorted(block.steps)]
        lines += [f"  Activity: {block.activity_id}", ""]
        return lines
    return [repr(block), ""]


def render_section_text(section: Section) -> str:
    """Render one section (what Fig. 1 screenshots)."""
    lines = [f"{section.number} {section.title}", "=" * 40, ""]
    for block in section.blocks:
        lines += _render_block_text(block)
    return "\n".join(lines).rstrip() + "\n"


def render_text(module: Module) -> str:
    """Render the whole handout as terminal text."""
    lines = [
        module.title,
        "#" * len(module.title),
        f"audience: {module.audience}; designed length: ~{module.target_minutes} min",
        "",
    ]
    for chapter in module.chapters:
        lines += [f"Chapter {chapter.number}: {chapter.title}", "-" * 40, ""]
        for section in chapter.sections:
            lines.append(render_section_text(section))
    return "\n".join(lines)


def _render_block_html(block) -> str:
    if isinstance(block, Text):
        return f"<p>{html.escape(block.body)}</p>"
    if isinstance(block, Video):
        return (
            f'<div class="video"><span>&#9654; {html.escape(block.title)}'
            f" ({block.duration_label})</span></div>"
        )
    if isinstance(block, CodeListing):
        return (
            f'<pre class="code {html.escape(block.language)}">'
            f"{html.escape(block.code)}</pre>"
        )
    if isinstance(block, Callout):
        return f'<div class="callout {block.style}">{html.escape(block.body)}</div>'
    if isinstance(block, FigureRef):
        return f'<figure><figcaption>{html.escape(block.caption)}</figcaption></figure>'
    if isinstance(block, HandsOnActivity):
        return (
            f'<div class="activity"><h4>{html.escape(block.title)}</h4>'
            f"<p>{html.escape(block.instructions)}</p></div>"
        )
    if isinstance(block, MultipleChoice):
        options = "".join(
            f'<li><label><input type="radio" name="{html.escape(block.activity_id)}" '
            f'value="{c.label}"> {c.label}. {html.escape(c.text)}</label></li>'
            for c in block.choices
        )
        return (
            f'<div class="question mc" id="{html.escape(block.activity_id)}">'
            f"<p>{html.escape(block.prompt)}</p><ul>{options}</ul>"
            f"<button>Check me</button></div>"
        )
    if isinstance(block, Question):
        return (
            f'<div class="question" id="{html.escape(block.activity_id)}">'
            f"<p>{html.escape(block.prompt)}</p></div>"
        )
    return f"<div>{html.escape(repr(block))}</div>"


def render_html(module: Module) -> str:
    """A single-page static HTML rendering of the handout."""
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(module.title)}</title></head><body>",
        f"<h1>{html.escape(module.title)}</h1>",
    ]
    for chapter in module.chapters:
        parts.append(f"<h2>Chapter {chapter.number}: {html.escape(chapter.title)}</h2>")
        for section in chapter.sections:
            parts.append(
                f"<h3>{html.escape(section.number)} {html.escape(section.title)}</h3>"
            )
            parts.extend(_render_block_html(b) for b in section.blocks)
    parts.append("</body></html>")
    return "".join(parts)
