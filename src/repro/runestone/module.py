"""Module structure: chapters, sections, activities, and pacing.

A virtual handout is a :class:`Module` of :class:`Chapter` s of
:class:`Section` s.  Sections hold content blocks, questions, and
:class:`HandsOnActivity` references into the patternlet registry.  The
pacing model encodes the paper's 2-hour design (30 min concepts, 60 min
hands-on, 30 min exemplars).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .content import Block
from .questions import Question

__all__ = ["HandsOnActivity", "Section", "Chapter", "Module"]


@dataclass(frozen=True)
class HandsOnActivity(Block):
    """A hands-on exercise backed by a registered patternlet or exemplar.

    ``paradigm``/``patternlet`` address the registry; ``instructions`` is
    what the learner reads; ``expected`` names the values the learner
    should observe (used by the delivery simulation's checking).
    """

    title: str
    paradigm: str
    patternlet: str
    instructions: str
    expected: tuple[str, ...] = ()


@dataclass
class Section:
    """One numbered section (e.g. "2.3 Race Conditions")."""

    number: str
    title: str
    blocks: list[Block] = field(default_factory=list)
    minutes: int = 5

    def add(self, *blocks: Block) -> "Section":
        self.blocks.extend(blocks)
        return self

    @property
    def questions(self) -> list[Question]:
        return [b for b in self.blocks if isinstance(b, Question)]

    @property
    def activities(self) -> list[HandsOnActivity]:
        return [b for b in self.blocks if isinstance(b, HandsOnActivity)]


@dataclass
class Chapter:
    """A module chapter grouping sections with a pacing budget.

    ``pre_work`` marks chapters completed *before* the synchronous session
    (the paper had participants set up their Pis ahead of the morning
    activity), so they do not count against the 2-hour lab period.
    """

    number: int
    title: str
    sections: list[Section] = field(default_factory=list)
    pre_work: bool = False

    def add(self, section: Section) -> "Chapter":
        self.sections.append(section)
        return self

    @property
    def minutes(self) -> int:
        return sum(s.minutes for s in self.sections)


@dataclass
class Module:
    """A complete self-paced virtual handout."""

    slug: str
    title: str
    audience: str
    chapters: list[Chapter] = field(default_factory=list)
    target_minutes: int = 120  # "approximately 2 hours"

    def add(self, chapter: Chapter) -> "Module":
        self.chapters.append(chapter)
        return self

    # ----------------------------------------------------------------- queries
    def all_sections(self) -> Iterator[Section]:
        for ch in self.chapters:
            yield from ch.sections

    def all_questions(self) -> list[Question]:
        return [q for s in self.all_sections() for q in s.questions]

    def all_activities(self) -> list[HandsOnActivity]:
        return [a for s in self.all_sections() for a in s.activities]

    def find_question(self, activity_id: str) -> Question:
        for q in self.all_questions():
            if q.activity_id == activity_id:
                return q
        raise KeyError(f"no question {activity_id!r} in module {self.slug}")

    def find_section(self, number: str) -> Section:
        for s in self.all_sections():
            if s.number == number:
                return s
        raise KeyError(f"no section {number!r} in module {self.slug}")

    @property
    def total_minutes(self) -> int:
        return sum(ch.minutes for ch in self.chapters)

    @property
    def session_minutes(self) -> int:
        """Minutes of in-session pacing (pre-work chapters excluded)."""
        return sum(ch.minutes for ch in self.chapters if not ch.pre_work)

    @property
    def prework_minutes(self) -> int:
        return sum(ch.minutes for ch in self.chapters if ch.pre_work)

    def fits_lab_period(self, slack_minutes: int = 15) -> bool:
        """Does the in-session pacing fit the standard 2-hour lab period?"""
        return self.session_minutes <= self.target_minutes + slack_minutes

    def pacing_table(self) -> list[tuple[str, int]]:
        """(chapter title, minutes) rows — the module's time budget."""
        return [(ch.title, ch.minutes) for ch in self.chapters]
