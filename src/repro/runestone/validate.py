"""Module linting: catch authoring mistakes before learners do.

Instructors adapting the materials ("freely available for any instructor
to adapt") will edit module content.  :func:`validate_module` checks the
invariants the engine and the session simulator rely on and returns a
list of findings, each tagged as an error (would break delivery) or a
warning (probably a mistake).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..patternlets import get_patternlet
from .content import Video
from .module import Module
from .questions import (
    DragAndDrop,
    FillInTheBlank,
    MultipleChoice,
    OrderingProblem,
)

__all__ = ["Finding", "validate_module"]


@dataclass(frozen=True)
class Finding:
    """One lint result."""

    level: str  # "error" | "warning"
    where: str  # section number or module
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.level}] {self.where}: {self.message}"


def validate_module(module: Module, run_activities: bool = False) -> list[Finding]:
    """Lint a module; empty list means clean.

    With ``run_activities`` the referenced patternlets are actually
    executed and their declared ``expected`` keys checked — slower, but the
    check that catches renamed result fields.
    """
    findings: list[Finding] = []

    def error(where: str, message: str) -> None:
        findings.append(Finding("error", where, message))

    def warning(where: str, message: str) -> None:
        findings.append(Finding("warning", where, message))

    # ---- structural ----------------------------------------------------------
    if not module.chapters:
        error(module.slug, "module has no chapters")
    section_numbers = [s.number for s in module.all_sections()]
    for number in {n for n in section_numbers if section_numbers.count(n) > 1}:
        error(number, "duplicate section number")

    activity_ids = [q.activity_id for q in module.all_questions()]
    for activity_id in {a for a in activity_ids if activity_ids.count(a) > 1}:
        error(activity_id, "duplicate question activity id")

    # ---- pacing --------------------------------------------------------------
    for section in module.all_sections():
        if section.minutes <= 0:
            error(section.number, "section has non-positive pacing minutes")
    if module.session_minutes == 0:
        error(module.slug, "no in-session time (every chapter is pre-work?)")
    elif not module.fits_lab_period():
        warning(
            module.slug,
            f"session pacing is {module.session_minutes} min, beyond the "
            f"{module.target_minutes}-min lab period",
        )

    # ---- questions -------------------------------------------------------------
    for question in module.all_questions():
        where = question.activity_id
        if isinstance(question, MultipleChoice):
            if len(question.choices) < 2:
                error(where, "multiple choice needs at least two options")
            correct = next(
                c for c in question.choices if c.label == question.correct_label
            )
            if not correct.feedback:
                warning(where, "correct choice has no feedback text")
        elif isinstance(question, FillInTheBlank):
            if question.numeric_answer is None and not question.answer_pattern:
                error(where, "blank has neither a numeric answer nor a pattern")
            if question.numeric_answer is not None and question.tolerance < 0:
                error(where, "negative tolerance")
        elif isinstance(question, (DragAndDrop, OrderingProblem)):
            pass  # their constructors already enforce well-formedness

    # ---- media ------------------------------------------------------------------
    for section in module.all_sections():
        for block in section.blocks:
            if isinstance(block, Video) and block.duration_s > 15 * 60:
                warning(
                    section.number,
                    f"video '{block.title}' is {block.duration_s // 60} min; "
                    "self-paced modules favor short videos",
                )

    # ---- activities ----------------------------------------------------------------
    for section in module.all_sections():
        for activity in section.activities:
            where = f"{section.number}:{activity.title}"
            try:
                patternlet = get_patternlet(activity.paradigm, activity.patternlet)
            except KeyError:
                error(where, f"unknown patternlet "
                             f"{activity.paradigm}:{activity.patternlet}")
                continue
            if not activity.expected:
                warning(where, "activity declares no expected result keys")
            elif run_activities:
                kwargs = (
                    {"iterations": 500} if activity.patternlet == "race" else {}
                )
                result = patternlet.run(**kwargs)
                for key in activity.expected:
                    if key not in result.values:
                        error(
                            where,
                            f"expected key {key!r} not in "
                            f"{activity.patternlet} results "
                            f"({sorted(result.values)})",
                        )
    return findings
