"""The Google Colab patternlets notebook (the paper's distributed module [14]).

Builds the ``mpi4py_patternlets.ipynb`` notebook the paper's Fig. 2
screenshots, cell for cell: each patternlet is a ``%%writefile`` cell
followed by a ``!mpirun -np 4`` cell.  Executing it through
:class:`repro.runestone.notebook.Notebook` runs every patternlet on the
in-process MPI runtime and captures the same outputs a learner sees in
Colab.
"""

from __future__ import annotations

from ..notebook import Notebook

__all__ = ["build_mpi_colab_notebook", "SPMD_CELL_SOURCE", "SPMD_RUN_COMMAND"]


SPMD_CELL_SOURCE = """\
%%writefile 00spmd.py
from mpi4py import MPI

def main():
    comm = MPI.COMM_WORLD
    id = comm.Get_rank()             #number of the process running the code
    numProcesses = comm.Get_size()   #total number of processes running
    myHostName = MPI.Get_processor_name()  #machine name running the code

    print("Greetings from process {} of {} on {}"\\
        .format(id, numProcesses, myHostName))

########## Run the main function
main()
"""

SPMD_RUN_COMMAND = "! mpirun --allow-run-as-root -np 4 python 00spmd.py"


def build_mpi_colab_notebook(np: int = 4) -> Notebook:
    """Construct the full patternlets notebook."""
    nb = Notebook(title="mpi4py_patternlets.ipynb", default_np=np)

    nb.md(
        "# Distributed parallel programming patterns using mpi4py\n"
        "Run each code cell in order. The `%%writefile` cells save a small "
        "program; the `!mpirun` cells execute it with several processes."
    )

    # ---- Single Program, Multiple Data (the Fig. 2 cells) ---------------------
    nb.md(
        "## Single Program, Multiple Data\n"
        "This code forms the basis of all of the other examples that follow. "
        "It is the fundamental way we structure parallel programs today."
    )
    nb.code(SPMD_CELL_SOURCE)
    nb.md(
        "Next we see how we can use the mpirun program to execute the above "
        "python code using 4 processes."
    )
    nb.code(SPMD_RUN_COMMAND.replace("-np 4", f"-np {np}"))

    # ---- Send/Receive -----------------------------------------------------------
    nb.md(
        "## Send and Receive\n"
        "Processes share data by sending messages. The receiver blocks until "
        "the message arrives."
    )
    nb.code(
        "%%writefile 01sendReceive.py\n"
        "from mpi4py import MPI\n\n"
        "def main():\n"
        "    comm = MPI.COMM_WORLD\n"
        "    id = comm.Get_rank()\n"
        "    if id == 0:\n"
        "        data = {'a': 7, 'b': 3.14}\n"
        "        comm.send(data, dest=1, tag=11)\n"
        "        print('Process 0 sent', data)\n"
        "    elif id == 1:\n"
        "        data = comm.recv(source=0, tag=11)\n"
        "        print('Process 1 received', data)\n\n"
        "main()\n"
    )
    nb.code(f"! mpirun --allow-run-as-root -np {max(2, min(np, 4))} python 01sendReceive.py")

    # ---- Ring pipeline -----------------------------------------------------------
    nb.md(
        "## Message passing around a ring\n"
        "Each process receives from its left neighbor and sends to its right."
    )
    nb.code(
        "%%writefile 02ring.py\n"
        "from mpi4py import MPI\n\n"
        "def main():\n"
        "    comm = MPI.COMM_WORLD\n"
        "    id = comm.Get_rank()\n"
        "    numProcesses = comm.Get_size()\n"
        "    if numProcesses < 2:\n"
        "        print('please run with at least 2 processes')\n"
        "        return\n"
        "    right = (id + 1) % numProcesses\n"
        "    left = (id - 1) % numProcesses\n"
        "    if id == 0:\n"
        "        comm.send([0], dest=right, tag=4)\n"
        "        token = comm.recv(source=left, tag=4)\n"
        "        print('Token made it around the ring:', token)\n"
        "    else:\n"
        "        token = comm.recv(source=left, tag=4)\n"
        "        token.append(id)\n"
        "        comm.send(token, dest=right, tag=4)\n\n"
        "main()\n"
    )
    nb.code(f"! mpirun --allow-run-as-root -np {np} python 02ring.py")

    # ---- Broadcast ---------------------------------------------------------------
    nb.md("## Broadcast\nOne process's data reaches everyone in a single call.")
    nb.code(
        "%%writefile 03broadcast.py\n"
        "from mpi4py import MPI\n\n"
        "def main():\n"
        "    comm = MPI.COMM_WORLD\n"
        "    id = comm.Get_rank()\n"
        "    if id == 0:\n"
        "        data = {'key1': [7, 2.72, 2+3j], 'key2': ('abc', 'xyz')}\n"
        "    else:\n"
        "        data = None\n"
        "    data = comm.bcast(data, root=0)\n"
        "    print('Process', id, 'has', sorted(data.keys()))\n\n"
        "main()\n"
    )
    nb.code(f"! mpirun --allow-run-as-root -np {np} python 03broadcast.py")

    # ---- Scatter / Gather ----------------------------------------------------------
    nb.md(
        "## Scatter and Gather\n"
        "Scatter deals chunks of a list out to the processes; gather collects "
        "one value from each."
    )
    nb.code(
        "%%writefile 04scatterGather.py\n"
        "from mpi4py import MPI\n\n"
        "def main():\n"
        "    comm = MPI.COMM_WORLD\n"
        "    id = comm.Get_rank()\n"
        "    numProcesses = comm.Get_size()\n"
        "    if id == 0:\n"
        "        data = [(i+1)**2 for i in range(numProcesses)]\n"
        "    else:\n"
        "        data = None\n"
        "    mine = comm.scatter(data, root=0)\n"
        "    print('Process', id, 'received', mine)\n"
        "    doubled = comm.gather(mine * 2, root=0)\n"
        "    if id == 0:\n"
        "        print('Root gathered', doubled)\n\n"
        "main()\n"
    )
    nb.code(f"! mpirun --allow-run-as-root -np {np} python 04scatterGather.py")

    # ---- Reduce ------------------------------------------------------------------
    nb.md("## Reduce\nCombine one value per process into a single result.")
    nb.code(
        "%%writefile 05reduce.py\n"
        "from mpi4py import MPI\n\n"
        "def main():\n"
        "    comm = MPI.COMM_WORLD\n"
        "    id = comm.Get_rank()\n"
        "    total = comm.reduce(id, op=MPI.SUM, root=0)\n"
        "    if id == 0:\n"
        "        print('Sum of all ranks:', total)\n\n"
        "main()\n"
    )
    nb.code(f"! mpirun --allow-run-as-root -np {np} python 05reduce.py")

    # ---- Parallel loop -------------------------------------------------------------
    nb.md(
        "## A parallel loop\n"
        "Each process sums its own slice; a reduce assembles the total — the "
        "skeleton of the numerical-integration exemplar."
    )
    nb.code(
        "%%writefile 06parallelLoop.py\n"
        "from mpi4py import MPI\n\n"
        "def main():\n"
        "    comm = MPI.COMM_WORLD\n"
        "    id = comm.Get_rank()\n"
        "    numProcesses = comm.Get_size()\n"
        "    n = 1000\n"
        "    base, extra = divmod(n, numProcesses)\n"
        "    lo = id * base + min(id, extra)\n"
        "    hi = lo + base + (1 if id < extra else 0)\n"
        "    local = sum(i * i for i in range(lo, hi))\n"
        "    total = comm.reduce(local, op=MPI.SUM, root=0)\n"
        "    if id == 0:\n"
        "        print('Sum of squares below', n, 'is', total)\n\n"
        "main()\n"
    )
    nb.code(f"! mpirun --allow-run-as-root -np {np} python 06parallelLoop.py")

    nb.md(
        "## Where to go next\n"
        "In the second hour, run the *Forest Fire Simulation* or the *Drug "
        "Design* exemplar on a real parallel platform — the Chameleon-backed "
        "Jupyter notebook or the St. Olaf 64-core VM — and measure speedup."
    )
    return nb
