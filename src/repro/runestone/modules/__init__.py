"""The actual teaching-material content: both of the paper's modules."""

from .chameleon_jupyter import build_chameleon_notebook
from .mpi_colab import SPMD_CELL_SOURCE, SPMD_RUN_COMMAND, build_mpi_colab_notebook
from .mpi_module import build_distributed_module
from .raspberry_pi import RACE_CONDITION_QUESTION, build_raspberry_pi_module

__all__ = [
    "build_raspberry_pi_module",
    "build_distributed_module",
    "RACE_CONDITION_QUESTION",
    "build_mpi_colab_notebook",
    "build_chameleon_notebook",
    "SPMD_CELL_SOURCE",
    "SPMD_RUN_COMMAND",
]
