"""The Chameleon-backed Jupyter exemplar notebook (the paper's [16]).

The distributed module's second hour: after the Colab patternlets, learners
open a Jupyter notebook whose kernel runs on a Chameleon Cloud cluster and
run the *exemplars* at real scale — the forest-fire simulation (the one
participants planned to adopt) and, optionally, drug design.  This builder
reconstructs that notebook; executing it locally drives the exemplars on
the in-process runtime with small parameters, while the expository cells
teach the scaled-up study.
"""

from __future__ import annotations

from ..notebook import Notebook

__all__ = ["build_chameleon_notebook"]


def build_chameleon_notebook(np: int = 4, trials: int = 8, size: int = 15) -> Notebook:
    """Construct the forest-fire/drug-design exemplar notebook."""
    nb = Notebook(title="forest_fire_simulation.ipynb", default_np=np)

    nb.md(
        "# Forest Fire Simulation on a cluster\n"
        "You are connected to a Jupyter server whose kernel runs on a "
        "multi-node cluster. Unlike the Colab patternlets, the programs "
        "here run with genuinely parallel processes — so you can *measure "
        "speedup*."
    )

    nb.md(
        "## The model\n"
        "A fire starts at the center tree of a square forest; each burning "
        "tree ignites each neighbor with probability `prob`; a tree burns "
        "for one time step. We sweep `prob` from 0.1 to 1.0 and average "
        "many independent trials per point — an embarrassingly parallel "
        "Monte-Carlo workload, split across MPI ranks."
    )

    nb.code(
        "%%writefile fire_mpi.py\n"
        "from mpi4py import MPI\n"
        "from repro.exemplars.forestfire import DEFAULT_PROBS, _fold_point, _point\n"
        "\n"
        f"TRIALS = {trials}\n"
        f"SIZE = {size}\n"
        "SEED = 2020\n"
        "\n"
        "def main():\n"
        "    comm = MPI.COMM_WORLD\n"
        "    rank = comm.Get_rank()\n"
        "    nprocs = comm.Get_size()\n"
        "    for pi, prob in enumerate(DEFAULT_PROBS):\n"
        "        mine = [t for t in range(TRIALS) if t % nprocs == rank]\n"
        "        rows = _point(SIZE, prob, pi, mine, SEED)\n"
        "        gathered = comm.gather(rows, root=0)\n"
        "        if rank == 0:\n"
        "            point = _fold_point(prob, [r for part in gathered for r in part], TRIALS)\n"
        "            print('prob {:.1f}: {:5.1f}% burned, {:5.1f} iterations'\n"
        "                  .format(point.prob, 100 * point.avg_burned, point.avg_iterations))\n"
        "\n"
        "main()\n"
    )
    nb.code(f"! mpirun -np {np} python fire_mpi.py")

    nb.md(
        "## Measuring speedup\n"
        "On the cluster, rerun with `-np 1, 2, 4, 8, ...` and time each "
        "run. Because the trials are independent, you should see near-"
        "linear speedup until per-process work gets too small. The cost "
        "model below predicts the curve for this cluster."
    )
    nb.code(
        "from repro.core import run_exemplar_study\n"
        "study = run_exemplar_study('forestfire', 'chameleon-cluster').study\n"
        "print(study.format_table())\n"
    )

    nb.md(
        "## Optional: the drug-design exemplar\n"
        "The same master-worker pattern from the patternlets hour, scaled "
        "up: the master deals candidate ligands to whichever worker is "
        "idle, so irregular scoring costs balance automatically."
    )
    nb.code(
        "%%writefile drug_mpi.py\n"
        "from mpi4py import MPI\n"
        "from repro.exemplars import generate_ligands, run_seq\n"
        "\n"
        "def main():\n"
        "    comm = MPI.COMM_WORLD\n"
        "    if comm.Get_rank() == 0:\n"
        "        ligands = generate_ligands(24, max_len=7, seed=11)\n"
        "    else:\n"
        "        ligands = None\n"
        "    ligands = comm.bcast(ligands, root=0)\n"
        "    # each rank scores a stride of the pool, then gathers\n"
        "    rank, size = comm.Get_rank(), comm.Get_size()\n"
        "    from repro.exemplars import score_ligand\n"
        "    mine = [(i, score_ligand(ligands[i])) for i in range(rank, len(ligands), size)]\n"
        "    parts = comm.gather(mine, root=0)\n"
        "    if rank == 0:\n"
        "        scores = dict(pair for part in parts for pair in part)\n"
        "        best = max(scores.values())\n"
        "        winners = sorted(ligands[i] for i, s in scores.items() if s == best)\n"
        "        print('max score', best, 'achieved by', winners)\n"
        "\n"
        "main()\n"
    )
    nb.code(f"! mpirun -np {np} python drug_mpi.py")

    nb.md(
        "## Wrap-up\n"
        "You have now run the same message-passing patterns on a unicore "
        "Colab VM (concepts) and a real cluster (speedup) — the two-pronged "
        "strategy for teaching distributed computing remotely."
    )
    return nb
