"""The distributed-memory module as a structured handout (paper §III-B).

The paper delivered this module through a Colab notebook plus a choice of
cluster back-ends rather than through Runestone, but its *pedagogical
structure* is the same two-hour design: an hour of message-passing
patternlets, then an hour on one exemplar on a real parallel platform.
Modeling it as a :class:`~repro.runestone.module.Module` lets the session
simulator, gradebook, and pacing checks cover the second workshop morning
exactly like the first.
"""

from __future__ import annotations

from ..content import Callout, CodeListing, Text
from ..module import Chapter, HandsOnActivity, Module, Section
from ..questions import Choice, DragAndDrop, FillInTheBlank, MultipleChoice

__all__ = ["build_distributed_module"]


def build_distributed_module() -> Module:
    """Construct the distributed-computing module (Colab + cluster hours)."""
    module = Module(
        slug="mpi-distributed-handout",
        title="Distributed Computing with mpi4py: Colab and a Real Cluster",
        audience="students and instructors new to message passing",
        target_minutes=120,
    )

    # ----- Chapter 1: pre-work — accounts and access -------------------------
    setup = Chapter(1, "Before the Session", pre_work=True)
    setup.add(
        Section("1.1", "Get a Google account and open the Colab", minutes=10).add(
            Text(
                "The patternlets hour runs in Google Colab: no installation, "
                "just a free Google account to save the notebook into your "
                "Drive. Open the shared notebook and choose 'Save a copy'."
            ),
            Callout(
                "tip",
                "Colab's VM has a single core. That is fine for the "
                "patternlets — message passing works at any process count — "
                "but speedup measurements wait for the second hour.",
            ),
        )
    )
    setup.add(
        Section("1.2", "Choose your second-hour platform", minutes=10).add(
            Text(
                "For the exemplar hour you will use either (a) a Jupyter "
                "notebook backed by a Chameleon Cloud cluster, or (b) a VNC "
                "connection to a 64-core VM. Both show real speedup; pick "
                "whichever access path suits your connection."
            ),
            Callout(
                "warning",
                "Follow the login instructions exactly. Repeated failed VNC "
                "logins trip the firewall and suspend VNC access; ssh keeps "
                "working if that happens.",
            ),
        )
    )
    module.add(setup)

    # ----- Chapter 2: message-passing concepts (first half hour) -------------
    concepts = Chapter(2, "Message-Passing Concepts")
    concepts.add(
        Section("2.1", "Processes, not threads", minutes=10).add(
            Text(
                "MPI programs run as independent processes that share "
                "*nothing*: all cooperation is by sending and receiving "
                "messages. One program text runs on every process (SPMD); "
                "each process learns its role from its rank."
            ),
            DragAndDrop(
                activity_id="dm_dnd_1",
                prompt="Match each MPI term to its meaning.",
                pairs=(
                    ("rank", "a process's id within the communicator"),
                    ("communicator", "the group of processes that can exchange messages"),
                    ("message", "data sent from one process and received by another"),
                ),
            ),
        )
    )
    concepts.add(
        Section("2.2", "The SPMD structure", minutes=10).add(
            CodeListing(
                language="python",
                caption="00spmd.py — the basis of every example that follows",
                code=(
                    "from mpi4py import MPI\n\n"
                    "comm = MPI.COMM_WORLD\n"
                    "id = comm.Get_rank()\n"
                    "numProcesses = comm.Get_size()\n"
                    "print('Greetings from process {} of {}'"
                    ".format(id, numProcesses))\n"
                ),
                runnable_on="colab",
            ),
            MultipleChoice(
                activity_id="dm_mc_1",
                prompt="Q-1: Running the SPMD program with mpirun -np 4, how "
                "many times does the greeting print?",
                choices=(
                    Choice("A", "once"),
                    Choice("B", "four times, in rank order",
                           feedback="The output order is *not* guaranteed — "
                           "processes race to the shared terminal."),
                    Choice("C", "four times, in nondeterministic order",
                           feedback="Correct! Every process runs the same "
                           "code; arrival order varies."),
                ),
                correct_label="C",
            ),
        )
    )
    concepts.add(
        Section("2.3", "Blocking semantics and deadlock", minutes=10).add(
            Text(
                "recv blocks until a matching message arrives. Two processes "
                "that both receive before sending wait forever — deadlock. "
                "Ordering the operations (or using sendrecv) breaks the cycle."
            ),
            MultipleChoice(
                activity_id="dm_mc_2",
                prompt="Q-2: Both ranks call recv first, then send. What happens?",
                choices=(
                    Choice("A", "the messages cross and both receives complete"),
                    Choice("B", "both processes wait forever (deadlock)",
                           feedback="Correct — neither send is ever reached."),
                    Choice("C", "MPI reorders the calls automatically"),
                ),
                correct_label="B",
            ),
        )
    )
    module.add(concepts)

    # ----- Chapter 3: hands-on patternlets in Colab (rest of hour 1) ---------
    handson = Chapter(3, "MPI Patternlets in Colab")
    handson.add(
        Section("3.1", "SPMD and conditional roles", minutes=10).add(
            HandsOnActivity(
                title="Run 00spmd.py with -np 4",
                paradigm="mpi",
                patternlet="spmd",
                instructions="Run the cell several times. Does the greeting "
                "order change?",
                expected=("np", "unique_ranks"),
            ),
            HandsOnActivity(
                title="Master vs. worker roles",
                paradigm="mpi",
                patternlet="masterWorkerSplit",
                instructions="One text, two roles: branch on the rank.",
                expected=("one_master", "workers"),
            ),
        )
    )
    handson.add(
        Section("3.2", "Point-to-point messaging", minutes=10).add(
            HandsOnActivity(
                title="Send and receive",
                paradigm="mpi",
                patternlet="sendReceive",
                instructions="Rank 0 sends a dictionary; rank 1 receives it.",
                expected=("received_equals_sent",),
            ),
            HandsOnActivity(
                title="Pass a message around the ring",
                paradigm="mpi",
                patternlet="messagePassingRing",
                instructions="Each rank appends its id; watch the token grow.",
                expected=("visited_all",),
            ),
            HandsOnActivity(
                title="Deadlock — and the fix",
                paradigm="mpi",
                patternlet="deadlock",
                instructions="Run the broken exchange (the runtime reports "
                "the deadlock), then the fixed ordering.",
                expected=("deadlocked",),
            ),
        )
    )
    handson.add(
        Section("3.3", "Collective communication", minutes=10).add(
            HandsOnActivity(
                title="Broadcast",
                paradigm="mpi",
                patternlet="broadcast",
                instructions="Root's dictionary reaches every process.",
                expected=("all_equal",),
            ),
            HandsOnActivity(
                title="Scatter and gather",
                paradigm="mpi",
                patternlet="scatter",
                instructions="Deal chunks out; collect results back.",
                expected=("each_got_its_chunk",),
            ),
            HandsOnActivity(
                title="Reduce",
                paradigm="mpi",
                patternlet="reduce",
                instructions="Combine one value per process at the root.",
                expected=("root_correct",),
            ),
            FillInTheBlank(
                activity_id="dm_fib_1",
                prompt="With 4 processes each contributing its rank, what does "
                "reduce with MPI.SUM deliver at the root?",
                numeric_answer=6,
                tolerance=0,
            ),
        )
    )
    module.add(handson)

    # ----- Chapter 4: exemplars on a real platform (hour 2) -------------------
    exemplars = Chapter(4, "Exemplars on a Parallel Platform")
    exemplars.add(
        Section("4.1", "Pick your exemplar and platform", minutes=10).add(
            Text(
                "Work through whichever exemplar interests you most — the "
                "Forest Fire Simulation or Drug Design — on the Chameleon "
                "notebook or the 64-core VM. Both use the patterns from the "
                "first hour: scatter/gather plus reduce, or master-worker."
            ),
            MultipleChoice(
                activity_id="dm_mc_3",
                prompt="Q-3: Why run the exemplars on a cluster rather than "
                "in Colab?",
                choices=(
                    Choice("A", "Colab cannot run mpi4py"),
                    Choice("B", "the exemplars need a GPU"),
                    Choice("C", "Colab's single-core VM cannot show speedup",
                           feedback="Correct — concepts work anywhere, but "
                           "speedup needs real parallel hardware."),
                ),
                correct_label="C",
            ),
        )
    )
    exemplars.add(
        Section("4.2", "Forest fire: Monte-Carlo trials across ranks", minutes=25).add(
            HandsOnActivity(
                title="Run the burn-probability sweep",
                paradigm="mpi",
                patternlet="parallelLoopChunks",
                instructions="Trials are independent: split them across "
                "ranks, gather the per-trial results, and plot burned "
                "fraction vs. spread probability. Time the run at 1, 2, 4, "
                "8... processes.",
                expected=("total_correct",),
            ),
            FillInTheBlank(
                activity_id="dm_fib_2",
                prompt="At roughly what spread probability does the average "
                "burned fraction cross 50%? (one decimal)",
                numeric_answer=0.5,
                tolerance=0.15,
            ),
        )
    )
    exemplars.add(
        Section("4.3", "Drug design: master-worker at scale", minutes=25).add(
            HandsOnActivity(
                title="Farm ligand scoring to workers",
                paradigm="mpi",
                patternlet="masterWorker",
                instructions="The master deals one ligand at a time; watch "
                "the per-worker counts balance despite uneven ligand lengths.",
                expected=("all_tasks_done", "work_was_distributed"),
            ),
        )
    )
    module.add(exemplars)
    return module
