"""The Raspberry Pi virtual handout (the paper's shared-memory module [13]).

Structure and pacing follow Section III-A: a first chapter of setup videos;
half an hour of concepts (processes, threads, multicore — including the
§2.3 race-conditions page screenshotted in Fig. 1); an hour of hands-on
patternlet exploration; and a closing half hour with the two OpenMP
exemplars and the benchmarking study.
"""

from __future__ import annotations

from ..content import Callout, CodeListing, Text, Video
from ..module import Chapter, HandsOnActivity, Module, Section
from ..questions import Choice, DragAndDrop, FillInTheBlank, MultipleChoice

__all__ = ["build_raspberry_pi_module", "RACE_CONDITION_QUESTION"]


#: Fig. 1's question, verbatim: activity "sp_mc_2", correct answer C.
RACE_CONDITION_QUESTION = MultipleChoice(
    activity_id="sp_mc_2",
    prompt="Q-2: What is a race condition?",
    choices=(
        Choice(
            "A",
            "It is the smallest set of instructions that must execute "
            "sequentially to ensure correctness.",
            feedback="That describes a critical section — the *fix*, not the bug.",
        ),
        Choice(
            "B",
            "It is a mechanism that helps protect a resource.",
            feedback="That describes a lock (mutex). A race condition is the "
            "problem a lock prevents.",
        ),
        Choice(
            "C",
            "It is something that arises when two or more threads attempt to "
            "modify a shared variable at the same time.",
            feedback="Correct! Unsynchronized concurrent updates can interleave "
            "and lose writes.",
        ),
    ),
    correct_label="C",
)


def build_raspberry_pi_module() -> Module:
    """Construct the complete virtual handout."""
    module = Module(
        slug="raspberry-pi-handout",
        title="Hands-on Multicore Computing with OpenMP on the Raspberry Pi",
        audience="students and instructors new to shared-memory parallelism",
        target_minutes=120,
    )

    # ----- Chapter 1: Setting up your Raspberry Pi (the setup videos) -------
    setup = Chapter(1, "Setting Up Your Raspberry Pi", pre_work=True)
    setup.add(
        Section("1.1", "What's in your kit", minutes=5).add(
            Text(
                "Your mailed kit contains a CanaKit Raspberry Pi 4 (2GB), an "
                "Ethernet-USB A dongle, a USB A-C dongle, an Ethernet cable, a "
                "16GB microSD card pre-flashed with our custom system image, "
                "and a case. Total cost of these parts is about $100."
            ),
            Video(
                "Unboxing and assembling your kit",
                duration_s=302,
                covers_issues=("missing-parts", "case-assembly"),
            ),
        )
    )
    setup.add(
        Section("1.2", "Flashing and booting the system image", minutes=10).add(
            Text(
                "The microSD card in your kit already carries csip-image "
                "3.0.2, which works on every Raspberry Pi from the 3B onward. "
                "If you are using your own Pi, burn the image onto a microSD "
                "card first."
            ),
            Video(
                "Flashing the image and first boot",
                duration_s=415,
                covers_issues=("bad-flash", "no-boot", "hdmi-config"),
            ),
            Callout(
                "troubleshooting",
                "If the green LED does not blink on power-up, re-seat the "
                "microSD card and check the power supply.",
            ),
        )
    )
    setup.add(
        Section("1.3", "Using your laptop as the Pi's display", minutes=10).add(
            Text(
                "Connect the Pi to your laptop with the Ethernet cable (use "
                "the Ethernet-USB dongle if your laptop lacks a port), then "
                "open a VNC session to the Pi. This works the same on Linux, "
                "macOS, and Windows."
            ),
            Video(
                "Laptop-as-display walkthrough",
                duration_s=388,
                covers_issues=("vnc-setup", "network-config", "firewall"),
            ),
        )
    )
    module.add(setup)

    # ----- Chapter 2: Concepts (the first half hour) --------------------------
    concepts = Chapter(2, "Processes, Threads, and Multicore Systems")
    concepts.add(
        Section("2.1", "From one core to many", minutes=8).add(
            Text(
                "Before 2006 most CPUs executed one instruction stream. "
                "Today's multicore CPUs — including the four Cortex-A72 cores "
                "in your Raspberry Pi 4 — execute several at once. Software "
                "must be written to use them."
            ),
            MultipleChoice(
                activity_id="sp_mc_1",
                prompt="Q-1: How many cores does the Raspberry Pi 4 in your kit have?",
                choices=(
                    Choice("A", "1"),
                    Choice("B", "2"),
                    Choice("C", "4", feedback="Correct — four Cortex-A72 cores."),
                    Choice("D", "8"),
                ),
                correct_label="C",
            ),
        )
    )
    concepts.add(
        Section("2.2", "Processes and threads", minutes=8).add(
            Text(
                "A process owns its memory; threads within a process share "
                "that memory. Shared memory is what makes multithreading fast "
                "— and what makes it dangerous."
            ),
            DragAndDrop(
                activity_id="sp_dnd_1",
                prompt="Match each term to its definition.",
                pairs=(
                    ("process", "an executing program with its own address space"),
                    ("thread", "an execution stream sharing its process's memory"),
                    ("core", "a hardware unit that executes one stream at a time"),
                ),
            ),
        )
    )
    concepts.add(
        Section("2.3", "Race Conditions", minutes=8).add(
            Text("The following video will help you understand what is going on:"),
            Video(
                "Race conditions explained",
                duration_s=122,  # the 2:02 video visible in Fig. 1
                covers_issues=(),
            ),
            Text("Try and answer the following question:"),
            RACE_CONDITION_QUESTION,
        )
    )
    concepts.add(
        Section("2.4", "The OpenMP patternlets", minutes=6).add(
            Text(
                "Patternlets are minimal programs, each demonstrating one "
                "parallel-programming pattern. You will run each one on your "
                "Pi, predict its behaviour, and check your prediction."
            ),
            CodeListing(
                language="c",
                caption="Your first patternlet: an OpenMP parallel region",
                code=(
                    "#include <stdio.h>\n"
                    "#include <omp.h>\n\n"
                    "int main() {\n"
                    "    #pragma omp parallel\n"
                    "    {\n"
                    "        int id = omp_get_thread_num();\n"
                    "        int numThreads = omp_get_num_threads();\n"
                    '        printf("Hello from thread %d of %d\\n", id, numThreads);\n'
                    "    }\n"
                    "    return 0;\n"
                    "}\n"
                ),
            ),
        )
    )
    module.add(concepts)

    # ----- Chapter 3: Hands-on patternlets (the middle hour) ------------------
    handson = Chapter(3, "Exploring the Patternlets")
    handson.add(
        Section("3.1", "SPMD and fork-join", minutes=12).add(
            HandsOnActivity(
                title="Run the SPMD patternlet",
                paradigm="openmp",
                patternlet="spmd",
                instructions="Run it several times. Does the output order "
                "change? Why?",
                expected=("thread_ids",),
            ),
            HandsOnActivity(
                title="Fork-join phases",
                paradigm="openmp",
                patternlet="forkjoin",
                instructions="Identify the sequential and parallel phases in "
                "the output.",
                expected=("joined_before_after",),
            ),
            FillInTheBlank(
                activity_id="sp_fib_1",
                prompt="With 4 threads, how many 'During' lines does the "
                "fork-join patternlet print?",
                numeric_answer=4,
                tolerance=0,
            ),
        )
    )
    handson.add(
        Section("3.2", "Seeing — and fixing — the race", minutes=18).add(
            HandsOnActivity(
                title="Race condition",
                paradigm="openmp",
                patternlet="race",
                instructions="Run the unprotected counter. Compare 'expected' "
                "and 'got'. Run it again — is the damage the same?",
                expected=("expected", "actual", "lost"),
            ),
            HandsOnActivity(
                title="Fix 1: critical section",
                paradigm="openmp",
                patternlet="critical",
                instructions="Verify the count is now exact. What did it cost?",
                expected=("expected", "actual"),
            ),
            HandsOnActivity(
                title="Fix 2: atomic update",
                paradigm="openmp",
                patternlet="atomic",
                instructions="Also exact — and lighter-weight than critical.",
                expected=("expected", "actual"),
            ),
            HandsOnActivity(
                title="Fix 3: reduction",
                paradigm="openmp",
                patternlet="reduction",
                instructions="The idiomatic fix: private partials, combined at "
                "the join.",
                expected=("expected", "actual"),
            ),
        )
    )
    handson.add(
        Section("3.3", "Worksharing schedules", minutes=15).add(
            HandsOnActivity(
                title="Equal chunks",
                paradigm="openmp",
                patternlet="forEqualChunks",
                instructions="Which iterations did each thread run?",
                expected=("assignment", "contiguous"),
            ),
            HandsOnActivity(
                title="Chunks of one",
                paradigm="openmp",
                patternlet="forChunksOf1",
                instructions="Now the iterations are dealt round-robin.",
                expected=("assignment", "strided"),
            ),
            HandsOnActivity(
                title="Dynamic scheduling",
                paradigm="openmp",
                patternlet="forDynamic",
                instructions="Run twice; the assignment changes but coverage "
                "never does.",
                expected=("covered_exactly_once",),
            ),
            MultipleChoice(
                activity_id="sp_mc_3",
                prompt="Q-3: Which schedule best fits a loop whose iterations "
                "vary wildly in cost?",
                choices=(
                    Choice("A", "static with equal chunks",
                           feedback="Uneven iteration costs leave threads idle."),
                    Choice("B", "dynamic",
                           feedback="Correct — idle threads grab the next chunk."),
                    Choice("C", "no schedule: run it sequentially"),
                ),
                correct_label="B",
            ),
        )
    )
    handson.add(
        Section("3.4", "Coordination constructs", minutes=15).add(
            HandsOnActivity(
                title="Barrier",
                paradigm="openmp",
                patternlet="barrier",
                instructions="Confirm that no phase-2 line ever precedes a "
                "phase-1 line.",
                expected=("phases_ordered",),
            ),
            HandsOnActivity(
                title="Master and single",
                paradigm="openmp",
                patternlet="masterSingle",
                instructions="Which thread ran the single block? Run again.",
                expected=("master_is_zero", "single_ran_once"),
            ),
            HandsOnActivity(
                title="Sections",
                paradigm="openmp",
                patternlet="sections",
                instructions="Task parallelism: unlike blocks run concurrently.",
                expected=("each_ran_once",),
            ),
        )
    )
    module.add(handson)

    # ----- Chapter 4: Exemplars + benchmarking (the last half hour) ----------
    exemplars = Chapter(4, "Exemplars and a Benchmarking Study")
    exemplars.add(
        Section("4.1", "Numerical integration", minutes=12).add(
            Text(
                "Estimate pi by integrating sqrt(4 - x^2) from 0 to 2 with the "
                "trapezoidal rule, parallelized with a reduction."
            ),
            HandsOnActivity(
                title="Integrate in parallel",
                paradigm="openmp",
                patternlet="reduction",
                instructions="Time the integration at 1, 2, and 4 threads on "
                "your Pi. Compute the speedup at each count.",
                expected=("expected", "actual"),
            ),
            FillInTheBlank(
                activity_id="sp_fib_2",
                prompt="To two decimal places, what value should the "
                "integration converge to?",
                numeric_answer=3.14,
                tolerance=0.005,
            ),
        )
    )
    exemplars.add(
        Section("4.2", "Drug design and your benchmarking study", minutes=18).add(
            Text(
                "The drug-design exemplar scores random candidate ligands "
                "against a protein. Ligand lengths vary, so iteration costs "
                "vary — compare static and dynamic schedules and record the "
                "running times in your lab notebook."
            ),
            MultipleChoice(
                activity_id="sp_mc_4",
                prompt="Q-4: The drug-design loop speeds up more with "
                "schedule(dynamic) than schedule(static). Why?",
                choices=(
                    Choice("A", "dynamic uses more threads"),
                    Choice(
                        "B",
                        "ligand scoring times vary, and dynamic lets idle "
                        "threads take over the remaining work",
                        feedback="Correct — dynamic self-scheduling balances "
                        "irregular work.",
                    ),
                    Choice("C", "static schedules disable compiler optimization"),
                ),
                correct_label="B",
            ),
        )
    )
    module.add(exemplars)
    return module
