"""Learner progress tracking: attempts, completion, and the gradebook.

Runestone's course-management side: record question attempts and section
completion per learner, compute module completion, and roll a cohort's
records up into an instructor gradebook.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from .module import Module
from .questions import GradeResult

__all__ = ["Attempt", "LearnerProgress", "Gradebook"]


@dataclass(frozen=True)
class Attempt:
    """One graded submission."""

    activity_id: str
    answer: Any
    result: GradeResult
    at_minute: float


@dataclass
class LearnerProgress:
    """One learner's journey through one module.

    Mutations are serialized through a per-learner lock so the serving
    layer can grade concurrent submissions from the same learner (double
    clicks, two tabs) without losing attempts; grading itself is pure, so
    the lock guards only the record append and the pacing accumulator.
    """

    learner: str
    module: Module
    attempts: list[Attempt] = field(default_factory=list)
    completed_sections: set[str] = field(default_factory=set)
    minutes_spent: float = 0.0
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def submit(self, activity_id: str, answer: Any) -> GradeResult:
        """Grade an answer against the module's question and record it."""
        question = self.module.find_question(activity_id)
        result = question.grade(answer)
        with self._lock:
            self.attempts.append(
                Attempt(activity_id, answer, result, at_minute=self.minutes_spent)
            )
        return result

    def complete_section(self, number: str, minutes: float | None = None) -> None:
        section = self.module.find_section(number)  # validates the number
        with self._lock:
            self.completed_sections.add(section.number)
            self.minutes_spent += minutes if minutes is not None else section.minutes

    # ------------------------------------------------------------------ metrics
    def attempts_for(self, activity_id: str) -> list[Attempt]:
        return [a for a in self.attempts if a.activity_id == activity_id]

    def eventually_correct(self, activity_id: str) -> bool:
        return any(a.result.correct for a in self.attempts_for(activity_id))

    @property
    def questions_answered_correctly(self) -> int:
        ids = {q.activity_id for q in self.module.all_questions()}
        return sum(1 for aid in ids if self.eventually_correct(aid))

    @property
    def completion_fraction(self) -> float:
        total = sum(1 for _ in self.module.all_sections())
        return len(self.completed_sections) / total if total else 1.0

    @property
    def question_score(self) -> float:
        """Mean best score across the module's questions (0 if unattempted)."""
        questions = self.module.all_questions()
        if not questions:
            return 1.0
        best = []
        for q in questions:
            scores = [a.result.score for a in self.attempts_for(q.activity_id)]
            best.append(max(scores) if scores else 0.0)
        return sum(best) / len(best)

    def finished(self) -> bool:
        return self.completion_fraction == 1.0


@dataclass
class Gradebook:
    """Instructor view across a cohort of learners.

    Enrollment is the only mutation the gradebook itself performs and is
    locked, so two racing enrollments of the same name cannot both win
    (one gets the record, the other gets the ``ValueError``).
    """

    module: Module
    records: dict[str, LearnerProgress] = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def enroll(self, learner: str) -> LearnerProgress:
        with self._lock:
            if learner in self.records:
                raise ValueError(f"{learner!r} is already enrolled")
            progress = LearnerProgress(learner, self.module)
            self.records[learner] = progress
            return progress

    def completion_rate(self) -> float:
        """Fraction of the cohort that finished every section."""
        if not self.records:
            return 0.0
        return sum(p.finished() for p in self.records.values()) / len(self.records)

    def hardest_questions(self) -> list[tuple[str, float]]:
        """(activity_id, first-attempt success rate), hardest first."""
        rows = []
        for q in self.module.all_questions():
            firsts = [
                p.attempts_for(q.activity_id)[0].result.correct
                for p in self.records.values()
                if p.attempts_for(q.activity_id)
            ]
            if firsts:
                rows.append((q.activity_id, sum(firsts) / len(firsts)))
        return sorted(rows, key=lambda r: r[1])

    def mean_minutes(self) -> float:
        if not self.records:
            return 0.0
        return sum(p.minutes_spent for p in self.records.values()) / len(self.records)
