"""Closed-loop load harness: thousands of simulated learners, measured.

Drives the full learner lifecycle — enroll → read module → answer
questions → (instructors) poll the gradebook — through the in-process
ASGI app via :func:`repro.serve.asgi.run_app`, so every request crosses
the real middleware stack (latency, envelopes, deadline, backpressure)
without socket noise.  Concurrency is *closed-loop*: ``workers`` threads
each keep exactly one request outstanding, pulling learners from a shared
queue, which is the standard service-benchmark model (offered load backs
off when the server slows down, so latency numbers stay meaningful).

503 responses are obeyed like a well-behaved client: sleep the server's
``Retry-After`` and retry, counting the shed requests.  Latencies land in
:class:`repro.obs.Histogram` s (microseconds) and the report extracts
p50/p90/p99 through the shared :meth:`Histogram.percentile` helper — the
same implementation the server's own ``/metricz`` uses.

The paper served live workshops to remote cohorts; this harness is how
the repo measures that the platform itself scales as a PDC workload:
``repro serve-load`` for humans, the ``course_serve_*`` bench kernels for
the regression gate.
"""

from __future__ import annotations

import queue
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..obs.metrics import Histogram
from ..runestone.module import Module
from ..runestone.questions import (
    DragAndDrop,
    FillInTheBlank,
    MultipleChoice,
    OrderingProblem,
)
from .app import CourseApp
from .asgi import Client

__all__ = ["LoadReport", "run_load", "answer_pool"]

#: Give up on one request after this many 503-retry rounds.
MAX_RETRIES = 50


def answer_pool(module: Module) -> list[tuple[str, Any, Any]]:
    """(activity_id, correct_answer, wrong_answer) per question.

    The harness submits the wrong answer first and the right one second —
    the two-attempt shape the paper's autograded questions are designed
    around — so gradebooks under load look like real cohorts.
    """
    pool: list[tuple[str, Any, Any]] = []
    for q in module.all_questions():
        if isinstance(q, MultipleChoice):
            wrong = next(
                (c.label for c in q.choices if c.label != q.correct_label), "?"
            )
            pool.append((q.activity_id, q.correct_label, wrong))
        elif isinstance(q, FillInTheBlank):
            if q.numeric_answer is not None:
                pool.append((q.activity_id, q.numeric_answer, q.numeric_answer + 1e6))
            else:
                pool.append((q.activity_id, None, "definitely-not-the-answer"))
        elif isinstance(q, DragAndDrop):
            correct = dict(q.pairs)
            terms = [t for t, _d in q.pairs]
            defs = [d for _t, d in q.pairs]
            wrong = dict(zip(terms, defs[1:] + defs[:1]))
            pool.append((q.activity_id, correct, wrong))
        elif isinstance(q, OrderingProblem):
            pool.append((q.activity_id, list(q.steps), list(reversed(q.steps))))
    return pool


@dataclass
class LoadReport:
    """What one load run measured."""

    learners: int
    workers: int
    requests: int
    errors: int
    retries: int
    rejected_503: int
    duration_s: float
    status_counts: dict[int, int]
    latency_us: Histogram
    route_latency_us: dict[str, Histogram]
    server_metrics: dict[str, Any] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    @staticmethod
    def _hist_row(hist: Histogram) -> dict[str, float]:
        qs = hist.percentiles((50, 90, 99))
        return {
            "count": hist.count,
            "mean_ms": hist.mean / 1e3,
            "p50_ms": qs[50] / 1e3,
            "p90_ms": qs[90] / 1e3,
            "p99_ms": qs[99] / 1e3,
            "max_ms": (hist.max or 0.0) / 1e3,
        }

    def to_dict(self) -> dict[str, Any]:
        return {
            "learners": self.learners,
            "workers": self.workers,
            "requests": self.requests,
            "errors": self.errors,
            "retries": self.retries,
            "rejected_503": self.rejected_503,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "statuses": {str(k): v for k, v in sorted(self.status_counts.items())},
            "latency": self._hist_row(self.latency_us),
            "routes": {
                route: self._hist_row(hist)
                for route, hist in sorted(self.route_latency_us.items())
            },
            "server": self.server_metrics,
        }

    def render(self) -> str:
        lat = self._hist_row(self.latency_us)
        lines = [
            f"load: {self.learners} learners, {self.workers} workers "
            f"(closed loop), {self.requests} requests in {self.duration_s:.2f}s",
            f"throughput: {self.throughput_rps:,.0f} req/s   errors: {self.errors}   "
            f"503-shed: {self.rejected_503} (retried {self.retries})",
            f"latency: p50 {lat['p50_ms']:.3f} ms   p90 {lat['p90_ms']:.3f} ms   "
            f"p99 {lat['p99_ms']:.3f} ms   max {lat['max_ms']:.3f} ms",
            f"{'route':<24} {'count':>7} {'p50 ms':>9} {'p99 ms':>9}",
        ]
        for route, hist in sorted(self.route_latency_us.items()):
            row = self._hist_row(hist)
            lines.append(
                f"{route:<24} {row['count']:>7} {row['p50_ms']:>9.3f} "
                f"{row['p99_ms']:>9.3f}"
            )
        cache = self.server_metrics.get("cache")
        if cache:
            lines.append(
                f"server cache: {cache['hits']} hits / {cache['misses']} misses "
                f"(hit rate {cache['hit_rate']:.1%})"
            )
        return "\n".join(lines)


class _Collector:
    """Thread-safe latency/status accounting shared by the workers."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.latency_us = Histogram()
        self.route_latency_us: dict[str, Histogram] = {}
        self.status_counts: dict[int, int] = {}
        self.requests = 0
        self.errors = 0
        self.retries = 0
        self.rejected = 0

    def note(self, route: str, status: int, elapsed_s: float) -> None:
        us = elapsed_s * 1e6
        with self.lock:
            self.requests += 1
            self.latency_us.add(us)
            hist = self.route_latency_us.get(route)
            if hist is None:
                hist = self.route_latency_us[route] = Histogram()
            hist.add(us)
            self.status_counts[status] = self.status_counts.get(status, 0) + 1
            if status >= 400 and status != 503:
                self.errors += 1


def _timed(collector: _Collector, client: Client, route: str, method: str,
           target: str, **kwargs: Any) -> Any:
    """One request with 503-aware retry; returns the final response."""
    for _attempt in range(MAX_RETRIES):
        t0 = time.perf_counter()
        response = client.request(method, target, **kwargs)
        collector.note(route, response.status, time.perf_counter() - t0)
        if response.status != 503:
            return response
        with collector.lock:
            collector.rejected += 1
            collector.retries += 1
        time.sleep(float(response.headers.get("retry-after", "0.01")))
    return response


def run_load(
    app: CourseApp | None = None,
    *,
    learners: int = 1000,
    workers: int = 8,
    reads: int = 2,
    submit_questions: int = 3,
    gradebook_every: int = 50,
    seed: int = 0,
) -> LoadReport:
    """Run the closed-loop workload; returns the measured report.

    Learners alternate between the registry's cohorts (multi-tenant by
    construction).  Each learner joins, reads the module ``reads`` times
    (html then text — the first read of each variant misses the cache,
    the rest hit), answers up to ``submit_questions`` questions wrong
    then right, and every ``gradebook_every``-th learner triggers an
    instructor gradebook poll of their cohort.
    """
    own_app = app is None
    if app is None:
        app = CourseApp(metrics_name=None)
    cohorts = sorted(app.registry.cohorts.values(), key=lambda c: c.slug)
    if not cohorts:
        raise ValueError("registry has no cohorts to load")
    pools = {c.slug: answer_pool(c.module) for c in cohorts}
    collector = _Collector()
    work: queue.Queue[int] = queue.Queue()
    for i in range(learners):
        work.put(i)

    def learner_session(index: int, rng: random.Random, client: Client) -> None:
        cohort = cohorts[index % len(cohorts)]
        name = f"learner-{index:06d}"
        _timed(
            collector, client, "POST /join/<code>", "POST",
            f"/join/{cohort.class_code}", json_body={"learner": name},
        )
        for r in range(reads):
            fmt = "html" if r % 2 == 0 else "text"
            _timed(
                collector, client, "GET /m/<id>", "GET",
                f"/m/{cohort.module.slug}?format={fmt}",
            )
        pool = pools[cohort.slug]
        chosen = pool if len(pool) <= submit_questions else rng.sample(
            pool, submit_questions
        )
        for activity_id, correct, wrong in chosen:
            answers = [wrong] if correct is None else [wrong, correct]
            for answer in answers:
                _timed(
                    collector, client, "POST /m/<id>/submit", "POST",
                    f"/m/{cohort.module.slug}/submit",
                    json_body={
                        "cohort": cohort.slug,
                        "learner": name,
                        "activity_id": activity_id,
                        "answer": answer,
                    },
                )
        if gradebook_every and index % gradebook_every == 0:
            _timed(
                collector, client, "GET /gradebook/<cohort>", "GET",
                f"/gradebook/{cohort.slug}",
                headers=[("x-instructor-key", cohort.instructor_key)],
            )

    def worker(worker_id: int) -> None:
        rng = random.Random(seed * 100_003 + worker_id)
        client = Client(app)
        while True:
            try:
                index = work.get_nowait()
            except queue.Empty:
                return
            try:
                learner_session(index, rng, client)
            finally:
                work.task_done()

    t0 = time.perf_counter()
    threads = [
        threading.Thread(target=worker, args=(w,), daemon=True)
        for w in range(max(1, workers))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t0

    report = LoadReport(
        learners=learners,
        workers=max(1, workers),
        requests=collector.requests,
        errors=collector.errors,
        retries=collector.retries,
        rejected_503=collector.rejected,
        duration_s=duration,
        status_counts=collector.status_counts,
        latency_us=collector.latency_us,
        route_latency_us=collector.route_latency_us,
        server_metrics=app.metrics_snapshot(),
    )
    if own_app:
        app.close()
    return report
