"""A minimal in-repo ASGI-style protocol and an in-process client.

The serving layer needs an application contract that is independent of
any particular HTTP server so the same app object can be driven three
ways: by the stdlib :class:`~http.server.ThreadingHTTPServer` adapter
(:mod:`repro.serve.httpd`), by the in-process load harness
(:mod:`repro.serve.load`), and by tests.  We implement the ASGI 3.0
*message vocabulary* — ``scope`` dicts, ``http.request`` /
``http.response.start`` / ``http.response.body`` messages — with plain
synchronous callables instead of coroutines: concurrency in this repo
comes from threads (the paper's own runtimes are thread/process based),
so an event loop would add a dependency on ``asyncio`` plumbing without
buying anything.  The shapes are kept ASGI-compatible so a real ASGI
server adapter would be a mechanical wrapper.

An application is ``app(scope, receive, send)`` where

* ``scope`` — ``{"type": "http", "method", "path", "query_string",
  "headers": [(name, value), ...]}`` (names lower-cased ``str``);
* ``receive()`` returns ``{"type": "http.request", "body": bytes,
  "more_body": False}``;
* ``send(message)`` accepts ``http.response.start`` then
  ``http.response.body`` messages.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable
from urllib.parse import parse_qs, unquote, urlsplit

__all__ = [
    "HTTPError",
    "Request",
    "Response",
    "json_response",
    "error_response",
    "run_app",
    "Client",
    "ClientResponse",
]


class HTTPError(Exception):
    """Raise anywhere under the error-envelope middleware to send a
    structured JSON error instead of a stack trace.

    ``code`` is a stable machine-readable slug (``"unknown_module"``,
    ``"overloaded"``, ...); ``retry_after`` (seconds) becomes a
    ``Retry-After`` header — the backpressure middleware sets it on 503s.
    """

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


@dataclass
class Request:
    """Parsed view of one HTTP request (scope + fully-read body)."""

    method: str
    path: str
    query: dict[str, list[str]]
    headers: dict[str, str]
    body: bytes

    @classmethod
    def from_scope(cls, scope: dict[str, Any], body: bytes) -> "Request":
        return cls(
            method=scope["method"].upper(),
            path=scope["path"],
            query=parse_qs(scope.get("query_string", "")),
            headers={k.lower(): v for k, v in scope.get("headers", [])},
            body=body,
        )

    def param(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[0] if values else default

    def json(self) -> Any:
        """Parse the body as JSON; malformed input is a 400, not a 500."""
        if not self.body:
            raise HTTPError(400, "bad_request", "expected a JSON body")
        try:
            return json.loads(self.body)
        except (ValueError, UnicodeDecodeError) as exc:
            raise HTTPError(400, "bad_request", f"malformed JSON body: {exc}") from exc


@dataclass
class Response:
    """One complete HTTP response (the adapter writes it to the wire)."""

    status: int = 200
    headers: list[tuple[str, str]] = field(default_factory=list)
    body: bytes = b""

    def header(self, name: str) -> str | None:
        name = name.lower()
        for key, value in self.headers:
            if key.lower() == name:
                return value
        return None

    def json(self) -> Any:
        return json.loads(self.body)


def json_response(
    payload: Any, status: int = 200, headers: Iterable[tuple[str, str]] = ()
) -> Response:
    body = json.dumps(payload, indent=None, separators=(",", ":")).encode()
    return Response(
        status=status,
        headers=[("content-type", "application/json"), *headers],
        body=body,
    )


def error_response(exc: HTTPError) -> Response:
    """The structured error envelope every failure path goes through."""
    headers: list[tuple[str, str]] = []
    if exc.retry_after is not None:
        headers.append(("retry-after", f"{exc.retry_after:g}"))
    return json_response(
        {"error": {"status": exc.status, "code": exc.code, "message": exc.message}},
        status=exc.status,
        headers=headers,
    )


def send_response(send: Callable[[dict], None], response: Response) -> None:
    """Emit a built :class:`Response` as ASGI response messages."""
    send(
        {
            "type": "http.response.start",
            "status": response.status,
            "headers": list(response.headers),
        }
    )
    send({"type": "http.response.body", "body": response.body, "more_body": False})


def read_body(receive: Callable[[], dict]) -> bytes:
    """Drain ``http.request`` messages into one body byte string."""
    chunks: list[bytes] = []
    while True:
        message = receive()
        if message["type"] != "http.request":  # pragma: no cover - defensive
            raise ValueError(f"unexpected ASGI message {message['type']!r}")
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            break
    return b"".join(chunks)


def run_app(
    app: Callable,
    method: str,
    target: str,
    *,
    body: bytes = b"",
    headers: Iterable[tuple[str, str]] = (),
) -> Response:
    """Drive one request through an app and collect the response.

    This is the whole in-process transport: the load harness and the test
    client call it directly, so thousands of simulated learners exercise
    the exact middleware stack the socket server runs, minus the kernel.
    """
    split = urlsplit(target)
    scope = {
        "type": "http",
        "method": method.upper(),
        "path": unquote(split.path),
        "query_string": split.query,
        "headers": [(k.lower(), v) for k, v in headers],
    }
    request_messages = [{"type": "http.request", "body": body, "more_body": False}]

    def receive() -> dict:
        return request_messages.pop(0)

    collected: dict[str, Any] = {"status": None, "headers": [], "body": []}

    def send(message: dict) -> None:
        if message["type"] == "http.response.start":
            collected["status"] = message["status"]
            collected["headers"] = list(message.get("headers", []))
        elif message["type"] == "http.response.body":
            collected["body"].append(message.get("body", b""))

    app(scope, receive, send)
    if collected["status"] is None:
        raise RuntimeError("app completed without sending a response")
    return Response(
        status=collected["status"],
        headers=collected["headers"],
        body=b"".join(collected["body"]),
    )


@dataclass
class ClientResponse:
    """What :class:`Client` returns: status, headers, parsed body."""

    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body)

    @property
    def text(self) -> str:
        return self.body.decode()


class Client:
    """In-process HTTP client over :func:`run_app` (no sockets).

    ``headers`` set on the client ride along on every request (the load
    harness uses this for instructor keys).
    """

    def __init__(self, app: Callable, headers: Iterable[tuple[str, str]] = ()) -> None:
        self.app = app
        self.headers = list(headers)

    def request(
        self,
        method: str,
        target: str,
        *,
        json_body: Any = None,
        headers: Iterable[tuple[str, str]] = (),
    ) -> ClientResponse:
        body = b""
        extra = list(headers)
        if json_body is not None:
            body = json.dumps(json_body).encode()
            extra.append(("content-type", "application/json"))
        response = run_app(
            self.app, method, target, body=body, headers=[*self.headers, *extra]
        )
        return ClientResponse(
            status=response.status,
            headers={k.lower(): v for k, v in response.headers},
            body=response.body,
        )

    def get(self, target: str, **kwargs: Any) -> ClientResponse:
        return self.request("GET", target, **kwargs)

    def post(self, target: str, **kwargs: Any) -> ClientResponse:
        return self.request("POST", target, **kwargs)
