"""LRU cache for rendered modules with explicit invalidation.

Rendering a full handout walks the whole module tree and escapes every
block — cheap once, expensive at a few thousand requests per second.
The cache keys on ``(module_id, variant)`` where ``variant`` encodes the
format and optional section, holds the rendered string, and is bounded
by an LRU policy.  Invalidation is *explicit*: the registry's module-edit
seam calls :meth:`invalidate` with the module id, dropping every variant
of that module, so a stale render can outlive an edit only if nobody
told the cache (which is the bug the serving tests pin).

Hit/miss/eviction/invalidation counters are :class:`repro.obs.Counter`
instances, surfaced through the app's metrics provider so
``repro.obs.snapshot_providers()`` and ``GET /metricz`` see them.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable

from ..obs.metrics import Counter

__all__ = ["RenderCache"]


class RenderCache:
    """Thread-safe bounded LRU of rendered module variants."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[tuple[str, str], str] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = Counter()
        self.misses = Counter()
        self.evictions = Counter()
        self.invalidations = Counter()

    def get(self, module_id: str, variant: str, render: Callable[[], str]) -> str:
        """Return the cached render or compute, store, and return it.

        The render runs outside the lock: a slow render must not stall
        every other module's hits.  Two racing misses for the same key
        both render; last write wins — acceptable because renders are
        deterministic for a given module version.
        """
        key = (module_id, variant)
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits.inc()
                return cached
            self.misses.inc()
        rendered = render()
        with self._lock:
            self._entries[key] = rendered
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions.inc()
        return rendered

    def invalidate(self, module_id: str) -> int:
        """Drop every cached variant of one module; returns entries dropped."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == module_id]
            for key in stale:
                del self._entries[key]
            if stale:
                self.invalidations.inc(len(stale))
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            size = len(self._entries)
        hits, misses = self.hits.count, self.misses.count
        lookups = hits + misses
        return {
            "size": size,
            "capacity": self.capacity,
            "hits": hits,
            "misses": misses,
            "evictions": self.evictions.count,
            "invalidations": self.invalidations.count,
            "hit_rate": hits / lookups if lookups else 0.0,
        }
