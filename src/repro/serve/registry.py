"""Multi-tenant cohort registry: class codes, modules, per-cohort stores.

The tenancy model follows the paper's delivery setup (and the classhub
shape): *modules* are shared content keyed by slug; a *cohort* is one
class section working through one module, addressed by a human-friendly
class code (``POST /join/PI2020``) the instructor hands out.  Each
cohort owns an isolated :class:`~repro.serve.store.ProgressStore`, so
tenants never see each other's gradebooks, and a per-cohort
``instructor_key`` gates the instructor surfaces.

Module edits go through :meth:`CohortRegistry.edit_module`, which bumps
the module's version and notifies listeners — that is the explicit
invalidation seam the rendered-module cache subscribes to.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

from ..runestone.module import Module
from .store import Backend, ProgressStore

__all__ = ["Cohort", "CohortRegistry", "demo_registry"]

#: Demo instructor key; real deployments pass their own per cohort.
DEMO_INSTRUCTOR_KEY = "instructor"


@dataclass
class Cohort:
    """One tenant: a class section enrolled via one class code."""

    slug: str
    class_code: str
    module: Module
    store: ProgressStore
    instructor_key: str = DEMO_INSTRUCTOR_KEY
    joined: int = 0

    def to_dict(self) -> dict:
        return {
            "slug": self.slug,
            "class_code": self.class_code,
            "module": self.module.slug,
            "learners": len(self.store.learners()),
        }


@dataclass
class CohortRegistry:
    """All modules and cohorts one server instance is serving."""

    modules: dict[str, Module] = field(default_factory=dict)
    cohorts: dict[str, Cohort] = field(default_factory=dict)
    module_versions: dict[str, int] = field(default_factory=dict)
    _by_code: dict[str, str] = field(default_factory=dict)
    _edit_listeners: list[Callable[[str], None]] = field(default_factory=list)
    _lock: threading.RLock = field(default_factory=threading.RLock, repr=False)

    # -------------------------------------------------------------- modules
    def add_module(self, module: Module) -> None:
        with self._lock:
            if module.slug in self.modules:
                raise ValueError(f"module {module.slug!r} already registered")
            self.modules[module.slug] = module
            self.module_versions[module.slug] = 1

    def module(self, module_id: str) -> Module:
        try:
            return self.modules[module_id]
        except KeyError:
            raise KeyError(f"unknown module {module_id!r}") from None

    def module_version(self, module_id: str) -> int:
        return self.module_versions.get(module_id, 0)

    def on_edit(self, listener: Callable[[str], None]) -> None:
        """Subscribe to module edits (the cache registers its invalidator)."""
        self._edit_listeners.append(listener)

    def edit_module(
        self, module_id: str, edit: Callable[[Module], None] | None = None
    ) -> int:
        """Apply an authoring edit and broadcast the invalidation.

        ``edit`` mutates the module in place (may be ``None`` when the
        caller already mutated it); either way the version bumps and
        every listener hears about it.  Returns the new version.
        """
        with self._lock:
            module = self.module(module_id)
            if edit is not None:
                edit(module)
            self.module_versions[module_id] = self.module_version(module_id) + 1
            version = self.module_versions[module_id]
        for listener in list(self._edit_listeners):
            listener(module_id)
        return version

    # -------------------------------------------------------------- cohorts
    def create_cohort(
        self,
        slug: str,
        class_code: str,
        module_id: str,
        *,
        backend: Backend | None = None,
        instructor_key: str = DEMO_INSTRUCTOR_KEY,
    ) -> Cohort:
        with self._lock:
            if slug in self.cohorts:
                raise ValueError(f"cohort {slug!r} already exists")
            code = class_code.strip().upper()
            if code in self._by_code:
                raise ValueError(f"class code {class_code!r} already in use")
            module = self.module(module_id)
            cohort = Cohort(
                slug=slug,
                class_code=code,
                module=module,
                store=ProgressStore(module, backend),
                instructor_key=instructor_key,
            )
            self.cohorts[slug] = cohort
            self._by_code[code] = slug
            return cohort

    def cohort(self, slug: str) -> Cohort:
        try:
            return self.cohorts[slug]
        except KeyError:
            raise KeyError(f"unknown cohort {slug!r}") from None

    def by_code(self, class_code: str) -> Cohort:
        slug = self._by_code.get(class_code.strip().upper())
        if slug is None:
            raise KeyError(f"no cohort with class code {class_code!r}")
        return self.cohorts[slug]

    def replay_all(self) -> int:
        """Rebuild every cohort from its backend log (server boot path)."""
        return sum(c.store.replay() for c in self.cohorts.values())

    def to_dict(self) -> dict:
        return {
            "modules": {
                slug: {"title": m.title, "version": self.module_version(slug)}
                for slug, m in sorted(self.modules.items())
            },
            "cohorts": [c.to_dict() for _slug, c in sorted(self.cohorts.items())],
        }


def demo_registry(
    *,
    backend: str | None = None,
    data_dir: str | None = None,
    instructor_key: str = DEMO_INSTRUCTOR_KEY,
) -> CohortRegistry:
    """The server's default tenancy: both shipped modules, two cohorts.

    Mirrors the paper's two workshop tracks — the Raspberry Pi shared-memory
    morning (class code ``PI2020``) and the distributed-memory afternoon
    (``MPI2020``).
    """
    from ..runestone import build_distributed_module, build_raspberry_pi_module
    from .store import open_backend

    registry = CohortRegistry()
    pi = build_raspberry_pi_module()
    mpi = build_distributed_module()
    registry.add_module(pi)
    registry.add_module(mpi)
    registry.create_cohort(
        "pi-2020",
        "PI2020",
        pi.slug,
        backend=open_backend(backend, data_dir, "pi-2020"),
        instructor_key=instructor_key,
    )
    registry.create_cohort(
        "mpi-2020",
        "MPI2020",
        mpi.slug,
        backend=open_backend(backend, data_dir, "mpi-2020"),
        instructor_key=instructor_key,
    )
    return registry
