"""Robustness middleware: deadlines, backpressure, envelopes, latency.

The stack wraps the router outside-in as::

    Latency(ErrorEnvelope(Deadline(Backpressure(router))))

* :class:`Latency` times every request into power-of-two
  :class:`repro.obs.Histogram` s (microseconds), per route template and
  overall, plus per-status counters — the serving layer's p50/p99 come
  straight from :meth:`Histogram.percentile`.
* :class:`ErrorEnvelope` turns any :class:`~repro.serve.asgi.HTTPError`
  (and any unexpected exception) into the structured JSON error envelope,
  so a handler bug is a 500 document, never a dropped connection.
* :class:`Deadline` stamps ``scope["deadline"]`` (a monotonic instant);
  handlers and the queue respect it via :func:`check_deadline`, and work
  that finishes after its deadline is answered 504 — the client has
  already given up, and saying so keeps tail latency honest.
* :class:`Backpressure` bounds concurrency with an admission gate:
  ``max_inflight`` requests run, up to ``max_queue`` wait (no longer than
  their deadline), and everything beyond that is refused immediately with
  ``503`` + ``Retry-After`` — bounded queues instead of unbounded
  collapse.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..obs.metrics import Counter, Histogram
from .asgi import HTTPError, error_response, send_response

__all__ = [
    "ServeMetrics",
    "Latency",
    "ErrorEnvelope",
    "Deadline",
    "Backpressure",
    "check_deadline",
]

App = Callable[[dict, Callable, Callable], None]


class ServeMetrics:
    """All counters/histograms one app instance exports.

    Latency is recorded in **microseconds** so the power-of-two buckets
    resolve the interesting 100 µs – 100 ms band; snapshot values are
    converted to milliseconds for humans.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.latency_us = Histogram()
        self.route_latency_us: dict[str, Histogram] = {}
        self.status_counts: dict[int, Counter] = {}
        self.requests = Counter()
        self.deadline_hits = Counter()
        self.rejected = Counter()
        self.queued = Counter()
        self.inflight = 0
        self.peak_inflight = 0
        self.peak_queue = 0

    def observe(self, route: str, status: int, elapsed_s: float) -> None:
        us = elapsed_s * 1e6
        with self._lock:
            self.requests.inc()
            self.latency_us.add(us)
            hist = self.route_latency_us.get(route)
            if hist is None:
                hist = self.route_latency_us[route] = Histogram()
            hist.add(us)
            counter = self.status_counts.get(status)
            if counter is None:
                counter = self.status_counts[status] = Counter()
            counter.inc()

    @staticmethod
    def _latency_ms(hist: Histogram) -> dict[str, float]:
        quantiles = hist.percentiles((50, 90, 99))
        return {
            "count": hist.count,
            "mean_ms": hist.mean / 1e3,
            "p50_ms": quantiles[50] / 1e3,
            "p90_ms": quantiles[90] / 1e3,
            "p99_ms": quantiles[99] / 1e3,
            "max_ms": (hist.max or 0.0) / 1e3,
        }

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "requests": self.requests.count,
                "statuses": {
                    str(code): c.count
                    for code, c in sorted(self.status_counts.items())
                },
                "latency": self._latency_ms(self.latency_us),
                "routes": {
                    route: self._latency_ms(hist)
                    for route, hist in sorted(self.route_latency_us.items())
                },
                "backpressure": {
                    "inflight": self.inflight,
                    "peak_inflight": self.peak_inflight,
                    "peak_queue": self.peak_queue,
                    "queued_total": self.queued.count,
                    "rejected_total": self.rejected.count,
                },
                "deadline_exceeded": self.deadline_hits.count,
            }


def check_deadline(scope: dict) -> None:
    """Raise 504 if this request's deadline has already passed."""
    deadline = scope.get("deadline")
    if deadline is not None and time.monotonic() > deadline:
        raise HTTPError(
            504, "deadline_exceeded", "request exceeded its processing deadline"
        )


class Latency:
    """Outermost: time everything, including rejections and errors."""

    def __init__(self, app: App, metrics: ServeMetrics) -> None:
        self.app = app
        self.metrics = metrics

    def __call__(self, scope: dict, receive: Callable, send: Callable) -> None:
        t0 = time.perf_counter()
        status_box = {"status": 0}

        def capturing_send(message: dict) -> None:
            if message["type"] == "http.response.start":
                status_box["status"] = message["status"]
            send(message)

        try:
            self.app(scope, receive, capturing_send)
        finally:
            route = scope.get("route", f"{scope.get('method', '?')} {scope.get('path', '?')}")
            self.metrics.observe(
                route, status_box["status"], time.perf_counter() - t0
            )


class ErrorEnvelope:
    """Catch everything; answer with the structured JSON envelope."""

    def __init__(self, app: App, metrics: ServeMetrics) -> None:
        self.app = app
        self.metrics = metrics

    def __call__(self, scope: dict, receive: Callable, send: Callable) -> None:
        try:
            self.app(scope, receive, send)
        except HTTPError as exc:
            if exc.status == 504:
                self.metrics.deadline_hits.inc()
            send_response(send, error_response(exc))
        except Exception as exc:  # noqa: BLE001 - the envelope is the point
            send_response(
                send,
                error_response(
                    HTTPError(
                        500,
                        "internal",
                        f"unhandled {type(exc).__name__}: {exc}",
                    )
                ),
            )


class Deadline:
    """Stamp the per-request deadline; flag work that finished too late."""

    def __init__(self, app: App, timeout_s: float = 2.0) -> None:
        self.app = app
        self.timeout_s = timeout_s

    def __call__(self, scope: dict, receive: Callable, send: Callable) -> None:
        scope["deadline"] = time.monotonic() + self.timeout_s

        # A synchronous handler cannot be interrupted mid-flight, so
        # enforcement happens at the seams: check_deadline() inside the
        # router, and this gate at the moment the response starts — a
        # late response is suppressed (the raise lands in the envelope,
        # which answers 504) rather than sent to a client that gave up.
        def gated_send(message: dict) -> None:
            if message["type"] == "http.response.start":
                check_deadline(scope)
            send(message)

        self.app(scope, receive, gated_send)


class Backpressure:
    """Bounded admission: run, wait (bounded), or refuse with Retry-After.

    ``max_inflight`` requests execute concurrently; up to ``max_queue``
    more wait on a condition variable (never past their deadline).  Any
    arrival beyond that is answered ``503 overloaded`` immediately —
    the load shedding that keeps a saturated server's latency bounded
    instead of letting the queue grow without limit.
    """

    def __init__(
        self,
        app: App,
        metrics: ServeMetrics,
        *,
        max_inflight: int = 8,
        max_queue: int = 32,
        retry_after_s: float = 0.05,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be positive")
        if max_queue < 0:
            raise ValueError("max_queue must be non-negative")
        self.app = app
        self.metrics = metrics
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.retry_after_s = retry_after_s
        self._cond = threading.Condition()
        self._inflight = 0
        self._waiting = 0

    def _overloaded(self) -> HTTPError:
        return HTTPError(
            503,
            "overloaded",
            f"server is at capacity ({self.max_inflight} in flight, "
            f"{self.max_queue} queued); retry shortly",
            retry_after=self.retry_after_s,
        )

    def _admit(self, scope: dict) -> None:
        with self._cond:
            if self._inflight < self.max_inflight:
                self._inflight += 1
                self._note_depths()
                return
            if self._waiting >= self.max_queue:
                self.metrics.rejected.inc()
                raise self._overloaded()
            self._waiting += 1
            self.metrics.queued.inc()
            self._note_depths()
            try:
                while self._inflight >= self.max_inflight:
                    deadline = scope.get("deadline")
                    timeout = None if deadline is None else deadline - time.monotonic()
                    if timeout is not None and timeout <= 0:
                        self.metrics.rejected.inc()
                        raise self._overloaded()
                    if not self._cond.wait(timeout):
                        self.metrics.rejected.inc()
                        raise self._overloaded()
                self._inflight += 1
                self._note_depths()
            finally:
                self._waiting -= 1

    def _note_depths(self) -> None:
        m = self.metrics
        m.inflight = self._inflight
        m.peak_inflight = max(m.peak_inflight, self._inflight)
        m.peak_queue = max(m.peak_queue, self._waiting)

    def _release(self) -> None:
        with self._cond:
            self._inflight -= 1
            self.metrics.inflight = self._inflight
            self._cond.notify()

    def __call__(self, scope: dict, receive: Callable, send: Callable) -> None:
        self._admit(scope)
        try:
            self.app(scope, receive, send)
        finally:
            self._release()

    def depths(self) -> tuple[int, int]:
        """(inflight, queued) — for tests and the metrics snapshot."""
        with self._cond:
            return self._inflight, self._waiting
