"""Stdlib HTTP adapter: ThreadingHTTPServer driving the ASGI-style app.

The hermetic deployment path: no third-party server, just
:class:`http.server.ThreadingHTTPServer` (one thread per connection)
translating wire requests into the scope/receive/send protocol from
:mod:`repro.serve.asgi`.  Concurrency control does **not** live here —
the app's backpressure middleware bounds inflight work, so a thundering
herd of connection threads queues (briefly) or gets 503 + Retry-After
like any other client.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import urlsplit

from .asgi import run_app

__all__ = ["CourseServer", "make_server", "serve_forever", "start_background"]


class _AppHandler(BaseHTTPRequestHandler):
    """Translate one wire request into one app call."""

    protocol_version = "HTTP/1.1"
    server: "CourseServer"

    # Quiet by default: per-request lines go through the server's log hook.
    def log_message(self, fmt: str, *args) -> None:
        if self.server.verbose:  # pragma: no cover - manual serving only
            super().log_message(fmt, *args)

    def _dispatch(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        split = urlsplit(self.path)
        target = split.path + (f"?{split.query}" if split.query else "")
        try:
            response = run_app(
                self.server.app,
                self.command,
                target,
                body=body,
                headers=[(k, v) for k, v in self.headers.items()],
            )
        except Exception as exc:  # pragma: no cover - app envelope catches first
            self.send_error(500, explain=str(exc))
            return
        self.send_response(response.status)
        for name, value in response.headers:
            self.send_header(name, value)
        self.send_header("Content-Length", str(len(response.body)))
        self.end_headers()
        self.wfile.write(response.body)

    do_GET = _dispatch
    do_POST = _dispatch
    do_HEAD = _dispatch
    do_DELETE = _dispatch


class CourseServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer bound to one app instance."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], app: Callable, verbose: bool = False):
        super().__init__(address, _AppHandler)
        self.app = app
        self.verbose = verbose


def make_server(
    app: Callable, host: str = "127.0.0.1", port: int = 0, *, verbose: bool = False
) -> CourseServer:
    """Bind (port 0 picks a free one); caller starts/stops it."""
    return CourseServer((host, port), app, verbose=verbose)


def serve_forever(
    app: Callable, host: str = "127.0.0.1", port: int = 8642, *, verbose: bool = False
) -> None:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop)."""
    server = make_server(app, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port}")
    print("routes: /healthz /readyz /metricz /cohorts /join/<code> "
          "/m/<id> /m/<id>/submit /gradebook/<cohort>")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.shutdown()
        server.server_close()


def start_background(
    app: Callable, host: str = "127.0.0.1", port: int = 0
) -> tuple[CourseServer, threading.Thread]:
    """Start a server on a daemon thread; returns (server, thread).

    Used by tests and the CI smoke job helper to boot and tear down a
    real socket server inside one process.
    """
    server = make_server(app, host, port)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread
