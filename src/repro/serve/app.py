"""The course platform application: routes over the Runestone engine.

:class:`CourseApp` is the served surface of :mod:`repro.runestone` — the
JSON API a remote cohort hits from a browser, assembled from the tenancy
registry, the rendered-module cache, and the robustness middleware:

========  ==================================  ====================================
method    path                                 purpose
========  ==================================  ====================================
GET       ``/healthz``                         liveness (process is up)
GET       ``/readyz``                          readiness (registry replayed/warm)
GET       ``/metricz``                         live metrics snapshot
POST      ``/join/<class_code>``               enroll a learner into a cohort
GET       ``/m/<module_id>``                   rendered module (cached)
POST      ``/m/<module_id>/submit``            grade + record one answer
POST      ``/m/<module_id>/edit``              authoring edit → cache invalidation
GET       ``/gradebook/<cohort>``              instructor gradebook (keyed)
GET       ``/cohorts``                         tenancy overview
========  ==================================  ====================================

Every response is JSON; every failure is the structured error envelope
with a stable ``code``.  Instructor surfaces require the cohort's key in
the ``x-instructor-key`` header.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from ..obs.metrics import register_provider, unregister_provider
from ..runestone.render import render_html, render_section_text, render_text
from .asgi import (
    HTTPError,
    Request,
    Response,
    json_response,
    read_body,
    send_response,
)
from .cache import RenderCache
from .middleware import (
    Backpressure,
    Deadline,
    ErrorEnvelope,
    Latency,
    ServeMetrics,
    check_deadline,
)
from .registry import CohortRegistry, demo_registry

__all__ = ["CourseApp"]

_FORMATS: dict[str, Callable] = {"text": render_text, "html": render_html}


class CourseApp:
    """One served course platform instance (an ASGI-style callable)."""

    def __init__(
        self,
        registry: CohortRegistry | None = None,
        *,
        cache_capacity: int = 64,
        max_inflight: int = 8,
        max_queue: int = 32,
        deadline_s: float = 2.0,
        metrics_name: str | None = "serve",
        warm: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else demo_registry()
        self.cache = RenderCache(cache_capacity)
        self.registry.on_edit(self.cache.invalidate)
        self.metrics = ServeMetrics()
        self.started_at = time.time()
        self.ready = False
        self.metrics_name = metrics_name

        self.backpressure = Backpressure(
            self._route,
            self.metrics,
            max_inflight=max_inflight,
            max_queue=max_queue,
        )
        stack = Deadline(self.backpressure, timeout_s=deadline_s)
        stack = ErrorEnvelope(stack, self.metrics)
        self._stack = Latency(stack, self.metrics)

        if metrics_name:
            register_provider(metrics_name, self.metrics_snapshot)

        # Boot sequence: replay persisted cohort logs, optionally pre-render
        # the modules into the cache, then declare readiness.
        self.replayed_records = self.registry.replay_all()
        if warm:
            for module_id in self.registry.modules:
                self._rendered(module_id, "html")
        self.ready = True

    # ----------------------------------------------------------------- ASGI
    def __call__(self, scope: dict, receive: Callable, send: Callable) -> None:
        if scope.get("type") != "http":  # pragma: no cover - defensive
            raise ValueError(f"unsupported scope type {scope.get('type')!r}")
        self._stack(scope, receive, send)

    def close(self) -> None:
        """Unhook the process-wide metrics provider (tests build many apps)."""
        if self.metrics_name:
            unregister_provider(self.metrics_name)

    def metrics_snapshot(self) -> dict[str, Any]:
        snap = self.metrics.snapshot()
        snap["cache"] = self.cache.stats()
        snap["uptime_s"] = time.time() - self.started_at
        return snap

    # --------------------------------------------------------------- router
    def _route(self, scope: dict, receive: Callable, send: Callable) -> None:
        request = Request.from_scope(scope, read_body(receive))
        segments = [s for s in request.path.split("/") if s]
        method = request.method
        check_deadline(scope)

        handler: Callable[..., Response] | None = None
        args: tuple = ()
        route = ""
        if method == "GET" and segments == ["healthz"]:
            route, handler = "GET /healthz", self._healthz
        elif method == "GET" and segments == ["readyz"]:
            route, handler = "GET /readyz", self._readyz
        elif method == "GET" and segments == ["metricz"]:
            route, handler = "GET /metricz", self._metricz
        elif method == "GET" and segments == ["cohorts"]:
            route, handler = "GET /cohorts", self._cohorts
        elif method == "POST" and len(segments) == 2 and segments[0] == "join":
            route, handler, args = "POST /join/<code>", self._join, (segments[1],)
        elif method == "GET" and len(segments) == 2 and segments[0] == "m":
            route, handler, args = "GET /m/<id>", self._read_module, (segments[1],)
        elif (
            method == "POST"
            and len(segments) == 3
            and segments[0] == "m"
            and segments[2] == "submit"
        ):
            route, handler, args = "POST /m/<id>/submit", self._submit, (segments[1],)
        elif (
            method == "POST"
            and len(segments) == 3
            and segments[0] == "m"
            and segments[2] == "edit"
        ):
            route, handler, args = "POST /m/<id>/edit", self._edit, (segments[1],)
        elif method == "GET" and len(segments) == 2 and segments[0] == "gradebook":
            route, handler, args = (
                "GET /gradebook/<cohort>",
                self._gradebook,
                (segments[1],),
            )

        if handler is None:
            scope["route"] = f"{method} (unrouted)"
            raise HTTPError(404, "unknown_route", f"no route for {method} {request.path}")
        scope["route"] = route
        response = handler(request, *args)
        check_deadline(scope)
        send_response(send, response)

    # ------------------------------------------------------------- handlers
    def _healthz(self, _request: Request) -> Response:
        return json_response(
            {"status": "ok", "uptime_s": time.time() - self.started_at}
        )

    def _readyz(self, _request: Request) -> Response:
        if not self.ready:
            raise HTTPError(503, "not_ready", "registry is still loading")
        return json_response(
            {
                "status": "ready",
                "modules": len(self.registry.modules),
                "cohorts": len(self.registry.cohorts),
                "replayed_records": self.replayed_records,
            }
        )

    def _metricz(self, _request: Request) -> Response:
        return json_response(self.metrics_snapshot())

    def _cohorts(self, _request: Request) -> Response:
        return json_response(self.registry.to_dict())

    def _join(self, request: Request, class_code: str) -> Response:
        try:
            cohort = self.registry.by_code(class_code)
        except KeyError:
            raise HTTPError(
                404, "unknown_class_code", f"no cohort with class code {class_code!r}"
            ) from None
        payload = self._json_object(request)
        learner = payload.get("learner")
        if not isinstance(learner, str) or not learner.strip():
            raise HTTPError(
                400, "bad_request", "body must include a non-empty 'learner' string"
            )
        try:
            _progress, created = cohort.store.enroll(learner.strip())
        except ValueError as exc:
            raise HTTPError(400, "bad_request", str(exc)) from None
        if created:
            cohort.joined += 1
        return json_response(
            {
                "cohort": cohort.slug,
                "module": cohort.module.slug,
                "learner": learner.strip(),
                "already_enrolled": not created,
            },
            status=200 if not created else 201,
        )

    def _rendered(self, module_id: str, fmt: str, section: str | None = None) -> str:
        module = self.registry.module(module_id)
        version = self.registry.module_version(module_id)
        variant = f"v{version}:{fmt}" + (f":s{section}" if section else "")
        if section is not None:
            found = module.find_section(section)
            return self.cache.get(
                module_id, variant, lambda: render_section_text(found)
            )
        return self.cache.get(module_id, variant, lambda: _FORMATS[fmt](module))

    def _read_module(self, request: Request, module_id: str) -> Response:
        fmt = request.param("format", "html")
        if fmt not in _FORMATS:
            raise HTTPError(
                400, "bad_format", f"format must be one of {sorted(_FORMATS)}"
            )
        try:
            module = self.registry.module(module_id)
        except KeyError as exc:
            raise HTTPError(404, "unknown_module", exc.args[0]) from None
        section = request.param("section")
        try:
            rendered = self._rendered(module_id, fmt, section)
        except KeyError as exc:
            raise HTTPError(404, "unknown_section", exc.args[0]) from None
        return json_response(
            {
                "module": module.slug,
                "title": module.title,
                "version": self.registry.module_version(module_id),
                "format": fmt,
                "section": section,
                "activities": [q.activity_id for q in module.all_questions()],
                "rendered": rendered,
            }
        )

    def _submit(self, request: Request, module_id: str) -> Response:
        payload = self._json_object(request)
        for key in ("cohort", "learner", "activity_id"):
            if not isinstance(payload.get(key), str) or not payload[key]:
                raise HTTPError(
                    400,
                    "bad_request",
                    f"body must include a non-empty {key!r} string",
                )
        if "answer" not in payload:
            raise HTTPError(400, "bad_request", "body must include 'answer'")
        try:
            cohort = self.registry.cohort(payload["cohort"])
        except KeyError as exc:
            raise HTTPError(404, "unknown_cohort", exc.args[0]) from None
        if cohort.module.slug != module_id:
            raise HTTPError(
                404,
                "unknown_module",
                f"cohort {cohort.slug!r} is not working through {module_id!r}",
            )
        try:
            result = cohort.store.submit(
                payload["learner"], payload["activity_id"], payload["answer"]
            )
        except KeyError as exc:
            code = (
                "unknown_learner"
                if "not enrolled" in exc.args[0]
                else "unknown_activity"
            )
            raise HTTPError(404, code, exc.args[0]) from None
        except (TypeError, ValueError, AttributeError) as exc:
            # Grading rejected the payload shape outright (untrusted input).
            raise HTTPError(
                400, "bad_answer", f"answer is not gradeable: {exc}"
            ) from None
        return json_response(
            {
                "activity_id": result.activity_id,
                "correct": result.correct,
                "score": result.score,
                "feedback": result.feedback,
            }
        )

    def _edit(self, request: Request, module_id: str) -> Response:
        self._require_instructor(request)
        try:
            version = self.registry.edit_module(module_id)
        except KeyError as exc:
            raise HTTPError(404, "unknown_module", exc.args[0]) from None
        return json_response({"module": module_id, "version": version})

    def _gradebook(self, request: Request, slug: str) -> Response:
        try:
            cohort = self.registry.cohort(slug)
        except KeyError as exc:
            raise HTTPError(404, "unknown_cohort", exc.args[0]) from None
        key = request.headers.get("x-instructor-key")
        if key != cohort.instructor_key:
            raise HTTPError(
                403, "forbidden", "gradebook requires the cohort's instructor key"
            )
        return json_response(cohort.store.gradebook_report())

    # -------------------------------------------------------------- helpers
    def _require_instructor(self, request: Request) -> None:
        key = request.headers.get("x-instructor-key")
        if not key or all(
            key != c.instructor_key for c in self.registry.cohorts.values()
        ):
            raise HTTPError(403, "forbidden", "requires an instructor key")

    @staticmethod
    def _json_object(request: Request) -> dict[str, Any]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HTTPError(400, "bad_request", "body must be a JSON object")
        return payload
