"""``repro.serve`` — the Runestone course platform as a real service.

The paper's modules were *served* to remote cohorts; this package is that
serving layer grown from the in-process engine in :mod:`repro.runestone`:

* :mod:`~repro.serve.asgi` — a minimal in-repo ASGI-style protocol, JSON
  helpers, and an in-process client;
* :mod:`~repro.serve.app` — :class:`CourseApp`, the route surface
  (join/read/submit/gradebook/healthz/readyz/metricz);
* :mod:`~repro.serve.registry` — multi-tenant cohorts behind class codes;
* :mod:`~repro.serve.store` — per-cohort progress stores over pluggable
  persistence (memory, append-only JSONL with snapshot/replay);
* :mod:`~repro.serve.cache` — the LRU rendered-module cache with explicit
  invalidation and obs-visible hit/miss counters;
* :mod:`~repro.serve.middleware` — deadlines, bounded-queue backpressure
  (503 + Retry-After), error envelopes, request-latency histograms;
* :mod:`~repro.serve.httpd` — the stdlib ThreadingHTTPServer adapter
  (``repro serve``);
* :mod:`~repro.serve.load` — the closed-loop load harness
  (``repro serve-load`` and the ``course_serve_*`` bench kernels).

See ``docs/serving.md`` for the guided tour.
"""

from .app import CourseApp
from .asgi import Client, ClientResponse, HTTPError, Request, Response, run_app
from .cache import RenderCache
from .httpd import CourseServer, make_server, serve_forever, start_background
from .load import LoadReport, answer_pool, run_load
from .middleware import (
    Backpressure,
    Deadline,
    ErrorEnvelope,
    Latency,
    ServeMetrics,
    check_deadline,
)
from .registry import Cohort, CohortRegistry, demo_registry
from .store import JsonlBackend, MemoryBackend, ProgressStore, open_backend

__all__ = [
    "CourseApp",
    "Client",
    "ClientResponse",
    "HTTPError",
    "Request",
    "Response",
    "run_app",
    "RenderCache",
    "CourseServer",
    "make_server",
    "serve_forever",
    "start_background",
    "LoadReport",
    "answer_pool",
    "run_load",
    "Backpressure",
    "Deadline",
    "ErrorEnvelope",
    "Latency",
    "ServeMetrics",
    "check_deadline",
    "Cohort",
    "CohortRegistry",
    "demo_registry",
    "JsonlBackend",
    "MemoryBackend",
    "ProgressStore",
    "open_backend",
]
