"""Per-cohort progress stores behind a pluggable persistence backend.

A :class:`ProgressStore` owns one cohort's :class:`~repro.runestone.Gradebook`
and serializes every mutation through a single lock — the single-writer
discipline that makes concurrent ``submit`` calls from the serving layer
safe (the progress objects themselves also lock; see
:mod:`repro.runestone.progress`).  Every accepted mutation is appended to
a backend as a plain dict record:

* ``{"op": "enroll", "learner": ...}``
* ``{"op": "submit", "learner": ..., "activity_id": ..., "answer": ...}``
* ``{"op": "complete", "learner": ..., "section": ..., "minutes": ...}``

Backends are append-only logs with replay: :class:`MemoryBackend` (the
default; nothing survives the process) and :class:`JsonlBackend` (one
JSON object per line in a file).  Rebuilding a store is
``store.replay()`` — grading is deterministic, so replaying the submit
log reproduces the exact gradebook, which is what makes the log a
sufficient snapshot format.  ``snapshot()`` compacts the log to the
records that still matter.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Iterable, Iterator

from ..runestone.module import Module
from ..runestone.progress import Gradebook, LearnerProgress
from ..runestone.questions import GradeResult

__all__ = [
    "Backend",
    "MemoryBackend",
    "JsonlBackend",
    "ProgressStore",
    "open_backend",
]


class Backend:
    """Append-only record log.  Subclasses override all three methods."""

    def append(self, record: dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def replay(self) -> Iterator[dict[str, Any]]:  # pragma: no cover
        raise NotImplementedError

    def rewrite(self, records: Iterable[dict[str, Any]]) -> None:  # pragma: no cover
        raise NotImplementedError


class MemoryBackend(Backend):
    """In-process log; the default for tests and ephemeral cohorts."""

    def __init__(self) -> None:
        self._records: list[dict[str, Any]] = []
        self._lock = threading.Lock()

    def append(self, record: dict[str, Any]) -> None:
        with self._lock:
            self._records.append(record)

    def replay(self) -> Iterator[dict[str, Any]]:
        with self._lock:
            snapshot = list(self._records)
        return iter(snapshot)

    def rewrite(self, records: Iterable[dict[str, Any]]) -> None:
        with self._lock:
            self._records = list(records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)


class JsonlBackend(Backend):
    """One JSON object per line, appended and fsync-free by design.

    Append-only writes survive crashes of everything above them (a torn
    final line is skipped on replay with a note rather than poisoning
    the whole cohort).  ``rewrite`` (used by :meth:`ProgressStore.snapshot`)
    replaces the log atomically via a temp file + rename.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()
        self.skipped_lines = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"))
        with self._lock, self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def replay(self) -> Iterator[dict[str, Any]]:
        if not self.path.exists():
            return iter(())
        records: list[dict[str, Any]] = []
        self.skipped_lines = 0
        with self._lock, self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    # Torn tail from a crash mid-append: recoverable.
                    self.skipped_lines += 1
        return iter(records)

    def rewrite(self, records: Iterable[dict[str, Any]]) -> None:
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with self._lock:
            with tmp.open("w", encoding="utf-8") as fh:
                for record in records:
                    fh.write(json.dumps(record, separators=(",", ":")) + "\n")
            tmp.replace(self.path)


def open_backend(spec: str | None, data_dir: str | None, slug: str) -> Backend:
    """Backend factory for the CLI: ``memory`` or ``jsonl`` (+ data dir)."""
    if spec in (None, "memory"):
        return MemoryBackend()
    if spec == "jsonl":
        root = Path(data_dir or "serve-data")
        return JsonlBackend(root / f"{slug}.jsonl")
    raise ValueError(f"unknown persistence backend {spec!r} (memory|jsonl)")


class ProgressStore:
    """One cohort's progress, safe for concurrent mutation.

    All writes funnel through ``self._lock`` *and* are journaled to the
    backend inside the critical section, so the log order is exactly the
    order the gradebook saw.  Reads that return live objects hold the
    lock only to fetch references; aggregate reads (:meth:`gradebook_report`)
    compute under the lock for a consistent view.
    """

    def __init__(self, module: Module, backend: Backend | None = None) -> None:
        self.module = module
        self.backend = backend or MemoryBackend()
        self.gradebook = Gradebook(module)
        self._lock = threading.RLock()

    # ------------------------------------------------------------- mutation
    def enroll(self, learner: str) -> tuple[LearnerProgress, bool]:
        """Idempotent enrollment: (progress, created?)."""
        if not learner or not isinstance(learner, str):
            raise ValueError("learner name must be a non-empty string")
        with self._lock:
            existing = self.gradebook.records.get(learner)
            if existing is not None:
                return existing, False
            progress = self.gradebook.enroll(learner)
            self.backend.append({"op": "enroll", "learner": learner})
            return progress, True

    def submit(self, learner: str, activity_id: str, answer: Any) -> GradeResult:
        """Grade + record one submission (KeyError on unknown ids)."""
        with self._lock:
            progress = self._progress(learner)
            result = progress.submit(activity_id, answer)
            self.backend.append(
                {
                    "op": "submit",
                    "learner": learner,
                    "activity_id": activity_id,
                    "answer": _jsonable(answer),
                }
            )
            return result

    def complete(
        self, learner: str, section: str, minutes: float | None = None
    ) -> None:
        with self._lock:
            progress = self._progress(learner)
            progress.complete_section(section, minutes)
            self.backend.append(
                {
                    "op": "complete",
                    "learner": learner,
                    "section": section,
                    "minutes": minutes,
                }
            )

    # -------------------------------------------------------------- queries
    def _progress(self, learner: str) -> LearnerProgress:
        try:
            return self.gradebook.records[learner]
        except KeyError:
            raise KeyError(f"learner {learner!r} is not enrolled") from None

    def learners(self) -> list[str]:
        with self._lock:
            return sorted(self.gradebook.records)

    def progress(self, learner: str) -> LearnerProgress:
        with self._lock:
            return self._progress(learner)

    def gradebook_report(self) -> dict[str, Any]:
        """The instructor view, computed under the lock for consistency."""
        with self._lock:
            records = {
                name: {
                    "attempts": len(p.attempts),
                    "questions_correct": p.questions_answered_correctly,
                    "completion": p.completion_fraction,
                    "score": p.question_score,
                    "minutes": p.minutes_spent,
                }
                for name, p in sorted(self.gradebook.records.items())
            }
            return {
                "module": self.module.slug,
                "learners": len(records),
                "completion_rate": self.gradebook.completion_rate(),
                "hardest_questions": [
                    {"activity_id": aid, "first_attempt_rate": rate}
                    for aid, rate in self.gradebook.hardest_questions()
                ],
                "records": records,
            }

    # ------------------------------------------------------ snapshot/replay
    def replay(self) -> int:
        """Rebuild state from the backend log; returns records applied.

        Unknown learners/activities in the log (e.g. the module shrank
        between runs) are skipped rather than fatal: a serving layer must
        boot on the history it has.
        """
        applied = 0
        with self._lock:
            for record in self.backend.replay():
                try:
                    op = record.get("op")
                    if op == "enroll":
                        if record["learner"] not in self.gradebook.records:
                            self.gradebook.enroll(record["learner"])
                    elif op == "submit":
                        self._progress(record["learner"]).submit(
                            record["activity_id"], record["answer"]
                        )
                    elif op == "complete":
                        self._progress(record["learner"]).complete_section(
                            record["section"], record.get("minutes")
                        )
                    else:
                        continue
                    applied += 1
                except (KeyError, TypeError, ValueError):
                    continue
        return applied

    def snapshot(self) -> int:
        """Compact the backend log to the current state; returns records kept."""
        with self._lock:
            records: list[dict[str, Any]] = []
            for learner, progress in self.gradebook.records.items():
                records.append({"op": "enroll", "learner": learner})
                for attempt in progress.attempts:
                    records.append(
                        {
                            "op": "submit",
                            "learner": learner,
                            "activity_id": attempt.activity_id,
                            "answer": _jsonable(attempt.answer),
                        }
                    )
                for section in sorted(progress.completed_sections):
                    records.append(
                        {
                            "op": "complete",
                            "learner": learner,
                            "section": section,
                            "minutes": None,
                        }
                    )
            self.backend.rewrite(records)
            return len(records)


def _jsonable(answer: Any) -> Any:
    """Best-effort JSON projection of an answer for the journal.

    Answers arriving over HTTP are already JSON values; direct API users
    may pass anything, and a journaling failure must not lose the graded
    attempt — degrade to ``repr`` instead.
    """
    try:
        json.dumps(answer)
        return answer
    except (TypeError, ValueError):
        return {"__repr__": repr(answer)}
