"""Cartesian topology communicator (``MPI_Cart_create`` family).

Used by the grid-decomposed exemplars (e.g. the forest-fire simulation's
row-striped domain) and the neighbor-exchange patternlets.
"""

from __future__ import annotations

from typing import Sequence

from .comm import CommCore, Intracomm
from .constants import PROC_NULL

__all__ = ["Cartcomm", "compute_dims"]


def compute_dims(nnodes: int, ndims: int) -> list[int]:
    """Balanced factorization of ``nnodes`` over ``ndims`` dimensions.

    Mirrors ``MPI_Dims_create``: dimensions are as close to each other as
    possible and sorted in non-increasing order.
    """
    if nnodes < 1 or ndims < 1:
        raise ValueError("nnodes and ndims must be positive")
    dims = [1] * ndims
    remaining = nnodes
    # Repeatedly assign the largest prime factor to the currently smallest dim.
    factors: list[int] = []
    f = 2
    while f * f <= remaining:
        while remaining % f == 0:
            factors.append(f)
            remaining //= f
        f += 1
    if remaining > 1:
        factors.append(remaining)
    for factor in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= factor
    return sorted(dims, reverse=True)


class Cartcomm(Intracomm):
    """A communicator whose ranks are arranged on an N-dimensional grid."""

    def __init__(
        self,
        core: CommCore,
        rank: int,
        dims: Sequence[int],
        periods: Sequence[bool],
    ) -> None:
        super().__init__(core, rank)
        self._dims = tuple(int(d) for d in dims)
        self._periods = tuple(bool(p) for p in periods)

    # ------------------------------------------------------------- topology info
    @property
    def dims(self) -> tuple[int, ...]:
        return self._dims

    @property
    def periods(self) -> tuple[bool, ...]:
        return self._periods

    @property
    def ndim(self) -> int:
        return len(self._dims)

    def Get_dim(self) -> int:
        return len(self._dims)

    def Get_topo(self) -> tuple[tuple[int, ...], tuple[bool, ...], tuple[int, ...]]:
        """Return ``(dims, periods, my_coords)``."""
        return self._dims, self._periods, self.Get_coords(self._rank)

    def Get_coords(self, rank: int) -> tuple[int, ...]:
        """Row-major coordinates of ``rank`` on the grid."""
        if not 0 <= rank < self._core.size:
            raise ValueError(f"rank {rank} outside cartesian communicator")
        coords = []
        for extent in reversed(self._dims):
            coords.append(rank % extent)
            rank //= extent
        return tuple(reversed(coords))

    @property
    def coords(self) -> tuple[int, ...]:
        return self.Get_coords(self._rank)

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        """Rank at the given coordinates (periodic wrap where allowed)."""
        if len(coords) != len(self._dims):
            raise ValueError(
                f"expected {len(self._dims)} coordinates, got {len(coords)}"
            )
        rank = 0
        for c, extent, periodic in zip(coords, self._dims, self._periods):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                raise ValueError(
                    f"coordinate {c} outside non-periodic dimension of extent {extent}"
                )
            rank = rank * extent + c
        return rank

    def Shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """Return ``(source, dest)`` for a shift along one dimension.

        At a non-periodic boundary the missing neighbor is ``PROC_NULL``,
        so shift exchanges degrade gracefully at the edges — exactly the
        behaviour the halo-exchange patternlet teaches.
        """
        if not 0 <= direction < len(self._dims):
            raise ValueError(f"invalid shift direction {direction}")
        me = list(self.Get_coords(self._rank))

        def neighbor(offset: int) -> int:
            coords = list(me)
            coords[direction] += offset
            extent = self._dims[direction]
            if self._periods[direction]:
                coords[direction] %= extent
            elif not 0 <= coords[direction] < extent:
                return PROC_NULL
            return self.Get_cart_rank(coords)

        return neighbor(-disp), neighbor(disp)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Cartcomm dims={self._dims} periods={self._periods} "
            f"rank={self._rank} coords={self.coords}>"
        )
