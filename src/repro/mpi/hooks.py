"""Runtime instrumentation hooks for the message-passing runtime.

The observability layer (:mod:`repro.obs`) and the communication tracer
(:mod:`repro.mpi.tracing`) need to observe sends, receives, and collective
phases without the runtime importing them — the same seam design as
:mod:`repro.openmp.hooks`, duplicated rather than shared because both
``emit`` paths are hot and module-level globals beat an extra indirection.

Event vocabulary (``emit(event, *args)``; args are plain ints so events
pickle cheaply across the process-rank boundary):

===============================  =============================================
``send``, cid, src, dest,        a user-context message was enqueued
tag, nbytes
``recv_enter``, cid, rank,       calling rank is blocking in a receive
source, tag                      (``source``/``tag`` may be wildcards)
``recv_exit``, cid, rank,        the receive matched a message of ``nbytes``
source, tag, nbytes
``coll_enter``, cid, rank, name  calling rank entered collective ``name``
``coll_exit``, cid, rank, name   the collective completed on this rank
``coll_algo``, cid, rank,        the algorithm this rank resolved for the
name, algo                       collective (auto-pick, env, or keyword)
``coll_msg``, cid, src, dest,    one internal collective-transport message
nbytes
``wait_enter``, cid, rank        calling rank is blocking in a request wait
``wait_exit``, cid, rank         the wait completed
===============================  =============================================

``cid`` is the communicator context id (:attr:`CommCore.cid` on the
threaded backend; process ranks use 0 — their COMM_WORLD is the only
communicator with a user context).

Observer protocol, ``attach``/``detach`` semantics, and the timestamped
flavor are identical to :mod:`repro.openmp.hooks`.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable

__all__ = [
    "enabled",
    "attach",
    "detach",
    "emit",
    "traced_collective",
    "payload_nbytes",
]

#: Fast-path flag: call sites test this before paying for an ``emit`` call.
enabled = False

#: Immutable snapshot of the plain observer set (``observer(event, *args)``).
_observers: tuple[Callable[..., None], ...] = ()

#: Timestamped observers, delivered ``observer(ts, event, *args)``.
_ts_observers: tuple[Callable[..., None], ...] = ()

_monotonic = time.monotonic


def attach(observer: Callable[..., None], timestamped: bool = False) -> None:
    """Register an event observer (see :mod:`repro.openmp.hooks`)."""
    global enabled, _observers, _ts_observers
    if timestamped:
        if observer not in _ts_observers:
            _ts_observers = _ts_observers + (observer,)
    elif observer not in _observers:
        _observers = _observers + (observer,)
    enabled = True


def detach(observer: Callable[..., None]) -> None:
    """Unregister an observer; clears the fast-path flag with the last one."""
    global enabled, _observers, _ts_observers
    # Filter by equality, not identity: observers registered as bound
    # methods (e.g. ``tracer._observe``) produce a fresh method object on
    # every attribute access, and those compare ``==`` but never ``is``.
    if observer in _observers:
        _observers = tuple(o for o in _observers if o != observer)
    if observer in _ts_observers:
        _ts_observers = tuple(o for o in _ts_observers if o != observer)
    enabled = bool(_observers or _ts_observers)


def emit(event: str, *args: Any, ts: float | None = None) -> None:
    """Deliver one runtime event to every attached observer."""
    if not enabled:
        return
    for observer in _observers:
        observer(event, *args)
    ts_observers = _ts_observers
    if ts_observers:
        if ts is None:
            ts = _monotonic()
        for observer in ts_observers:
            observer(ts, event, *args)


def traced_collective(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Bracket a communicator collective with ``coll_enter``/``coll_exit``.

    Decorates ``Intracomm``/``ProcComm`` methods; the communicator supplies
    its context id via ``_obs_cid`` and its rank via ``_rank``.  With no
    observer attached the wrapper is a single falsy branch over the
    undecorated call.
    """
    name = fn.__name__

    @functools.wraps(fn)
    def wrapper(self: Any, *args: Any, **kwargs: Any) -> Any:
        if not enabled:
            return fn(self, *args, **kwargs)
        cid = self._obs_cid
        rank = self._rank
        emit("coll_enter", cid, rank, name)
        try:
            return fn(self, *args, **kwargs)
        finally:
            emit("coll_exit", cid, rank, name)

    return wrapper


def payload_nbytes(payload: Any) -> int:
    """Best-effort byte size of a transport payload (teaching precision)."""
    if payload is None:
        return 0
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    nbytes = getattr(payload, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    return 0
