"""Serialization accounting for the message transports.

The zero-copy work (vectorized kernels feeding typed buffers through
shared memory) makes a *measurable* claim: on the buffer path, no payload
is ever pickled.  Eyeballing that claim is how it silently regresses, so
every ``pickle.dumps`` the transports perform goes through
:func:`counted_dumps`, and the counters here — calls and bytes — are
surfaced through :mod:`repro.obs.metrics` and asserted by tests and the
bench serialization report.

Scope: the counters track *our* serialization sites (object-mode verbs,
collective object transports, process-rank envelope payloads).  They do
not see the framing :mod:`multiprocessing` itself applies to envelope
tuples — that cost is a few dozen bytes of descriptor per message on the
buffer path, versus the full payload on the object path, which is exactly
the difference the counters exist to demonstrate.

Process ranks each carry a fork-inherited copy of the counters;
``run_procs`` ships every rank's totals back with its result and folds
them into the parent, so a parent-side reading covers the whole world.
"""

from __future__ import annotations

import pickle
import threading
from typing import Any

__all__ = [
    "counted_dumps",
    "count_serialized",
    "serialized_totals",
    "reset_serialized",
    "merge_serialized",
]

_lock = threading.Lock()
_calls = 0
_bytes = 0


def counted_dumps(obj: Any) -> bytes:
    """``pickle.dumps`` that charges the serialization counters."""
    blob = pickle.dumps(obj)
    count_serialized(len(blob))
    return blob


def count_serialized(nbytes: int, calls: int = 1) -> None:
    """Charge ``nbytes`` of serialized payload to the counters."""
    global _calls, _bytes
    with _lock:
        _calls += calls
        _bytes += nbytes


def serialized_totals() -> dict[str, int]:
    """Snapshot of the counters: ``{"pickle_calls": ..., "pickled_bytes": ...}``."""
    with _lock:
        return {"pickle_calls": _calls, "pickled_bytes": _bytes}


def reset_serialized() -> None:
    """Zero the counters (bench/test bracketing)."""
    global _calls, _bytes
    with _lock:
        _calls = 0
        _bytes = 0


def merge_serialized(totals: dict[str, int] | None) -> None:
    """Fold a child process's counter snapshot into this process's counters."""
    if not totals:
        return
    count_serialized(
        int(totals.get("pickled_bytes", 0)), int(totals.get("pickle_calls", 0))
    )
