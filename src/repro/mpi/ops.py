"""Reduction operations for ``reduce``/``allreduce``/``scan``.

Each :class:`Op` knows how to combine two partial values.  Values may be
scalars, sequences (combined elementwise, as MPI does for count > 1), or
NumPy arrays (combined vectorized).  ``MAXLOC``/``MINLOC`` operate on
``(value, location)`` pairs exactly as in the MPI standard.

User-defined operations are supported through :meth:`Op.Create`, matching
mpi4py's ``MPI.Op.Create(function, commute=...)``.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

import numpy as np

__all__ = [
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "LXOR",
    "BAND",
    "BOR",
    "BXOR",
    "MAXLOC",
    "MINLOC",
]


def _is_vector(value: Any) -> bool:
    """True for values MPI would treat as count > 1 (combined elementwise)."""
    return isinstance(value, (list, tuple)) or (
        isinstance(value, np.ndarray) and value.ndim > 0
    )


class Op:
    """A reduction operation.

    Parameters
    ----------
    fn:
        Binary scalar combiner, applied elementwise to vector operands.
    name:
        Display name (``"MPI_SUM"`` etc.).
    commute:
        Whether the operation is commutative.  Non-commutative user ops are
        applied strictly in rank order, as the standard requires.
    elementwise:
        If False the combiner receives the whole operands (used by the LOC
        ops and user-defined ops, which see full values).
    """

    __slots__ = ("_fn", "name", "commute", "elementwise")

    def __init__(
        self,
        fn: Callable[[Any, Any], Any],
        name: str = "user_op",
        commute: bool = True,
        elementwise: bool = True,
    ) -> None:
        self._fn = fn
        self.name = name
        self.commute = commute
        self.elementwise = elementwise

    @classmethod
    def Create(cls, function: Callable[[Any, Any], Any], commute: bool = False) -> "Op":
        """Create a user-defined operation (mpi4py signature).

        The function receives the two full operand values; it is responsible
        for any elementwise behaviour itself.
        """
        return cls(function, name="MPI_OP_USER", commute=commute, elementwise=False)

    def Free(self) -> None:
        """No-op provided for mpi4py API parity."""

    def __call__(self, a: Any, b: Any) -> Any:
        """Combine two partial reduction values: ``a ⊕ b`` (a from lower rank)."""
        if not self.elementwise:
            return self._fn(a, b)
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return self._vector_numpy(np.asarray(a), np.asarray(b))
        if _is_vector(a) or _is_vector(b):
            if not (_is_vector(a) and _is_vector(b)) or len(a) != len(b):
                raise ValueError(
                    f"{self.name}: cannot combine operands of mismatched shape "
                    f"({a!r} vs {b!r})"
                )
            combined = [self._fn(x, y) for x, y in zip(a, b)]
            return type(a)(combined) if isinstance(a, tuple) else combined
        return self._fn(a, b)

    def _vector_numpy(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        if a.shape != b.shape:
            raise ValueError(
                f"{self.name}: cannot combine arrays of shape {a.shape} and {b.shape}"
            )
        ufunc = _NUMPY_UFUNCS.get(self.name)
        if ufunc is not None:
            return ufunc(a, b)
        # Fall back to elementwise Python application for exotic combiners.
        flat = [self._fn(x, y) for x, y in zip(a.ravel().tolist(), b.ravel().tolist())]
        return np.asarray(flat, dtype=a.dtype).reshape(a.shape)

    def reduce_sequence(self, values: Sequence[Any]) -> Any:
        """Fold an ordered sequence of per-rank values into one result."""
        if not values:
            raise ValueError(f"{self.name}: nothing to reduce")
        acc = values[0]
        for value in values[1:]:
            acc = self(acc, value)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Op {self.name}>"


def _maxloc(a: tuple[Any, int], b: tuple[Any, int]) -> tuple[Any, int]:
    (av, ai), (bv, bi) = a, b
    if av > bv:
        return (av, ai)
    if bv > av:
        return (bv, bi)
    return (av, min(ai, bi))


def _minloc(a: tuple[Any, int], b: tuple[Any, int]) -> tuple[Any, int]:
    (av, ai), (bv, bi) = a, b
    if av < bv:
        return (av, ai)
    if bv < av:
        return (bv, bi)
    return (av, min(ai, bi))


SUM = Op(operator.add, "MPI_SUM")
PROD = Op(operator.mul, "MPI_PROD")
MAX = Op(max, "MPI_MAX")
MIN = Op(min, "MPI_MIN")
LAND = Op(lambda a, b: bool(a) and bool(b), "MPI_LAND")
LOR = Op(lambda a, b: bool(a) or bool(b), "MPI_LOR")
LXOR = Op(lambda a, b: bool(a) != bool(b), "MPI_LXOR")
BAND = Op(operator.and_, "MPI_BAND")
BOR = Op(operator.or_, "MPI_BOR")
BXOR = Op(operator.xor, "MPI_BXOR")
MAXLOC = Op(_maxloc, "MPI_MAXLOC", elementwise=False)
MINLOC = Op(_minloc, "MPI_MINLOC", elementwise=False)

_NUMPY_UFUNCS: dict[str, Any] = {
    "MPI_SUM": np.add,
    "MPI_PROD": np.multiply,
    "MPI_MAX": np.maximum,
    "MPI_MIN": np.minimum,
    "MPI_LAND": np.logical_and,
    "MPI_LOR": np.logical_or,
    "MPI_LXOR": np.logical_xor,
    "MPI_BAND": np.bitwise_and,
    "MPI_BOR": np.bitwise_or,
    "MPI_BXOR": np.bitwise_xor,
}
