"""Parsing of mpi4py-style buffer specifications.

The uppercase communication verbs accept, exactly as the mpi4py tutorial
documents:

* a bare buffer-provider (NumPy array) — datatype inferred automatically,
* ``[data, MPI.TYPE]`` — count inferred from the byte size of ``data``,
* ``[data, count]`` — datatype inferred,
* ``[data, count, MPI.TYPE]``,
* ``[data, counts, displs, MPI.TYPE]`` — the *vector* form used by
  ``Scatterv``/``Gatherv``, where ``counts`` and ``displs`` are sequences.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from .datatypes import Datatype, from_numpy_dtype
from .errors import InvalidCountError

__all__ = ["BufferSpec", "parse_buffer", "parse_vector_buffer"]


@dataclass
class BufferSpec:
    """A validated, flattened view of a communication buffer."""

    array: np.ndarray  # 1-D view onto the caller's memory
    count: int
    datatype: Datatype
    counts: tuple[int, ...] | None = None
    displs: tuple[int, ...] | None = None

    @property
    def nbytes(self) -> int:
        return self.count * self.datatype.extent

    def data(self) -> np.ndarray:
        """A copy of the first ``count`` elements (send-side snapshot)."""
        return self.array[: self.count].copy()

    def fill(self, values: np.ndarray) -> None:
        """Copy received values into the caller's buffer (receive side)."""
        n = len(values)
        if n > len(self.array):
            raise InvalidCountError(
                f"receive buffer holds {len(self.array)} elements, message has {n}"
            )
        self.array[:n] = values


def _as_flat_view(obj: Any) -> np.ndarray:
    arr = np.asarray(obj)
    if arr.dtype == object:
        raise TypeError(
            "buffer communication requires a typed NumPy array, got dtype=object; "
            "use the lowercase verbs for arbitrary Python objects"
        )
    if not arr.flags.c_contiguous and not arr.flags.f_contiguous:
        # A strided view cannot be flattened without copying, and a silent
        # copy would break receive-into-buffer semantics (the caller's
        # elements would never be written).  Make the caller choose.
        raise ValueError(
            "buffer communication requires a contiguous array; this one is "
            f"a strided view (shape={arr.shape}, strides={arr.strides}) — "
            "pass np.ascontiguousarray(a) to send a copy, or communicate "
            "the underlying array"
        )
    view = arr.reshape(-1, order="A" if arr.flags.f_contiguous else "C")
    return view


def parse_buffer(spec: Any) -> BufferSpec:
    """Parse the scalar-count forms of a buffer specification."""
    if isinstance(spec, BufferSpec):
        return spec
    if isinstance(spec, (list, tuple)):
        if not spec or len(spec) > 3:
            raise ValueError(
                f"buffer specification must have 1-3 items, got {len(spec)}"
            )
        array = _as_flat_view(spec[0])
        count: int | None = None
        datatype: Datatype | None = None
        for item in spec[1:]:
            if isinstance(item, Datatype):
                if datatype is not None:
                    raise ValueError("duplicate datatype in buffer specification")
                datatype = item
            elif isinstance(item, (int, np.integer)):
                if count is not None:
                    raise ValueError("duplicate count in buffer specification")
                count = int(item)
            else:
                raise TypeError(
                    f"unexpected item {item!r} in buffer specification; expected "
                    "an int count or an MPI datatype"
                )
        if datatype is None:
            datatype = from_numpy_dtype(array.dtype)
        if count is None:
            # mpi4py: byte size of data / extent of the MPI datatype.
            count = array.nbytes // datatype.extent
        if count < 0 or count > array.nbytes // datatype.extent:
            raise InvalidCountError(
                f"count {count} exceeds buffer capacity "
                f"({array.nbytes // datatype.extent} {datatype.name} elements)"
            )
        if array.dtype != datatype.np_dtype:
            array = array.view(datatype.np_dtype)
        return BufferSpec(array, count, datatype)
    array = _as_flat_view(spec)
    datatype = from_numpy_dtype(array.dtype)
    return BufferSpec(array, len(array), datatype)


def parse_vector_buffer(spec: Any, size: int) -> BufferSpec:
    """Parse the ``[data, counts, displs, type]`` form for v-collectives.

    ``counts`` must have exactly ``size`` entries.  ``displs`` may be omitted
    (``None``), in which case the canonical packed layout
    ``displs[i] = sum(counts[:i])`` is used.
    """
    if not isinstance(spec, (list, tuple)) or not 2 <= len(spec) <= 4:
        raise ValueError(
            "vector buffer specification must be [data, counts(, displs)(, type)]"
        )
    array = _as_flat_view(spec[0])
    counts_raw = spec[1]
    displs_raw: Sequence[int] | None = None
    datatype: Datatype | None = None
    for item in spec[2:]:
        if isinstance(item, Datatype):
            datatype = item
        elif item is None:
            continue
        else:
            if displs_raw is not None:
                raise ValueError("duplicate displacements in buffer specification")
            displs_raw = item
    if datatype is None:
        datatype = from_numpy_dtype(array.dtype)
    if array.dtype != datatype.np_dtype:
        array = array.view(datatype.np_dtype)

    counts = tuple(int(c) for c in counts_raw)
    if len(counts) != size:
        raise InvalidCountError(
            f"counts has {len(counts)} entries for a communicator of size {size}"
        )
    if any(c < 0 for c in counts):
        raise InvalidCountError("counts must be non-negative")
    if displs_raw is None:
        displs = []
        offset = 0
        for c in counts:
            displs.append(offset)
            offset += c
        displs = tuple(displs)
    else:
        displs = tuple(int(d) for d in displs_raw)
        if len(displs) != size:
            raise InvalidCountError(
                f"displs has {len(displs)} entries for a communicator of size {size}"
            )
    for c, d in zip(counts, displs):
        if d < 0 or d + c > len(array):
            raise InvalidCountError(
                f"segment (count={c}, displ={d}) exceeds buffer of {len(array)} elements"
            )
    return BufferSpec(array, sum(counts), datatype, counts=counts, displs=displs)
