"""MPI datatype constants and NumPy interoperability.

The uppercase (buffer-based) communication verbs take buffer specifications
like ``[array, MPI.DOUBLE]`` exactly as in the mpi4py tutorial.  Each
:class:`Datatype` wraps a NumPy dtype so the runtime can validate and copy
typed buffers without guessing.

Automatic datatype discovery (passing a bare NumPy array) is supported for
the same set of basic C types mpi4py documents: native signed/unsigned
integers and single/double precision real/complex floats.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Datatype",
    "from_numpy_dtype",
    "BYTE",
    "CHAR",
    "BOOL",
    "SHORT",
    "INT",
    "LONG",
    "LONG_LONG",
    "UNSIGNED_SHORT",
    "UNSIGNED",
    "UNSIGNED_LONG",
    "FLOAT",
    "DOUBLE",
    "COMPLEX",
    "DOUBLE_COMPLEX",
    "INT32_T",
    "INT64_T",
    "UINT32_T",
    "UINT64_T",
]


@dataclass(frozen=True)
class Datatype:
    """An MPI basic datatype backed by a NumPy dtype.

    Attributes
    ----------
    name:
        The MPI-style name, e.g. ``"MPI_DOUBLE"``.
    np_dtype:
        The equivalent NumPy dtype used for buffer copies.
    """

    name: str
    np_dtype: np.dtype

    @property
    def extent(self) -> int:
        """Size in bytes of one element of this type (``MPI_Type_extent``)."""
        return int(self.np_dtype.itemsize)

    def Get_extent(self) -> tuple[int, int]:
        """Return ``(lower_bound, extent)`` as mpi4py does."""
        return (0, self.extent)

    def Get_size(self) -> int:
        """Return the number of bytes occupied by entries of this datatype."""
        return self.extent

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Datatype {self.name}>"


def _dt(name: str, np_name: str) -> Datatype:
    return Datatype(name, np.dtype(np_name))


BYTE = _dt("MPI_BYTE", "uint8")
CHAR = _dt("MPI_CHAR", "S1")
BOOL = _dt("MPI_C_BOOL", "bool")
SHORT = _dt("MPI_SHORT", "int16")
INT = _dt("MPI_INT", "int32")
LONG = _dt("MPI_LONG", "int64")
LONG_LONG = _dt("MPI_LONG_LONG", "int64")
UNSIGNED_SHORT = _dt("MPI_UNSIGNED_SHORT", "uint16")
UNSIGNED = _dt("MPI_UNSIGNED", "uint32")
UNSIGNED_LONG = _dt("MPI_UNSIGNED_LONG", "uint64")
FLOAT = _dt("MPI_FLOAT", "float32")
DOUBLE = _dt("MPI_DOUBLE", "float64")
COMPLEX = _dt("MPI_C_FLOAT_COMPLEX", "complex64")
DOUBLE_COMPLEX = _dt("MPI_C_DOUBLE_COMPLEX", "complex128")
INT32_T = _dt("MPI_INT32_T", "int32")
INT64_T = _dt("MPI_INT64_T", "int64")
UINT32_T = _dt("MPI_UINT32_T", "uint32")
UINT64_T = _dt("MPI_UINT64_T", "uint64")

_ALL_TYPES: tuple[Datatype, ...] = (
    BYTE,
    CHAR,
    BOOL,
    SHORT,
    INT,
    LONG,
    UNSIGNED_SHORT,
    UNSIGNED,
    UNSIGNED_LONG,
    FLOAT,
    DOUBLE,
    COMPLEX,
    DOUBLE_COMPLEX,
)

# Discovery table for bare-array buffer arguments.  Keyed by dtype so exotic
# dtypes (structured, object, datetime...) fail loudly instead of being
# silently byte-copied.
_NUMPY_TO_MPI: dict[np.dtype, Datatype] = {}
for _t in _ALL_TYPES:
    _NUMPY_TO_MPI.setdefault(_t.np_dtype, _t)


def from_numpy_dtype(dtype: np.dtype) -> Datatype:
    """Map a NumPy dtype to the matching MPI basic datatype.

    Raises
    ------
    TypeError
        If the dtype is not one of the basic C types supported for
        automatic discovery (mirrors mpi4py's documented limitation).
    """
    dtype = np.dtype(dtype)
    try:
        return _NUMPY_TO_MPI[dtype]
    except KeyError:
        raise TypeError(
            f"automatic MPI datatype discovery does not support dtype {dtype!r}; "
            "pass an explicit [buffer, MPI.<TYPE>] specification"
        ) from None
