"""Rank/tag wildcard and miscellaneous MPI constants.

Values follow mpi4py conventions where observable (``ANY_SOURCE`` and
``ANY_TAG`` are negative sentinels, ``PROC_NULL`` is a valid no-op peer).
"""

from __future__ import annotations

#: Wildcard source rank: match a message from any sender.
ANY_SOURCE: int = -1

#: Wildcard tag: match a message with any tag.
ANY_TAG: int = -1

#: The null process: sends to it vanish, receives from it complete
#: immediately with no data (used at the boundary of shift patterns).
PROC_NULL: int = -2

#: Returned by ``Group.Get_rank`` / ``Comm.Split`` bookkeeping for "not a member".
UNDEFINED: int = -3

#: Root sentinel for intercommunicator collectives (kept for API parity).
ROOT: int = -4

#: Upper bound the standard guarantees for tags; we enforce it for realism.
TAG_UB: int = 32767

#: Maximum length of a processor name.
MAX_PROCESSOR_NAME: int = 256

#: Keyword used by ``Comm.Split`` to drop a rank from all result communicators.
SPLIT_UNDEFINED = UNDEFINED

#: Thread support levels (the runtime always provides MULTIPLE).
THREAD_SINGLE: int = 0
THREAD_FUNNELED: int = 1
THREAD_SERIALIZED: int = 2
THREAD_MULTIPLE: int = 3

#: Default watchdog, in seconds, before the runtime declares deadlock.
DEFAULT_DEADLOCK_TIMEOUT: float = 30.0
