"""The MPI *world*: thread-per-rank SPMD execution.

A :class:`World` owns N rank threads, the shared-object registry used to
materialize new communicators during collective construction (``Split``,
``Create_cart``), a progress tracker that turns a global all-ranks-blocked
state into :class:`~repro.mpi.errors.DeadlockError`, and a thread-safe
console that records the interleaved ``print`` output of the ranks (this is
what reproduces the out-of-order "Greetings from process i of n" lines in
the paper's Fig. 2).

The convenience entry point is :func:`run` / :meth:`World.run`: hand it an
SPMD function of signature ``fn(comm, *args)`` and a process count, get back
per-rank return values.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from .constants import DEFAULT_DEADLOCK_TIMEOUT
from .errors import (
    DeadlockError,
    NotInWorldError,
    RankFailedError,
    WorldAbortedError,
)

__all__ = [
    "World",
    "Console",
    "run",
    "current_comm",
    "add_world_hook",
    "remove_world_hook",
]

#: Observers invoked with each freshly constructed :class:`World`.  The
#: correctness checker (:mod:`repro.analysis.mpicheck`) uses this to attach
#: to worlds created *inside* patternlets and exemplars without forking
#: their launch paths.
_creation_hooks: list[Callable[["World"], None]] = []


def add_world_hook(hook: Callable[["World"], None]) -> None:
    """Register an observer called with every newly created world."""
    if hook not in _creation_hooks:
        _creation_hooks.append(hook)


def remove_world_hook(hook: Callable[["World"], None]) -> None:
    if hook in _creation_hooks:
        _creation_hooks.remove(hook)


@dataclass
class ConsoleLine:
    """One line of rank output, in global arrival order."""

    rank: int
    text: str
    seq: int


class Console:
    """Thread-safe capture of per-rank ``print`` output."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._lines: list[ConsoleLine] = []
        self._seq = 0

    def write(self, rank: int, text: str) -> None:
        with self._lock:
            for line in str(text).split("\n"):
                self._lines.append(ConsoleLine(rank, line, self._seq))
                self._seq += 1

    def lines(self, rank: int | None = None) -> list[str]:
        """All captured lines in arrival order (optionally for one rank)."""
        with self._lock:
            return [
                line.text
                for line in self._lines
                if rank is None or line.rank == rank
            ]

    def text(self) -> str:
        return "\n".join(self.lines())

    def clear(self) -> None:
        with self._lock:
            self._lines.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._lines)


class _SharedRegistry:
    """First-caller-creates registry for collectively constructed objects.

    All ranks of a communicator execute collective constructors (``Split``,
    ``Create_cart``) in the same order, so a deterministic key identifies
    "the same call site" across ranks.  The first rank to arrive runs the
    factory; the rest receive the identical object.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._objects: dict[Any, Any] = {}

    def get_or_create(self, key: Any, factory: Callable[[], Any]) -> Any:
        with self._lock:
            if key not in self._objects:
                self._objects[key] = factory()
            return self._objects[key]


class World:
    """A set of rank threads sharing one MPI universe."""

    def __init__(
        self,
        size: int,
        *,
        hostname: str = "d6ff4f902ed6",
        deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT,
        poll_interval: float = 0.02,
        all_blocked_grace: float = 0.35,
    ) -> None:
        if size < 1:
            raise ValueError(f"world size must be >= 1, got {size}")
        self.size = size
        self.hostname = hostname
        self.deadlock_timeout = deadlock_timeout
        self.poll_interval = poll_interval
        self.all_blocked_grace = all_blocked_grace
        self.console = Console()
        self.registry = _SharedRegistry()

        self._cid_counter = 0
        self._cid_lock = threading.Lock()

        self._state_lock = threading.Lock()
        self._alive = 0
        self._blocked = 0
        self._all_blocked_since: float | None = None
        self._started_at: float | None = None

        self._abort_error: BaseException | None = None
        self._rank_of_thread: dict[int, int] = {}

        #: Fault injector (``repro.testkit.faults``); ``None`` = no faults.
        #: Set before the creation hooks run so an armed plan can attach.
        self.injector = None

        # COMM_WORLD is built lazily to avoid a circular import at module load.
        from .comm import Intracomm

        self.comm_world: Intracomm = Intracomm._create_world(self)
        for hook in list(_creation_hooks):
            hook(self)

    # -- communicator-id allocation ------------------------------------------------
    def next_cid(self) -> int:
        with self._cid_lock:
            self._cid_counter += 1
            return self._cid_counter

    # -- rank bookkeeping ----------------------------------------------------------
    def bind_current_thread(self, rank: int) -> None:
        """Associate the calling thread with an MPI rank of this world."""
        with self._state_lock:
            self._rank_of_thread[threading.get_ident()] = rank

    def unbind_current_thread(self) -> None:
        with self._state_lock:
            self._rank_of_thread.pop(threading.get_ident(), None)

    def rank_of_current_thread(self) -> int:
        try:
            return self._rank_of_thread[threading.get_ident()]
        except KeyError:
            raise NotInWorldError(
                "this thread is not an MPI rank of the active world"
            ) from None

    # -- progress tracking ----------------------------------------------------------
    def enter_blocked(self) -> None:
        with self._state_lock:
            self._blocked += 1
            if self._alive and self._blocked >= self._alive:
                self._all_blocked_since = time.monotonic()

    def exit_blocked(self) -> None:
        with self._state_lock:
            self._blocked -= 1
            self._all_blocked_since = None

    def deadlock_suspected(self) -> bool:
        """True when every live rank has been blocked for the grace period.

        The grace period absorbs the scheduling jitter between a sender
        enqueueing an envelope and the receiver's condition variable waking:
        a genuinely matched message wakes its receiver long before the grace
        period elapses.  The hard ``deadlock_timeout`` is a backstop for
        worlds where some ranks are spinning rather than parked.
        """
        with self._state_lock:
            if self._alive == 0:
                return False
            if self._blocked >= self._alive and self._all_blocked_since is not None:
                return time.monotonic() - self._all_blocked_since >= self.all_blocked_grace
        if self._started_at is not None and self.deadlock_timeout is not None:
            return time.monotonic() - self._started_at >= self.deadlock_timeout
        return False

    # -- abort handling ---------------------------------------------------------------
    def abort_with(self, error: BaseException) -> None:
        """Mark the world aborted; every parked rank re-raises on next poll."""
        with self._state_lock:
            if self._abort_error is None:
                self._abort_error = error

    def check_abort(self) -> None:
        err = self._abort_error
        if err is not None:
            raise err if isinstance(err, (DeadlockError, WorldAbortedError)) else WorldAbortedError()

    @property
    def aborted(self) -> bool:
        return self._abort_error is not None

    # -- execution ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[..., Any],
        args: Iterable[Any] = (),
        kwargs: dict[str, Any] | None = None,
    ) -> list[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank; return rank results.

        If any rank raises, the world is aborted (unparking blocked peers)
        and a :class:`RankFailedError` carrying each original exception is
        raised.  A detected deadlock surfaces as :class:`DeadlockError`.
        """
        kwargs = kwargs or {}
        results: list[Any] = [None] * self.size
        failures: dict[int, BaseException] = {}
        barrier_done = threading.Barrier(self.size)

        def entry(rank: int) -> None:
            comm = self.comm_world._for_rank(rank)
            self.bind_current_thread(rank)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - we re-raise aggregated
                failures[rank] = exc
                self.abort_with(
                    exc
                    if isinstance(exc, (DeadlockError, WorldAbortedError))
                    else WorldAbortedError(errorcode=1, origin=rank)
                )
            finally:
                try:
                    # Deliver any envelopes still coalesced in this rank's
                    # send batch: a peer may be blocked receiving one.
                    comm._flush_sends()
                except Exception:
                    pass
                with self._state_lock:
                    self._alive -= 1
                self.unbind_current_thread()
                try:
                    barrier_done.wait(timeout=self.deadlock_timeout)
                except threading.BrokenBarrierError:
                    pass

        threads = [
            threading.Thread(target=entry, args=(rank,), name=f"mpi-rank-{rank}", daemon=True)
            for rank in range(self.size)
        ]
        with self._state_lock:
            self._alive = self.size
            self._abort_error = None
            self._started_at = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=self.deadlock_timeout * 4 if self.deadlock_timeout else None)
            if t.is_alive():  # pragma: no cover - watchdog of last resort
                self.abort_with(DeadlockError("rank thread failed to terminate"))
        if failures:
            only = set(type(e) for e in failures.values())
            if only == {DeadlockError}:
                raise next(iter(failures.values()))
            # Filter out ranks that died only because a sibling aborted them.
            primary = {
                r: e for r, e in failures.items() if not isinstance(e, WorldAbortedError)
            }
            raise RankFailedError(primary or failures)
        return results


# ---------------------------------------------------------------------------
# Module-level convenience: an "active world" stack so script-style code (and
# the notebook/mpirun emulation) can resolve MPI.COMM_WORLD for the calling
# thread without plumbing a comm argument.
# ---------------------------------------------------------------------------

_active_worlds: list[World] = []
_active_lock = threading.Lock()


def _push_world(world: World) -> None:
    with _active_lock:
        _active_worlds.append(world)


def _pop_world(world: World) -> None:
    with _active_lock:
        if world in _active_worlds:
            _active_worlds.remove(world)


def current_comm():
    """The calling rank-thread's COMM_WORLD view, for proxy-style access."""
    with _active_lock:
        candidates = list(reversed(_active_worlds))
    for world in candidates:
        try:
            rank = world.rank_of_current_thread()
        except NotInWorldError:
            continue
        return world.comm_world._for_rank(rank)
    raise NotInWorldError(
        "MPI.COMM_WORLD was accessed outside an mpirun/World.run context"
    )


def run(
    fn: Callable[..., Any],
    size: int,
    *args: Any,
    hostname: str = "d6ff4f902ed6",
    deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT,
    **kwargs: Any,
) -> list[Any]:
    """Run an SPMD function on a fresh world of ``size`` ranks.

    Example
    -------
    >>> from repro.mpi import run
    >>> def hello(comm):
    ...     return comm.Get_rank() ** 2
    >>> run(hello, 4)
    [0, 1, 4, 9]
    """
    world = World(size, hostname=hostname, deadlock_timeout=deadlock_timeout)
    _push_world(world)
    try:
        return world.run(fn, args=args, kwargs=kwargs)
    finally:
        _pop_world(world)
