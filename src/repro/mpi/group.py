"""``MPI_Group``: ordered sets of world ranks backing communicators."""

from __future__ import annotations

from typing import Iterable, Sequence

from .constants import UNDEFINED

__all__ = ["Group"]


class Group:
    """An ordered set of world ranks.

    ``group_rank`` (position in the group) is what a communicator built from
    the group uses as its rank; ``world_rank`` is the identity in the
    enclosing world.
    """

    __slots__ = ("_ranks",)

    def __init__(self, world_ranks: Iterable[int]) -> None:
        ranks = tuple(int(r) for r in world_ranks)
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"group contains duplicate ranks: {ranks}")
        self._ranks = ranks

    @property
    def ranks(self) -> tuple[int, ...]:
        return self._ranks

    def Get_size(self) -> int:
        return len(self._ranks)

    @property
    def size(self) -> int:
        return len(self._ranks)

    def Get_rank(self, world_rank: int | None = None) -> int:
        """Group rank of ``world_rank`` (``UNDEFINED`` if not a member)."""
        if world_rank is None:
            raise TypeError(
                "this runtime cannot infer the calling rank from a bare Group; "
                "pass the world rank explicitly"
            )
        try:
            return self._ranks.index(world_rank)
        except ValueError:
            return UNDEFINED

    def Incl(self, ranks: Sequence[int]) -> "Group":
        """Subset group containing the listed group-ranks, in that order."""
        return Group(self._ranks[r] for r in ranks)

    def Excl(self, ranks: Sequence[int]) -> "Group":
        """Group with the listed group-ranks removed, order preserved."""
        drop = set(ranks)
        bad = [r for r in drop if not 0 <= r < len(self._ranks)]
        if bad:
            raise IndexError(f"group ranks out of range: {bad}")
        return Group(r for i, r in enumerate(self._ranks) if i not in drop)

    @staticmethod
    def Translate_ranks(
        group_a: "Group", ranks_a: Sequence[int], group_b: "Group"
    ) -> list[int]:
        """Map ranks of ``group_a`` to their positions in ``group_b``."""
        out = []
        for ra in ranks_a:
            world = group_a._ranks[ra]
            try:
                out.append(group_b._ranks.index(world))
            except ValueError:
                out.append(UNDEFINED)
        return out

    @staticmethod
    def Union(group_a: "Group", group_b: "Group") -> "Group":
        merged = list(group_a._ranks)
        merged.extend(r for r in group_b._ranks if r not in group_a._ranks)
        return Group(merged)

    @staticmethod
    def Intersection(group_a: "Group", group_b: "Group") -> "Group":
        keep = set(group_b._ranks)
        return Group(r for r in group_a._ranks if r in keep)

    @staticmethod
    def Difference(group_a: "Group", group_b: "Group") -> "Group":
        drop = set(group_b._ranks)
        return Group(r for r in group_a._ranks if r not in drop)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    def __len__(self) -> int:
        return len(self._ranks)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Group {self._ranks}>"
