"""Nonblocking-communication request objects (``isend``/``irecv``)."""

from __future__ import annotations

import contextlib
import pickle
import threading
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from . import hooks as _hooks
from .message import wait_event
from .status import Status


@contextlib.contextmanager
def _wait_span(comm: "Intracomm") -> Iterator[None]:
    """Bracket a blocking request wait with wait_enter/wait_exit events."""
    if not _hooks.enabled:
        yield
        return
    cid, rank = comm._obs_cid, comm._rank
    _hooks.emit("wait_enter", cid, rank)
    try:
        yield
    finally:
        _hooks.emit("wait_exit", cid, rank)

if TYPE_CHECKING:  # pragma: no cover
    from .comm import Intracomm


class Request:
    """Handle to a pending nonblocking operation.

    Our sends are eager-buffered, so a send request is complete as soon as
    the envelope is enqueued (synchronous sends complete when matched).  A
    receive request completes when a matching message can be dequeued.
    """

    @classmethod
    def Waitall(cls, requests: Sequence["Request"], statuses: list[Status] | None = None) -> list[Any]:
        """Wait on every request; returns the list of receive payloads."""
        out = []
        for i, req in enumerate(requests):
            status = None
            if statuses is not None:
                while len(statuses) <= i:
                    statuses.append(Status())
                status = statuses[i]
            out.append(req.wait(status=status))
        return out

    @classmethod
    def Waitany(cls, requests: Sequence["Request"]) -> tuple[int, Any]:
        """Poll until some request completes; returns (index, payload)."""
        while True:
            for i, req in enumerate(requests):
                done, payload = req.test()
                if done:
                    return i, payload

    # Subclasses implement wait/test.
    def wait(self, status: Status | None = None) -> Any:  # pragma: no cover - abstract
        raise NotImplementedError

    def test(self, status: Status | None = None) -> tuple[bool, Any]:  # pragma: no cover
        raise NotImplementedError

    # Uppercase aliases (mpi4py has both spellings).
    def Wait(self, status: Status | None = None) -> Any:
        return self.wait(status=status)

    def Test(self, status: Status | None = None) -> tuple[bool, Any]:
        return self.test(status=status)


class SendRequest(Request):
    """Request returned by ``isend``/``Isend``."""

    def __init__(self, comm: "Intracomm", sync_event: threading.Event | None = None) -> None:
        self._comm = comm
        self._sync = sync_event

    def wait(self, status: Status | None = None) -> None:
        if self._sync is not None:
            self._comm._flush_sends()
            with _wait_span(self._comm):
                wait_event(self._sync, self._comm.world)
        return None

    def test(self, status: Status | None = None) -> tuple[bool, None]:
        if self._sync is not None and not self._sync.is_set():
            return False, None
        return True, None


class RecvRequest(Request):
    """Request returned by ``irecv``: completes on a matching arrival."""

    def __init__(self, comm: "Intracomm", source: int, tag: int) -> None:
        self._comm = comm
        self._source = source
        self._tag = tag
        self._done = False
        self._payload: Any = None

    def wait(self, status: Status | None = None) -> Any:
        if not self._done:
            self._comm._flush_sends()
            with _wait_span(self._comm):
                msg = self._comm.mailbox.get(self._source, self._tag)
            self._payload = pickle.loads(msg.payload)
            self._done = True
            if status is not None:
                status._set(msg.source, msg.tag, msg.nbytes)
        return self._payload

    def test(self, status: Status | None = None) -> tuple[bool, Any]:
        if self._done:
            return True, self._payload
        self._comm._flush_sends()
        msg = self._comm.mailbox.try_get(self._source, self._tag)
        if msg is None:
            return False, None
        self._payload = pickle.loads(msg.payload)
        self._done = True
        if status is not None:
            status._set(msg.source, msg.tag, msg.nbytes)
        return True, self._payload


class BufferRecvRequest(Request):
    """Request returned by the uppercase ``Irecv``: fills a typed buffer."""

    def __init__(self, comm: "Intracomm", spec: Any, source: int, tag: int) -> None:
        self._comm = comm
        self._spec = spec
        self._source = source
        self._tag = tag
        self._done = False

    def _complete(self, msg: Any, status: Status | None) -> None:
        self._comm._fill_typed(self._spec, msg)
        self._done = True
        if status is not None:
            status._set(msg.source, msg.tag, msg.nbytes)

    def wait(self, status: Status | None = None) -> None:
        if not self._done:
            self._comm._flush_sends()
            with _wait_span(self._comm):
                msg = self._comm.mailbox.get(self._source, self._tag)
            self._complete(msg, status)
        return None

    def test(self, status: Status | None = None) -> tuple[bool, None]:
        if self._done:
            return True, None
        self._comm._flush_sends()
        msg = self._comm.mailbox.try_get(self._source, self._tag)
        if msg is None:
            return False, None
        self._complete(msg, status)
        return True, None


__all__ = ["Request", "SendRequest", "RecvRequest", "BufferRecvRequest"]
