"""Exception hierarchy for the in-process MPI runtime.

Real MPI reports errors through integer error classes attached to an error
handler; mpi4py surfaces them as :class:`mpi4py.MPI.Exception`.  Our runtime
is pure Python, so we use a small exception hierarchy instead.  Every error
raised by :mod:`repro.mpi` derives from :class:`MPIError` so callers can
catch runtime failures without also swallowing programming errors such as
``TypeError``.
"""

from __future__ import annotations


class MPIError(Exception):
    """Base class for all errors raised by the simulated MPI runtime."""


class InvalidRankError(MPIError, ValueError):
    """A rank argument was outside ``[0, size)`` (and not a valid wildcard)."""

    def __init__(self, rank: int, size: int, what: str = "rank") -> None:
        super().__init__(f"invalid {what} {rank} for communicator of size {size}")
        self.rank = rank
        self.size = size


class InvalidTagError(MPIError, ValueError):
    """A tag argument was negative (and not ``ANY_TAG``)."""

    def __init__(self, tag: int) -> None:
        super().__init__(f"invalid tag {tag}: tags must be non-negative")
        self.tag = tag


class InvalidCountError(MPIError, ValueError):
    """A count/partition argument was malformed (negative, wrong length...)."""


class TruncationError(MPIError):
    """A message arrived that is larger than the receive buffer.

    Mirrors ``MPI_ERR_TRUNCATE``: the uppercase ``Recv`` path requires the
    caller-provided buffer to hold the full incoming message.
    """


class DeadlockError(MPIError):
    """The runtime's watchdog concluded that the ranks can no longer progress.

    Raised instead of hanging forever when, e.g., every rank is blocked in a
    ``recv`` with no matching ``send`` in flight.  The teaching materials use
    this to demonstrate deadlock patternlets safely.
    """


class WorldAbortedError(MPIError):
    """``Comm.Abort`` was invoked (or a sibling rank raised), tearing down the world."""

    def __init__(self, errorcode: int = 1, origin: int | None = None) -> None:
        where = f" by rank {origin}" if origin is not None else ""
        super().__init__(f"MPI world aborted{where} with error code {errorcode}")
        self.errorcode = errorcode
        self.origin = origin


class RankFailedError(MPIError):
    """One or more ranks raised an exception during an SPMD run.

    Carries the per-rank exceptions so tests can assert on the original
    failure rather than a generic wrapper.
    """

    def __init__(self, failures: dict[int, BaseException]) -> None:
        detail = "; ".join(
            f"rank {r}: {type(e).__name__}: {e}" for r, e in sorted(failures.items())
        )
        super().__init__(f"{len(failures)} rank(s) failed: {detail}")
        self.failures = dict(failures)


class RankCrashedError(MPIError):
    """A rank was killed mid-run by an injected fault (``repro.testkit``).

    Raised inside the victim rank at its ``at_op``-th communication
    operation; the runtime's failure aggregation surfaces it to the caller
    wrapped in a deterministic :class:`RankFailedError`.
    """

    def __init__(self, rank: int, at_op: int) -> None:
        super().__init__(
            f"rank {rank} crashed (injected fault at operation {at_op})"
        )
        self.rank = rank
        self.at_op = at_op

    def __reduce__(self):
        # Custom __init__ signature: default exception pickling would call
        # it with the formatted message; process ranks ship this across.
        return (type(self), (self.rank, self.at_op))


class CommAlreadyFreedError(MPIError):
    """An operation was attempted on a communicator after ``Free``."""


class NotInWorldError(MPIError, RuntimeError):
    """A world-bound operation was used from a thread that is not an MPI rank."""
