"""MPI-IO: collective file access (``MPI.File``), as in the mpi4py tutorial.

Implements the tutorial's collective I/O workflow over an ordinary local
file:

    amode = MPI.MODE_WRONLY | MPI.MODE_CREATE
    fh = MPI.File.Open(comm, "./datafile.contig", amode)
    buffer = np.full(10, comm.Get_rank(), dtype='i')
    fh.Write_at_all(comm.Get_rank() * buffer.nbytes, buffer)
    fh.Close()

``Open``/``Close`` are collective (they synchronize on the communicator);
``Write_at``/``Read_at`` are independent; the ``_all`` variants add the
collective barrier semantics.  Rank-distinct offsets give each rank its own
region of one shared file, exactly as the tutorial teaches.
"""

from __future__ import annotations

import os
import threading
from typing import Any

import numpy as np

from .buffers import parse_buffer
from .errors import MPIError

__all__ = [
    "File",
    "MODE_RDONLY",
    "MODE_WRONLY",
    "MODE_RDWR",
    "MODE_CREATE",
    "MODE_EXCL",
    "MODE_APPEND",
    "MODE_DELETE_ON_CLOSE",
]

MODE_RDONLY = 1
MODE_RDWR = 2
MODE_WRONLY = 4
MODE_CREATE = 8
MODE_EXCL = 16
MODE_DELETE_ON_CLOSE = 32
MODE_APPEND = 64


class _SharedHandle:
    """One OS file handle shared by every rank of the communicator."""

    def __init__(self, path: str, amode: int) -> None:
        self.path = path
        self.amode = amode
        self.lock = threading.Lock()
        self.closed = False

        if amode & MODE_EXCL and os.path.exists(path):
            raise MPIError(f"MPI.File.Open: {path!r} exists and MODE_EXCL was set")
        readable = bool(amode & (MODE_RDONLY | MODE_RDWR))
        writable = bool(amode & (MODE_WRONLY | MODE_RDWR | MODE_APPEND))
        if not readable and not writable:
            raise MPIError("MPI.File.Open: access mode must include RDONLY/WRONLY/RDWR")
        if amode & MODE_CREATE and writable:
            flag = "r+b" if os.path.exists(path) else "w+b"
        elif writable:
            if not os.path.exists(path):
                raise MPIError(
                    f"MPI.File.Open: {path!r} does not exist (add MPI.MODE_CREATE)"
                )
            flag = "r+b"
        else:
            flag = "rb"
        self.fh = open(path, flag)  # noqa: SIM115 - lifetime managed by Close

    def close(self) -> None:
        with self.lock:
            if not self.closed:
                self.fh.close()
                self.closed = True
                if self.amode & MODE_DELETE_ON_CLOSE and os.path.exists(self.path):
                    os.unlink(self.path)


class File:
    """A collective file handle bound to one communicator."""

    def __init__(self, comm: Any, handle: _SharedHandle) -> None:
        self._comm = comm
        self._handle = handle

    # ------------------------------------------------------------------- open/close
    @classmethod
    def Open(cls, comm: Any, filename: str, amode: int = MODE_RDONLY) -> "File":
        """Collectively open ``filename`` on every rank of ``comm``.

        The first arriving rank creates the shared handle through the
        world registry; a barrier guarantees the file exists before any
        rank's ``Open`` returns.
        """
        key = ("mpi-file", comm._core.cid, comm._coll_seq, filename, amode)
        # Consume one collective slot so repeated Opens get distinct keys.
        comm.barrier()
        handle = comm._core.world.registry.get_or_create(
            key, lambda: _SharedHandle(filename, amode)
        )
        comm.barrier()
        return cls(comm, handle)

    def Close(self) -> None:
        """Collective close: every rank arrives, then the handle is closed."""
        self._comm.barrier()
        self._handle.close()

    def Get_amode(self) -> int:
        return self._handle.amode

    def Get_size(self) -> int:
        """Current size of the file in bytes."""
        with self._handle.lock:
            self._handle.fh.flush()
            return os.path.getsize(self._handle.path)

    # ------------------------------------------------------------------- writes
    def _write_at(self, offset: int, buf: Any) -> int:
        if offset < 0:
            raise MPIError(f"negative file offset {offset}")
        spec = parse_buffer(buf)
        data = spec.data().tobytes()
        with self._handle.lock:
            if self._handle.closed:
                raise MPIError("write on closed MPI file")
            self._handle.fh.seek(offset)
            self._handle.fh.write(data)
            self._handle.fh.flush()
        return len(data)

    def Write_at(self, offset: int, buf: Any) -> int:
        """Independent write of a typed buffer at an explicit byte offset."""
        return self._write_at(offset, buf)

    def Write_at_all(self, offset: int, buf: Any) -> int:
        """Collective write: all ranks write, then synchronize."""
        written = self._write_at(offset, buf)
        self._comm.barrier()
        return written

    # ------------------------------------------------------------------- reads
    def _read_at(self, offset: int, buf: Any) -> int:
        if offset < 0:
            raise MPIError(f"negative file offset {offset}")
        spec = parse_buffer(buf)
        nbytes = spec.nbytes
        with self._handle.lock:
            if self._handle.closed:
                raise MPIError("read on closed MPI file")
            self._handle.fh.flush()
            self._handle.fh.seek(offset)
            raw = self._handle.fh.read(nbytes)
        if len(raw) < nbytes:
            raise MPIError(
                f"short read: wanted {nbytes} bytes at offset {offset}, got {len(raw)}"
            )
        values = np.frombuffer(raw, dtype=spec.datatype.np_dtype)
        spec.fill(values)
        return len(raw)

    def Read_at(self, offset: int, buf: Any) -> int:
        """Independent read into a typed buffer from an explicit byte offset."""
        return self._read_at(offset, buf)

    def Read_at_all(self, offset: int, buf: Any) -> int:
        """Collective read: all ranks read, then synchronize."""
        nread = self._read_at(offset, buf)
        self._comm.barrier()
        return nread
