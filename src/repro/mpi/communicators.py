"""``create_communicator(name)``: topology-aware communicator variants.

Modeled on chainermn's communicator family: one factory returns a view
over an existing communicator (threads ``Intracomm`` or process-backend
``ProcComm``) whose collectives are specialized for a topology:

``naive``
    Every collective forced to its linear reference algorithm — the
    baseline the differential suite races everything against.
``flat``
    The cost-model auto-pick, unmodified (what a bare communicator does).
``hierarchical``
    ``allreduce``/``Allreduce`` run a two-level schedule: rank-order fold
    to a per-node leader, ring allgather + fold across leaders, broadcast
    back down.  Nodes come from packed placement over the platform's
    cores-per-node (``rank // ranks_per_node``), matching
    :meth:`repro.platforms.machine.Cluster.nodes_for`.
``two_dimensional``
    ``allreduce``/``Allreduce`` run a 2D-mesh schedule (row stage then
    column stage), with the row count the largest divisor of the world
    size not exceeding its square root.

The views delegate everything else to the wrapped communicator, so they
drop into any SPMD body that takes ``comm``.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from . import collectives as _coll
from . import hooks as _hooks
from .ops import SUM, Op

__all__ = ["COMMUNICATOR_NAMES", "CommunicatorView", "create_communicator"]

COMMUNICATOR_NAMES = ("naive", "flat", "hierarchical", "two_dimensional")


def _ranks_per_node(platform: str | None, size: int) -> int:
    """Packed cores-per-node for the named platform (default: env/laptop)."""
    from ..platforms.machine import PLATFORMS

    name = platform or os.environ.get("REPRO_COLL_PLATFORM", "laptop")
    machine = PLATFORMS.get(name) or PLATFORMS["laptop"]
    node = getattr(machine, "node", machine)
    return max(1, min(node.cores, size))


def _mesh_rows(size: int) -> int:
    """Largest divisor of ``size`` that is at most sqrt(size)."""
    rows = 1
    d = 1
    while d * d <= size:
        if size % d == 0:
            rows = d
        d += 1
    return rows


class CommunicatorView:
    """Delegating communicator wrapper; subclasses override collectives."""

    variant = "flat"

    def __init__(self, comm: Any) -> None:
        self._comm = comm

    def __getattr__(self, name: str) -> Any:
        return getattr(self._comm, name)

    # traced_collective reads these off ``self``; route to the wrapped comm.
    @property
    def _obs_cid(self) -> int:
        return self._comm._obs_cid

    @property
    def _rank(self) -> int:
        return self._comm.rank

    def _emit_algo(self, collective: str, algo: str) -> None:
        if _hooks.enabled:
            _hooks.emit("coll_algo", self._obs_cid, self._rank, collective, algo)


class NaiveCommunicator(CommunicatorView):
    """Everything linear: the reference against which the rest is raced."""

    variant = "naive"

    def bcast(self, obj: Any, root: int = 0, **kw: Any) -> Any:
        kw.setdefault("algorithm", "linear")
        return self._comm.bcast(obj, root, **kw)

    def reduce(self, sendobj: Any, op: Op = SUM, root: int = 0, **kw: Any) -> Any:
        kw.setdefault("algorithm", "linear")
        return self._comm.reduce(sendobj, op, root, **kw)

    def allreduce(self, sendobj: Any, op: Op = SUM, **kw: Any) -> Any:
        kw.setdefault("algorithm", "linear")
        return self._comm.allreduce(sendobj, op, **kw)

    def allgather(self, sendobj: Any, **kw: Any) -> Any:
        kw.setdefault("algorithm", "linear")
        return self._comm.allgather(sendobj, **kw)

    def Bcast(self, buf: Any, root: int = 0, **kw: Any) -> None:
        kw.setdefault("algorithm", "linear")
        self._comm.Bcast(buf, root, **kw)

    def Reduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM, root: int = 0,
               **kw: Any) -> None:
        kw.setdefault("algorithm", "linear")
        self._comm.Reduce(sendbuf, recvbuf, op, root, **kw)

    def Allreduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM, **kw: Any) -> None:
        kw.setdefault("algorithm", "linear")
        self._comm.Allreduce(sendbuf, recvbuf, op, **kw)

    def Allgather(self, sendbuf: Any, recvbuf: Any, **kw: Any) -> None:
        kw.setdefault("algorithm", "linear")
        self._comm.Allgather(sendbuf, recvbuf, **kw)


class FlatCommunicator(CommunicatorView):
    """Auto-pick passthrough: the wrapped communicator's own policy."""

    variant = "flat"


class _TopologyCommunicator(CommunicatorView):
    """Shared machinery for the schedule-overriding variants."""

    def _run_schedule(self, value: Any, op: Op, obj_mode: bool) -> Any:
        raise NotImplementedError

    @_hooks.traced_collective
    def allreduce(self, sendobj: Any, op: Op = SUM) -> Any:
        self._emit_algo("allreduce", self.variant)
        comm = self._comm
        if hasattr(comm, "_next_seq"):
            send, recv = comm._obj_transports(comm._next_seq())
        else:
            send, recv = comm._obj_transports()
        return self._schedule(comm.rank, comm.size, sendobj, op, send, recv)

    @_hooks.traced_collective
    def Allreduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM) -> None:
        self._emit_algo("allreduce", self.variant)
        comm = self._comm
        from .buffers import parse_buffer

        sspec = parse_buffer(sendbuf)
        if hasattr(comm, "_next_seq"):
            send, recv = comm._buf_transports(comm._next_seq())
            result = self._schedule(
                comm.rank, comm.size, sspec.array[: sspec.count], op, send, recv
            )
            comm._fill_spec(parse_buffer(recvbuf), np.asarray(result))
        else:
            send, recv = comm._transports()
            result = self._schedule(
                comm.rank, comm.size, sspec.data(), op, send, recv
            )
            comm._fill_array(parse_buffer(recvbuf), result)

    def _schedule(self, rank: int, size: int, value: Any, op: Op,
                  send: Any, recv: Any) -> Any:
        raise NotImplementedError


class HierarchicalCommunicator(_TopologyCommunicator):
    variant = "hierarchical"

    def __init__(self, comm: Any, *, platform: str | None = None,
                 ranks_per_node: int | None = None) -> None:
        super().__init__(comm)
        self.ranks_per_node = ranks_per_node or _ranks_per_node(
            platform, comm.size
        )

    def _schedule(self, rank, size, value, op, send, recv):
        rpn = self.ranks_per_node
        return _coll.allreduce_hierarchical(
            rank, size, value, op, send, recv, lambda r: r // rpn
        )


class TwoDimensionalCommunicator(_TopologyCommunicator):
    variant = "two_dimensional"

    def __init__(self, comm: Any, *, rows: int | None = None) -> None:
        super().__init__(comm)
        self.rows = rows or _mesh_rows(comm.size)
        if comm.size % self.rows:
            raise ValueError(
                f"rows={self.rows} must divide the world size {comm.size}"
            )

    def _schedule(self, rank, size, value, op, send, recv):
        return _coll.allreduce_two_dimensional(
            rank, size, value, op, send, recv, self.rows
        )


def create_communicator(
    name: str = "flat",
    comm: Any = None,
    **kwargs: Any,
) -> CommunicatorView:
    """Build a topology-aware communicator view over ``comm``.

    ``name`` is one of :data:`COMMUNICATOR_NAMES`.  ``hierarchical``
    accepts ``platform=`` (a :data:`repro.platforms.machine.PLATFORMS`
    key) or an explicit ``ranks_per_node=``; ``two_dimensional`` accepts
    ``rows=``.  Works over both the threads and forked-process backends.
    """
    if comm is None:
        raise TypeError(
            "create_communicator needs the backing comm: "
            "create_communicator(name, comm)"
        )
    if name == "naive":
        return NaiveCommunicator(comm, **kwargs)
    if name == "flat":
        return FlatCommunicator(comm, **kwargs)
    if name == "hierarchical":
        return HierarchicalCommunicator(comm, **kwargs)
    if name == "two_dimensional":
        return TwoDimensionalCommunicator(comm, **kwargs)
    raise ValueError(
        f"unknown communicator variant {name!r}; "
        f"choose from {COMMUNICATOR_NAMES}"
    )
