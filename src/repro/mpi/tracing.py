"""Communication tracing: who sent how much to whom.

Teaching aid and benchmarking instrument: wrap a world in a
:class:`CommTracer` to record every user-context message (source, dest,
tag, bytes), then summarize as per-rank totals or a traffic matrix.

The tracer is a consumer of the :mod:`repro.mpi.hooks` event bus — the
same seam the :mod:`repro.obs` recorders subscribe to — rather than a
mailbox monkey-patch: it attaches a plain (untimestamped) observer and
keeps only the events whose communicator id matches the communicator it
was attached to.  Alongside user point-to-point traffic it now also
counts collective-context traffic (``coll_msg`` events), reported
separately so the patternlet pedagogy — count the *explicit* sends and
recvs — is undisturbed.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from . import hooks as _hooks

__all__ = ["MessageRecord", "TraceReport", "CommTracer", "trace_run"]

#: Tag used for collective-context records (collectives carry no user tag).
COLLECTIVE_TAG = -1


@dataclass(frozen=True)
class MessageRecord:
    """One observed user-context message."""

    source: int
    dest: int
    tag: int
    nbytes: int


@dataclass
class TraceReport:
    """Aggregated view of a traced run."""

    size: int
    records: list[MessageRecord]
    collective_records: list[MessageRecord] = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    @property
    def collective_messages(self) -> int:
        return len(self.collective_records)

    @property
    def collective_bytes(self) -> int:
        return sum(r.nbytes for r in self.collective_records)

    def traffic_matrix(self) -> list[list[int]]:
        """``matrix[src][dst]`` = messages sent src -> dst."""
        matrix = [[0] * self.size for _ in range(self.size)]
        for r in self.records:
            matrix[r.source][r.dest] += 1
        return matrix

    def sent_by(self, rank: int) -> int:
        return sum(1 for r in self.records if r.source == rank)

    def received_by(self, rank: int) -> int:
        return sum(1 for r in self.records if r.dest == rank)

    def format_matrix(self) -> str:
        matrix = self.traffic_matrix()
        header = "src\\dst " + " ".join(f"{d:>5}" for d in range(self.size))
        rows = [
            f"{src:>7} " + " ".join(f"{n:>5}" for n in row)
            for src, row in enumerate(matrix)
        ]
        lines = [header, *rows, f"total: {self.total_messages} messages, "
                                f"{self.total_bytes} bytes"]
        if self.collective_records:
            lines.append(
                f"collective: {self.collective_messages} messages, "
                f"{self.collective_bytes} bytes"
            )
        return "\n".join(lines)


class CommTracer:
    """Record user-context messages flowing through one communicator.

    Subscribes a plain observer to the MPI hook bus; ``send`` events
    become user records, ``coll_msg`` events become collective records.
    Events for other communicators (different ``cid``) are ignored.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[MessageRecord] = []
        self._collective: list[MessageRecord] = []
        self._cid: int | None = None
        self._size = 0
        self._attached = False

    def _observe(self, event: str, *args: Any) -> None:
        if event == "send":
            cid, src, dest, tag, nbytes = args[:5]
            if cid != self._cid:
                return
            record = MessageRecord(src, dest, tag, nbytes)
            with self._lock:
                self._records.append(record)
        elif event == "coll_msg":
            cid, src, dest, nbytes = args[:4]
            if cid != self._cid:
                return
            record = MessageRecord(src, dest, COLLECTIVE_TAG, nbytes)
            with self._lock:
                self._collective.append(record)

    def attach(self, comm: Any) -> None:
        """Start recording traffic on ``comm``'s communicator."""
        self._cid = comm._obs_cid
        self._size = comm.size
        if not self._attached:
            _hooks.attach(self._observe)
            self._attached = True

    def detach(self) -> None:
        if self._attached:
            _hooks.detach(self._observe)
            self._attached = False

    def report(self) -> TraceReport:
        with self._lock:
            return TraceReport(
                self._size, list(self._records), list(self._collective)
            )


def trace_run(fn: Any, np: int, *args: Any, **kwargs: Any) -> tuple[list[Any], TraceReport]:
    """Run an SPMD function with tracing; return (results, trace report).

    COMM_WORLD's user-context point-to-point traffic makes up the main
    report — per the patternlet pedagogy, the explicit sends/recvs
    learners should count — with collective-context traffic tallied
    separately in ``collective_records``.
    """
    from .runtime import World, _pop_world, _push_world

    world = World(np, **{k: v for k, v in kwargs.items() if k in (
        "hostname", "deadlock_timeout")})
    fn_kwargs = {k: v for k, v in kwargs.items() if k not in (
        "hostname", "deadlock_timeout")}
    tracer = CommTracer()
    tracer.attach(world.comm_world)
    _push_world(world)
    try:
        results = world.run(fn, args=args, kwargs=fn_kwargs)
    finally:
        _pop_world(world)
        tracer.detach()
    return results, tracer.report()
