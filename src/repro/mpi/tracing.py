"""Communication tracing: who sent how much to whom.

Teaching aid and benchmarking instrument: wrap a world in a
:class:`CommTracer` to record every user-context message (source, dest,
tag, bytes), then summarize as per-rank totals or a traffic matrix.  The
runtime stays untouched — tracing hooks the mailbox ``put`` path of the
communicator cores reachable from COMM_WORLD at attach time.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = ["MessageRecord", "TraceReport", "CommTracer", "trace_run"]


@dataclass(frozen=True)
class MessageRecord:
    """One observed user-context message."""

    source: int
    dest: int
    tag: int
    nbytes: int


@dataclass
class TraceReport:
    """Aggregated view of a traced run."""

    size: int
    records: list[MessageRecord]

    @property
    def total_messages(self) -> int:
        return len(self.records)

    @property
    def total_bytes(self) -> int:
        return sum(r.nbytes for r in self.records)

    def traffic_matrix(self) -> list[list[int]]:
        """``matrix[src][dst]`` = messages sent src -> dst."""
        matrix = [[0] * self.size for _ in range(self.size)]
        for r in self.records:
            matrix[r.source][r.dest] += 1
        return matrix

    def sent_by(self, rank: int) -> int:
        return sum(1 for r in self.records if r.source == rank)

    def received_by(self, rank: int) -> int:
        return sum(1 for r in self.records if r.dest == rank)

    def format_matrix(self) -> str:
        matrix = self.traffic_matrix()
        header = "src\\dst " + " ".join(f"{d:>5}" for d in range(self.size))
        rows = [
            f"{src:>7} " + " ".join(f"{n:>5}" for n in row)
            for src, row in enumerate(matrix)
        ]
        return "\n".join(
            [header, *rows, f"total: {self.total_messages} messages, "
                            f"{self.total_bytes} bytes"]
        )


class CommTracer:
    """Attach to a communicator core and record user-context messages."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._records: list[MessageRecord] = []
        self._unpatch: list[Any] = []
        self._size = 0

    def attach(self, comm: Any) -> None:
        """Instrument every rank's user mailbox of ``comm``'s core."""
        core = comm._core
        self._size = core.size
        for dest, mailbox in enumerate(core.user_boxes):
            original_put = mailbox.put

            def tracing_put(message, _orig=original_put, _dest=dest):
                with self._lock:
                    self._records.append(
                        MessageRecord(
                            source=message.source,
                            dest=_dest,
                            tag=message.tag,
                            nbytes=message.nbytes,
                        )
                    )
                _orig(message)

            mailbox.put = tracing_put  # type: ignore[method-assign]
            self._unpatch.append((mailbox, original_put))

    def detach(self) -> None:
        for mailbox, original_put in self._unpatch:
            mailbox.put = original_put  # type: ignore[method-assign]
        self._unpatch.clear()

    def report(self) -> TraceReport:
        with self._lock:
            return TraceReport(self._size, list(self._records))


def trace_run(fn: Any, np: int, *args: Any, **kwargs: Any) -> tuple[list[Any], TraceReport]:
    """Run an SPMD function with tracing; return (results, trace report).

    Only COMM_WORLD's user-context point-to-point traffic is recorded —
    collective-context traffic is internal machinery, and per the patternlet
    pedagogy it is the explicit sends/recvs learners should count.
    """
    from .runtime import World, _pop_world, _push_world

    world = World(np, **{k: v for k, v in kwargs.items() if k in (
        "hostname", "deadlock_timeout")})
    fn_kwargs = {k: v for k, v in kwargs.items() if k not in (
        "hostname", "deadlock_timeout")}
    tracer = CommTracer()
    tracer.attach(world.comm_world)
    _push_world(world)
    try:
        results = world.run(fn, args=args, kwargs=fn_kwargs)
    finally:
        _pop_world(world)
        tracer.detach()
    return results, tracer.report()
