"""Message envelopes and per-rank mailboxes.

A :class:`Mailbox` is the receive queue of one rank within one communicator
context.  Matching follows the MPI standard:

* a receive posted with ``(source, tag)`` matches the *earliest arrived*
  pending message whose envelope satisfies both fields, where
  ``ANY_SOURCE`` / ``ANY_TAG`` act as wildcards;
* messages between one (sender, receiver, tag) triple are non-overtaking —
  guaranteed here because each mailbox is a FIFO list scanned in arrival
  order.

Blocking receives park on a condition variable.  Every blocking wait
registers with the world's progress tracker so that a global
all-ranks-blocked state is detected and surfaced as
:class:`~repro.mpi.errors.DeadlockError` instead of hanging the process.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from .constants import ANY_SOURCE, ANY_TAG
from .errors import DeadlockError, WorldAbortedError

if TYPE_CHECKING:  # pragma: no cover
    from .runtime import World

_seq_counter = itertools.count()


@dataclass(frozen=True)
class BufferHandle:
    """Descriptor for a typed payload that travels outside the envelope.

    The process-rank transport ships NumPy buffers either inline as raw
    bytes (``shm_name is None``, payload in ``data``) or through a
    ``multiprocessing.shared_memory`` segment (``shm_name`` set, ``data``
    ``None``) — in both cases the envelope that crosses the pipe carries
    this handle, never a pickled array.  ``mode`` tells the receiver who
    owns a shared segment: ``"owned"`` means the receiver unlinks after
    copying out (single-use), ``"acked"`` means the sender owns and reuses
    the segment and the receiver must acknowledge the copy-out (see
    :mod:`repro.mpi.shm`).
    """

    shm_name: str | None
    shape: tuple[int, ...]
    dtype: str
    offset: int = 0
    mode: str = "owned"
    data: bytes | None = None

    @property
    def count(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n


@dataclass
class Message:
    """An in-flight message envelope.

    ``payload`` is the already-serialized (or already-copied) content, so the
    receiver can never observe sender-side mutation after the send call.
    ``nbytes`` is the approximate wire size used for ``Status.Get_count``.
    """

    source: int
    tag: int
    payload: Any
    nbytes: int
    synchronous: threading.Event | None = None
    seq: int = field(default_factory=lambda: next(_seq_counter))

    def matches(self, source: int, tag: int) -> bool:
        """Whether this envelope satisfies a receive posted for (source, tag)."""
        return (source == ANY_SOURCE or source == self.source) and (
            tag == ANY_TAG or tag == self.tag
        )


class Mailbox:
    """FIFO receive queue for one (communicator-context, rank) endpoint."""

    def __init__(self, world: "World") -> None:
        self._world = world
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: list[Message] = []

    def put(self, message: Message) -> None:
        """Deliver a message (called from the sender's thread)."""
        with self._cond:
            self._pending.append(message)
            self._cond.notify_all()

    def put_many(self, messages: list[Message]) -> None:
        """Deliver a coalesced batch under one lock acquisition."""
        with self._cond:
            self._pending.extend(messages)
            self._cond.notify_all()

    def _find(self, source: int, tag: int) -> Message | None:
        for i, msg in enumerate(self._pending):
            if msg.matches(source, tag):
                return self._pending.pop(i)
        return None

    def _peek(self, source: int, tag: int) -> Message | None:
        for msg in self._pending:
            if msg.matches(source, tag):
                return msg
        return None

    def try_get(self, source: int, tag: int) -> Message | None:
        """Non-blocking matched dequeue; None when nothing matches."""
        self._world.check_abort()
        with self._cond:
            msg = self._find(source, tag)
        if msg is not None and msg.synchronous is not None:
            msg.synchronous.set()
        return msg

    def get(self, source: int, tag: int) -> Message:
        """Blocking matched dequeue with abort and deadlock detection."""
        msg = self._blocking_wait(lambda: self._find(source, tag))
        if msg.synchronous is not None:
            msg.synchronous.set()
        return msg

    def probe(self, source: int, tag: int, block: bool = True) -> Message | None:
        """Matched peek without dequeueing (``Probe``/``Iprobe``)."""
        self._world.check_abort()
        if not block:
            with self._cond:
                return self._peek(source, tag)
        return self._blocking_wait(lambda: self._peek(source, tag))

    def _blocking_wait(self, attempt: Callable[[], Message | None]) -> Message:
        """Wait until ``attempt`` yields a message, polling world liveness.

        The poll interval is short so an abort or a detected deadlock
        propagates to every parked rank quickly.
        """
        world = self._world
        world.check_abort()
        with self._cond:
            msg = attempt()
            if msg is not None:
                return msg
            world.enter_blocked()
            try:
                while True:
                    self._cond.wait(timeout=world.poll_interval)
                    msg = attempt()
                    if msg is not None:
                        return msg
                    world.check_abort()
                    if world.deadlock_suspected():
                        world.abort_with(DeadlockError(
                            "all ranks are blocked with no matching message in "
                            "flight (classic deadlock); check your send/recv "
                            "ordering"
                        ))
                        world.check_abort()  # raises for us
            finally:
                world.exit_blocked()

    def drain(self) -> list[Message]:
        """Remove and return all pending messages (used at teardown)."""
        with self._cond:
            pending, self._pending = self._pending, []
            return pending

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)


def wait_event(event: threading.Event, world: "World") -> None:
    """Block on an event with the same abort/deadlock vigilance as a receive.

    Used by synchronous sends, which park until the matching receive
    consumes their envelope.
    """
    world.check_abort()
    if event.is_set():
        return
    world.enter_blocked()
    try:
        while not event.wait(timeout=world.poll_interval):
            world.check_abort()
            if world.deadlock_suspected():
                world.abort_with(DeadlockError(
                    "all ranks are blocked: a synchronous send has no matching "
                    "receive"
                ))
                world.check_abort()
    finally:
        world.exit_blocked()


__all__ = ["BufferHandle", "Message", "Mailbox", "wait_event", "WorldAbortedError"]
