"""``mpirun``/``mpiexec`` emulation.

Two launch styles:

* **Function mode** — :func:`mpirun` runs ``fn(comm, *args)`` SPMD on N rank
  threads and returns the per-rank results.  This is the programmatic API
  the patternlets and exemplars use.
* **Script mode** — :func:`run_script` executes Python *source text* once per
  rank, each rank with private module globals, a captured ``print``, and a
  ``mpi4py``-compatible ``MPI`` module injected, so code written exactly like
  the paper's Colab cells (``from mpi4py import MPI`` ... ``mpirun -np 4
  python 00spmd.py``) runs unchanged.  The notebook emulation layer parses
  the shell command with :func:`parse_mpirun_command`.
"""

from __future__ import annotations

import os
import shlex
import sys
import types
from dataclasses import dataclass, field
from typing import Any, Callable

from .constants import DEFAULT_DEADLOCK_TIMEOUT
from .runtime import World, _pop_world, _push_world

__all__ = [
    "mpirun",
    "run_script",
    "parse_mpirun_command",
    "MpirunInvocation",
    "ScriptResult",
    "install_mpi4py_shim",
    "MPI_BACKENDS",
]


#: Valid values for the launcher's execution-backend axis.
MPI_BACKENDS = ("threads", "processes")


def _resolve_mpi_backend(backend: str | None) -> str:
    name = (backend or os.environ.get("REPRO_MPI_BACKEND") or "threads")
    name = name.strip().lower()
    if name not in MPI_BACKENDS:
        raise ValueError(
            f"unknown MPI backend {name!r}; expected one of {MPI_BACKENDS}"
        )
    return name


def mpirun(
    fn: Callable[..., Any],
    np: int,
    *args: Any,
    hostname: str = "d6ff4f902ed6",
    deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT,
    backend: str | None = None,
    **kwargs: Any,
) -> list[Any]:
    """Run an SPMD function across ``np`` ranks; return per-rank results.

    ``backend`` selects rank execution: ``"threads"`` (default — the full
    in-process runtime: typed buffers, windows, splitting, tracing) or
    ``"processes"`` (forked OS ranks with pipe transport for real
    multicore speedup; core comm API only — see :mod:`repro.mpi.procs`).
    ``None`` defers to the ``REPRO_MPI_BACKEND`` environment variable.
    """
    if _resolve_mpi_backend(backend) == "processes":
        from .procs import run_procs

        return run_procs(
            fn,
            np,
            *args,
            hostname=hostname,
            deadlock_timeout=deadlock_timeout,
            **kwargs,
        )
    world = World(np, hostname=hostname, deadlock_timeout=deadlock_timeout)
    _push_world(world)
    try:
        return world.run(fn, args=args, kwargs=kwargs)
    finally:
        _pop_world(world)


def install_mpi4py_shim() -> types.ModuleType:
    """Make ``from mpi4py import MPI`` resolve to our in-process runtime.

    Idempotent; refuses to shadow a *real* mpi4py installation if one is
    importable (it is not in the reproduction environment, but be safe).
    """
    from . import api

    existing = sys.modules.get("mpi4py")
    if existing is not None and getattr(existing, "__repro_shim__", False):
        return existing
    if existing is not None:  # pragma: no cover - real mpi4py present
        raise RuntimeError("a real mpi4py is already imported; refusing to shadow it")
    shim = types.ModuleType("mpi4py")
    shim.MPI = api
    shim.__repro_shim__ = True
    sys.modules["mpi4py"] = shim
    sys.modules["mpi4py.MPI"] = api
    return shim


@dataclass
class MpirunInvocation:
    """Parsed form of an ``mpirun``-style shell command."""

    np: int
    program: str
    script: str
    extra_args: list[str] = field(default_factory=list)
    allow_run_as_root: bool = False


def parse_mpirun_command(command: str) -> MpirunInvocation:
    """Parse ``mpirun [--allow-run-as-root] -np N python file.py [args...]``.

    Accepts both ``-np`` and the ``-mp`` typo that appears in the paper's
    Fig. 2 screenshot, plus ``-n`` and ``--np``.
    """
    tokens = shlex.split(command)
    if not tokens or tokens[0] not in {"mpirun", "mpiexec"}:
        raise ValueError(f"not an mpirun command: {command!r}")
    np = None
    allow_root = False
    rest: list[str] = []
    i = 1
    while i < len(tokens):
        tok = tokens[i]
        if tok in {"-np", "-n", "--np", "-mp", "--n"}:
            if i + 1 >= len(tokens):
                raise ValueError(f"{tok} requires a value")
            np = int(tokens[i + 1])
            i += 2
        elif tok == "--allow-run-as-root":
            allow_root = True
            i += 1
        elif tok.startswith("-") and np is None and tok[1:].isdigit():
            np = int(tok[1:])
            i += 1
        else:
            rest.append(tok)
            i += 1
    if np is None:
        np = 1
    if np < 1:
        raise ValueError(f"process count must be positive, got {np}")
    if not rest:
        raise ValueError(f"no program given in mpirun command: {command!r}")
    program = rest[0]
    if program.startswith("python"):
        if len(rest) < 2:
            raise ValueError("mpirun ... python requires a script path")
        script = rest[1]
        extra = rest[2:]
    else:
        script = program
        extra = rest[1:]
    return MpirunInvocation(
        np=np,
        program=program,
        script=script,
        extra_args=extra,
        allow_run_as_root=allow_root,
    )


@dataclass
class ScriptResult:
    """Outcome of a script-mode launch."""

    np: int
    stdout_lines: list[str]
    per_rank_lines: dict[int, list[str]]

    @property
    def stdout(self) -> str:
        return "\n".join(self.stdout_lines)


def run_script(
    source: str,
    np: int,
    *,
    script_name: str = "<mpi-script>",
    argv: list[str] | None = None,
    hostname: str = "d6ff4f902ed6",
    deadlock_timeout: float = DEFAULT_DEADLOCK_TIMEOUT,
) -> ScriptResult:
    """Execute Python source SPMD on ``np`` rank threads, capturing prints.

    Each rank gets a private globals dict (so module-level state is
    per-process, as with real ``mpirun``), a ``print`` that records to the
    world console in arrival order, and ``sys.argv``-style arguments via the
    ``ARGV`` global.
    """
    install_mpi4py_shim()
    code = compile(source, script_name, "exec")
    world = World(np, hostname=hostname, deadlock_timeout=deadlock_timeout)

    def entry(comm) -> None:
        rank = comm.Get_rank()

        def rank_print(*values: Any, sep: str = " ", end: str = "\n") -> None:
            text = sep.join(str(v) for v in values) + ("" if end == "\n" else end)
            world.console.write(rank, text)

        scope: dict[str, Any] = {
            "__name__": "__main__",
            "__file__": script_name,
            "print": rank_print,
            "ARGV": list(argv or []),
        }
        exec(code, scope)  # noqa: S102 - deliberate: this *is* the interpreter

    _push_world(world)
    try:
        world.run(entry)
    finally:
        _pop_world(world)
    return ScriptResult(
        np=np,
        stdout_lines=world.console.lines(),
        per_rank_lines={r: world.console.lines(r) for r in range(np)},
    )
