"""Collective-communication algorithms.

Every collective in :class:`repro.mpi.comm.Intracomm` is implemented here on
top of internal point-to-point transfers in a dedicated *collective context*
(a second mailbox set per communicator), exactly as real MPI libraries
separate contexts so user ``ANY_TAG`` receives can never steal collective
traffic.

Algorithms implemented (selectable via :mod:`repro.mpi.algorithms`):

===============  =================================================
collective       algorithms
===============  =================================================
barrier          dissemination (lg P rounds)
bcast            binomial tree, scatter+ring-allgather
                 (Rabenseifner-style), linear
reduce           binomial tree (commutative ops), linear rank-order
                 fold (always valid; required for non-commutative)
scatter/gather   linear to/from root
allgather        ring (P-1 steps), gather+bcast (linear)
alltoall         pairwise exchange
scan/exscan      linear chain
allreduce        recursive doubling, ring (reduce-scatter +
                 allgather for chunkable commutative payloads,
                 allgather+rank-order fold otherwise), linear
                 (reduce + bcast), hierarchical / two-dimensional
                 topology-aware schedules
===============  =================================================

The transport callbacks ``send(dest, phase, payload)`` and
``recv(source, phase) -> payload`` are supplied by the communicator; payloads
are opaque (pickled bytes for object collectives, NumPy arrays for buffer
collectives), so each algorithm is written once and reused by both the
lowercase and uppercase verbs.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .ops import Op

Send = Callable[[int, int, Any], None]
Recv = Callable[[int, int], Any]
Split = Callable[[Any, int], Sequence[Any]]
Concat = Callable[[Sequence[Any]], Any]

__all__ = [
    "barrier_dissemination",
    "bcast_binomial",
    "bcast_linear",
    "bcast_scatter_allgather",
    "reduce_linear",
    "reduce_binomial",
    "scatter_linear",
    "gather_linear",
    "allgather_ring",
    "allgather_linear",
    "alltoall_pairwise",
    "scan_linear",
    "exscan_linear",
    "allreduce_recursive_doubling",
    "allreduce_ring",
    "allreduce_linear",
    "allreduce_hierarchical",
    "allreduce_two_dimensional",
    "split_bytes",
    "shifted",
]


def shifted(send: Send, recv: Recv, base: int) -> tuple[Send, Recv]:
    """Offset every phase by ``base`` so composed algorithms never collide."""

    def send2(dest: int, phase: int, payload: Any) -> None:
        send(dest, base + phase, payload)

    def recv2(source: int, phase: int) -> Any:
        return recv(source, base + phase)

    return send2, recv2


def split_bytes(payload: bytes, n: int) -> list[bytes]:
    """Split ``payload`` into ``n`` near-equal contiguous slices (some may
    be empty); ``b"".join`` of the result reproduces the input exactly."""
    total = len(payload)
    base, extra = divmod(total, n)
    chunks: list[bytes] = []
    offset = 0
    for i in range(n):
        span = base + (1 if i < extra else 0)
        chunks.append(payload[offset : offset + span])
        offset += span
    return chunks


def barrier_dissemination(rank: int, size: int, send: Send, recv: Recv) -> None:
    """Dissemination barrier: ceil(lg P) rounds of shifted token exchange."""
    if size == 1:
        return
    k = 1
    phase = 0
    while k < size:
        send((rank + k) % size, phase, b"")
        recv((rank - k) % size, phase)
        k <<= 1
        phase += 1


def bcast_binomial(rank: int, size: int, root: int, payload: Any, send: Send, recv: Recv) -> Any:
    """Binomial-tree broadcast; returns the payload at every rank.

    Ranks are renumbered relative to the root so the tree is rooted at 0;
    at step ``k`` every rank that already has the data forwards it to the
    peer ``2^k`` positions away.
    """
    if size == 1:
        return payload
    vrank = (rank - root) % size
    # Walk up to the lowest set bit of vrank: that bit names our parent.
    # vrank 0 has no set bit; its mask grows past size, covering all children.
    mask = 1
    while mask < size and not (vrank & mask):
        mask <<= 1
    if vrank != 0:
        parent = ((vrank - mask) + root) % size
        payload = recv(parent, 0)
    # Children sit at vrank + m for every power of two m below our parent bit.
    child = mask >> 1
    while child > 0:
        if vrank + child < size:
            send((vrank + child + root) % size, 0, payload)
        child >>= 1
    return payload


def bcast_linear(rank: int, size: int, root: int, payload: Any, send: Send, recv: Recv) -> Any:
    """Root sends to everyone directly (O(P) at the root)."""
    if rank == root:
        for dest in range(size):
            if dest != root:
                send(dest, 0, payload)
        return payload
    return recv(root, 0)


def reduce_linear(
    rank: int,
    size: int,
    root: int,
    value: Any,
    op: Op,
    send: Send,
    recv: Recv,
) -> Any:
    """Gather to root and fold strictly in rank order (any op, any size)."""
    if rank != root:
        send(root, 0, value)
        return None
    parts = []
    for src in range(size):
        parts.append(value if src == root else recv(src, 0))
    return op.reduce_sequence(parts)


def reduce_binomial(
    rank: int,
    size: int,
    root: int,
    value: Any,
    op: Op,
    send: Send,
    recv: Recv,
) -> Any:
    """Binomial-tree reduction (requires a commutative-safe op ordering).

    At step ``k`` ranks whose ``k``-th bit is set send their partial to the
    peer ``2^k`` below and retire; the survivor combines.  With the virtual
    renumbering, partials always combine lower-vrank ⊕ higher-vrank, which
    preserves rank order within each subtree.
    """
    vrank = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if vrank & mask:
            dest = ((vrank & ~mask) + root) % size
            send(dest, 0, acc)
            return None
        partner = vrank | mask
        if partner < size:
            incoming = recv((partner + root) % size, 0)
            acc = op(acc, incoming)
        mask <<= 1
    return acc if rank == root else None


def scatter_linear(
    rank: int,
    size: int,
    root: int,
    chunks: Sequence[Any] | None,
    send: Send,
    recv: Recv,
) -> Any:
    """Root sends chunk ``i`` to rank ``i``; returns the local chunk."""
    if rank == root:
        assert chunks is not None
        for dest in range(size):
            if dest != root:
                send(dest, 0, chunks[dest])
        return chunks[root]
    return recv(root, 0)


def gather_linear(
    rank: int,
    size: int,
    root: int,
    value: Any,
    send: Send,
    recv: Recv,
) -> list[Any] | None:
    """Every rank sends its value to root; root returns the ordered list."""
    if rank != root:
        send(root, 0, value)
        return None
    return [value if src == root else recv(src, 0) for src in range(size)]


def allgather_ring(rank: int, size: int, value: Any, send: Send, recv: Recv) -> list[Any]:
    """Ring allgather: P-1 steps, each forwarding the newest-received block.

    The block index at every step is a pure function of ``(rank, step)``, so
    no metadata rides along with the payload — the wire carries the block
    bytes alone, which keeps the buffer path zero-copy.
    """
    blocks: list[Any] = [None] * size
    blocks[rank] = value
    if size == 1:
        return blocks
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send(right, step, blocks[(rank - step) % size])
        blocks[(rank - step - 1) % size] = recv(left, step)
    return blocks


def allgather_linear(
    rank: int,
    size: int,
    value: Any,
    send: Send,
    recv: Recv,
    *,
    concat: Concat | None = None,
) -> Any:
    """Gather to rank 0 then broadcast the assembled result (phases 0 and 1).

    With ``concat`` the root joins the blocks before the broadcast and every
    rank returns the joined payload (needed by transports that can only ship
    flat buffers); without it every rank returns the ordered block list.
    """
    gathered = gather_linear(rank, size, 0, value, send, recv)
    if rank == 0 and concat is not None:
        gathered = concat(gathered)
    send2, recv2 = shifted(send, recv, 1)
    return bcast_linear(rank, size, 0, gathered, send2, recv2)


def bcast_scatter_allgather(
    rank: int,
    size: int,
    root: int,
    payload: Any,
    send: Send,
    recv: Recv,
    *,
    split: Split,
    concat: Concat,
) -> Any:
    """Rabenseifner-style broadcast: scatter chunks, then ring allgather.

    Bandwidth-optimal for large payloads: every rank moves ~2·n/P bytes per
    step instead of the full n.  Phase 0 is the scatter; the ring runs on
    phases 1..P-1.
    """
    if size == 1:
        return payload
    if rank == root:
        chunks = split(payload, size)
        for dest in range(size):
            if dest != root:
                send(dest, 0, chunks[dest])
        mine = chunks[rank]
    else:
        mine = recv(root, 0)
    send2, recv2 = shifted(send, recv, 1)
    blocks = allgather_ring(rank, size, mine, send2, recv2)
    if rank == root:
        return payload
    return concat(blocks)


def alltoall_pairwise(
    rank: int,
    size: int,
    outgoing: Sequence[Any],
    send: Send,
    recv: Recv,
) -> list[Any]:
    """Pairwise-exchange all-to-all: step k swaps with rank XOR-shifted by k."""
    incoming: list[Any] = [None] * size
    incoming[rank] = outgoing[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        src = (rank - step) % size
        send(dest, step, outgoing[dest])
        incoming[src] = recv(src, step)
    return incoming


def scan_linear(rank: int, size: int, value: Any, op: Op, send: Send, recv: Recv) -> Any:
    """Inclusive prefix reduction along the rank chain."""
    acc = value
    if rank > 0:
        acc = op(recv(rank - 1, 0), value)
    if rank + 1 < size:
        send(rank + 1, 0, acc)
    return acc


def exscan_linear(
    rank: int, size: int, value: Any, op: Op, send: Send, recv: Recv
) -> Any:
    """Exclusive prefix reduction; rank 0 receives None (MPI: undefined)."""
    prefix = None
    if rank > 0:
        prefix = recv(rank - 1, 0)
    if rank + 1 < size:
        outgoing = value if prefix is None else op(prefix, value)
        send(rank + 1, 0, outgoing)
    return prefix


def allreduce_recursive_doubling(
    rank: int, size: int, value: Any, op: Op, send: Send, recv: Recv
) -> Any:
    """Recursive-doubling allreduce for commutative ops.

    For non-power-of-two sizes the excess ranks fold into a partner first
    and receive the final result at the end (the standard pre/post phase).
    """
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    acc = value
    # Pre-phase: the first 2*rem ranks pair up; odd ones retire.
    if rank < 2 * rem:
        if rank % 2:  # odd: send partial down, wait for final result later
            send(rank - 1, 100, acc)
            return recv(rank - 1, 101)
        incoming = recv(rank + 1, 100)
        acc = op(acc, incoming)
        newrank = rank // 2
    elif rank < size:
        newrank = rank - rem
    # Core recursive doubling among pof2 survivors.
    def old(nr: int) -> int:
        return nr * 2 if nr < rem else nr + rem

    mask = 1
    phase = 0
    while mask < pof2:
        partner = old(newrank ^ mask)
        send(partner, phase, acc)
        incoming = recv(partner, phase)
        acc = op(acc, incoming) if (newrank & mask) == 0 else op(incoming, acc)
        mask <<= 1
        phase += 1
    # Post-phase: deliver results to the retired odd ranks.
    if rank < 2 * rem:
        send(rank + 1, 101, acc)
    return acc


def allreduce_linear(
    rank: int, size: int, value: Any, op: Op, send: Send, recv: Recv
) -> Any:
    """Reference allreduce: rank-order fold at 0, then linear broadcast.

    Exact for every associative op (commutative or not); every other
    allreduce algorithm is differentially tested against this one.
    """
    result = reduce_linear(rank, size, 0, value, op, send, recv)
    send2, recv2 = shifted(send, recv, 1)
    return bcast_linear(rank, size, 0, result, send2, recv2)


def allreduce_ring(
    rank: int,
    size: int,
    value: Any,
    op: Op,
    send: Send,
    recv: Recv,
    *,
    split: Split | None = None,
    concat: Concat | None = None,
) -> Any:
    """Ring allreduce (reduce-scatter + allgather), the HPC/DL classic.

    With ``split``/``concat`` and a commutative op the payload is cut into P
    chunks and each rank reduces one chunk while it circulates — 2(P-1)
    steps of n/P bytes each.  The rotating chunk walk folds contributions in
    ring order rather than rank order, so for non-commutative ops (or
    unsplittable payloads) it falls back to an atomic variant: ring
    allgather of whole values followed by a local rank-order fold, which is
    exact for any associative op.
    """
    if size == 1:
        return value
    if split is None or concat is None or not op.commute:
        blocks = allgather_ring(rank, size, value, send, recv)
        return op.reduce_sequence(blocks)
    chunks = list(split(value, size))
    right = (rank + 1) % size
    left = (rank - 1) % size
    # Reduce-scatter: after P-1 steps rank r owns the fully reduced chunk
    # (r+1) mod P.
    for step in range(size - 1):
        send(right, step, chunks[(rank - step) % size])
        idx = (rank - step - 1) % size
        chunks[idx] = op(recv(left, step), chunks[idx])
    # Allgather the reduced chunks on phases P-1 .. 2P-3.
    for step in range(size - 1):
        send(right, size - 1 + step, chunks[(rank + 1 - step) % size])
        idx = (rank - step) % size
        chunks[idx] = recv(left, size - 1 + step)
    return concat(chunks)


def allreduce_hierarchical(
    rank: int,
    size: int,
    value: Any,
    op: Op,
    send: Send,
    recv: Recv,
    node_of: Callable[[int], int],
) -> Any:
    """Two-level allreduce over a node hierarchy.

    Intra-node: members send to their node leader (lowest rank on the node),
    which folds in rank order.  Inter-node: leaders ring-allgather their
    partials and fold in node order.  Intra-node again: leaders broadcast
    the result to their members.  Exact for non-commutative ops as long as
    ``node_of`` maps contiguous rank blocks to nodes (packed placement, as
    :meth:`repro.platforms.machine.Cluster.nodes_for` produces).
    """
    if size == 1:
        return value
    my_node = node_of(rank)
    members = [r for r in range(size) if node_of(r) == my_node]
    leader = members[0]
    leaders = sorted({min(r for r in range(size) if node_of(r) == n)
                      for n in {node_of(r) for r in range(size)}})
    n_leaders = len(leaders)
    if rank != leader:
        # Phase 0: hand the contribution to the leader; the final result
        # comes back on phase n_leaders (after the inter-node exchange).
        send(leader, 0, value)
        return recv(leader, n_leaders)
    parts = [value if r == leader else recv(r, 0) for r in members]
    partial = op.reduce_sequence(parts)
    if n_leaders > 1:
        my_idx = leaders.index(leader)
        right = leaders[(my_idx + 1) % n_leaders]
        left = leaders[(my_idx - 1) % n_leaders]
        blocks: list[Any] = [None] * n_leaders
        blocks[my_idx] = partial
        # Ring allgather among leaders on phases 1 .. n_leaders-1.
        for step in range(n_leaders - 1):
            send(right, 1 + step, blocks[(my_idx - step) % n_leaders])
            blocks[(my_idx - step - 1) % n_leaders] = recv(left, 1 + step)
        partial = op.reduce_sequence(blocks)
    for member in members:
        if member != leader:
            send(member, n_leaders, partial)
    return partial


def _allreduce_ring_subset(
    me_idx: int,
    members: Sequence[int],
    value: Any,
    op: Op,
    send: Send,
    recv: Recv,
    base_phase: int,
) -> Any:
    """Atomic ring allreduce restricted to ``members`` (global rank ids)."""
    n = len(members)
    if n == 1:
        return value
    right = members[(me_idx + 1) % n]
    left = members[(me_idx - 1) % n]
    blocks: list[Any] = [None] * n
    blocks[me_idx] = value
    for step in range(n - 1):
        send(right, base_phase + step, blocks[(me_idx - step) % n])
        blocks[(me_idx - step - 1) % n] = recv(left, base_phase + step)
    return op.reduce_sequence(blocks)


def allreduce_two_dimensional(
    rank: int,
    size: int,
    value: Any,
    op: Op,
    send: Send,
    recv: Recv,
    rows: int,
) -> Any:
    """2D-mesh allreduce: reduce along rows, then along columns.

    Ranks are laid out row-major on a ``rows × cols`` grid (``rows`` must
    divide ``size``).  Each stage is an atomic ring allreduce over the
    row/column subset; both stages fold in rank order, so the algorithm is
    exact for non-commutative associative ops.  Latency is
    (cols-1)+(rows-1) steps instead of P-1.
    """
    if size == 1:
        return value
    if rows <= 0 or size % rows:
        raise ValueError(f"rows={rows} must divide the world size {size}")
    cols = size // rows
    row_members = [rank - rank % cols + c for c in range(cols)]
    col_members = [rank % cols + r * cols for r in range(rows)]
    partial = _allreduce_ring_subset(
        row_members.index(rank), row_members, value, op, send, recv, 0
    )
    return _allreduce_ring_subset(
        col_members.index(rank), col_members, partial, op, send, recv,
        max(cols - 1, 0),
    )
