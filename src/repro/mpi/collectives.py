"""Collective-communication algorithms.

Every collective in :class:`repro.mpi.comm.Intracomm` is implemented here on
top of internal point-to-point transfers in a dedicated *collective context*
(a second mailbox set per communicator), exactly as real MPI libraries
separate contexts so user ``ANY_TAG`` receives can never steal collective
traffic.

Algorithms implemented (selectable; the communicator picks the defaults):

===============  =================================================
collective       algorithms
===============  =================================================
barrier          dissemination (lg P rounds)
bcast            binomial tree, linear (for the ablation bench)
reduce           binomial tree (commutative ops), linear rank-order
                 fold (always valid; required for non-commutative)
scatter/gather   linear to/from root
allgather        ring (P-1 steps), gather+bcast
alltoall         pairwise exchange
scan/exscan      linear chain
allreduce        reduce + bcast, recursive doubling (commutative)
===============  =================================================

The transport callbacks ``send(dest, phase, payload)`` and
``recv(source, phase) -> payload`` are supplied by the communicator; payloads
are opaque (pickled bytes for object collectives, NumPy arrays for buffer
collectives), so each algorithm is written once and reused by both the
lowercase and uppercase verbs.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from .ops import Op

Send = Callable[[int, int, Any], None]
Recv = Callable[[int, int], Any]

__all__ = [
    "barrier_dissemination",
    "bcast_binomial",
    "bcast_linear",
    "reduce_linear",
    "reduce_binomial",
    "scatter_linear",
    "gather_linear",
    "allgather_ring",
    "alltoall_pairwise",
    "scan_linear",
    "exscan_linear",
    "allreduce_recursive_doubling",
]


def barrier_dissemination(rank: int, size: int, send: Send, recv: Recv) -> None:
    """Dissemination barrier: ceil(lg P) rounds of shifted token exchange."""
    if size == 1:
        return
    k = 1
    phase = 0
    while k < size:
        send((rank + k) % size, phase, b"")
        recv((rank - k) % size, phase)
        k <<= 1
        phase += 1


def bcast_binomial(rank: int, size: int, root: int, payload: Any, send: Send, recv: Recv) -> Any:
    """Binomial-tree broadcast; returns the payload at every rank.

    Ranks are renumbered relative to the root so the tree is rooted at 0;
    at step ``k`` every rank that already has the data forwards it to the
    peer ``2^k`` positions away.
    """
    if size == 1:
        return payload
    vrank = (rank - root) % size
    # Walk up to the lowest set bit of vrank: that bit names our parent.
    # vrank 0 has no set bit; its mask grows past size, covering all children.
    mask = 1
    while mask < size and not (vrank & mask):
        mask <<= 1
    if vrank != 0:
        parent = ((vrank - mask) + root) % size
        payload = recv(parent, 0)
    # Children sit at vrank + m for every power of two m below our parent bit.
    child = mask >> 1
    while child > 0:
        if vrank + child < size:
            send((vrank + child + root) % size, 0, payload)
        child >>= 1
    return payload


def bcast_linear(rank: int, size: int, root: int, payload: Any, send: Send, recv: Recv) -> Any:
    """Root sends to everyone directly (O(P) at the root)."""
    if rank == root:
        for dest in range(size):
            if dest != root:
                send(dest, 0, payload)
        return payload
    return recv(root, 0)


def reduce_linear(
    rank: int,
    size: int,
    root: int,
    value: Any,
    op: Op,
    send: Send,
    recv: Recv,
) -> Any:
    """Gather to root and fold strictly in rank order (any op, any size)."""
    if rank != root:
        send(root, 0, value)
        return None
    parts = []
    for src in range(size):
        parts.append(value if src == root else recv(src, 0))
    return op.reduce_sequence(parts)


def reduce_binomial(
    rank: int,
    size: int,
    root: int,
    value: Any,
    op: Op,
    send: Send,
    recv: Recv,
) -> Any:
    """Binomial-tree reduction (requires a commutative-safe op ordering).

    At step ``k`` ranks whose ``k``-th bit is set send their partial to the
    peer ``2^k`` below and retire; the survivor combines.  With the virtual
    renumbering, partials always combine lower-vrank ⊕ higher-vrank, which
    preserves rank order within each subtree.
    """
    vrank = (rank - root) % size
    acc = value
    mask = 1
    while mask < size:
        if vrank & mask:
            dest = ((vrank & ~mask) + root) % size
            send(dest, 0, acc)
            return None
        partner = vrank | mask
        if partner < size:
            incoming = recv((partner + root) % size, 0)
            acc = op(acc, incoming)
        mask <<= 1
    return acc if rank == root else None


def scatter_linear(
    rank: int,
    size: int,
    root: int,
    chunks: Sequence[Any] | None,
    send: Send,
    recv: Recv,
) -> Any:
    """Root sends chunk ``i`` to rank ``i``; returns the local chunk."""
    if rank == root:
        assert chunks is not None
        for dest in range(size):
            if dest != root:
                send(dest, 0, chunks[dest])
        return chunks[root]
    return recv(root, 0)


def gather_linear(
    rank: int,
    size: int,
    root: int,
    value: Any,
    send: Send,
    recv: Recv,
) -> list[Any] | None:
    """Every rank sends its value to root; root returns the ordered list."""
    if rank != root:
        send(root, 0, value)
        return None
    return [value if src == root else recv(src, 0) for src in range(size)]


def allgather_ring(rank: int, size: int, value: Any, send: Send, recv: Recv) -> list[Any]:
    """Ring allgather: P-1 steps, each forwarding the newest-received block."""
    blocks: list[Any] = [None] * size
    blocks[rank] = value
    if size == 1:
        return blocks
    right = (rank + 1) % size
    left = (rank - 1) % size
    carry_idx = rank
    for step in range(size - 1):
        send(right, step, (carry_idx, blocks[carry_idx]))
        carry_idx, block = recv(left, step)
        blocks[carry_idx] = block
    return blocks


def alltoall_pairwise(
    rank: int,
    size: int,
    outgoing: Sequence[Any],
    send: Send,
    recv: Recv,
) -> list[Any]:
    """Pairwise-exchange all-to-all: step k swaps with rank XOR-shifted by k."""
    incoming: list[Any] = [None] * size
    incoming[rank] = outgoing[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        src = (rank - step) % size
        send(dest, step, outgoing[dest])
        incoming[src] = recv(src, step)
    return incoming


def scan_linear(rank: int, size: int, value: Any, op: Op, send: Send, recv: Recv) -> Any:
    """Inclusive prefix reduction along the rank chain."""
    acc = value
    if rank > 0:
        acc = op(recv(rank - 1, 0), value)
    if rank + 1 < size:
        send(rank + 1, 0, acc)
    return acc


def exscan_linear(
    rank: int, size: int, value: Any, op: Op, send: Send, recv: Recv
) -> Any:
    """Exclusive prefix reduction; rank 0 receives None (MPI: undefined)."""
    prefix = None
    if rank > 0:
        prefix = recv(rank - 1, 0)
    if rank + 1 < size:
        outgoing = value if prefix is None else op(prefix, value)
        send(rank + 1, 0, outgoing)
    return prefix


def allreduce_recursive_doubling(
    rank: int, size: int, value: Any, op: Op, send: Send, recv: Recv
) -> Any:
    """Recursive-doubling allreduce for commutative ops.

    For non-power-of-two sizes the excess ranks fold into a partner first
    and receive the final result at the end (the standard pre/post phase).
    """
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    acc = value
    # Pre-phase: the first 2*rem ranks pair up; odd ones retire.
    if rank < 2 * rem:
        if rank % 2:  # odd: send partial down, wait for final result later
            send(rank - 1, 100, acc)
            return recv(rank - 1, 101)
        incoming = recv(rank + 1, 100)
        acc = op(acc, incoming)
        newrank = rank // 2
    elif rank < size:
        newrank = rank - rem
    # Core recursive doubling among pof2 survivors.
    def old(nr: int) -> int:
        return nr * 2 if nr < rem else nr + rem

    mask = 1
    phase = 0
    while mask < pof2:
        partner = old(newrank ^ mask)
        send(partner, phase, acc)
        incoming = recv(partner, phase)
        acc = op(acc, incoming) if (newrank & mask) == 0 else op(incoming, acc)
        mask <<= 1
        phase += 1
    # Post-phase: deliver results to the retired odd ranks.
    if rank < 2 * rem:
        send(rank + 1, 101, acc)
    return acc
