"""``repro.mpi`` — a from-scratch, in-process MPI with the mpi4py API.

The paper's distributed-memory module teaches message passing through
mpi4py patternlets executed with ``mpirun`` inside a Google Colab.  This
package reimplements the runtime those materials depend on: a thread-per-
rank world, MPI-standard message matching, object (pickle) and typed-buffer
(NumPy) communication, real collective algorithms, communicator splitting
and Cartesian topologies, and an ``mpirun`` emulation that executes script
source per rank with captured interleaved output.

Quick start
-----------
>>> from repro.mpi import mpirun
>>> def spmd(comm):
...     return f"rank {comm.Get_rank()} of {comm.Get_size()}"
>>> mpirun(spmd, 3)
['rank 0 of 3', 'rank 1 of 3', 'rank 2 of 3']
"""

from . import api as MPI
from .cartesian import Cartcomm, compute_dims
from .comm import Intracomm
from .constants import ANY_SOURCE, ANY_TAG, PROC_NULL, TAG_UB, UNDEFINED
from .datatypes import Datatype
from .errors import (
    CommAlreadyFreedError,
    DeadlockError,
    InvalidCountError,
    InvalidRankError,
    InvalidTagError,
    MPIError,
    NotInWorldError,
    RankCrashedError,
    RankFailedError,
    TruncationError,
    WorldAbortedError,
)
from .group import Group
from .io import File
from .window import Win
from .launcher import (
    MPI_BACKENDS,
    MpirunInvocation,
    ScriptResult,
    install_mpi4py_shim,
    mpirun,
    parse_mpirun_command,
    run_script,
)
from .message import BufferHandle
from .procs import ProcCartcomm, ProcComm, fork_available, run_procs
from .ops import MAX, MAXLOC, MIN, MINLOC, PROD, SUM, Op
from .serial import (
    counted_dumps,
    merge_serialized,
    reset_serialized,
    serialized_totals,
)
from .tracing import CommTracer, MessageRecord, TraceReport, trace_run
from .algorithms import ALGORITHMS, available, resolve
from .communicators import (
    COMMUNICATOR_NAMES,
    CommunicatorView,
    create_communicator,
)
from .request import Request
from .runtime import Console, World, current_comm, run
from .status import Status

__all__ = [
    "MPI",
    "ALGORITHMS",
    "available",
    "resolve",
    "COMMUNICATOR_NAMES",
    "CommunicatorView",
    "create_communicator",
    "World",
    "Console",
    "run",
    "mpirun",
    "run_script",
    "parse_mpirun_command",
    "install_mpi4py_shim",
    "MpirunInvocation",
    "ScriptResult",
    "MPI_BACKENDS",
    "ProcComm",
    "ProcCartcomm",
    "run_procs",
    "fork_available",
    "BufferHandle",
    "counted_dumps",
    "serialized_totals",
    "reset_serialized",
    "merge_serialized",
    "current_comm",
    "Intracomm",
    "Cartcomm",
    "compute_dims",
    "Group",
    "Status",
    "Request",
    "Op",
    "Datatype",
    "File",
    "Win",
    "CommTracer",
    "TraceReport",
    "MessageRecord",
    "trace_run",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "MAXLOC",
    "MINLOC",
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "UNDEFINED",
    "TAG_UB",
    "MPIError",
    "DeadlockError",
    "RankCrashedError",
    "RankFailedError",
    "WorldAbortedError",
    "TruncationError",
    "InvalidRankError",
    "InvalidTagError",
    "InvalidCountError",
    "NotInWorldError",
    "CommAlreadyFreedError",
]
