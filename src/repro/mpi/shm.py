"""Shared-memory payload transport for the process-rank backend.

The process ranks talk over :mod:`multiprocessing` queues, which pickle
everything they carry.  For object messages that is the right semantics
(value snapshot), but for typed NumPy buffers it turns every ``Send`` into
serialize + copy + deserialize.  This module provides the zero-copy
alternative: the payload bytes travel through a
``multiprocessing.shared_memory`` segment and only a tiny
:class:`~repro.mpi.message.BufferHandle` descriptor (segment name, shape,
dtype, byte offset) rides the queue.

Three payload shapes, chosen by :func:`ship`:

* **inline** — payloads below :func:`shm_threshold` are shipped as raw
  bytes sliced straight off the caller's buffer (still no
  ``pickle.dumps`` of the array: the queue frames the bytes object, it
  does not walk an object graph);
* **owned segment** (``mode="owned"``) — a per-message segment; the
  *receiver* copies out and unlinks (single-use, no acknowledgment
  round);
* **acked segment** (``mode="acked"``) — a *sender-owned, reused*
  segment; the receiver copies out and posts an ``ack`` envelope, and the
  sender waits for that ack before overwriting the segment for the next
  message on the same edge.  Steady-state pingpong traffic therefore
  allocates nothing: the sender reuses its :class:`SendSlot`, and the
  receiver's :class:`SegmentCache` re-attaches by name without a syscall.

All payloads are flattened 1-D views by the time they reach :func:`ship`
(:func:`repro.mpi.buffers.parse_buffer` guarantees contiguity), so
``(offset, count, dtype)`` fully describes the bytes.
"""

from __future__ import annotations

import contextlib
import os
import threading
from collections import OrderedDict
from multiprocessing import shared_memory

import numpy as np

from .message import BufferHandle

__all__ = [
    "OWNED",
    "ACKED",
    "BufferHandle",
    "SegmentCache",
    "SendSlot",
    "shm_threshold",
    "ship",
    "fetch",
    "payload_nbytes",
]

#: Receiver-side disposal modes for shared-segment handles.
OWNED = "owned"  # receiver unlinks after copy-out (single-use segment)
ACKED = "acked"  # receiver acks after copy-out; sender owns and reuses

#: Payloads at or above this many bytes ride shared memory; smaller ones
#: are inlined into the envelope.  Override with REPRO_SHM_THRESHOLD.
DEFAULT_SHM_THRESHOLD = 4096


def shm_threshold() -> int:
    """The inline/shared-memory crossover size in bytes."""
    env = os.environ.get("REPRO_SHM_THRESHOLD")
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return DEFAULT_SHM_THRESHOLD


_tracker_lock = threading.RLock()


@contextlib.contextmanager
def _tracker_silenced():
    """Keep the resource tracker out of protocol-managed segment lifetime.

    Segment lifetime here is protocol-managed: exactly one process — not
    necessarily the creator — unlinks each segment, and forked ranks may
    each lazily spawn their *own* tracker daemon.  Letting the stdlib
    register these names (bpo-39959: attach registers too) therefore
    yields either leaked-object warnings (registered in rank A's tracker,
    unlinked by rank B) or tracker KeyError crashes (two ranks sharing
    the parent's tracker both register/unregister one name, and the
    tracker's name *set* collapses the pair).  Instead the tracker never
    hears about these segments: ``register``/``unregister`` are no-ops
    for the duration of each create/attach/unlink call.
    """
    from multiprocessing import resource_tracker

    def _noop(name: str, rtype: str) -> None:  # pragma: no cover - trivial
        return None

    with _tracker_lock:
        orig_register = resource_tracker.register
        orig_unregister = resource_tracker.unregister
        resource_tracker.register = _noop
        resource_tracker.unregister = _noop
        try:
            yield
        finally:
            resource_tracker.register = orig_register
            resource_tracker.unregister = orig_unregister


def create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """A fresh untracked segment with room for ``nbytes``."""
    with _tracker_silenced():
        return shared_memory.SharedMemory(create=True, size=max(1, nbytes))


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration."""
    with _tracker_silenced():
        return shared_memory.SharedMemory(name=name)


def unlink_segment(seg: shared_memory.SharedMemory) -> None:
    """Close and unlink, tolerating a segment that is already gone."""
    seg.close()
    with _tracker_silenced():
        try:
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


class SegmentCache:
    """Attach-side cache of shared-memory segments, keyed by name.

    Re-attaching a segment is two syscalls and an mmap; a reused sender
    slot (``acked`` mode) names the same segment on every message, so the
    receiver pays that cost once.  Bounded LRU: stale entries (e.g.
    collective segments the root has since unlinked) are closed as they
    age out — an unlinked-but-mapped segment is valid POSIX, the pages
    live until the last ``close``.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._segments: OrderedDict[str, shared_memory.SharedMemory] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def attach(self, name: str) -> shared_memory.SharedMemory:
        seg = self._segments.get(name)
        if seg is not None:
            self.hits += 1
            self._segments.move_to_end(name)
            return seg
        self.misses += 1
        seg = attach_segment(name)
        self._segments[name] = seg
        while len(self._segments) > self.capacity:
            _, old = self._segments.popitem(last=False)
            old.close()
        return seg

    def evict(self, name: str) -> None:
        seg = self._segments.pop(name, None)
        if seg is not None:
            seg.close()

    def close(self) -> None:
        for seg in self._segments.values():
            seg.close()
        self._segments.clear()

    def __len__(self) -> int:
        return len(self._segments)


class SendSlot:
    """A sender-owned, acknowledged, reused segment for one edge."""

    def __init__(self) -> None:
        self.segment: shared_memory.SharedMemory | None = None
        self.capacity = 0
        self.awaiting_ack = False

    def reserve(self, nbytes: int) -> shared_memory.SharedMemory:
        """A segment with room for ``nbytes`` (grown by replacement).

        The caller must have collected the outstanding ack first — growth
        unlinks the old segment, which is only safe once the receiver has
        copied out of it.
        """
        if self.segment is None or self.capacity < nbytes:
            if self.segment is not None:
                unlink_segment(self.segment)
            self.segment = create_segment(nbytes)
            self.capacity = max(1, nbytes)
        return self.segment

    def release(self) -> None:
        if self.segment is not None:
            unlink_segment(self.segment)
            self.segment = None
            self.capacity = 0
        self.awaiting_ack = False


def ship(
    values: np.ndarray,
    *,
    slot: SendSlot | None = None,
    threshold: int | None = None,
) -> BufferHandle:
    """Package a flat contiguous array as an envelope payload handle.

    With ``slot`` (whose outstanding ack the caller has collected), big
    payloads reuse the slot's segment in ``acked`` mode; without one they
    get a fresh single-use ``owned`` segment.  Small payloads are inlined
    either way.
    """
    dtype = values.dtype.str
    shape = (values.size,)
    nbytes = values.nbytes
    limit = shm_threshold() if threshold is None else threshold
    if nbytes < limit:
        return BufferHandle(None, shape, dtype, data=values.tobytes())
    if slot is not None:
        seg = slot.reserve(nbytes)
        np.ndarray(shape, dtype=values.dtype, buffer=seg.buf)[:] = values
        slot.awaiting_ack = True
        return BufferHandle(seg.name, shape, dtype, mode=ACKED)
    seg = create_segment(nbytes)
    np.ndarray(shape, dtype=values.dtype, buffer=seg.buf)[:] = values
    handle = BufferHandle(seg.name, shape, dtype, mode=OWNED)
    # Drop the sender-side mapping now; the receiver unlinks after copy-out
    # (unlink-after-close is well-defined POSIX: pages live until the last
    # mapping goes away).
    seg.close()
    return handle


def fetch(handle: BufferHandle, cache: SegmentCache) -> tuple[np.ndarray, str | None]:
    """Materialize a handle's payload as a private array copy.

    Returns ``(values, ack_name)``: ``ack_name`` is the segment name the
    receiver must acknowledge to its sender (``None`` for inline and
    single-use payloads, which need no ack).
    """
    np_dtype = np.dtype(handle.dtype)
    count = handle.count
    if handle.shm_name is None:
        values = np.frombuffer(handle.data, dtype=np_dtype, count=count)
        return values.copy(), None
    if handle.mode == ACKED:
        seg = cache.attach(handle.shm_name)
        values = np.ndarray(
            (count,), dtype=np_dtype, buffer=seg.buf, offset=handle.offset
        ).copy()
        return values, handle.shm_name
    # Single-use segment: attach directly (the name never recurs), copy,
    # and unlink — the receiver is the segment's last user.
    seg = attach_segment(handle.shm_name)
    try:
        values = np.ndarray(
            (count,), dtype=np_dtype, buffer=seg.buf, offset=handle.offset
        ).copy()
    finally:
        unlink_segment(seg)
    return values, None


def payload_nbytes(handle: BufferHandle) -> int:
    """Wire size of a handle's payload (for Status byte counts)."""
    if handle.data is not None:
        return len(handle.data)
    return handle.count * np.dtype(handle.dtype).itemsize
