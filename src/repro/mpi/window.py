"""One-sided communication (RMA): ``MPI.Win`` with Put/Get/Accumulate/Fence.

The mpi4py tutorial's final topic: a rank exposes a memory *window* that
peers access directly, without a matching receive.  Our windows wrap NumPy
arrays; epochs are delimited by ``Fence`` (a communicator barrier, which is
exactly what fence synchronization means for an in-process runtime), and
every access is applied under the target's window lock, so concurrent
``Accumulate`` calls from different origins never lose updates.

    win = Win.Create(local_array, comm)
    win.Fence()
    win.Put(data, target_rank=1, target_offset=0)
    win.Fence()          # data is now visible in rank 1's array
    win.Free()
"""

from __future__ import annotations

import threading
from typing import Any

import numpy as np

from .buffers import parse_buffer
from .errors import InvalidRankError, MPIError
from .ops import SUM, Op

__all__ = ["Win"]


class _WinCore:
    """Shared state: every rank's exposed array plus its access lock."""

    def __init__(self, size: int) -> None:
        self.arrays: list[np.ndarray | None] = [None] * size
        # Re-entrant: a passive-target Lock() epoch wraps Put/Get calls that
        # take the same lock internally.
        self.locks = [threading.RLock() for _ in range(size)]
        self.freed = False


class Win:
    """One rank's handle on a collectively created RMA window."""

    def __init__(self, core: _WinCore, comm: Any, rank: int) -> None:
        self._core = core
        self._comm = comm
        self._rank = rank

    @classmethod
    def Create(cls, memory: Any, comm: Any) -> "Win":
        """Collectively create a window exposing ``memory`` on each rank.

        ``memory`` must be a contiguous NumPy array (or ``None`` to expose
        nothing from this rank).
        """
        seq_key = ("win", comm._core.cid, comm._coll_seq)
        comm.barrier()  # consume a collective slot; sync arrival
        core = comm._core.world.registry.get_or_create(
            seq_key, lambda: _WinCore(comm.Get_size())
        )
        rank = comm.Get_rank()
        if memory is not None:
            spec = parse_buffer(memory)
            core.arrays[rank] = spec.array  # a view onto the caller's memory
        comm.barrier()  # everyone's window is attached before use
        return cls(core, comm, rank)

    # ------------------------------------------------------------------ helpers
    def _target_array(self, target_rank: int) -> np.ndarray:
        if self._core.freed:
            raise MPIError("operation on freed window")
        if not 0 <= target_rank < self._comm.Get_size():
            raise InvalidRankError(target_rank, self._comm.Get_size(), "target")
        array = self._core.arrays[target_rank]
        if array is None:
            raise MPIError(f"rank {target_rank} exposed no memory in this window")
        return array

    @staticmethod
    def _as_values(buf: Any) -> np.ndarray:
        return parse_buffer(buf).data()

    # ------------------------------------------------------------------ RMA verbs
    def Put(self, origin: Any, target_rank: int, target_offset: int = 0) -> None:
        """Write origin data into the target's window at an element offset."""
        values = self._as_values(origin)
        target = self._target_array(target_rank)
        if target_offset < 0 or target_offset + len(values) > len(target):
            raise MPIError(
                f"Put of {len(values)} elements at offset {target_offset} "
                f"exceeds window of {len(target)} elements"
            )
        with self._core.locks[target_rank]:
            target[target_offset : target_offset + len(values)] = values.astype(
                target.dtype, copy=False
            )

    def Get(self, origin: Any, target_rank: int, target_offset: int = 0) -> None:
        """Read from the target's window into the origin buffer."""
        spec = parse_buffer(origin)
        target = self._target_array(target_rank)
        if target_offset < 0 or target_offset + spec.count > len(target):
            raise MPIError(
                f"Get of {spec.count} elements at offset {target_offset} "
                f"exceeds window of {len(target)} elements"
            )
        with self._core.locks[target_rank]:
            snapshot = target[target_offset : target_offset + spec.count].copy()
        spec.fill(snapshot)

    def Accumulate(
        self,
        origin: Any,
        target_rank: int,
        target_offset: int = 0,
        op: Op = SUM,
    ) -> None:
        """Atomically combine origin data into the target's window."""
        values = self._as_values(origin)
        target = self._target_array(target_rank)
        if target_offset < 0 or target_offset + len(values) > len(target):
            raise MPIError(
                f"Accumulate of {len(values)} elements at offset {target_offset} "
                f"exceeds window of {len(target)} elements"
            )
        with self._core.locks[target_rank]:
            region = target[target_offset : target_offset + len(values)]
            region[:] = op(region, values.astype(target.dtype, copy=False))

    # ------------------------------------------------------------- synchronization
    def Fence(self, assertion: int = 0) -> None:
        """Close the current access epoch and open the next (collective)."""
        self._comm.barrier()

    def Lock(self, target_rank: int) -> None:
        """Passive-target lock on one rank's window region."""
        self._target_array(target_rank)  # validates rank/window
        self._core.locks[target_rank].acquire()

    def Unlock(self, target_rank: int) -> None:
        self._core.locks[target_rank].release()

    def Free(self) -> None:
        """Collectively release the window."""
        self._comm.barrier()
        self._core.freed = True
