"""The ``MPI`` namespace: a drop-in for ``from mpi4py import MPI``.

Teaching scripts written for mpi4py access a module-level ``COMM_WORLD``.
Under our thread-per-rank runtime each rank must see *its own* view of the
world communicator, so ``COMM_WORLD`` is a proxy that resolves the calling
thread's rank on every use.  Everything else (datatypes, ops, wildcards,
``Wtime``) is re-exported here so patternlet code reads exactly like the
paper's Colab cells.
"""

from __future__ import annotations

import time
from typing import Any

from . import datatypes as _dt
from .cartesian import compute_dims
from .constants import (
    ANY_SOURCE,
    ANY_TAG,
    MAX_PROCESSOR_NAME,
    PROC_NULL,
    ROOT,
    TAG_UB,
    THREAD_MULTIPLE,
    UNDEFINED,
)
from .errors import MPIError, NotInWorldError
from .ops import (
    BAND,
    BOR,
    BXOR,
    LAND,
    LOR,
    LXOR,
    MAX,
    MAXLOC,
    MIN,
    MINLOC,
    PROD,
    SUM,
    Op,
)
from .io import (
    MODE_APPEND,
    MODE_CREATE,
    MODE_DELETE_ON_CLOSE,
    MODE_EXCL,
    MODE_RDONLY,
    MODE_RDWR,
    MODE_WRONLY,
    File,
)
from .request import Request
from .runtime import current_comm
from .status import Status
from .window import Win

# Datatype re-exports (MPI.INT, MPI.DOUBLE, ... exactly as mpi4py spells them).
BYTE = _dt.BYTE
CHAR = _dt.CHAR
BOOL = _dt.BOOL
SHORT = _dt.SHORT
INT = _dt.INT
LONG = _dt.LONG
LONG_LONG = _dt.LONG_LONG
UNSIGNED_SHORT = _dt.UNSIGNED_SHORT
UNSIGNED = _dt.UNSIGNED
UNSIGNED_LONG = _dt.UNSIGNED_LONG
FLOAT = _dt.FLOAT
DOUBLE = _dt.DOUBLE
COMPLEX = _dt.COMPLEX
DOUBLE_COMPLEX = _dt.DOUBLE_COMPLEX
INT32_T = _dt.INT32_T
INT64_T = _dt.INT64_T
UINT32_T = _dt.UINT32_T
UINT64_T = _dt.UINT64_T
Datatype = _dt.Datatype

Exception = MPIError  # noqa: A001 - mpi4py exposes MPI.Exception


class _CommWorldProxy:
    """Thread-aware proxy: delegates to the calling rank's world view."""

    __slots__ = ()

    def _resolve(self):
        return current_comm()

    def __getattr__(self, name: str) -> Any:
        return getattr(self._resolve(), name)

    def __repr__(self) -> str:
        try:
            return repr(self._resolve())
        except NotInWorldError:
            return "<COMM_WORLD (no active mpirun context)>"


COMM_WORLD = _CommWorldProxy()


def Get_processor_name() -> str:
    """Simulated hostname of the active world ('machine name running the code')."""
    try:
        return current_comm().Get_processor_name()
    except NotInWorldError:
        return "localhost"


def Wtime() -> float:
    """Wall-clock time in seconds (``MPI_Wtime``)."""
    return time.perf_counter()


def Wtick() -> float:
    """Resolution of :func:`Wtime`."""
    return 1e-9


def Compute_dims(nnodes: int, dims: int | list[int]) -> list[int]:
    """``MPI_Dims_create``: balanced grid factorization."""
    ndims = dims if isinstance(dims, int) else len(dims)
    return compute_dims(nnodes, ndims)


def Query_thread() -> int:
    """The runtime always provides full multithreaded support."""
    return THREAD_MULTIPLE


def Is_initialized() -> bool:
    return True


def Is_finalized() -> bool:
    return False


__all__ = [
    "COMM_WORLD",
    "File",
    "Win",
    "MODE_RDONLY",
    "MODE_WRONLY",
    "MODE_RDWR",
    "MODE_CREATE",
    "MODE_EXCL",
    "MODE_APPEND",
    "MODE_DELETE_ON_CLOSE",
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "UNDEFINED",
    "ROOT",
    "TAG_UB",
    "MAX_PROCESSOR_NAME",
    "THREAD_MULTIPLE",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "LXOR",
    "BAND",
    "BOR",
    "BXOR",
    "MAXLOC",
    "MINLOC",
    "Op",
    "Status",
    "Request",
    "Datatype",
    "Exception",
    "Get_processor_name",
    "Wtime",
    "Wtick",
    "Compute_dims",
    "Query_thread",
    "Is_initialized",
    "Is_finalized",
    "BYTE",
    "CHAR",
    "BOOL",
    "SHORT",
    "INT",
    "LONG",
    "LONG_LONG",
    "UNSIGNED_SHORT",
    "UNSIGNED",
    "UNSIGNED_LONG",
    "FLOAT",
    "DOUBLE",
    "COMPLEX",
    "DOUBLE_COMPLEX",
]
