"""The intracommunicator: mpi4py's ``Comm`` API surface, from scratch.

One :class:`CommCore` holds the shared state of a communicator (mailboxes,
membership, context id); each rank interacts through its own
:class:`Intracomm` *view* bound to that core.  The lowercase verbs move
pickled Python objects (value semantics); the uppercase verbs move typed
NumPy buffers, as the mpi4py tutorial prescribes.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, Sequence

import numpy as np

from . import algorithms as _algos
from . import collectives as coll
from . import hooks as _hooks
from .serial import counted_dumps
from .buffers import BufferSpec, parse_buffer, parse_vector_buffer
from .constants import ANY_SOURCE, ANY_TAG, PROC_NULL, TAG_UB, UNDEFINED
from .errors import (
    CommAlreadyFreedError,
    InvalidCountError,
    InvalidRankError,
    InvalidTagError,
    TruncationError,
    WorldAbortedError,
)
from .group import Group
from .message import Mailbox, Message, wait_event
from .ops import SUM, Op
from .request import BufferRecvRequest, RecvRequest, Request, SendRequest
from .status import Status

__all__ = ["CommCore", "Intracomm"]

#: Phase multiplier for internal collective tags: phases must stay below this.
_PHASE_SPAN = 1024


def _batch_limit() -> int:
    """Per-edge send-coalescing threshold for the threaded backend (bytes).

    Off by default: mailbox delivery is a list append under a lock, so
    coalescing buys little here and costs envelope latency.  Setting
    ``REPRO_MPI_BATCH_BYTES`` opts in (it also tunes the process backend,
    where batching defaults on — see :mod:`repro.mpi.procs`).
    """
    env = os.environ.get("REPRO_MPI_BATCH_BYTES")
    if env is not None:
        try:
            return max(0, int(env))
        except ValueError:
            return 0
    return 0


class CommCore:
    """Shared state of one communicator across all of its rank views."""

    def __init__(
        self,
        world: Any,
        world_ranks: Sequence[int],
        name: str,
        view_cls: type | None = None,
        view_kwargs: dict[str, Any] | None = None,
    ) -> None:
        self.world = world
        self.world_ranks = tuple(world_ranks)
        self.size = len(self.world_ranks)
        self.cid = world.next_cid()
        self.name = name
        self.freed = False
        self.user_boxes = [Mailbox(world) for _ in range(self.size)]
        self.coll_boxes = [Mailbox(world) for _ in range(self.size)]
        self.batch_limit = _batch_limit()
        view_cls = view_cls or Intracomm
        view_kwargs = view_kwargs or {}
        self.views = [view_cls(self, r, **view_kwargs) for r in range(self.size)]


class Intracomm:
    """One rank's view of a communicator (the object user code receives)."""

    def __init__(self, core: CommCore, rank: int) -> None:
        self._core = core
        self._rank = rank
        self._coll_seq = 0
        #: Per-destination coalescing buffers (active only when the core's
        #: batch_limit is nonzero; see ``_batch_limit``).
        self._out_batch: dict[int, list[Message]] = {}
        self._out_bytes: dict[int, int] = {}

    # ------------------------------------------------------------------ plumbing
    @classmethod
    def _create_world(cls, world: Any) -> "Intracomm":
        core = CommCore(world, range(world.size), "MPI_COMM_WORLD")
        return core.views[0]

    def _for_rank(self, rank: int) -> "Intracomm":
        return self._core.views[rank]

    @property
    def world(self) -> Any:
        return self._core.world

    @property
    def mailbox(self) -> Mailbox:
        return self._core.user_boxes[self._rank]

    @property
    def _obs_cid(self) -> int:
        return self._core.cid

    def _put_user(self, dest: int, message: Message) -> None:
        """Enqueue a user-context message, announcing it to the hook seam."""
        if _hooks.enabled:
            _hooks.emit(
                "send", self._core.cid, self._rank, dest, message.tag,
                message.nbytes,
            )
        injector = self._core.world.injector
        if injector is not None:
            # Fault rules count per-edge message ordinals, so injected runs
            # never coalesce.
            injector.dispositions(
                self._world_rank(),
                self._core.world_ranks[dest],
                lambda: self._core.user_boxes[dest].put(message),
            )
            return
        limit = self._core.batch_limit
        if (
            limit
            and message.synchronous is None
            and message.nbytes <= limit
            and dest != self._rank
        ):
            pending = self._out_batch.setdefault(dest, [])
            pending.append(message)
            total = self._out_bytes.get(dest, 0) + message.nbytes
            self._out_bytes[dest] = total
            if len(pending) >= 16 or total >= 8 * limit:
                self._flush_dest(dest)
            return
        # Non-overtaking: older batched envelopes for this edge must be
        # delivered before this one.
        self._flush_dest(dest)
        self._core.user_boxes[dest].put(message)

    def _flush_dest(self, dest: int) -> None:
        pending = self._out_batch.get(dest)
        if not pending:
            return
        self._out_batch[dest] = []
        self._out_bytes[dest] = 0
        self._core.user_boxes[dest].put_many(pending)

    def _flush_sends(self) -> None:
        """Deliver every coalesced envelope (called before blocking)."""
        if not self._out_batch:
            return
        for dest, pending in self._out_batch.items():
            if pending:
                self._flush_dest(dest)

    def _world_rank(self) -> int:
        """This view's rank in MPI_COMM_WORLD (fault rules use world ranks)."""
        return self._core.world_ranks[self._rank]

    def _get_user(self, source: int, tag: int) -> Message:
        """Blocking mailbox fetch bracketed by recv_enter/recv_exit events."""
        self._flush_sends()
        if not _hooks.enabled:
            return self.mailbox.get(source, tag)
        cid = self._core.cid
        _hooks.emit("recv_enter", cid, self._rank, source, tag)
        msg = self.mailbox.get(source, tag)
        _hooks.emit("recv_exit", cid, self._rank, msg.source, msg.tag, msg.nbytes)
        return msg

    def _check_alive(self) -> None:
        if self._core.freed:
            raise CommAlreadyFreedError(f"communicator {self._core.name} was freed")
        self._core.world.check_abort()
        injector = self._core.world.injector
        if injector is not None:
            # Every verb passes through here, so op counting sees point-to-
            # point and collective calls alike — a crash rule can therefore
            # kill a rank mid-collective, deterministically.
            injector.on_op(self._world_rank())

    def _check_peer(self, rank: int, *, wildcard: bool, what: str) -> None:
        if rank == PROC_NULL:
            return
        if wildcard and rank == ANY_SOURCE:
            return
        if not 0 <= rank < self._core.size:
            raise InvalidRankError(rank, self._core.size, what)

    @staticmethod
    def _check_tag(tag: int, *, wildcard: bool) -> None:
        if wildcard and tag == ANY_TAG:
            return
        if not 0 <= tag <= TAG_UB:
            raise InvalidTagError(tag)

    # ------------------------------------------------------------------- inquiry
    def Get_rank(self) -> int:
        """Rank of the calling process in this communicator."""
        return self._rank

    def Get_size(self) -> int:
        """Number of processes in this communicator."""
        return self._core.size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._core.size

    def Get_name(self) -> str:
        return self._core.name

    def Set_name(self, name: str) -> None:
        self._core.name = str(name)

    @property
    def name(self) -> str:
        return self._core.name

    def Get_group(self) -> Group:
        return Group(self._core.world_ranks)

    def Get_topology(self) -> str | None:
        return None

    def Free(self) -> None:
        """Release the communicator; later operations raise."""
        self._core.freed = True

    def Abort(self, errorcode: int = 1) -> None:
        """Tear down the whole world (``MPI_Abort``)."""
        self._core.world.abort_with(WorldAbortedError(errorcode, origin=self._rank))
        self._core.world.check_abort()

    def Is_intra(self) -> bool:
        return True

    def Is_inter(self) -> bool:
        return False

    # --------------------------------------------------------- point-to-point (obj)
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking standard-mode send of a pickled Python object.

        Standard mode is eager-buffered here, as small-message MPI sends are
        in practice: the call returns once the envelope is enqueued.  Use
        :meth:`ssend` for a send that blocks until matched.
        """
        self._check_alive()
        self._check_peer(dest, wildcard=False, what="destination")
        self._check_tag(tag, wildcard=False)
        if dest == PROC_NULL:
            return
        payload = counted_dumps(obj)
        self._put_user(dest, Message(self._rank, tag, payload, len(payload)))

    def ssend(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Synchronous send: blocks until the matching receive starts."""
        self._check_alive()
        self._check_peer(dest, wildcard=False, what="destination")
        self._check_tag(tag, wildcard=False)
        if dest == PROC_NULL:
            return
        import threading

        done = threading.Event()
        payload = counted_dumps(obj)
        self._put_user(
            dest, Message(self._rank, tag, payload, len(payload), synchronous=done)
        )
        self._flush_sends()
        wait_event(done, self._core.world)

    def recv(
        self,
        buf: Any = None,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        """Blocking receive; returns the (unpickled) object."""
        self._check_alive()
        self._check_peer(source, wildcard=True, what="source")
        self._check_tag(tag, wildcard=True)
        if source == PROC_NULL:
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return None
        msg = self._get_user(source, tag)
        if status is not None:
            status._set(msg.source, msg.tag, msg.nbytes)
        return pickle.loads(msg.payload)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; complete immediately (buffered)."""
        self.send(obj, dest, tag)
        return SendRequest(self)

    def issend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking synchronous send; completes when matched."""
        self._check_alive()
        self._check_peer(dest, wildcard=False, what="destination")
        self._check_tag(tag, wildcard=False)
        if dest == PROC_NULL:
            return SendRequest(self)
        import threading

        done = threading.Event()
        payload = counted_dumps(obj)
        self._put_user(
            dest, Message(self._rank, tag, payload, len(payload), synchronous=done)
        )
        return SendRequest(self, sync_event=done)

    def irecv(self, buf: Any = None, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive; ``req.wait()`` returns the object."""
        self._check_alive()
        self._check_peer(source, wildcard=True, what="source")
        self._check_tag(tag, wildcard=True)
        return RecvRequest(self, source, tag)

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        recvbuf: Any = None,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        """Combined send+receive, deadlock-free for exchange patterns."""
        self.send(sendobj, dest, sendtag)
        return self.recv(recvbuf, source, recvtag, status)

    def probe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, status: Status | None = None
    ) -> bool:
        """Block until a matching message is pending (without receiving it)."""
        self._check_alive()
        self._flush_sends()
        msg = self.mailbox.probe(source, tag, block=True)
        if status is not None and msg is not None:
            status._set(msg.source, msg.tag, msg.nbytes)
        return True

    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, status: Status | None = None
    ) -> bool:
        """Nonblocking probe: True if a matching message is pending."""
        self._check_alive()
        self._flush_sends()
        msg = self.mailbox.probe(source, tag, block=False)
        if msg is not None and status is not None:
            status._set(msg.source, msg.tag, msg.nbytes)
        return msg is not None

    # ------------------------------------------------------ point-to-point (buffer)
    def Send(self, buf: Any, dest: int, tag: int = 0) -> None:
        """Blocking typed-buffer send (``[data, MPI.TYPE]`` or bare array)."""
        self._check_alive()
        self._check_peer(dest, wildcard=False, what="destination")
        self._check_tag(tag, wildcard=False)
        if dest == PROC_NULL:
            return
        spec = parse_buffer(buf)
        snapshot = spec.data()
        self._put_user(dest, Message(self._rank, tag, snapshot, spec.nbytes))

    def Recv(
        self,
        buf: Any,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> None:
        """Blocking typed-buffer receive into caller-provided storage."""
        self._check_alive()
        self._check_peer(source, wildcard=True, what="source")
        self._check_tag(tag, wildcard=True)
        spec = parse_buffer(buf)
        if source == PROC_NULL:
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return
        msg = self._get_user(source, tag)
        self._fill_typed(spec, msg)
        if status is not None:
            status._set(msg.source, msg.tag, msg.nbytes)

    def Isend(self, buf: Any, dest: int, tag: int = 0) -> Request:
        self.Send(buf, dest, tag)
        return SendRequest(self)

    def Irecv(self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        self._check_alive()
        self._check_peer(source, wildcard=True, what="source")
        self._check_tag(tag, wildcard=True)
        spec = parse_buffer(buf)
        return BufferRecvRequest(self, spec, source, tag)

    def Sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        sendtag: int = 0,
        recvbuf: Any = None,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Status | None = None,
    ) -> None:
        self.Send(sendbuf, dest, sendtag)
        self.Recv(recvbuf, source, recvtag, status)

    def _fill_typed(self, spec: BufferSpec, msg: Message) -> None:
        values = msg.payload
        if isinstance(values, bytes):
            raise TypeError(
                "buffer receive matched an object-mode message; pair lowercase "
                "sends with lowercase receives"
            )
        values = np.asarray(values)
        if values.size > len(spec.array):
            raise TruncationError(
                f"message of {values.size} elements truncated to receive buffer "
                f"of {len(spec.array)}"
            )
        spec.fill(values.astype(spec.datatype.np_dtype, copy=False))

    # --------------------------------------------------------- collective transport
    def _transports(self) -> tuple[Callable[[int, int, Any], None], Callable[[int, int], Any]]:
        """Raw payload transport in the collective context for one collective.

        Each collective call consumes one sequence number; all ranks consume
        them in the same order (the standard requires collectives to be
        called in the same order on every rank), so tags always agree.
        """
        self._check_alive()
        self._flush_sends()
        seq = self._coll_seq
        self._coll_seq += 1
        core = self._core
        me = self._rank

        def send(dest: int, phase: int, payload: Any) -> None:
            if _hooks.enabled:
                _hooks.emit(
                    "coll_msg", core.cid, me, dest, _hooks.payload_nbytes(payload)
                )
            message = Message(me, seq * _PHASE_SPAN + phase, payload, 0)
            injector = core.world.injector
            if injector is not None:
                injector.dispositions(
                    core.world_ranks[me],
                    core.world_ranks[dest],
                    lambda: core.coll_boxes[dest].put(message),
                )
                return
            core.coll_boxes[dest].put(message)

        def recv(source: int, phase: int) -> Any:
            return core.coll_boxes[me].get(source, seq * _PHASE_SPAN + phase).payload

        return send, recv

    def _obj_transports(self):
        """Pickling transport: every delivery is a private deep copy."""
        send_raw, recv_raw = self._transports()

        def send(dest: int, phase: int, payload: Any) -> None:
            send_raw(dest, phase, counted_dumps(payload))

        def recv(source: int, phase: int) -> Any:
            return pickle.loads(recv_raw(source, phase))

        return send, recv

    def _pick(
        self,
        collective: str,
        *,
        nbytes: int = 0,
        commute: bool = True,
        chunked: bool = False,
        requested: str | None = None,
    ) -> str:
        """Resolve the algorithm for one collective and record the choice.

        Every rank must arrive at the same answer or the internal tags
        mismatch, so the lowercase (object) verbs always resolve with
        ``nbytes=0`` — pickled sizes can differ across ranks.  The buffer
        verbs pass the typed byte count, which MPI semantics guarantee is
        identical everywhere.
        """
        algo = _algos.resolve(
            collective,
            size=self._core.size,
            nbytes=nbytes,
            commute=commute,
            chunked=chunked,
            requested=requested,
        )
        if _hooks.enabled:
            _hooks.emit("coll_algo", self._obs_cid, self._rank, collective, algo)
        return algo

    # ----------------------------------------------------------- collectives (obj)
    @_hooks.traced_collective
    def barrier(self) -> None:
        """Block until every rank of the communicator has arrived."""
        self._pick("barrier")
        send, recv = self._transports()
        coll.barrier_dissemination(self._rank, self._core.size, send, recv)

    Barrier = barrier

    @_hooks.traced_collective
    def bcast(self, obj: Any, root: int = 0, *, algorithm: str | None = None) -> Any:
        """Broadcast a Python object from ``root`` to every rank."""
        self._check_peer(root, wildcard=False, what="root")
        algo = self._pick("bcast", requested=algorithm)
        send, recv = self._transports()
        payload = counted_dumps(obj) if self._rank == root else None
        result = _algos.run_bcast(
            algo, self._rank, self._core.size, root, payload, send, recv,
            split=coll.split_bytes, concat=b"".join,
        )
        return obj if self._rank == root else pickle.loads(result)

    @_hooks.traced_collective
    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter a ``size``-element sequence from root; returns the local item."""
        self._check_peer(root, wildcard=False, what="root")
        send, recv = self._obj_transports()
        chunks = None
        if self._rank == root:
            if sendobj is None or len(sendobj) != self._core.size:
                got = "None" if sendobj is None else str(len(sendobj))
                raise InvalidCountError(
                    f"scatter at root expects exactly {self._core.size} items, got {got}"
                )
            chunks = list(sendobj)
        return coll.scatter_linear(self._rank, self._core.size, root, chunks, send, recv)

    @_hooks.traced_collective
    def gather(self, sendobj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank into an ordered list at root."""
        self._check_peer(root, wildcard=False, what="root")
        send, recv = self._obj_transports()
        return coll.gather_linear(self._rank, self._core.size, root, sendobj, send, recv)

    @_hooks.traced_collective
    def allgather(self, sendobj: Any, *, algorithm: str | None = None) -> list[Any]:
        """Gather one object per rank; every rank gets the full list."""
        algo = self._pick("allgather", requested=algorithm)
        send, recv = self._obj_transports()
        return _algos.run_allgather(
            algo, self._rank, self._core.size, sendobj, send, recv
        )

    @_hooks.traced_collective
    def alltoall(self, sendobj: Sequence[Any]) -> list[Any]:
        """Personalized exchange: item ``j`` of my sequence goes to rank ``j``."""
        if len(sendobj) != self._core.size:
            raise InvalidCountError(
                f"alltoall expects {self._core.size} items, got {len(sendobj)}"
            )
        send, recv = self._obj_transports()
        return coll.alltoall_pairwise(self._rank, self._core.size, list(sendobj), send, recv)

    @_hooks.traced_collective
    def reduce(
        self,
        sendobj: Any,
        op: Op = SUM,
        root: int = 0,
        *,
        algorithm: str | None = None,
    ) -> Any:
        """Combine one value per rank with ``op``; result lands at root."""
        self._check_peer(root, wildcard=False, what="root")
        algo = self._pick("reduce", commute=op.commute, requested=algorithm)
        send, recv = self._obj_transports()
        return _algos.run_reduce(
            algo, self._rank, self._core.size, root, sendobj, op, send, recv
        )

    @_hooks.traced_collective
    def allreduce(
        self, sendobj: Any, op: Op = SUM, *, algorithm: str | None = None
    ) -> Any:
        """Reduce then deliver the result to every rank."""
        algo = self._pick("allreduce", commute=op.commute, requested=algorithm)
        send, recv = self._obj_transports()
        return _algos.run_allreduce(
            algo, self._rank, self._core.size, sendobj, op, send, recv
        )

    @_hooks.traced_collective
    def scan(self, sendobj: Any, op: Op = SUM) -> Any:
        """Inclusive prefix reduction over ranks."""
        send, recv = self._obj_transports()
        return coll.scan_linear(self._rank, self._core.size, sendobj, op, send, recv)

    @_hooks.traced_collective
    def exscan(self, sendobj: Any, op: Op = SUM) -> Any:
        """Exclusive prefix reduction; rank 0 gets ``None``."""
        send, recv = self._obj_transports()
        return coll.exscan_linear(self._rank, self._core.size, sendobj, op, send, recv)

    # -------------------------------------------------------- collectives (buffer)
    @staticmethod
    def _array_split(values: Any, n: int) -> list[Any]:
        return list(np.array_split(values, n))

    @_hooks.traced_collective
    def Bcast(self, buf: Any, root: int = 0, *, algorithm: str | None = None) -> None:
        """Broadcast a typed buffer in place."""
        self._check_peer(root, wildcard=False, what="root")
        spec = parse_buffer(buf)
        algo = self._pick(
            "bcast",
            nbytes=spec.count * spec.array.dtype.itemsize,
            requested=algorithm,
        )
        send, recv = self._transports()
        payload = spec.data() if self._rank == root else None
        values = _algos.run_bcast(
            algo, self._rank, self._core.size, root, payload, send, recv,
            split=self._array_split, concat=np.concatenate,
        )
        if self._rank != root:
            self._fill_array(spec, values)

    @_hooks.traced_collective
    def Scatter(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        """Scatter equal contiguous chunks of ``sendbuf`` from root."""
        self._check_peer(root, wildcard=False, what="root")
        size = self._core.size
        send, recv = self._transports()
        chunks = None
        if self._rank == root:
            sspec = parse_buffer(sendbuf)
            if sspec.count % size:
                raise InvalidCountError(
                    f"Scatter: send count {sspec.count} not divisible by size {size}"
                )
            n = sspec.count // size
            data = sspec.data()
            chunks = [data[i * n : (i + 1) * n] for i in range(size)]
        values = coll.scatter_linear(self._rank, size, root, chunks, send, recv)
        self._fill_array(parse_buffer(recvbuf), values)

    @_hooks.traced_collective
    def Scatterv(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        """Scatter variable-size segments ``[data, counts, displs, type]``."""
        self._check_peer(root, wildcard=False, what="root")
        size = self._core.size
        send, recv = self._transports()
        chunks = None
        if self._rank == root:
            vspec = parse_vector_buffer(sendbuf, size)
            chunks = [
                vspec.array[d : d + c].copy()
                for c, d in zip(vspec.counts, vspec.displs)
            ]
        values = coll.scatter_linear(self._rank, size, root, chunks, send, recv)
        self._fill_array(parse_buffer(recvbuf), values)

    @_hooks.traced_collective
    def Gather(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        """Gather equal chunks into root's buffer, ordered by rank."""
        self._check_peer(root, wildcard=False, what="root")
        size = self._core.size
        send, recv = self._transports()
        sspec = parse_buffer(sendbuf)
        parts = coll.gather_linear(
            self._rank, size, root, sspec.data(), send, recv
        )
        if self._rank == root:
            rspec = parse_buffer(recvbuf)
            self._place_parts(rspec, parts, uniform=True)

    @_hooks.traced_collective
    def Gatherv(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        """Gather variable-size segments into ``[data, counts, displs, type]``."""
        self._check_peer(root, wildcard=False, what="root")
        size = self._core.size
        send, recv = self._transports()
        sspec = parse_buffer(sendbuf)
        parts = coll.gather_linear(self._rank, size, root, sspec.data(), send, recv)
        if self._rank == root:
            vspec = parse_vector_buffer(recvbuf, size)
            for src, (part, c, d) in enumerate(
                zip(parts, vspec.counts, vspec.displs)
            ):
                arr = np.asarray(part)
                if arr.size != c:
                    raise InvalidCountError(
                        f"Gatherv: rank {src} sent {arr.size} elements where "
                        f"counts specify {c} at displacement {d}"
                    )
                vspec.array[d : d + c] = arr.astype(vspec.datatype.np_dtype, copy=False)

    @_hooks.traced_collective
    def Allgather(
        self, sendbuf: Any, recvbuf: Any, *, algorithm: str | None = None
    ) -> None:
        """All ranks gather everyone's chunk into their own buffer."""
        sspec = parse_buffer(sendbuf)
        algo = self._pick(
            "allgather",
            nbytes=sspec.count * sspec.array.dtype.itemsize,
            requested=algorithm,
        )
        send, recv = self._transports()
        parts = _algos.run_allgather(
            algo, self._rank, self._core.size, sspec.data(), send, recv
        )
        self._place_parts(parse_buffer(recvbuf), parts, uniform=True)

    @_hooks.traced_collective
    def Alltoall(self, sendbuf: Any, recvbuf: Any) -> None:
        """Typed personalized exchange of equal chunks."""
        size = self._core.size
        sspec = parse_buffer(sendbuf)
        if sspec.count % size:
            raise InvalidCountError(
                f"Alltoall: send count {sspec.count} not divisible by size {size}"
            )
        n = sspec.count // size
        data = sspec.data()
        outgoing = [data[i * n : (i + 1) * n] for i in range(size)]
        send, recv = self._transports()
        parts = coll.alltoall_pairwise(self._rank, size, outgoing, send, recv)
        self._place_parts(parse_buffer(recvbuf), parts, uniform=True)

    @_hooks.traced_collective
    def Reduce(
        self,
        sendbuf: Any,
        recvbuf: Any,
        op: Op = SUM,
        root: int = 0,
        *,
        algorithm: str | None = None,
    ) -> None:
        """Elementwise typed reduction to root."""
        self._check_peer(root, wildcard=False, what="root")
        sspec = parse_buffer(sendbuf)
        algo = self._pick(
            "reduce",
            nbytes=sspec.count * sspec.array.dtype.itemsize,
            commute=op.commute,
            requested=algorithm,
        )
        send, recv = self._transports()
        result = _algos.run_reduce(
            algo, self._rank, self._core.size, root, sspec.data(), op, send, recv
        )
        if self._rank == root:
            self._fill_array(parse_buffer(recvbuf), result)

    @_hooks.traced_collective
    def Allreduce(
        self,
        sendbuf: Any,
        recvbuf: Any,
        op: Op = SUM,
        *,
        algorithm: str | None = None,
    ) -> None:
        """Elementwise typed reduction delivered to every rank."""
        sspec = parse_buffer(sendbuf)
        # Chunking splits the array across the ring; only sound when the op
        # combines elementwise (MAXLOC-style pair ops must stay whole).
        chunkable = op.commute and op.elementwise and self._core.size > 1
        algo = self._pick(
            "allreduce",
            nbytes=sspec.count * sspec.array.dtype.itemsize,
            commute=op.commute,
            chunked=chunkable,
            requested=algorithm,
        )
        send, recv = self._transports()
        result = _algos.run_allreduce(
            algo, self._rank, self._core.size, sspec.data(), op, send, recv,
            split=self._array_split if chunkable else None,
            concat=np.concatenate if chunkable else None,
        )
        self._fill_array(parse_buffer(recvbuf), result)

    def _fill_array(self, spec: BufferSpec, values: Any) -> None:
        arr = np.asarray(values)
        if arr.size > len(spec.array):
            raise TruncationError(
                f"collective result of {arr.size} elements exceeds buffer of "
                f"{len(spec.array)}"
            )
        spec.fill(arr.astype(spec.datatype.np_dtype, copy=False))

    def _place_parts(self, rspec: BufferSpec, parts: Sequence[Any], uniform: bool) -> None:
        offset = 0
        for src, part in enumerate(parts):
            arr = np.asarray(part)
            if offset + arr.size > len(rspec.array):
                raise TruncationError(
                    f"gathered data exceeds the receive buffer capacity: rank "
                    f"{src}'s part of {arr.size} elements at offset {offset} "
                    f"overflows the {len(rspec.array)}-element buffer"
                )
            rspec.array[offset : offset + arr.size] = arr.astype(
                rspec.datatype.np_dtype, copy=False
            )
            offset += arr.size

    # ------------------------------------------------------ communicator creation
    def Split(self, color: int = 0, key: int = 0) -> "Intracomm | None":
        """Partition the communicator by color; order new ranks by (key, rank).

        Ranks passing ``color=UNDEFINED`` get ``None``.
        """
        triples = self.allgather((color, key, self._rank))
        seq_key = ("split", self._core.cid, self._coll_seq)
        if color == UNDEFINED:
            return None
        members = sorted(
            (k, r) for c, k, r in triples if c == color
        )
        parent_ranks = [r for _k, r in members]
        world_ranks = tuple(self._core.world_ranks[r] for r in parent_ranks)

        def factory() -> CommCore:
            return CommCore(
                self._core.world,
                world_ranks,
                f"{self._core.name}.split({color})",
            )

        core = self._core.world.registry.get_or_create((*seq_key, color), factory)
        return core.views[parent_ranks.index(self._rank)]

    def Dup(self) -> "Intracomm":
        """Duplicate the communicator (fresh contexts, same membership)."""
        dup = self.Split(color=0, key=self._rank)
        assert dup is not None
        dup._core.name = f"{self._core.name}.dup"
        return dup

    def Create(self, group: Group) -> "Intracomm | None":
        """Build a communicator from a subset group (collective over parent)."""
        try:
            my_pos = group.ranks.index(self._core.world_ranks[self._rank])
        except ValueError:
            my_pos = UNDEFINED
        color = 0 if my_pos != UNDEFINED else UNDEFINED
        key = my_pos if my_pos != UNDEFINED else 0
        return self.Split(color=color, key=key)

    def Create_cart(
        self,
        dims: Sequence[int],
        periods: Sequence[bool] | None = None,
        reorder: bool = False,
    ) -> "Any | None":
        """Create a Cartesian topology communicator (see ``cartesian.py``)."""
        from .cartesian import Cartcomm

        dims = tuple(int(d) for d in dims)
        nnodes = 1
        for d in dims:
            if d < 1:
                raise ValueError(f"invalid cartesian dims {dims}")
            nnodes *= d
        if nnodes > self._core.size:
            raise InvalidCountError(
                f"cartesian grid {dims} needs {nnodes} ranks, communicator has "
                f"{self._core.size}"
            )
        periods = tuple(bool(p) for p in (periods or (False,) * len(dims)))
        if len(periods) != len(dims):
            raise ValueError("periods must match dims in length")

        triples = self.allgather((0 if self._rank < nnodes else UNDEFINED, self._rank, self._rank))
        seq_key = ("cart", self._core.cid, self._coll_seq, dims, periods)
        if self._rank >= nnodes:
            return None
        member_parents = [r for c, _k, r in triples if c == 0]
        member_parents.sort()
        world_ranks = tuple(self._core.world_ranks[r] for r in member_parents)

        def factory() -> CommCore:
            return CommCore(
                self._core.world,
                world_ranks,
                f"{self._core.name}.cart{dims}",
                view_cls=Cartcomm,
                view_kwargs={"dims": dims, "periods": periods},
            )

        core = self._core.world.registry.get_or_create(seq_key, factory)
        return core.views[member_parents.index(self._rank)]

    # ------------------------------------------------------------------- misc
    def Get_processor_name(self) -> str:
        """Simulated hostname of the machine running this rank."""
        return self._core.world.hostname

    def py2f(self) -> int:
        return self._core.cid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Intracomm {self._core.name!r} rank={self._rank} "
            f"size={self._core.size}>"
        )
