"""``MPI_Status`` equivalent: metadata about a received message."""

from __future__ import annotations

from .datatypes import Datatype


class Status:
    """Receive-side message metadata (source, tag, size).

    Mirrors the mpi4py accessors (``Get_source``, ``Get_tag``,
    ``Get_count``, ``Get_elements``) plus the convenience ``source``/``tag``
    properties.  A fresh instance holds sentinel values until it is filled
    in by a completed receive or probe.
    """

    __slots__ = ("_source", "_tag", "_nbytes", "_cancelled")

    def __init__(self) -> None:
        self._source = -1
        self._tag = -1
        self._nbytes = 0
        self._cancelled = False

    def _set(self, source: int, tag: int, nbytes: int) -> None:
        self._source = source
        self._tag = tag
        self._nbytes = nbytes

    # -- mpi4py-style accessors -------------------------------------------------
    def Get_source(self) -> int:
        """Rank of the sender of the matched message."""
        return self._source

    def Get_tag(self) -> int:
        """Tag of the matched message."""
        return self._tag

    def Get_count(self, datatype: Datatype | None = None) -> int:
        """Number of elements received (bytes if no datatype given)."""
        if datatype is None:
            return self._nbytes
        if self._nbytes % datatype.extent:
            raise ValueError(
                f"received {self._nbytes} bytes, not a whole number of "
                f"{datatype.name} elements ({datatype.extent} bytes each)"
            )
        return self._nbytes // datatype.extent

    Get_elements = Get_count

    def Is_cancelled(self) -> bool:
        """Whether the matched operation was cancelled (always False here)."""
        return self._cancelled

    # -- pythonic properties ------------------------------------------------------
    @property
    def source(self) -> int:
        return self._source

    @property
    def tag(self) -> int:
        return self._tag

    @property
    def count(self) -> int:
        return self._nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Status source={self._source} tag={self._tag} bytes={self._nbytes}>"
