"""Process-rank launcher: real OS processes behind the ``comm`` API.

The thread-per-rank :class:`~repro.mpi.runtime.World` gives the teaching
runtime faithful MPI *semantics* (matching, collectives, deadlock
detection) but no *parallelism* — every rank shares one GIL.  This module
launches ranks as forked OS processes with pipe-based message transport,
so the distributed exemplars measure real multicore speedup while keeping
the SPMD ``fn(comm)`` call shape unchanged.

Scope: :class:`ProcComm` implements the communicator surface the
patternlets and exemplars actually exercise — rank/size introspection,
tagged ``send``/``recv``/``sendrecv`` with ``ANY_SOURCE``/``ANY_TAG`` and
:class:`~repro.mpi.status.Status`, the object collectives (``barrier``,
``bcast``, ``scatter``, ``gather``, ``allgather``, ``reduce``,
``allreduce``), the typed-buffer verbs (``Send``/``Recv``/``Sendrecv``
and ``Bcast``/``Scatter``/``Gather``/``Allgather``/``Reduce``/
``Allreduce``), and 1-D-and-beyond Cartesian topologies (``Create_cart``,
``Shift`` with ``PROC_NULL`` edges).  The full API (vector collectives,
requests, windows, files, splitting) remains on the threaded backend;
select per launch with ``mpirun(..., backend=...)`` or
``REPRO_MPI_BACKEND``.

Transport: one multiprocessing queue (a locked pipe) per rank serves as
its inbox.  Object envelopes carry payloads pre-pickled by the sending
rank (through :func:`repro.mpi.serial.counted_dumps`, so serialization is
accounted), and receive-side :class:`Status` reports exact byte counts.
Typed buffers never touch pickle: their envelopes carry a
:class:`~repro.mpi.message.BufferHandle` — raw bytes inline below
:func:`repro.mpi.shm.shm_threshold`, a shared-memory segment reference
above it.  Large point-to-point edges reuse an acknowledged per-``(src,
dst)`` segment (:class:`repro.mpi.shm.SendSlot`) that the receiver
re-attaches through a bounded :class:`repro.mpi.shm.SegmentCache`;
root-fanout collectives share one segment across all destinations and the
root unlinks it once every receiver has acknowledged its copy-out.
Collective traffic rides the same pipes under a per-rank sequence
number — ranks execute collectives in program order, so the sequence
aligns without a separate channel.

Small envelopes are additionally *batched* per destination edge: sends at
or below ``REPRO_MPI_BATCH_BYTES`` (default 1024; ``0`` disables) are
coalesced and flushed as one envelope when the batch fills, before any
larger send to the same edge (non-overtaking), whenever this rank is
about to block (receive, collective, ack wait), and at rank-body end.
Batching turns itself off while a fault injector is armed, because fault
rules are keyed to per-edge message ordinals.

Requires a ``fork``-capable platform (rank bodies may be closures, which
fork inherits but pickle cannot ship).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as _queue_mod
import time
from typing import Any, Callable, Sequence

import numpy as np

from . import algorithms as _algos
from . import collectives as _coll_algos
from . import hooks as _hooks
from . import serial as _serial
from . import shm as _shm
from .buffers import BufferSpec, parse_buffer
from .comm import _PHASE_SPAN
from .constants import ANY_SOURCE, ANY_TAG, DEFAULT_DEADLOCK_TIMEOUT, PROC_NULL
from .errors import (
    DeadlockError,
    InvalidCountError,
    InvalidRankError,
    InvalidTagError,
    MPIError,
    RankFailedError,
    TruncationError,
)
from .message import BufferHandle
from .ops import SUM, Op
from .status import Status

__all__ = ["ProcComm", "ProcCartcomm", "run_procs", "fork_available"]

#: Default per-edge coalescing threshold (bytes); REPRO_MPI_BATCH_BYTES
#: overrides, 0 disables.
DEFAULT_BATCH_BYTES = 1024
#: A pending batch is flushed once it holds this many envelopes ...
_BATCH_MAX_MSGS = 16
#: ... or this many payload bytes, whichever comes first.
_BATCH_FLUSH_BYTES = 8192


def _batch_limit() -> int:
    env = os.environ.get("REPRO_MPI_BATCH_BYTES")
    if env is not None:
        try:
            return max(0, int(env))
        except ValueError:
            return DEFAULT_BATCH_BYTES
    return DEFAULT_BATCH_BYTES


def fork_available() -> bool:
    """Whether the platform can launch process ranks (fork start method)."""
    return "fork" in multiprocessing.get_all_start_methods()


class _RemoteRankError(MPIError):
    """Re-raised form of an exception that crossed the process boundary."""


class ProcComm:
    """COMM_WORLD view of one process rank (see module docstring for scope)."""

    #: Context id for hook events: process ranks only expose COMM_WORLD, and
    #: 0 never collides with threaded-world cids (their counter starts at 1).
    _obs_cid = 0

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: Sequence[Any],
        hostname: str,
        deadlock_timeout: float | None,
    ) -> None:
        self._rank = rank
        self._size = size
        self._inboxes = inboxes
        self._hostname = hostname
        self._timeout = deadlock_timeout
        #: Buffered envelopes: (source, tag/seq, payload) where payload is
        #: pickled bytes (object verbs) or a BufferHandle (buffer verbs).
        self._p2p: list[tuple[int, int, Any]] = []
        self._coll: list[tuple[int, int, Any]] = []
        self._coll_seq = 0
        #: Fault injector (``repro.testkit``); armed by ``_rank_main`` when
        #: the forked child inherited an active plan.
        self._injector = None
        #: Per-destination coalescing buffers for small envelopes.
        self._batch_limit = _batch_limit()
        self._batch: dict[int, list[tuple[str, int, Any]]] = {}
        self._batch_bytes: dict[int, int] = {}
        #: Zero-copy transport state: reused send segment per destination,
        #: received-but-unclaimed copy-out acknowledgments by segment name,
        #: and the attach-side segment cache.
        self._send_slots: dict[int, _shm.SendSlot] = {}
        self._acks: dict[str, int] = {}
        self._cache = _shm.SegmentCache()

    def _fault_op(self) -> None:
        if self._injector is not None:
            self._injector.on_op(self._rank)

    # -- introspection ------------------------------------------------------
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def Get_processor_name(self) -> str:
        return self._hostname

    def Get_topology(self) -> str | None:
        return None

    # -- transport ----------------------------------------------------------
    def _check_peer(self, peer: int, *, wildcard: bool, what: str) -> None:
        if peer == PROC_NULL:
            return
        if wildcard and peer == ANY_SOURCE:
            return
        if not 0 <= peer < self._size:
            raise InvalidRankError(peer, self._size, what)

    def _file(self, kind: str, src: int, key: int, payload: Any) -> None:
        """Sort one received envelope into the matching buffer."""
        if kind == "p2p":
            self._p2p.append((src, key, payload))
        elif kind == "coll":
            self._coll.append((src, key, payload))
        elif kind == "ack":
            self._acks[payload] = self._acks.get(payload, 0) + 1
        else:  # a coalesced batch: payload is [(kind, key, payload), ...]
            for inner_kind, inner_key, inner_payload in payload:
                self._file(inner_kind, src, inner_key, inner_payload)

    def _pump_once(self, timeout: float | None) -> bool:
        """Receive and file one envelope; False on timeout (never raises)."""
        try:
            kind, src, key, payload = self._inboxes[self._rank].get(timeout=timeout)
        except _queue_mod.Empty:
            return False
        self._file(kind, src, key, payload)
        return True

    def _pump(self) -> None:
        """Block for one envelope, filing it into the right buffer.

        Flushes this rank's pending batches first: we are about to block,
        and a peer may need one of the held envelopes to make progress.
        """
        self._flush_all()
        if not self._pump_once(self._timeout):
            raise DeadlockError(
                f"rank {self._rank} made no progress for "
                f"{self._timeout}s (blocked in a receive no sender "
                "matches — classic send/recv ordering deadlock?)"
            )

    @staticmethod
    def _payload_nbytes(payload: Any) -> int:
        if isinstance(payload, BufferHandle):
            return _shm.payload_nbytes(payload)
        return len(payload)

    def _post_obj(self, dest: int, kind: str, key: int, obj: Any) -> None:
        """Post a pickled-object envelope (the lowercase-verb path)."""
        blob = _serial.counted_dumps(obj)
        self._post_raw(dest, kind, key, blob, len(blob))

    def _post_raw(
        self, dest: int, kind: str, key: int, payload: Any, nbytes: int
    ) -> None:
        """Post one envelope, batching small ones per destination edge."""
        if _hooks.enabled:
            if kind == "p2p":
                _hooks.emit("send", 0, self._rank, dest, key, nbytes)
            else:
                _hooks.emit("coll_msg", 0, self._rank, dest, nbytes)
        envelope = (kind, self._rank, key, payload)
        if self._injector is not None:
            # Fault rules count per-edge message ordinals; coalescing would
            # renumber them, so injected runs always post eagerly.
            self._injector.dispositions(
                self._rank, dest, lambda: self._inboxes[dest].put(envelope)
            )
            return
        if self._batch_limit and nbytes <= self._batch_limit and dest != self._rank:
            pending = self._batch.setdefault(dest, [])
            pending.append((kind, key, payload))
            total = self._batch_bytes.get(dest, 0) + nbytes
            self._batch_bytes[dest] = total
            if len(pending) >= _BATCH_MAX_MSGS or total >= _BATCH_FLUSH_BYTES:
                self._flush_dest(dest)
            return
        # Non-overtaking: anything already batched for this edge must land
        # before this larger envelope.
        self._flush_dest(dest)
        self._inboxes[dest].put(envelope)

    def _flush_dest(self, dest: int) -> None:
        pending = self._batch.get(dest)
        if not pending:
            return
        self._batch[dest] = []
        self._batch_bytes[dest] = 0
        if len(pending) == 1:
            kind, key, payload = pending[0]
            self._inboxes[dest].put((kind, self._rank, key, payload))
        else:
            self._inboxes[dest].put(("batch", self._rank, 0, pending))

    def _flush_all(self) -> None:
        for dest, pending in self._batch.items():
            if pending:
                self._flush_dest(dest)

    def _post_ack(self, dest: int, name: str) -> None:
        """Acknowledge a copy-out so the sender may reuse segment ``name``.

        Acks are transport-internal: never batched, never fault-injected,
        invisible to the hook seam.
        """
        self._inboxes[dest].put(("ack", self._rank, 0, name))

    def _await_acks(self, name: str, n: int = 1) -> None:
        while self._acks.get(name, 0) < n:
            self._pump()
        del self._acks[name]

    def _ship_edge(self, values: np.ndarray, dest: int) -> BufferHandle:
        """Package a typed payload for ``dest``, reusing the edge's slot."""
        if self._injector is not None:
            # A dropped descriptor would leak its segment and a duplicated
            # single-use one would be fetched twice, so injected runs ship
            # every buffer inline — fault semantics stay message-shaped.
            return _shm.ship(values, threshold=1 << 62)
        if values.nbytes < _shm.shm_threshold():
            return _shm.ship(values)
        slot = self._send_slots.setdefault(dest, _shm.SendSlot())
        if slot.awaiting_ack and slot.segment is not None:
            self._await_acks(slot.segment.name)
            slot.awaiting_ack = False
        return _shm.ship(values, slot=slot)

    def _fill_spec(self, spec: BufferSpec, values: np.ndarray) -> None:
        if values.size > len(spec.array):
            raise TruncationError(
                f"message of {values.size} elements truncated to receive "
                f"buffer of {len(spec.array)}"
            )
        spec.fill(values.astype(spec.datatype.np_dtype, copy=False))

    # -- point-to-point ------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if tag < 0:
            raise InvalidTagError(tag)
        self._check_peer(dest, wildcard=False, what="destination")
        if dest == PROC_NULL:
            return
        self._fault_op()
        self._post_obj(dest, "p2p", tag, obj)

    def recv(
        self,
        buf: Any = None,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        self._check_peer(source, wildcard=True, what="source")
        if source == PROC_NULL:
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return None
        self._fault_op()
        if _hooks.enabled:
            _hooks.emit("recv_enter", 0, self._rank, source, tag)
        while True:
            for idx, (src, tg, payload) in enumerate(self._p2p):
                if (source == ANY_SOURCE or src == source) and (
                    tag == ANY_TAG or tg == tag
                ):
                    if isinstance(payload, BufferHandle):
                        raise TypeError(
                            "object receive matched a typed-buffer message; "
                            "pair uppercase sends with uppercase receives"
                        )
                    del self._p2p[idx]
                    nbytes = len(payload)
                    if _hooks.enabled:
                        _hooks.emit("recv_exit", 0, self._rank, src, tg, nbytes)
                    if status is not None:
                        status._set(src, tg, nbytes)
                    return pickle.loads(payload)
            self._pump()

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        recvbuf: Any = None,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        # Pipe transport buffers the outgoing message, so send-then-recv
        # cannot self-deadlock for teaching-scale payloads.
        self.send(sendobj, dest, sendtag)
        return self.recv(recvbuf, source=source, tag=recvtag, status=status)

    # -- point-to-point (buffer) ---------------------------------------------
    def Send(self, buf: Any, dest: int, tag: int = 0) -> None:
        """Blocking typed-buffer send over the zero-copy transport.

        Payloads above :func:`repro.mpi.shm.shm_threshold` travel through a
        reused per-edge shared-memory segment; the second large ``Send`` on
        an edge waits for the receiver's copy-out ack before overwriting it
        (rendezvous semantics, as real MPI large sends have).
        """
        if tag < 0:
            raise InvalidTagError(tag)
        self._check_peer(dest, wildcard=False, what="destination")
        if dest == PROC_NULL:
            return
        self._fault_op()
        spec = parse_buffer(buf)
        handle = self._ship_edge(spec.array[: spec.count], dest)
        self._post_raw(dest, "p2p", tag, handle, spec.nbytes)

    def Recv(
        self,
        buf: Any,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> None:
        """Blocking typed-buffer receive into caller-provided storage."""
        self._check_peer(source, wildcard=True, what="source")
        spec = parse_buffer(buf)
        if source == PROC_NULL:
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return
        self._fault_op()
        if _hooks.enabled:
            _hooks.emit("recv_enter", 0, self._rank, source, tag)
        while True:
            for idx, (src, tg, payload) in enumerate(self._p2p):
                if (source == ANY_SOURCE or src == source) and (
                    tag == ANY_TAG or tg == tag
                ):
                    if not isinstance(payload, BufferHandle):
                        raise TypeError(
                            "buffer receive matched an object-mode message; "
                            "pair lowercase sends with lowercase receives"
                        )
                    del self._p2p[idx]
                    nbytes = _shm.payload_nbytes(payload)
                    if _hooks.enabled:
                        _hooks.emit("recv_exit", 0, self._rank, src, tg, nbytes)
                    values, ack = _shm.fetch(payload, self._cache)
                    if ack is not None:
                        self._post_ack(src, ack)
                    self._fill_spec(spec, values)
                    if status is not None:
                        status._set(src, tg, nbytes)
                    return
            self._pump()

    def Sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        sendtag: int = 0,
        recvbuf: Any = None,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Status | None = None,
    ) -> None:
        self.Send(sendbuf, dest, sendtag)
        self.Recv(recvbuf, source=source, tag=recvtag, status=status)

    # -- collectives ---------------------------------------------------------
    def _next_seq(self) -> int:
        self._fault_op()
        self._coll_seq += 1
        return self._coll_seq

    def _pick(
        self,
        collective: str,
        *,
        nbytes: int = 0,
        commute: bool = True,
        chunked: bool = False,
        requested: str | None = None,
    ) -> str:
        """Resolve the collective algorithm and record the pick (see
        :meth:`repro.mpi.comm.Intracomm._pick` for the rank-consistency
        rules; the same contract applies here)."""
        algo = _algos.resolve(
            collective,
            size=self._size,
            nbytes=nbytes,
            commute=commute,
            chunked=chunked,
            requested=requested,
        )
        if _hooks.enabled:
            _hooks.emit("coll_algo", self._obs_cid, self._rank, collective, algo)
        return algo

    def _transports(self, seq: int):
        """Raw (bytes) transport callbacks for one collective call.

        Keys are ``seq * _PHASE_SPAN + phase`` — the same internal tag
        scheme as the threaded backend — so multi-phase algorithms never
        cross-match and bare-seq keys from other collectives can't collide.
        """

        def send(dest: int, phase: int, payload: Any) -> None:
            self._post_raw(
                dest,
                "coll",
                seq * _PHASE_SPAN + phase,
                payload,
                self._payload_nbytes(payload),
            )

        def recv(source: int, phase: int) -> Any:
            payload = self._coll_recv_raw(seq * _PHASE_SPAN + phase, source)
            if isinstance(payload, BufferHandle):
                raise TypeError(
                    "object collective matched a typed-buffer collective; "
                    "call the same verb case on every rank"
                )
            return payload

        return send, recv

    def _obj_transports(self, seq: int):
        """Pickling transport: every delivery is a private deep copy."""
        send_raw, recv_raw = self._transports(seq)

        def send(dest: int, phase: int, payload: Any) -> None:
            send_raw(dest, phase, _serial.counted_dumps(payload))

        def recv(source: int, phase: int) -> Any:
            return pickle.loads(recv_raw(source, phase))

        return send, recv

    def _buf_transports(self, seq: int):
        """Typed-array transport over shared-memory handles (never pickles)."""

        def send(dest: int, phase: int, values: Any) -> None:
            values = np.ascontiguousarray(values)
            handle = self._ship_edge(values, dest)
            self._post_raw(
                dest, "coll", seq * _PHASE_SPAN + phase, handle, values.nbytes
            )

        def recv(source: int, phase: int) -> np.ndarray:
            return self._coll_recv_buf(seq * _PHASE_SPAN + phase, source)

        return send, recv

    def _coll_recv_raw(self, seq: int, source: int) -> Any:
        while True:
            for idx, (src, sq, payload) in enumerate(self._coll):
                if src == source and sq == seq:
                    del self._coll[idx]
                    return payload
            self._pump()

    def _coll_recv_buf(self, seq: int, source: int) -> np.ndarray:
        payload = self._coll_recv_raw(seq, source)
        if not isinstance(payload, BufferHandle):
            raise TypeError(
                "buffer collective matched an object-mode collective; call "
                "the same verb case on every rank"
            )
        values, ack = _shm.fetch(payload, self._cache)
        if ack is not None:
            self._post_ack(source, ack)
        return values

    def _coll_fanout(
        self,
        seq: int,
        values: np.ndarray,
        pieces: Sequence[tuple[int, int, int]],
    ) -> None:
        """Ship slices of one array to many ranks under one collective seq.

        ``pieces`` is ``(dest, start, stop)`` element ranges into
        ``values``.  Large payloads share a single segment — the per-dest
        handles differ only in offset — and this root collects one ack per
        destination before unlinking it, which makes the fanout
        synchronizing (every receiver has copied out when it returns).
        """
        if not pieces:
            return
        itemsize = values.dtype.itemsize
        dtype = values.dtype.str
        largest = max(stop - start for _, start, stop in pieces) * itemsize
        if self._injector is None and largest >= _shm.shm_threshold():
            seg = _shm.create_segment(values.nbytes)
            np.ndarray((values.size,), dtype=values.dtype, buffer=seg.buf)[:] = values
            for dest, start, stop in pieces:
                handle = BufferHandle(
                    seg.name,
                    (stop - start,),
                    dtype,
                    offset=start * itemsize,
                    mode=_shm.ACKED,
                )
                self._post_raw(
                    dest, "coll", seq, handle, (stop - start) * itemsize
                )
            self._await_acks(seg.name, len(pieces))
            _shm.unlink_segment(seg)
            return
        for dest, start, stop in pieces:
            piece = values[start:stop]
            handle = BufferHandle(None, (piece.size,), dtype, data=piece.tobytes())
            self._post_raw(dest, "coll", seq, handle, piece.nbytes)

    @_hooks.traced_collective
    def barrier(self) -> None:
        self._pick("barrier")
        seq = self._next_seq()
        send, recv = self._transports(seq)
        _coll_algos.barrier_dissemination(self._rank, self._size, send, recv)

    Barrier = barrier

    @_hooks.traced_collective
    def bcast(self, obj: Any, root: int = 0, *, algorithm: str | None = None) -> Any:
        self._check_peer(root, wildcard=False, what="root")
        algo = self._pick("bcast", requested=algorithm)
        seq = self._next_seq()
        send, recv = self._transports(seq)
        payload = _serial.counted_dumps(obj) if self._rank == root else None
        result = _algos.run_bcast(
            algo, self._rank, self._size, root, payload, send, recv,
            split=_coll_algos.split_bytes, concat=b"".join,
        )
        return obj if self._rank == root else pickle.loads(result)

    @_hooks.traced_collective
    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_peer(root, wildcard=False, what="root")
        seq = self._next_seq()
        send, recv = self._obj_transports(seq)
        chunks = None
        if self._rank == root:
            chunks = list(sendobj)  # type: ignore[arg-type]
            if len(chunks) != self._size:
                raise ValueError(
                    f"scatter needs exactly {self._size} items, got {len(chunks)}"
                )
        return _coll_algos.scatter_linear(
            self._rank, self._size, root, chunks, send, recv
        )

    @_hooks.traced_collective
    def gather(self, sendobj: Any, root: int = 0) -> list[Any] | None:
        self._check_peer(root, wildcard=False, what="root")
        seq = self._next_seq()
        send, recv = self._obj_transports(seq)
        return _coll_algos.gather_linear(
            self._rank, self._size, root, sendobj, send, recv
        )

    @_hooks.traced_collective
    def allgather(self, sendobj: Any, *, algorithm: str | None = None) -> list[Any]:
        algo = self._pick("allgather", requested=algorithm)
        seq = self._next_seq()
        send, recv = self._obj_transports(seq)
        return _algos.run_allgather(algo, self._rank, self._size, sendobj, send, recv)

    @_hooks.traced_collective
    def reduce(
        self,
        sendobj: Any,
        op: Op = SUM,
        root: int = 0,
        *,
        algorithm: str | None = None,
    ) -> Any:
        self._check_peer(root, wildcard=False, what="root")
        algo = self._pick("reduce", commute=op.commute, requested=algorithm)
        seq = self._next_seq()
        send, recv = self._obj_transports(seq)
        return _algos.run_reduce(
            algo, self._rank, self._size, root, sendobj, op, send, recv
        )

    @_hooks.traced_collective
    def allreduce(
        self, sendobj: Any, op: Op = SUM, *, algorithm: str | None = None
    ) -> Any:
        algo = self._pick("allreduce", commute=op.commute, requested=algorithm)
        seq = self._next_seq()
        send, recv = self._obj_transports(seq)
        return _algos.run_allreduce(
            algo, self._rank, self._size, sendobj, op, send, recv
        )

    # -- collectives (buffer) ------------------------------------------------
    @staticmethod
    def _array_split(values: Any, n: int) -> list[np.ndarray]:
        return list(np.array_split(values, n))

    @_hooks.traced_collective
    def Bcast(self, buf: Any, root: int = 0, *, algorithm: str | None = None) -> None:
        """Broadcast a typed buffer in place.

        The ``linear`` algorithm keeps the one-segment root fanout (every
        destination handle points into a single shared segment); the tree
        and scatter-allgather algorithms route through the generic
        per-edge buffer transport.
        """
        self._check_peer(root, wildcard=False, what="root")
        spec = parse_buffer(buf)
        algo = self._pick(
            "bcast",
            nbytes=spec.count * spec.array.dtype.itemsize,
            requested=algorithm,
        )
        seq = self._next_seq()
        if algo == "linear":
            if self._rank == root:
                values = spec.array[: spec.count]
                count = spec.count
                pieces = [(r, 0, count) for r in range(self._size) if r != root]
                self._coll_fanout(seq * _PHASE_SPAN, values, pieces)
                return
            self._fill_spec(spec, self._coll_recv_buf(seq * _PHASE_SPAN, root))
            return
        send, recv = self._buf_transports(seq)
        payload = spec.array[: spec.count] if self._rank == root else None
        values = _algos.run_bcast(
            algo, self._rank, self._size, root, payload, send, recv,
            split=self._array_split, concat=np.concatenate,
        )
        if self._rank != root:
            self._fill_spec(spec, np.asarray(values))

    @_hooks.traced_collective
    def Scatter(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        """Scatter equal contiguous chunks of ``sendbuf`` from root."""
        self._check_peer(root, wildcard=False, what="root")
        rspec = parse_buffer(recvbuf)
        seq = self._next_seq()
        if self._rank == root:
            sspec = parse_buffer(sendbuf)
            if sspec.count % self._size:
                raise InvalidCountError(
                    f"Scatter: send count {sspec.count} not divisible by "
                    f"size {self._size}"
                )
            n = sspec.count // self._size
            values = sspec.array[: sspec.count]
            pieces = [
                (r, r * n, (r + 1) * n) for r in range(self._size) if r != root
            ]
            self._coll_fanout(seq * _PHASE_SPAN, values, pieces)
            self._fill_spec(rspec, values[root * n : (root + 1) * n].copy())
            return
        self._fill_spec(rspec, self._coll_recv_buf(seq * _PHASE_SPAN, root))

    @_hooks.traced_collective
    def Gather(self, sendbuf: Any, recvbuf: Any, root: int = 0) -> None:
        """Gather equal chunks into root's buffer, ordered by rank."""
        self._check_peer(root, wildcard=False, what="root")
        sspec = parse_buffer(sendbuf)
        seq = self._next_seq()
        send, recv = self._buf_transports(seq)
        values = sspec.array[: sspec.count]
        parts = _coll_algos.gather_linear(
            self._rank, self._size, root, values, send, recv
        )
        if self._rank == root:
            self._place_parts(parse_buffer(recvbuf), parts)

    @_hooks.traced_collective
    def Allgather(
        self, sendbuf: Any, recvbuf: Any, *, algorithm: str | None = None
    ) -> None:
        """All ranks gather everyone's chunk into their own buffer."""
        sspec = parse_buffer(sendbuf)
        algo = self._pick(
            "allgather",
            nbytes=sspec.count * sspec.array.dtype.itemsize,
            requested=algorithm,
        )
        seq = self._next_seq()
        send, recv = self._buf_transports(seq)
        parts = _algos.run_allgather(
            algo, self._rank, self._size, sspec.array[: sspec.count], send, recv,
            concat=np.concatenate,
        )
        rspec = parse_buffer(recvbuf)
        if isinstance(parts, list):
            self._place_parts(rspec, parts)
        else:
            self._fill_spec(rspec, np.asarray(parts))

    @_hooks.traced_collective
    def Reduce(
        self,
        sendbuf: Any,
        recvbuf: Any,
        op: Op = SUM,
        root: int = 0,
        *,
        algorithm: str | None = None,
    ) -> None:
        """Elementwise typed reduction to root (combined in rank order)."""
        self._check_peer(root, wildcard=False, what="root")
        sspec = parse_buffer(sendbuf)
        algo = self._pick(
            "reduce",
            nbytes=sspec.count * sspec.array.dtype.itemsize,
            commute=op.commute,
            requested=algorithm,
        )
        seq = self._next_seq()
        send, recv = self._buf_transports(seq)
        result = _algos.run_reduce(
            algo, self._rank, self._size, root,
            sspec.array[: sspec.count], op, send, recv,
        )
        if self._rank == root:
            self._fill_spec(parse_buffer(recvbuf), np.asarray(result))

    @_hooks.traced_collective
    def Allreduce(
        self,
        sendbuf: Any,
        recvbuf: Any,
        op: Op = SUM,
        *,
        algorithm: str | None = None,
    ) -> None:
        """Elementwise typed reduction delivered to every rank."""
        sspec = parse_buffer(sendbuf)
        chunkable = op.commute and op.elementwise and self._size > 1
        algo = self._pick(
            "allreduce",
            nbytes=sspec.count * sspec.array.dtype.itemsize,
            commute=op.commute,
            chunked=chunkable,
            requested=algorithm,
        )
        seq = self._next_seq()
        send, recv = self._buf_transports(seq)
        result = _algos.run_allreduce(
            algo, self._rank, self._size, sspec.array[: sspec.count], op,
            send, recv,
            split=self._array_split if chunkable else None,
            concat=np.concatenate if chunkable else None,
        )
        self._fill_spec(parse_buffer(recvbuf), np.asarray(result))

    def _place_parts(self, rspec: BufferSpec, parts: Sequence[np.ndarray]) -> None:
        offset = 0
        for src, part in enumerate(parts):
            arr = np.asarray(part)
            if offset + arr.size > len(rspec.array):
                raise TruncationError(
                    f"gathered data exceeds the receive buffer capacity: rank "
                    f"{src}'s part of {arr.size} elements at offset {offset} "
                    f"overflows the {len(rspec.array)}-element buffer"
                )
            rspec.array[offset : offset + arr.size] = arr.astype(
                rspec.datatype.np_dtype, copy=False
            )
            offset += arr.size

    def _finalize(self) -> None:
        """Flush and tear down transport state at rank-body end.

        Outstanding copy-out acks are collected (bounded wait: the ack
        follows the receiver's copy, so in a matched program it is already
        in flight) and then reused segments are unlinked.  A slot whose
        ack never arrives — an orphaned send, which is an erroneous MPI
        program — is closed without unlinking rather than yanked from
        under a late receiver.
        """
        self._flush_all()
        deadline = time.monotonic() + 2.0
        for slot in self._send_slots.values():
            if slot.awaiting_ack and slot.segment is not None:
                name = slot.segment.name
                while self._acks.get(name, 0) < 1:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._pump_once(remaining):
                        break
                if self._acks.pop(name, 0):
                    slot.awaiting_ack = False
            if slot.awaiting_ack:
                if slot.segment is not None:
                    slot.segment.close()
            else:
                slot.release()
        self._send_slots.clear()
        self._cache.close()

    # -- topology -----------------------------------------------------------
    def Create_cart(
        self,
        dims: Sequence[int],
        periods: Sequence[bool] | None = None,
        reorder: bool = False,
    ) -> "ProcCartcomm":
        dims = tuple(int(d) for d in dims)
        total = 1
        for d in dims:
            total *= d
        if total != self._size:
            raise ValueError(
                f"cartesian grid {dims} needs {total} ranks, world has {self._size}"
            )
        per = tuple(bool(p) for p in (periods or (False,) * len(dims)))
        if len(per) != len(dims):
            raise ValueError("periods must align with dims")
        return ProcCartcomm(self, dims, per)


class ProcCartcomm:
    """Cartesian view over a :class:`ProcComm` (row-major rank layout)."""

    def __init__(
        self, base: ProcComm, dims: tuple[int, ...], periods: tuple[bool, ...]
    ) -> None:
        self._base = base
        self.dims = dims
        self.periods = periods

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)

    def Get_topology(self) -> str:
        return "cart"

    def Get_coords(self, rank: int) -> list[int]:
        coords = []
        for extent in reversed(self.dims):
            coords.append(rank % extent)
            rank //= extent
        return list(reversed(coords))

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        rank = 0
        for coord, extent in zip(coords, self.dims):
            rank = rank * extent + (coord % extent)
        return rank

    def Shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """(source, dest) for a shift along ``direction`` by ``disp``."""
        if not 0 <= direction < len(self.dims):
            raise ValueError(f"invalid direction {direction} for dims {self.dims}")
        me = self.Get_coords(self._base.rank)

        def neighbor(offset: int) -> int:
            coords = list(me)
            coords[direction] += offset
            extent = self.dims[direction]
            if not self.periods[direction] and not 0 <= coords[direction] < extent:
                return PROC_NULL
            return self.Get_cart_rank(coords)

        return neighbor(-disp), neighbor(disp)


# ---------------------------------------------------------------------------
# Launch
# ---------------------------------------------------------------------------

def _rank_main(
    rank: int,
    size: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    inboxes: list[Any],
    results: Any,
    hostname: str,
    deadlock_timeout: float | None,
) -> None:
    # Re-home any fork-inherited recorder: events this rank emits are
    # recorded locally and shipped back as the 4th result-tuple element
    # (they would otherwise land in a dead copy of the parent's buffer).
    from ..obs.recorder import adopt_forked_recorder, collect_forwarded

    rank_rec = adopt_forked_recorder(("rank", rank))
    # The fork copied the parent's serialization counters; zero them so the
    # totals shipped back cover this rank's own traffic only.
    _serial.reset_serialized()
    comm = ProcComm(rank, size, inboxes, hostname, deadlock_timeout)
    # A fault plan armed in the parent rides across fork as a module global
    # (lazy import: testkit depends on this package, not vice versa).
    from ..testkit.faults import FaultInjector, active_fault_plan

    plan = active_fault_plan()
    if plan:
        comm._injector = FaultInjector(plan)
    try:
        value = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        try:
            pickle.dumps(exc)
            payload: Any = exc
        except Exception:
            payload = _RemoteRankError(f"{type(exc).__name__}: {exc}")
        try:
            comm._finalize()
        except Exception:
            pass
        results.put(
            (rank, False, payload, collect_forwarded(rank_rec),
             _serial.serialized_totals())
        )
        return
    try:
        comm._finalize()
    except Exception:
        pass
    forwarded = collect_forwarded(rank_rec)
    totals = _serial.serialized_totals()
    try:
        results.put((rank, True, value, forwarded, totals))
    except Exception as exc:  # unpicklable rank result
        results.put(
            (rank, False, _RemoteRankError(f"unpicklable result: {exc}"),
             forwarded, totals)
        )


def run_procs(
    fn: Callable[..., Any],
    np: int,
    *args: Any,
    hostname: str = "d6ff4f902ed6",
    deadlock_timeout: float | None = DEFAULT_DEADLOCK_TIMEOUT,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args)`` SPMD on ``np`` forked processes.

    The drop-in process-backed sibling of :func:`repro.mpi.mpirun`: same
    call shape, same per-rank return list, but each rank owns an OS
    process (and a core, when the host has them).  Raises
    :class:`DeadlockError` when ranks stop making progress and
    :class:`RankFailedError` when a rank raises.
    """
    if np < 1:
        raise ValueError(f"process count must be positive, got {np}")
    if not fork_available():
        raise MPIError(
            "the process-rank launcher needs the 'fork' start method; "
            "this platform lacks it — use backend='threads'"
        )
    ctx = multiprocessing.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(np)]
    results_q = ctx.Queue()
    procs = [
        ctx.Process(
            target=_rank_main,
            args=(
                rank,
                np,
                fn,
                args,
                kwargs,
                inboxes,
                results_q,
                hostname,
                deadlock_timeout,
            ),
            name=f"mpi-proc-rank-{rank}",
            daemon=True,
        )
        for rank in range(np)
    ]
    from ..obs.recorder import active as _obs_active
    from ..obs.recorder import ingest_forwarded as _obs_ingest

    launch_ts = time.monotonic()
    for p in procs:
        p.start()

    # Drain results *before* joining: a child flushing a large result into a
    # full pipe would otherwise deadlock against a parent stuck in join().
    results: list[Any] = [None] * np
    failures: dict[int, BaseException] = {}
    budget = (deadlock_timeout or 30.0) * 4
    deadline = time.monotonic() + budget
    pending = set(range(np))
    try:
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"ranks {sorted(pending)} did not finish within {budget}s"
                )
            try:
                rank, ok, payload, forwarded, serialized = results_q.get(
                    timeout=min(remaining, 0.5)
                )
                _serial.merge_serialized(serialized)
                if forwarded is not None and _obs_active() is not None:
                    _obs_ingest(forwarded, launch_ts)
            except _queue_mod.Empty:
                if any(p.exitcode not in (None, 0) for p in procs):
                    dead = [r for r, p in enumerate(procs) if p.exitcode not in (None, 0)]
                    raise RankFailedError(
                        {
                            r: _RemoteRankError(
                                f"rank process exited with code {procs[r].exitcode}"
                            )
                            for r in dead
                        }
                    )
                continue
            pending.discard(rank)
            if ok:
                results[rank] = payload
            else:
                failures[rank] = payload
    finally:
        for p in procs:
            p.join(timeout=2.0)
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        for q in inboxes + [results_q]:
            q.cancel_join_thread()
            q.close()

    if failures:
        deadlocks = {
            r: e for r, e in failures.items() if isinstance(e, DeadlockError)
        }
        if deadlocks and len(deadlocks) == len(failures):
            raise next(iter(deadlocks.values()))
        raise RankFailedError(failures)
    return results
