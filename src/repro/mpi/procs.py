"""Process-rank launcher: real OS processes behind the ``comm`` API.

The thread-per-rank :class:`~repro.mpi.runtime.World` gives the teaching
runtime faithful MPI *semantics* (matching, collectives, deadlock
detection) but no *parallelism* — every rank shares one GIL.  This module
launches ranks as forked OS processes with pipe-based message transport,
so the distributed exemplars measure real multicore speedup while keeping
the SPMD ``fn(comm)`` call shape unchanged.

Scope: :class:`ProcComm` implements the communicator surface the
patternlets and exemplars actually exercise — rank/size introspection,
tagged ``send``/``recv``/``sendrecv`` with ``ANY_SOURCE``/``ANY_TAG`` and
:class:`~repro.mpi.status.Status`, the object collectives (``barrier``,
``bcast``, ``scatter``, ``gather``, ``allgather``, ``reduce``,
``allreduce``), and 1-D-and-beyond Cartesian topologies (``Create_cart``,
``Shift`` with ``PROC_NULL`` edges).  The full API (typed buffers,
windows, files, splitting) remains on the threaded backend; select per
launch with ``mpirun(..., backend=...)`` or ``REPRO_MPI_BACKEND``.

Transport: one multiprocessing queue (a locked pipe) per rank serves as
its inbox.  Envelopes carry payloads pre-pickled by the sending rank, so
receive-side :class:`Status` can report exact byte counts.  Collective
traffic rides the same pipes under a per-rank sequence number — ranks
execute collectives in program order, so the sequence aligns without a
separate channel.

Requires a ``fork``-capable platform (rank bodies may be closures, which
fork inherits but pickle cannot ship).
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as _queue_mod
import time
from typing import Any, Callable, Sequence

from . import hooks as _hooks
from .constants import ANY_SOURCE, ANY_TAG, DEFAULT_DEADLOCK_TIMEOUT, PROC_NULL
from .errors import (
    DeadlockError,
    InvalidRankError,
    InvalidTagError,
    MPIError,
    RankFailedError,
)
from .ops import SUM, Op
from .status import Status

__all__ = ["ProcComm", "ProcCartcomm", "run_procs", "fork_available"]


def fork_available() -> bool:
    """Whether the platform can launch process ranks (fork start method)."""
    return "fork" in multiprocessing.get_all_start_methods()


class _RemoteRankError(MPIError):
    """Re-raised form of an exception that crossed the process boundary."""


class ProcComm:
    """COMM_WORLD view of one process rank (see module docstring for scope)."""

    #: Context id for hook events: process ranks only expose COMM_WORLD, and
    #: 0 never collides with threaded-world cids (their counter starts at 1).
    _obs_cid = 0

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: Sequence[Any],
        hostname: str,
        deadlock_timeout: float | None,
    ) -> None:
        self._rank = rank
        self._size = size
        self._inboxes = inboxes
        self._hostname = hostname
        self._timeout = deadlock_timeout
        self._p2p: list[tuple[int, int, bytes]] = []
        self._coll: list[tuple[int, int, bytes]] = []
        self._coll_seq = 0
        #: Fault injector (``repro.testkit``); armed by ``_rank_main`` when
        #: the forked child inherited an active plan.
        self._injector = None

    def _fault_op(self) -> None:
        if self._injector is not None:
            self._injector.on_op(self._rank)

    # -- introspection ------------------------------------------------------
    def Get_rank(self) -> int:
        return self._rank

    def Get_size(self) -> int:
        return self._size

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._size

    def Get_processor_name(self) -> str:
        return self._hostname

    def Get_topology(self) -> str | None:
        return None

    # -- transport ----------------------------------------------------------
    def _check_peer(self, peer: int, *, wildcard: bool, what: str) -> None:
        if peer == PROC_NULL:
            return
        if wildcard and peer == ANY_SOURCE:
            return
        if not 0 <= peer < self._size:
            raise InvalidRankError(peer, self._size, what)

    def _pump(self) -> None:
        """Block for one envelope, filing it into the right buffer."""
        deadline_timeout = self._timeout
        try:
            kind, src, key, blob = self._inboxes[self._rank].get(
                timeout=deadline_timeout
            )
        except _queue_mod.Empty:
            raise DeadlockError(
                f"rank {self._rank} made no progress for "
                f"{deadline_timeout}s (blocked in a receive no sender "
                "matches — classic send/recv ordering deadlock?)"
            ) from None
        if kind == "p2p":
            self._p2p.append((src, key, blob))
        else:
            self._coll.append((src, key, blob))

    def _post(self, dest: int, kind: str, key: int, payload: Any) -> None:
        blob = pickle.dumps(payload)
        if _hooks.enabled:
            if kind == "p2p":
                _hooks.emit("send", 0, self._rank, dest, key, len(blob))
            else:
                _hooks.emit("coll_msg", 0, self._rank, dest, len(blob))
        envelope = (kind, self._rank, key, blob)
        if self._injector is not None:
            self._injector.dispositions(
                self._rank, dest, lambda: self._inboxes[dest].put(envelope)
            )
            return
        self._inboxes[dest].put(envelope)

    # -- point-to-point ------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if tag < 0:
            raise InvalidTagError(tag)
        self._check_peer(dest, wildcard=False, what="destination")
        if dest == PROC_NULL:
            return
        self._fault_op()
        self._post(dest, "p2p", tag, obj)

    def recv(
        self,
        buf: Any = None,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        self._check_peer(source, wildcard=True, what="source")
        if source == PROC_NULL:
            if status is not None:
                status._set(PROC_NULL, ANY_TAG, 0)
            return None
        self._fault_op()
        if _hooks.enabled:
            _hooks.emit("recv_enter", 0, self._rank, source, tag)
        while True:
            for idx, (src, tg, blob) in enumerate(self._p2p):
                if (source == ANY_SOURCE or src == source) and (
                    tag == ANY_TAG or tg == tag
                ):
                    del self._p2p[idx]
                    if _hooks.enabled:
                        _hooks.emit(
                            "recv_exit", 0, self._rank, src, tg, len(blob)
                        )
                    if status is not None:
                        status._set(src, tg, len(blob))
                    return pickle.loads(blob)
            self._pump()

    def sendrecv(
        self,
        sendobj: Any,
        dest: int,
        sendtag: int = 0,
        recvbuf: Any = None,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        # Pipe transport buffers the outgoing message, so send-then-recv
        # cannot self-deadlock for teaching-scale payloads.
        self.send(sendobj, dest, sendtag)
        return self.recv(recvbuf, source=source, tag=recvtag, status=status)

    # -- collectives ---------------------------------------------------------
    def _next_seq(self) -> int:
        self._fault_op()
        self._coll_seq += 1
        return self._coll_seq

    def _coll_send(self, dest: int, seq: int, payload: Any) -> None:
        self._post(dest, "coll", seq, payload)

    def _coll_recv(self, seq: int, source: int) -> Any:
        while True:
            for idx, (src, sq, blob) in enumerate(self._coll):
                if src == source and sq == seq:
                    del self._coll[idx]
                    return pickle.loads(blob)
            self._pump()

    @_hooks.traced_collective
    def barrier(self) -> None:
        seq = self._next_seq()
        if self._rank == 0:
            for r in range(1, self._size):
                self._coll_recv(seq, r)
            for r in range(1, self._size):
                self._coll_send(r, seq, None)
        else:
            self._coll_send(0, seq, None)
            self._coll_recv(seq, 0)

    Barrier = barrier

    @_hooks.traced_collective
    def bcast(self, obj: Any, root: int = 0) -> Any:
        self._check_peer(root, wildcard=False, what="root")
        seq = self._next_seq()
        if self._rank == root:
            for r in range(self._size):
                if r != root:
                    self._coll_send(r, seq, obj)
            return obj
        return self._coll_recv(seq, root)

    @_hooks.traced_collective
    def scatter(self, sendobj: Sequence[Any] | None, root: int = 0) -> Any:
        self._check_peer(root, wildcard=False, what="root")
        seq = self._next_seq()
        if self._rank == root:
            parts = list(sendobj)  # type: ignore[arg-type]
            if len(parts) != self._size:
                raise ValueError(
                    f"scatter needs exactly {self._size} items, got {len(parts)}"
                )
            for r in range(self._size):
                if r != root:
                    self._coll_send(r, seq, parts[r])
            return parts[root]
        return self._coll_recv(seq, root)

    @_hooks.traced_collective
    def gather(self, sendobj: Any, root: int = 0) -> list[Any] | None:
        self._check_peer(root, wildcard=False, what="root")
        seq = self._next_seq()
        if self._rank == root:
            out = [None] * self._size
            out[root] = sendobj
            for r in range(self._size):
                if r != root:
                    out[r] = self._coll_recv(seq, r)
            return out
        self._coll_send(root, seq, sendobj)
        return None

    @_hooks.traced_collective
    def allgather(self, sendobj: Any) -> list[Any]:
        gathered = self.gather(sendobj, root=0)
        return self.bcast(gathered, root=0)

    @_hooks.traced_collective
    def reduce(self, sendobj: Any, op: Op = SUM, root: int = 0) -> Any:
        gathered = self.gather(sendobj, root=root)
        if gathered is None:
            return None
        acc = gathered[0]
        for value in gathered[1:]:
            acc = op(acc, value)
        return acc

    @_hooks.traced_collective
    def allreduce(self, sendobj: Any, op: Op = SUM) -> Any:
        reduced = self.reduce(sendobj, op=op, root=0)
        return self.bcast(reduced, root=0)

    # -- topology -----------------------------------------------------------
    def Create_cart(
        self,
        dims: Sequence[int],
        periods: Sequence[bool] | None = None,
        reorder: bool = False,
    ) -> "ProcCartcomm":
        dims = tuple(int(d) for d in dims)
        total = 1
        for d in dims:
            total *= d
        if total != self._size:
            raise ValueError(
                f"cartesian grid {dims} needs {total} ranks, world has {self._size}"
            )
        per = tuple(bool(p) for p in (periods or (False,) * len(dims)))
        if len(per) != len(dims):
            raise ValueError("periods must align with dims")
        return ProcCartcomm(self, dims, per)


class ProcCartcomm:
    """Cartesian view over a :class:`ProcComm` (row-major rank layout)."""

    def __init__(
        self, base: ProcComm, dims: tuple[int, ...], periods: tuple[bool, ...]
    ) -> None:
        self._base = base
        self.dims = dims
        self.periods = periods

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)

    def Get_topology(self) -> str:
        return "cart"

    def Get_coords(self, rank: int) -> list[int]:
        coords = []
        for extent in reversed(self.dims):
            coords.append(rank % extent)
            rank //= extent
        return list(reversed(coords))

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        rank = 0
        for coord, extent in zip(coords, self.dims):
            rank = rank * extent + (coord % extent)
        return rank

    def Shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """(source, dest) for a shift along ``direction`` by ``disp``."""
        if not 0 <= direction < len(self.dims):
            raise ValueError(f"invalid direction {direction} for dims {self.dims}")
        me = self.Get_coords(self._base.rank)

        def neighbor(offset: int) -> int:
            coords = list(me)
            coords[direction] += offset
            extent = self.dims[direction]
            if not self.periods[direction] and not 0 <= coords[direction] < extent:
                return PROC_NULL
            return self.Get_cart_rank(coords)

        return neighbor(-disp), neighbor(disp)


# ---------------------------------------------------------------------------
# Launch
# ---------------------------------------------------------------------------

def _rank_main(
    rank: int,
    size: int,
    fn: Callable[..., Any],
    args: tuple,
    kwargs: dict,
    inboxes: list[Any],
    results: Any,
    hostname: str,
    deadlock_timeout: float | None,
) -> None:
    # Re-home any fork-inherited recorder: events this rank emits are
    # recorded locally and shipped back as the 4th result-tuple element
    # (they would otherwise land in a dead copy of the parent's buffer).
    from ..obs.recorder import adopt_forked_recorder, collect_forwarded

    rank_rec = adopt_forked_recorder(("rank", rank))
    comm = ProcComm(rank, size, inboxes, hostname, deadlock_timeout)
    # A fault plan armed in the parent rides across fork as a module global
    # (lazy import: testkit depends on this package, not vice versa).
    from ..testkit.faults import FaultInjector, active_fault_plan

    plan = active_fault_plan()
    if plan:
        comm._injector = FaultInjector(plan)
    try:
        value = fn(comm, *args, **kwargs)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        try:
            pickle.dumps(exc)
            payload: Any = exc
        except Exception:
            payload = _RemoteRankError(f"{type(exc).__name__}: {exc}")
        results.put((rank, False, payload, collect_forwarded(rank_rec)))
        return
    forwarded = collect_forwarded(rank_rec)
    try:
        results.put((rank, True, value, forwarded))
    except Exception as exc:  # unpicklable rank result
        results.put(
            (rank, False, _RemoteRankError(f"unpicklable result: {exc}"), forwarded)
        )


def run_procs(
    fn: Callable[..., Any],
    np: int,
    *args: Any,
    hostname: str = "d6ff4f902ed6",
    deadlock_timeout: float | None = DEFAULT_DEADLOCK_TIMEOUT,
    **kwargs: Any,
) -> list[Any]:
    """Run ``fn(comm, *args)`` SPMD on ``np`` forked processes.

    The drop-in process-backed sibling of :func:`repro.mpi.mpirun`: same
    call shape, same per-rank return list, but each rank owns an OS
    process (and a core, when the host has them).  Raises
    :class:`DeadlockError` when ranks stop making progress and
    :class:`RankFailedError` when a rank raises.
    """
    if np < 1:
        raise ValueError(f"process count must be positive, got {np}")
    if not fork_available():
        raise MPIError(
            "the process-rank launcher needs the 'fork' start method; "
            "this platform lacks it — use backend='threads'"
        )
    ctx = multiprocessing.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(np)]
    results_q = ctx.Queue()
    procs = [
        ctx.Process(
            target=_rank_main,
            args=(
                rank,
                np,
                fn,
                args,
                kwargs,
                inboxes,
                results_q,
                hostname,
                deadlock_timeout,
            ),
            name=f"mpi-proc-rank-{rank}",
            daemon=True,
        )
        for rank in range(np)
    ]
    from ..obs.recorder import active as _obs_active
    from ..obs.recorder import ingest_forwarded as _obs_ingest

    launch_ts = time.monotonic()
    for p in procs:
        p.start()

    # Drain results *before* joining: a child flushing a large result into a
    # full pipe would otherwise deadlock against a parent stuck in join().
    results: list[Any] = [None] * np
    failures: dict[int, BaseException] = {}
    budget = (deadlock_timeout or 30.0) * 4
    deadline = time.monotonic() + budget
    pending = set(range(np))
    try:
        while pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"ranks {sorted(pending)} did not finish within {budget}s"
                )
            try:
                rank, ok, payload, forwarded = results_q.get(
                    timeout=min(remaining, 0.5)
                )
                if forwarded is not None and _obs_active() is not None:
                    _obs_ingest(forwarded, launch_ts)
            except _queue_mod.Empty:
                if any(p.exitcode not in (None, 0) for p in procs):
                    dead = [r for r, p in enumerate(procs) if p.exitcode not in (None, 0)]
                    raise RankFailedError(
                        {
                            r: _RemoteRankError(
                                f"rank process exited with code {procs[r].exitcode}"
                            )
                            for r in dead
                        }
                    )
                continue
            pending.discard(rank)
            if ok:
                results[rank] = payload
            else:
                failures[rank] = payload
    finally:
        for p in procs:
            p.join(timeout=2.0)
        for p in procs:
            if p.is_alive():
                p.terminate()
                p.join(timeout=2.0)
        for q in inboxes + [results_q]:
            q.cancel_join_thread()
            q.close()

    if failures:
        deadlocks = {
            r: e for r, e in failures.items() if isinstance(e, DeadlockError)
        }
        if deadlocks and len(deadlocks) == len(failures):
            raise next(iter(deadlocks.values()))
        raise RankFailedError(failures)
    return results
