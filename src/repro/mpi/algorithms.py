"""Selectable collective algorithms: registry, cost model, auto-pick.

The communicator asks :func:`resolve` which algorithm to run for a
collective; the answer comes from (in precedence order):

1. the ``algorithm=`` keyword on the collective call,
2. the ``REPRO_COLL_ALGO`` environment variable — either a bare algorithm
   name (applied to every collective where it is registered) or a
   comma-separated ``collective=algorithm`` list, e.g.
   ``REPRO_COLL_ALGO=allreduce=ring,bcast=binomial``,
3. an alpha-beta cost model over :mod:`repro.platforms.machine` that picks
   the cheapest algorithm for the world size and message size at hand
   (``REPRO_COLL_PLATFORM`` names the machine; default ``laptop``).

Non-commutative ops silently downgrade ``commutative_only`` algorithms to
their documented fallback so a forced ``REPRO_COLL_ALGO=recursive_doubling``
can never produce wrong answers — the substitution is visible in the
``coll_algo`` obs event.

The registry also knows each algorithm's *message schedule* as pure data
(:func:`schedule_traces`), which the symbolic protocol checker replays to
prove deadlock-freedom for every world size — without this module ever
importing the analysis layer.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Callable

from . import collectives as _coll
from .ops import Op

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "algorithm_cost",
    "available",
    "message_count",
    "resolve",
    "run_allgather",
    "run_allreduce",
    "run_bcast",
    "run_reduce",
    "schedule_traces",
]


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered implementation of a collective."""

    name: str
    commutative_only: bool = False
    fallback: str = "linear"
    # cost(size, nbytes, alpha, beta, chunked) -> predicted seconds
    cost: Callable[[int, int, float, float, bool], float] | None = None


def _lg(size: int) -> int:
    return max(1, math.ceil(math.log2(size)))


def _bcast_linear_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    return (p - 1) * (a + n * b)


def _bcast_binomial_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    return _lg(p) * (a + n * b)


def _bcast_scag_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    # scatter: (P-1) sends of n/P; ring allgather: (P-1) steps of n/P.
    return 2 * (p - 1) * (a + (n / p) * b)


def _reduce_linear_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    return (p - 1) * (a + n * b)


def _reduce_binomial_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    return _lg(p) * (a + n * b)


def _allreduce_linear_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    return 2 * (p - 1) * (a + n * b)


def _allreduce_rdouble_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    pof2 = 1 << (p.bit_length() - 1)
    rounds = _lg(pof2) if pof2 > 1 else 0
    extra = 2 if p != pof2 else 0
    return (rounds + extra) * (a + n * b)


def _allreduce_ring_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    if chunked:
        return 2 * (p - 1) * (a + (n / p) * b)
    # Atomic variant: ring allgather of whole values + local fold.
    return (p - 1) * (a + n * b)


def _allgather_ring_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    return (p - 1) * (a + n * b)


def _allgather_linear_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    # Gather n-blocks to root, then broadcast the P·n result linearly.
    return (p - 1) * (a + n * b) + (p - 1) * (a + p * n * b)


def _barrier_dissemination_cost(p: int, n: int, a: float, b: float, chunked: bool) -> float:
    # ceil(lg P) rounds of zero-byte token exchange: pure latency.
    return _lg(p) * a


# Per collective, in preference order: ties in the cost model resolve to the
# earliest entry, which keeps the latency-optimal default for tiny payloads.
ALGORITHMS: dict[str, dict[str, AlgorithmSpec]] = {
    "bcast": {
        "binomial": AlgorithmSpec("binomial", cost=_bcast_binomial_cost),
        "scatter_allgather": AlgorithmSpec(
            "scatter_allgather", cost=_bcast_scag_cost
        ),
        "linear": AlgorithmSpec("linear", cost=_bcast_linear_cost),
    },
    "reduce": {
        "binomial": AlgorithmSpec(
            "binomial", commutative_only=True, cost=_reduce_binomial_cost
        ),
        "linear": AlgorithmSpec("linear", cost=_reduce_linear_cost),
    },
    "allreduce": {
        "recursive_doubling": AlgorithmSpec(
            "recursive_doubling",
            commutative_only=True,
            cost=_allreduce_rdouble_cost,
        ),
        "ring": AlgorithmSpec("ring", cost=_allreduce_ring_cost),
        "linear": AlgorithmSpec("linear", cost=_allreduce_linear_cost),
    },
    "allgather": {
        "ring": AlgorithmSpec("ring", cost=_allgather_ring_cost),
        "linear": AlgorithmSpec("linear", cost=_allgather_linear_cost),
    },
    "barrier": {
        "dissemination": AlgorithmSpec(
            "dissemination", cost=_barrier_dissemination_cost
        ),
    },
}


def available(collective: str) -> list[str]:
    """Registered algorithm names for ``collective``, preference order."""
    return list(ALGORITHMS[collective])


def _machine() -> Any:
    from ..platforms.machine import PLATFORMS

    name = os.environ.get("REPRO_COLL_PLATFORM", "laptop")
    platform = PLATFORMS.get(name) or PLATFORMS["laptop"]
    # Clusters model inter-node links separately; the per-call alpha-beta
    # pick uses the node-local figures (the hierarchical communicator is the
    # topology-aware answer for clusters).
    return getattr(platform, "node", platform)


def algorithm_cost(
    collective: str,
    algorithm: str,
    *,
    size: int,
    nbytes: int,
    chunked: bool = False,
    machine: Any | None = None,
) -> float:
    """Predicted seconds for one collective call under the alpha-beta model."""
    spec = ALGORITHMS[collective][algorithm]
    if spec.cost is None:
        return 0.0
    m = machine if machine is not None else _machine()
    alpha = m.intra_latency_s
    beta = 8.0 / (m.intra_bandwidth_gbps * 1e9)
    return spec.cost(size, nbytes, alpha, beta, chunked)


def _env_overrides() -> dict[str, str]:
    raw = os.environ.get("REPRO_COLL_ALGO", "").strip()
    if not raw:
        return {}
    overrides: dict[str, str] = {}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" in part:
            coll, _, algo = part.partition("=")
            overrides[coll.strip()] = algo.strip()
        else:
            overrides["*"] = part
    return overrides


def resolve(
    collective: str,
    *,
    size: int,
    nbytes: int = 0,
    commute: bool = True,
    chunked: bool = False,
    requested: str | None = None,
    machine: Any | None = None,
) -> str:
    """Pick the algorithm for one collective call.

    ``requested`` (the ``algorithm=`` keyword) wins over ``REPRO_COLL_ALGO``,
    which wins over the cost-model auto-pick.  A bare-name env override is
    ignored for collectives where the name is not registered; the
    ``collective=name`` form is strict and raises on unknown names.  A
    ``commutative_only`` algorithm requested for a non-commutative op
    downgrades to its fallback.
    """
    table = ALGORITHMS[collective]
    if requested is None:
        env = _env_overrides()
        if collective in env:
            requested = env[collective]
        elif env.get("*") in table:
            requested = env["*"]
    if requested is not None:
        spec = table.get(requested)
        if spec is None:
            raise ValueError(
                f"unknown {collective} algorithm {requested!r}; "
                f"choose from {sorted(table)}"
            )
        if spec.commutative_only and not commute:
            return spec.fallback
        return requested
    candidates = [
        spec for spec in table.values() if commute or not spec.commutative_only
    ]
    if len(candidates) == 1:
        return candidates[0].name
    m = machine if machine is not None else _machine()
    return min(
        candidates,
        key=lambda spec: algorithm_cost(
            collective, spec.name, size=size, nbytes=nbytes, chunked=chunked,
            machine=m,
        ),
    ).name


# ---------------------------------------------------------------------------
# Dispatch: one entry point per collective, shared by both backends.
# ---------------------------------------------------------------------------


def run_bcast(
    algo: str,
    rank: int,
    size: int,
    root: int,
    payload: Any,
    send: _coll.Send,
    recv: _coll.Recv,
    *,
    split: _coll.Split | None = None,
    concat: _coll.Concat | None = None,
) -> Any:
    if algo == "binomial":
        return _coll.bcast_binomial(rank, size, root, payload, send, recv)
    if algo == "scatter_allgather":
        if split is None or concat is None or size == 1:
            return _coll.bcast_binomial(rank, size, root, payload, send, recv)
        return _coll.bcast_scatter_allgather(
            rank, size, root, payload, send, recv, split=split, concat=concat
        )
    if algo == "linear":
        return _coll.bcast_linear(rank, size, root, payload, send, recv)
    raise ValueError(f"unknown bcast algorithm {algo!r}")


def run_reduce(
    algo: str,
    rank: int,
    size: int,
    root: int,
    value: Any,
    op: Op,
    send: _coll.Send,
    recv: _coll.Recv,
) -> Any:
    if algo == "binomial":
        return _coll.reduce_binomial(rank, size, root, value, op, send, recv)
    if algo == "linear":
        return _coll.reduce_linear(rank, size, root, value, op, send, recv)
    raise ValueError(f"unknown reduce algorithm {algo!r}")


def run_allreduce(
    algo: str,
    rank: int,
    size: int,
    value: Any,
    op: Op,
    send: _coll.Send,
    recv: _coll.Recv,
    *,
    split: _coll.Split | None = None,
    concat: _coll.Concat | None = None,
) -> Any:
    if algo == "recursive_doubling":
        return _coll.allreduce_recursive_doubling(
            rank, size, value, op, send, recv
        )
    if algo == "ring":
        return _coll.allreduce_ring(
            rank, size, value, op, send, recv, split=split, concat=concat
        )
    if algo == "linear":
        return _coll.allreduce_linear(rank, size, value, op, send, recv)
    raise ValueError(f"unknown allreduce algorithm {algo!r}")


def run_allgather(
    algo: str,
    rank: int,
    size: int,
    value: Any,
    send: _coll.Send,
    recv: _coll.Recv,
    *,
    concat: _coll.Concat | None = None,
) -> Any:
    if algo == "ring":
        return _coll.allgather_ring(rank, size, value, send, recv)
    if algo == "linear":
        return _coll.allgather_linear(
            rank, size, value, send, recv, concat=concat
        )
    raise ValueError(f"unknown allgather algorithm {algo!r}")


# ---------------------------------------------------------------------------
# Message schedules as data: replayed by the symbolic protocol checker and
# by the static cost model, never executed with real transports.
# ---------------------------------------------------------------------------


class _StubOp:
    """Stand-in op for schedule recording: combines are free, shapes kept."""

    commute = True

    def __call__(self, a: Any, b: Any) -> Any:
        return a

    def reduce_sequence(self, values: Any) -> Any:
        return next(iter(values), None)


def _record_world(size: int, body: Callable[..., Any]) -> list[list[tuple]]:
    """Run ``body(rank, size, send, recv)`` per rank with recording
    transports and return per-rank neutral op tuples
    ``("send", dest, phase)`` / ``("recv", source, phase)``.

    The transports never block, so recording terminates even for schedules
    that would deadlock — the *simulator* is what detects deadlock.
    """
    traces: list[list[tuple]] = []
    for rank in range(size):
        ops: list[tuple] = []

        def send(dest: int, phase: int, payload: Any, _ops=ops) -> None:
            _ops.append(("send", dest, phase))

        def recv(source: int, phase: int, _ops=ops) -> Any:
            _ops.append(("recv", source, phase))
            return None

        body(rank, size, send, recv)
        traces.append(ops)
    return traces


def _stub_split(value: Any, n: int) -> list[Any]:
    return [value] * n


def _stub_concat(values: Any) -> Any:
    return next(iter(values), None)


@lru_cache(maxsize=None)
def schedule_traces(
    collective: str, algorithm: str, size: int, root: int = 0
) -> tuple[tuple[tuple, ...], ...]:
    """Record the point-to-point schedule of one collective algorithm.

    Returns one tuple of neutral ops per rank; payloads are stubs, so the
    schedule reflects control flow only.  Raises ``KeyError`` for
    unregistered pairs.
    """
    if algorithm not in ALGORITHMS[collective]:
        raise KeyError(f"{collective}/{algorithm} is not registered")
    op = _StubOp()

    if collective == "barrier":
        body = lambda r, p, s, v: _coll.barrier_dissemination(r, p, s, v)
    elif collective == "bcast":
        body = lambda r, p, s, v: run_bcast(
            algorithm, r, p, root, None, s, v,
            split=_stub_split, concat=_stub_concat,
        )
    elif collective == "reduce":
        body = lambda r, p, s, v: run_reduce(algorithm, r, p, root, None, op, s, v)
    elif collective == "allreduce":
        body = lambda r, p, s, v: run_allreduce(
            algorithm, r, p, None, op, s, v,
            split=_stub_split, concat=_stub_concat,
        )
    elif collective == "allgather":
        body = lambda r, p, s, v: run_allgather(
            algorithm, r, p, None, s, v, concat=_stub_concat
        )
    else:
        raise KeyError(f"no schedule recorder for collective {collective!r}")
    return tuple(tuple(ops) for ops in _record_world(size, body))


@lru_cache(maxsize=None)
def message_count(collective: str, algorithm: str, size: int) -> int:
    """Total point-to-point messages one collective call induces."""
    traces = schedule_traces(collective, algorithm, size)
    return sum(1 for ops in traces for kind, *_ in ops if kind == "send")
