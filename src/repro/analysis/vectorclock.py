"""Vector clocks and access epochs for happens-before tracking.

The race detector follows the FastTrack representation: each thread carries
a full vector clock, but each shared location's shadow state stores *epochs*
— a single ``(thread, clock)`` pair — for the last write and for each
reader, which is all a happens-before check needs.
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

__all__ = ["VectorClock", "Epoch"]


class Epoch(NamedTuple):
    """One access: which logical thread, at what clock value, from where."""

    tid: int
    clock: int
    site: str

    def happens_before(self, vc: "VectorClock") -> bool:
        """True when this access is ordered before the clock's present."""
        return self.clock <= vc.get(self.tid, 0)

    def describe(self, kind: str) -> str:
        return f"{kind} by thread {self.tid} at {self.site}"


class VectorClock(dict):
    """A sparse vector clock: missing components are zero."""

    def copy(self) -> "VectorClock":
        return VectorClock(self)

    def tick(self, tid: int) -> None:
        """Advance this thread's own component (a release/fork/join event)."""
        self[tid] = self.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place (``C := C ⊔ other``)."""
        for tid, clock in other.items():
            if clock > self.get(tid, 0):
                self[tid] = clock

    def join_all(self, others: Iterable["VectorClock"]) -> None:
        for other in others:
            self.join(other)

    def epoch(self, tid: int, site: str) -> Epoch:
        """The calling thread's current epoch, for shadow-state storage."""
        return Epoch(tid, self.get(tid, 0), site)
