"""MPI correctness checking for the ``repro.mpi`` runtime.

The checker layers on the same hook points the tracer uses — per-rank view
objects and mailboxes of ``COMM_WORLD`` — rather than forking the runtime's
code paths.  It watches a world run and diagnoses the classic student
mistakes:

* **deadlock**: every blocking call registers a wait-for edge (``recv``
  waits on its source, ``ssend`` on its destination, a collective on the
  whole communicator); when the runtime's watchdog aborts the world, the
  registered edges are turned into a cycle naming the ranks involved;
* **mismatched messages**: a typed receive whose matched message carries a
  different dtype or element count, or an object-mode message landing in a
  typed receive;
* **collective ordering**: the per-rank log of collective calls must agree
  across ranks (same operation, same root, same count) — the MPI standard's
  "called in the same order on every rank" rule;
* **resource leaks at finalize**: nonblocking requests never waited on,
  messages never received (the tag-mismatch symptom), RMA windows never
  freed.

Entry points: :func:`mpi_checker` (a context manager that audits every
world created in its scope) and :func:`check_run` (run one SPMD function
under the checker).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Any, Callable, Generator

import numpy as np

from ..mpi import runtime as _runtime
from ..mpi.buffers import parse_buffer
from ..mpi.constants import ANY_SOURCE, ANY_TAG
from ..mpi.errors import DeadlockError, MPIError, TruncationError
from ..mpi.request import BufferRecvRequest, RecvRequest, SendRequest
from ..mpi.window import _WinCore
from .diagnostics import ERROR, INFO, WARNING, AnalysisReport, Diagnostic

__all__ = ["MPIChecker", "mpi_checker", "check_run"]

#: Collective verbs wrapped on each rank view; values are the positional
#: index of the ``root`` argument (None: rootless collective).
_COLLECTIVES: dict[str, int | None] = {
    "barrier": None,
    "Barrier": None,
    "bcast": 1,
    "scatter": 1,
    "gather": 1,
    "allgather": None,
    "alltoall": None,
    "reduce": 2,
    "allreduce": None,
    "scan": None,
    "exscan": None,
    "Bcast": 1,
    "Scatter": 2,
    "Scatterv": 2,
    "Gather": 2,
    "Gatherv": 2,
    "Allgather": None,
    "Alltoall": None,
    "Reduce": 3,
    "Allreduce": None,
}


class _WorldState:
    """Everything observed about one audited world."""

    def __init__(self, world: Any, index: int) -> None:
        self.world = world
        self.index = index
        self.size = world.size
        self.blocked: dict[int, dict[str, Any]] = {}
        self.collectives: dict[int, list[tuple[str, Any]]] = {
            r: [] for r in range(world.size)
        }
        self.requests: list[tuple[int, str, Any]] = []
        self.last_msg: dict[int, Any] = {}
        self.message_count = 0


def _describe_peer(peer: Any) -> str:
    return "ANY_SOURCE" if peer == ANY_SOURCE else str(peer)


class MPIChecker:
    """Audit one or more worlds; produce an :class:`AnalysisReport`."""

    def __init__(self, target: str = "mpi") -> None:
        self.target = target
        self._mutex = threading.Lock()
        self._states: list[_WorldState] = []
        self.diagnostics: list[Diagnostic] = []
        self.notes: list[str] = []

    # ------------------------------------------------------------------ attach
    def _on_world(self, world: Any) -> None:
        self.attach(world)

    def attach(self, world: Any) -> _WorldState:
        """Instrument every rank view and mailbox of ``world``'s COMM_WORLD."""
        state = _WorldState(world, len(self._states))
        with self._mutex:
            self._states.append(state)
        core = world.comm_world._core
        for rank, view in enumerate(core.views):
            self._wrap_view(state, view, rank)
        for rank, mailbox in enumerate(core.user_boxes):
            self._wrap_mailbox(state, mailbox, rank)
        return state

    def _wrap_mailbox(self, state: _WorldState, mailbox: Any, rank: int) -> None:
        original_get = mailbox.get

        def checked_get(source: int, tag: int, _orig=original_get, _rank=rank):
            msg = _orig(source, tag)
            state.last_msg[_rank] = msg
            state.message_count += 1
            return msg

        mailbox.get = checked_get  # type: ignore[method-assign]

    # ------------------------------------------------------------ blocking state
    def _enter_blocked(
        self, state: _WorldState, rank: int, op: str, peer: Any, tag: Any
    ) -> None:
        with self._mutex:
            state.blocked[rank] = {"op": op, "peer": peer, "tag": tag}

    def _exit_blocked(self, state: _WorldState, rank: int) -> None:
        # On success only: a rank that died blocked keeps its entry, which is
        # exactly the snapshot the wait-for graph needs.
        with self._mutex:
            state.blocked.pop(rank, None)

    # ------------------------------------------------------------------ wrapping
    def _wrap_view(self, state: _WorldState, view: Any, rank: int) -> None:
        checker = self

        def wrap_blocking(name: str, peer_kw: str, peer_default: Any) -> None:
            original = getattr(view, name)

            def wrapper(*args: Any, _orig=original, **kwargs: Any) -> Any:
                peer = kwargs.get(peer_kw, args[1] if len(args) > 1 else peer_default)
                tag = kwargs.get("tag", args[2] if len(args) > 2 else ANY_TAG)
                checker._enter_blocked(state, rank, name, peer, tag)
                result = _orig(*args, **kwargs)
                checker._exit_blocked(state, rank)
                return result

            setattr(view, name, wrapper)

        wrap_blocking("recv", "source", ANY_SOURCE)
        wrap_blocking("probe", "source", ANY_SOURCE)

        original_Recv = view.Recv

        def checked_Recv(
            buf: Any,
            source: int = ANY_SOURCE,
            tag: int = ANY_TAG,
            status: Any = None,
        ) -> None:
            spec = parse_buffer(buf)
            checker._enter_blocked(state, rank, "Recv", source, tag)
            try:
                original_Recv(buf, source, tag, status)
            except TruncationError as exc:
                checker._add(
                    "count-mismatch",
                    ERROR,
                    f"rank {rank}: {exc}",
                    state,
                )
                raise
            except TypeError as exc:
                checker._add(
                    "type-mismatch",
                    ERROR,
                    f"rank {rank}: typed Recv matched an object-mode send "
                    f"({exc})",
                    state,
                )
                raise
            checker._exit_blocked(state, rank)
            checker._check_typed_match(state, rank, spec)

        view.Recv = checked_Recv

        original_ssend = view.ssend

        def checked_ssend(obj: Any, dest: int, tag: int = 0) -> None:
            checker._enter_blocked(state, rank, "ssend", dest, tag)
            original_ssend(obj, dest, tag)
            checker._exit_blocked(state, rank)

        view.ssend = checked_ssend

        for name in ("isend", "Isend", "issend"):
            original = getattr(view, name)

            def nb_send(
                obj: Any, dest: int, tag: int = 0, _orig=original, _name=name
            ) -> Any:
                request = _orig(obj, dest, tag)
                checker._track_request(state, rank, _name, request)
                if getattr(request, "_sync", None) is not None:
                    original_wait = request.wait

                    def blocked_wait(status: Any = None) -> Any:
                        checker._enter_blocked(
                            state, rank, f"{_name}.wait", dest, tag
                        )
                        result = original_wait(status=status)
                        checker._exit_blocked(state, rank)
                        return result

                    request.wait = blocked_wait  # type: ignore[method-assign]
                return request

            setattr(view, name, nb_send)

        for name in ("irecv", "Irecv"):
            original = getattr(view, name)

            def nb_recv(
                buf: Any = None,
                source: int = ANY_SOURCE,
                tag: int = ANY_TAG,
                _orig=original,
                _name=name,
            ) -> Any:
                request = _orig(buf, source, tag)
                checker._track_request(state, rank, _name, request)
                original_wait = request.wait

                def blocked_wait(status: Any = None) -> Any:
                    checker._enter_blocked(state, rank, f"{_name}.wait", source, tag)
                    result = original_wait(status=status)
                    checker._exit_blocked(state, rank)
                    return result

                request.wait = blocked_wait  # type: ignore[method-assign]
                return request

            setattr(view, name, nb_recv)

        for name, root_index in _COLLECTIVES.items():
            original = getattr(view, name)

            def collective(
                *args: Any,
                _orig=original,
                _name=name,
                _root_index=root_index,
                **kwargs: Any,
            ) -> Any:
                root = kwargs.get("root")
                if root is None and _root_index is not None and len(args) > _root_index:
                    root = args[_root_index]
                with checker._mutex:
                    state.collectives[rank].append((_name.lower(), root))
                checker._enter_blocked(state, rank, f"collective:{_name}", None, None)
                result = _orig(*args, **kwargs)
                checker._exit_blocked(state, rank)
                return result

            setattr(view, name, collective)

    def _track_request(self, state: _WorldState, rank: int, kind: str, request: Any) -> None:
        with self._mutex:
            state.requests.append((rank, kind, request))

    # ------------------------------------------------------------------ checks
    def _add(
        self,
        kind: str,
        severity: str,
        message: str,
        state: _WorldState | None = None,
        location: str | None = None,
        details: dict[str, Any] | None = None,
    ) -> None:
        details = dict(details or {})
        if state is not None and len(self._states) > 1:
            details.setdefault("world", state.index)
        self.diagnostics.append(
            Diagnostic(
                kind=kind,
                severity=severity,
                message=message,
                location=location,
                details=details,
            )
        )

    def _check_typed_match(self, state: _WorldState, rank: int, spec: Any) -> None:
        msg = state.last_msg.get(rank)
        if msg is None or isinstance(msg.payload, bytes):
            return
        payload = np.asarray(msg.payload)
        want = spec.datatype.np_dtype
        if payload.dtype != want:
            self._add(
                "type-mismatch",
                WARNING,
                f"rank {rank}: message from rank {msg.source} (tag {msg.tag}) "
                f"carries dtype {payload.dtype} but the receive buffer is "
                f"{np.dtype(want)}; the runtime silently converted it",
                state,
            )
        elif payload.size != spec.count:
            self._add(
                "count-mismatch",
                WARNING,
                f"rank {rank}: message from rank {msg.source} (tag {msg.tag}) "
                f"has {payload.size} element(s) but the receive buffer expects "
                f"{spec.count}; trailing elements were left untouched",
                state,
            )

    # -- wait-for graph ------------------------------------------------------------
    def _wait_edges(self, state: _WorldState, rank: int) -> list[int]:
        entry = state.blocked.get(rank)
        if entry is None:
            return []
        op, peer = entry["op"], entry["peer"]
        others = [r for r in range(state.size) if r != rank]
        if op.startswith("collective:"):
            return others
        if peer == ANY_SOURCE or peer is None:
            return others
        return [int(peer)]

    def _find_cycle(self, state: _WorldState) -> list[int] | None:
        color: dict[int, int] = {}  # 0 unseen / 1 on stack / 2 done
        parent: dict[int, int] = {}

        def dfs(node: int) -> list[int] | None:
            color[node] = 1
            for succ in self._wait_edges(state, node):
                if succ not in state.blocked:
                    continue
                if color.get(succ, 0) == 1:
                    cycle = [succ, node]
                    cur = node
                    while cur != succ and cur in parent:
                        cur = parent[cur]
                        if cur != succ:
                            cycle.append(cur)
                    return list(reversed(cycle))
                if color.get(succ, 0) == 0:
                    parent[succ] = node
                    found = dfs(succ)
                    if found:
                        return found
            color[node] = 2
            return None

        for start in sorted(state.blocked):
            if color.get(start, 0) == 0:
                found = dfs(start)
                if found:
                    return found
        return None

    def _blocked_summary(self, state: _WorldState) -> list[str]:
        lines = []
        for rank in sorted(state.blocked):
            entry = state.blocked[rank]
            op, peer, tag = entry["op"], entry["peer"], entry["tag"]
            if op.startswith("collective:"):
                lines.append(f"rank {rank}: blocked in {op.split(':', 1)[1]}")
            else:
                lines.append(
                    f"rank {rank}: blocked in {op}"
                    f"(peer={_describe_peer(peer)}, tag={tag})"
                )
        return lines

    def _check_deadlock(self, state: _WorldState) -> None:
        error = state.world._abort_error
        if not isinstance(error, DeadlockError):
            return
        cycle = self._find_cycle(state)
        if cycle:
            hops = " -> ".join(f"rank {r}" for r in [*cycle, cycle[0]])
            message = f"deadlock: wait-for cycle {hops}"
        else:
            ranks = ", ".join(str(r) for r in sorted(state.blocked)) or "all"
            message = f"deadlock: ranks {ranks} blocked with no progress possible"
        self._add(
            "deadlock",
            ERROR,
            message,
            state,
            details={"blocked ranks": self._blocked_summary(state)},
        )

    # -- collective ordering --------------------------------------------------------
    def _check_collective_order(self, state: _WorldState) -> None:
        logs = state.collectives
        depth = max((len(calls) for calls in logs.values()), default=0)
        for position in range(depth):
            seen: dict[tuple[str, Any], list[int]] = {}
            missing: list[int] = []
            for rank in range(state.size):
                calls = logs[rank]
                if position < len(calls):
                    seen.setdefault(calls[position], []).append(rank)
                else:
                    missing.append(rank)
            if len(seen) > 1:
                description = "; ".join(
                    f"rank(s) {','.join(map(str, ranks))} called "
                    f"{name}" + (f"(root={root})" if root is not None else "()")
                    for (name, root), ranks in sorted(seen.items())
                )
                self._add(
                    "collective-mismatch",
                    ERROR,
                    f"collective call #{position} differs across ranks: "
                    f"{description}",
                    state,
                )
                return  # later positions are desynchronized noise
            if missing and seen:
                (name, root), ranks = next(iter(seen.items()))
                call = f"{name}" + (f"(root={root})" if root is not None else "()")
                self._add(
                    "collective-mismatch",
                    ERROR,
                    f"collective call #{position}: rank(s) "
                    f"{','.join(map(str, ranks))} called {call} but rank(s) "
                    f"{','.join(map(str, missing))} never did",
                    state,
                )
                return

    # -- finalize-time leak checks ---------------------------------------------------
    def _check_leaks(self, state: _WorldState) -> None:
        if state.world.aborted:
            return  # leaks after an abort are a symptom, not the disease
        for rank, kind, request in state.requests:
            leaked = False
            if isinstance(request, (RecvRequest, BufferRecvRequest)):
                leaked = not request._done
            elif isinstance(request, SendRequest):
                leaked = request._sync is not None and not request._sync.is_set()
            if leaked:
                self._add(
                    "leaked-request",
                    WARNING,
                    f"rank {rank}: {kind} request was never completed "
                    "(missing wait/test)",
                    state,
                )
        core = state.world.comm_world._core
        for rank, mailbox in enumerate(core.user_boxes):
            with mailbox._lock:
                pending = list(mailbox._pending)
            for msg in pending:
                self._add(
                    "unconsumed-message",
                    WARNING,
                    f"message from rank {msg.source} to rank {rank} "
                    f"(tag {msg.tag}, {msg.nbytes} bytes) was never received — "
                    "tag mismatch or missing recv",
                    state,
                )
        for obj in state.world.registry._objects.values():
            if isinstance(obj, _WinCore) and not obj.freed:
                self._add(
                    "unfreed-window",
                    WARNING,
                    "an RMA window was never freed (missing Win.Free)",
                    state,
                )

    # ------------------------------------------------------------------ reporting
    def finalize(self) -> None:
        """Run all end-of-run checks over every audited world."""
        for state in self._states:
            self._check_deadlock(state)
            self._check_collective_order(state)
            self._check_leaks(state)

    def report(self, target: str | None = None) -> AnalysisReport:
        report = AnalysisReport(
            target=target or self.target,
            engine="mpi-checker",
            diagnostics=list(self.diagnostics),
            notes=list(self.notes),
        )
        if not self.diagnostics:
            matched = sum(s.message_count for s in self._states)
            worlds = len(self._states)
            report.add(
                Diagnostic(
                    kind="summary",
                    severity=INFO,
                    message=(
                        f"no MPI misuse: {worlds} world(s) audited, "
                        f"{matched} matched message(s), collectives in order, "
                        "no leaked requests or windows"
                    ),
                )
            )
        return report


@contextlib.contextmanager
def mpi_checker(target: str = "mpi") -> Generator[MPIChecker, None, None]:
    """Audit every :class:`~repro.mpi.runtime.World` created in this scope."""
    checker = MPIChecker(target=target)
    _runtime.add_world_hook(checker._on_world)
    try:
        yield checker
    finally:
        _runtime.remove_world_hook(checker._on_world)
        checker.finalize()


def check_run(
    fn: Callable[..., Any], np_procs: int, *args: Any, **kwargs: Any
) -> tuple[list[Any] | None, AnalysisReport]:
    """Run an SPMD function under the checker.

    Returns ``(per-rank results, report)``; results are ``None`` when the
    run failed (the failure itself is folded into the report).
    """
    from ..mpi import mpirun

    with mpi_checker() as checker:
        try:
            results = mpirun(fn, np_procs, *args, **kwargs)
        except MPIError as exc:
            checker.notes.append(f"run failed: {type(exc).__name__}: {exc}")
            results = None
    return results, checker.report()
