"""Structured diagnostics shared by both analysis engines.

Every finding — a data race, a deadlock cycle, a mismatched collective —
is a :class:`Diagnostic` record.  An engine run produces an
:class:`AnalysisReport` that renders either as a readable text report (what
``repro analyze`` prints) or as JSON (``--json``), so graders and tests can
consume the same artifact the student reads.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Diagnostic", "AnalysisReport", "ERROR", "WARNING", "INFO"]

ERROR = "error"
WARNING = "warning"
INFO = "info"

_SEVERITY_RANK = {ERROR: 0, WARNING: 1, INFO: 2}


@dataclass
class Diagnostic:
    """One correctness finding.

    ``kind`` is a stable machine-readable category (``data-race``,
    ``deadlock``, ``collective-mismatch``, ``type-mismatch``,
    ``count-mismatch``, ``unconsumed-message``, ``leaked-request``,
    ``unfreed-window``, ``lockset-empty``); ``details`` carries the
    engine-specific evidence (conflicting accesses, wait-for edges, ...).
    """

    kind: str
    severity: str
    message: str
    location: str | None = None
    details: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind,
            "severity": self.severity,
            "message": self.message,
        }
        if self.location:
            out["location"] = self.location
        if self.details:
            out["details"] = self.details
        return out

    def render(self) -> str:
        lines = [f"{self.severity.upper():7s} [{self.kind}] {self.message}"]
        if self.location:
            lines.append(f"        at {self.location}")
        for key, value in self.details.items():
            if isinstance(value, (list, tuple)):
                lines.append(f"        {key}:")
                lines.extend(f"          - {item}" for item in value)
            else:
                lines.append(f"        {key}: {value}")
        return "\n".join(lines)


@dataclass
class AnalysisReport:
    """The outcome of one analysis run over one target.

    ``suppressed`` holds findings that matched a ``pdclint: disable=<id>``
    directive in the analyzed source: they are excluded from the verdict and
    the exit-code gate but still counted in the JSON report, so a grader can
    see that a known-intentional bug was waved through rather than missed.
    """

    target: str
    engine: str  # "race-detector" | "mpi-checker" | "pdclint"
    diagnostics: list[Diagnostic] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    suppressed: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> Diagnostic:
        self.diagnostics.append(diagnostic)
        return diagnostic

    def add_suppressed(self, diagnostic: Diagnostic) -> Diagnostic:
        self.suppressed.append(diagnostic)
        return diagnostic

    def extend(self, other: "AnalysisReport") -> None:
        self.diagnostics.extend(other.diagnostics)
        self.notes.extend(other.notes)
        self.suppressed.extend(other.suppressed)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == WARNING]

    @property
    def clean(self) -> bool:
        """True when no error-severity diagnostic was produced."""
        return not self.errors

    @property
    def verdict(self) -> str:
        if self.errors:
            return f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        if self.warnings:
            return f"clean with {len(self.warnings)} warning(s)"
        return "clean"

    def sorted_diagnostics(self) -> list[Diagnostic]:
        return sorted(
            self.diagnostics,
            key=lambda d: (_SEVERITY_RANK.get(d.severity, 9), d.kind, d.message),
        )

    def render(self) -> str:
        command = "repro lint" if self.engine == "pdclint" else "repro analyze"
        header = f"== {command}: {self.target} [{self.engine}] =="
        lines = [header]
        for note in self.notes:
            lines.append(f"note: {note}")
        for diag in self.sorted_diagnostics():
            lines.append(diag.render())
        if self.suppressed:
            lines.append(f"suppressed: {len(self.suppressed)} finding(s) via "
                         "pdclint directives")
        lines.append(f"verdict: {self.verdict}")
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "target": self.target,
            "engine": self.engine,
            "verdict": self.verdict,
            "clean": self.clean,
            "notes": list(self.notes),
            "suppressed": len(self.suppressed),
            "diagnostics": [d.to_dict() for d in self.sorted_diagnostics()],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)
