"""Scalability rules backed by the static cost analyzer (``repro lint --cost``).

These rules are *opt-in* (``Rule.opt_in``): they evaluate every SPMD
body once per rank at several world sizes via
:mod:`repro.analysis.scale.cost`, which is more work than the lexical
rules, so plain ``repro lint`` skips them and ``repro lint --cost``
turns them on.

* **PDC120** — a point-to-point site whose messages all originate from
  one rank and whose count grows with the world size: a serialized
  O(P) fan-out/fan-in section that caps speedup (Amdahl) and should be
  a collective.
* **PDC121** — a collective call or array allocation executed many
  times per rank inside a loop: per-iteration ``bcast``/``np.zeros``
  turns an O(1) setup cost into an O(iterations) one.
* **PDC122** — the per-rank work profile is strongly imbalanced at the
  sampled world sizes (max/mean − 1 beyond 50%): non-uniform chunking
  leaves most ranks idle while one finishes.

Every rule reports with the evidence in ``details`` (per-rank message
counts, sampled world sizes, work profiles) so the ``--json`` report is
grader-consumable, mirroring the protocol rules.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..diagnostics import WARNING, Diagnostic
from ..flow.protocol import spmd_roots
from ..scale.cost import CostSample, analyze_cost
from .engine import Rule, SourceFile, register_rule

#: world sizes sampled for the cost rules (P=1 anchors the Amdahl view)
COST_SAMPLE_SIZES: tuple[int, ...] = (2, 4, 8)

#: calls-per-rank at one site before PDC121 considers it "inside a loop"
LOOP_CALL_THRESHOLD = 16

#: max/mean - 1 beyond which PDC122 reports imbalance
IMBALANCE_THRESHOLD = 0.5

#: minimum max-rank work before imbalance is worth reporting
IMBALANCE_WORK_FLOOR = 64


def _cost_results(src: SourceFile) -> list[tuple[ast.AST, list[CostSample]]]:
    """Sample every SPMD root at :data:`COST_SAMPLE_SIZES`; cached per file."""
    if "cost" not in src.cache:
        results: list[tuple[ast.AST, list[CostSample]]] = []
        if src.tree is not None:
            for root in spmd_roots(src.tree):
                samples = [
                    analyze_cost(root, src.tree, size=p)
                    for p in COST_SAMPLE_SIZES
                ]
                results.append((root, samples))
        src.cache["cost"] = results
    return src.cache["cost"]


def _single_origin(sample: CostSample, line: int) -> int | None:
    """The one rank all of a p2p site's sends come from, if any."""
    for site in sample.sites:
        if site.kind != "p2p" or site.line != line:
            continue
        origins = [r for r, n in enumerate(site.per_rank_msgs) if n > 0]
        if len(origins) == 1:
            return origins[0]
    return None


def _site_msgs(sample: CostSample, line: int, kind: str) -> int:
    for site in sample.sites:
        if site.kind == kind and site.line == line:
            return site.msgs
    return 0


@register_rule
class SerializedFanout(Rule):
    id = "PDC120"
    name = "serialized-fanout"
    severity = WARNING
    summary = "one rank sends to every other rank in turn: a serialized O(P) section"
    fix_hint = (
        "replace the rank-0 send/recv loop with a collective "
        "(scatter/gather/bcast): the runtime's tree and ring algorithms "
        "spread the O(P) traffic across ranks"
    )
    opt_in = True

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for _root, samples in _cost_results(src):
            clean = [s for s in samples if s.abstained is None]
            if len(clean) < 2:
                continue
            lines = {site.line for s in clean for site in s.sites
                     if site.kind == "p2p"}
            for line in sorted(lines):
                origins = [_single_origin(s, line) for s in clean]
                if len(set(origins)) != 1 or origins[0] is None:
                    continue
                counts = [_site_msgs(s, line, "p2p") for s in clean]
                # serialized fan-out: the site's traffic grows with P
                if not all(b > a for a, b in zip(counts, counts[1:])):
                    continue
                ps = [s.p for s in clean]
                evidence = ", ".join(
                    f"P={p}: {c} msgs" for p, c in zip(ps, counts))
                yield self.diag(
                    src, line,
                    f"rank {origins[0]} serializes all point-to-point "
                    f"traffic at this site and the count grows with the "
                    f"world size ({evidence})",
                    origin_rank=origins[0],
                    sampled_sizes=ps,
                    message_counts=counts,
                )


@register_rule
class CollectiveInLoop(Rule):
    id = "PDC121"
    name = "collective-in-loop"
    severity = WARNING
    summary = "collective call or array allocation repeated inside a loop"
    fix_hint = (
        "hoist the collective/allocation out of the loop: batch the "
        "values and communicate once, or reuse one preallocated buffer"
    )
    opt_in = True

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for _root, samples in _cost_results(src):
            clean = [s for s in samples if s.abstained is None]
            if not clean:
                continue
            worst = clean[-1]
            for site in worst.sites:
                if site.kind == "coll" and site.name == "cart_setup":
                    continue
                if site.kind not in ("coll", "alloc"):
                    continue
                if site.calls_per_rank < LOOP_CALL_THRESHOLD:
                    continue
                what = ("collective '%s'" % site.name if site.kind == "coll"
                        else "allocation '%s'" % site.name)
                yield self.diag(
                    src, site.line,
                    f"{what} executes {site.calls_per_rank} times per rank "
                    f"at P={worst.p}: it sits inside a loop and its cost "
                    f"scales with the iteration count",
                    calls_per_rank=site.calls_per_rank,
                    sampled_size=worst.p,
                    site_kind=site.kind,
                )


@register_rule
class LoadImbalance(Rule):
    id = "PDC122"
    name = "load-imbalance"
    severity = WARNING
    summary = "non-uniform chunking leaves the per-rank work badly imbalanced"
    fix_hint = (
        "split the range with divmod(n, size) so every rank gets "
        "base or base+1 items, instead of dumping the remainder on one rank"
    )
    opt_in = True

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        for root, samples in _cost_results(src):
            clean = [s for s in samples if s.abstained is None and s.p >= 2]
            imbalanced = [
                s for s in clean
                if s.imbalance > IMBALANCE_THRESHOLD
                and s.max_work >= IMBALANCE_WORK_FLOOR
            ]
            # demand it at every multi-rank sample: a one-off skew at a
            # single P is usually a remainder artifact, not a bug
            if not imbalanced or len(imbalanced) != len(clean) or not clean:
                continue
            worst = max(imbalanced, key=lambda s: s.imbalance)
            line = getattr(root, "lineno", 1)
            yield self.diag(
                src, line,
                f"per-rank work is imbalanced at every sampled world size "
                f"(worst at P={worst.p}: max/mean - 1 = "
                f"{worst.imbalance:.0%}; work profile {worst.work})",
                sampled_sizes=[s.p for s in imbalanced],
                worst_size=worst.p,
                imbalance=round(worst.imbalance, 3),
                work_profile=worst.work,
            )
