"""A lightweight ``#pragma omp`` parser plus rules for the C handout listings.

The Raspberry Pi handout shows learners *C* OpenMP code
(:mod:`repro.patternlets.clistings`); this module parses every
``#pragma omp`` directive into a structured :class:`Pragma` (directive +
clauses) and applies the data-scoping rules remote learners most often get
wrong:

* **PDC201** — a per-thread temporary (or an out-of-init loop index)
  missing from ``private(...)``;
* **PDC202** — an accumulation variable missing from ``reduction(...)``
  and not guarded by ``critical``/``atomic``;
* **PDC203** — ``nowait`` on a loop whose output a following loop reads.

:func:`check_clistings` is the consistency gate: every ``C_LISTINGS``
entry must parse cleanly and name a registered openmp patternlet.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from ..diagnostics import ERROR, WARNING, AnalysisReport, Diagnostic
from .engine import ENGINE, Rule, SourceFile, register_rule

__all__ = [
    "Clause",
    "Pragma",
    "CPragmaError",
    "parse_pragma",
    "parse_source",
    "check_clistings",
]

PRAGMA_RE = re.compile(r"^\s*#\s*pragma\s+omp\b(.*)$")
_TOKEN_RE = re.compile(r"([A-Za-z_][A-Za-z_0-9]*)\s*(?:\(([^()]*)\))?")

DIRECTIVES = frozenset({
    "parallel", "for", "sections", "section", "single", "master",
    "critical", "atomic", "barrier", "task", "taskwait", "taskgroup",
    "ordered", "simd", "flush", "threadprivate",
})
_COMBINABLE = frozenset({"for", "sections"})
CLAUSES = frozenset({
    "private", "firstprivate", "lastprivate", "shared", "default",
    "reduction", "schedule", "num_threads", "nowait", "collapse", "if",
    "ordered", "untied", "final", "copyin",
})
#: directives that take a parenthesized argument themselves (not a clause)
_ARG_DIRECTIVES = frozenset({"critical", "flush", "threadprivate"})
#: a statement directly under one of these pragmas is not a data race
_GUARD_DIRECTIVES = frozenset({"critical", "atomic", "single", "master",
                               "task"})

_DATA_CLAUSES = ("private", "firstprivate", "lastprivate", "reduction",
                 "shared")


class CPragmaError(ValueError):
    """One unparseable ``#pragma omp`` line."""

    def __init__(self, message: str, line: int) -> None:
        super().__init__(message)
        self.line = line


@dataclass(frozen=True)
class Clause:
    name: str
    args: tuple[str, ...] = ()


@dataclass(frozen=True)
class Pragma:
    """One parsed ``#pragma omp`` directive."""

    line: int  # 1-based line number in the listing
    directive: str  # e.g. "parallel", "parallel for", "critical"
    clauses: tuple[Clause, ...] = ()
    raw: str = ""

    def has_clause(self, name: str) -> bool:
        return any(clause.name == name for clause in self.clauses)

    def clause_args(self, *names: str) -> tuple[str, ...]:
        out: list[str] = []
        for clause in self.clauses:
            if clause.name in names:
                out.extend(clause.args)
        return tuple(out)

    def data_vars(self, *names: str) -> frozenset[str]:
        """Variable names bound by the given data clauses.

        ``reduction(+:sum, prod)`` contributes ``{"sum", "prod"}`` — the
        operator prefix before ``:`` is stripped.
        """
        variables: set[str] = set()
        for arg in self.clause_args(*(names or _DATA_CLAUSES)):
            _, _, tail = arg.rpartition(":")
            for part in tail.split(","):
                part = part.strip()
                if part:
                    variables.add(part)
        return frozenset(variables)


def parse_pragma(text: str, lineno: int = 1) -> Pragma:
    """Parse one ``#pragma omp`` line; raises :class:`CPragmaError`."""
    match = PRAGMA_RE.match(text)
    if match is None:
        raise CPragmaError(f"not an omp pragma: {text.strip()!r}", lineno)
    rest = match.group(1).split("//")[0].split("/*")[0].strip()
    if rest.count("(") != rest.count(")"):
        raise CPragmaError("unbalanced parentheses in pragma", lineno)

    tokens: list[tuple[str, str | None]] = []
    pos = 0
    while pos < len(rest):
        if rest[pos] in " \t,":
            pos += 1
            continue
        token = _TOKEN_RE.match(rest, pos)
        if token is None:
            raise CPragmaError(
                f"cannot parse pragma near {rest[pos:pos + 20]!r}", lineno)
        tokens.append((token.group(1), token.group(2)))
        pos = token.end()

    if not tokens:
        raise CPragmaError("pragma omp with no directive", lineno)
    name, arg = tokens[0]
    if name not in DIRECTIVES:
        raise CPragmaError(f"unknown omp directive {name!r}", lineno)
    if arg is not None and name not in _ARG_DIRECTIVES:
        raise CPragmaError(
            f"directive {name!r} does not take an argument list", lineno)
    directive = name
    index = 1
    if name == "parallel" and index < len(tokens) \
            and tokens[index][0] in _COMBINABLE and tokens[index][1] is None:
        directive = f"parallel {tokens[index][0]}"
        index += 1

    clauses: list[Clause] = []
    for clause_name, clause_arg in tokens[index:]:
        if clause_name not in CLAUSES:
            raise CPragmaError(f"unknown omp clause {clause_name!r}", lineno)
        args = tuple(
            part.strip()
            for part in (clause_arg.split(",") if clause_arg else [])
            if part.strip()
        )
        clauses.append(Clause(clause_name, args))
    return Pragma(line=lineno, directive=directive,
                  clauses=tuple(clauses), raw=text.strip())


def parse_source(text: str, label: str) -> tuple[list[Pragma], list[Diagnostic]]:
    """Parse every pragma in a listing; parse failures become diagnostics."""
    pragmas: list[Pragma] = []
    diagnostics: list[Diagnostic] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not PRAGMA_RE.match(line):
            continue
        try:
            pragmas.append(parse_pragma(line, lineno))
        except CPragmaError as exc:
            diagnostics.append(Diagnostic(
                kind="pragma-parse-error",
                severity=ERROR,
                message=str(exc),
                location=f"{label}:{lineno}",
                details={"rule": "parse-error"},
            ))
    return pragmas, diagnostics


# --- structural helpers over the raw C text --------------------------------

_DECL_RE = re.compile(
    r"^\s*(?:const\s+)?(?:static\s+)?(?:unsigned\s+|signed\s+)?"
    r"(?:int|long|short|float|double|char|size_t)\b(.*)$"
)
_DECL_NAME_RE = re.compile(r"\s*\**([A-Za-z_]\w*)")
_ASSIGN_RE = re.compile(r"^\s*\**([A-Za-z_]\w*)\s*(\+\+|--|[-+*/|&^]?=)(?!=)(.*)$")
_FOR_DECL_RE = re.compile(r"for\s*\(\s*(?:int|long|size_t|unsigned)\s+([A-Za-z_]\w*)")
_FOR_ASSIGN_RE = re.compile(r"for\s*\(\s*([A-Za-z_]\w*)\s*=")
_ARRAY_WRITE_RE = re.compile(r"([A-Za-z_]\w*)\s*\[[^\]]*\]\s*=(?!=)")


def _declared_before(lines: list[str], upto: int) -> frozenset[str]:
    """Scalar names declared on lines ``1..upto`` (1-based inclusive)."""
    names: set[str] = set()
    for line in lines[:upto]:
        match = _DECL_RE.match(line)
        if match is None:
            continue
        for part in match.group(1).split(";")[0].split(","):
            part = part.split("=")[0].split("(")[0]
            name = _DECL_NAME_RE.match(part)
            if name:
                names.add(name.group(1))
    return frozenset(names)


def _block_range(lines: list[str], pragma_line: int) -> tuple[int, int]:
    """1-based inclusive line range of the construct following a pragma."""
    total = len(lines)
    i = pragma_line  # 0-based index of the line after the pragma
    while i < total and not lines[i].strip():
        i += 1
    if i >= total:
        return (pragma_line + 1, pragma_line)
    depth = 0
    opened = False
    j = i
    while j < total:
        depth += lines[j].count("{") - lines[j].count("}")
        if "{" in lines[j]:
            opened = True
        if opened and depth <= 0:
            return (i + 1, j + 1)
        if not opened and lines[j].strip().endswith(";"):
            return (i + 1, j + 1)
        j += 1
    return (i + 1, total)


def _guarded(lines: list[str], index: int, pragmas_by_line: dict[int, Pragma]) -> bool:
    """True when the statement at 0-based ``index`` sits directly under a
    critical/atomic/single/master/task pragma (allowing an opening brace)."""
    j = index - 1
    while j >= 0:
        stripped = lines[j].strip()
        if not stripped or stripped == "{":
            j -= 1
            continue
        pragma = pragmas_by_line.get(j + 1)
        return pragma is not None and pragma.directive in _GUARD_DIRECTIVES
    return False


def _pragmas_by_line(src: SourceFile) -> dict[int, Pragma]:
    return {p.line: p for p in src.pragmas}


def _iter_block_statements(src: SourceFile, pragma: Pragma) -> Iterator[tuple[int, str]]:
    """(1-based line, text) of every non-pragma line in a pragma's block."""
    lo, hi = _block_range(src.lines, pragma.line)
    for lineno in range(lo, hi + 1):
        line = src.lines[lineno - 1]
        if PRAGMA_RE.match(line):
            continue
        yield lineno, line


def _is_accumulation(name: str, operator: str, rhs: str) -> bool:
    if operator in ("+=", "-=", "*=", "/=", "|=", "&=", "^=", "++", "--"):
        return True
    return operator == "=" and re.search(rf"\b{re.escape(name)}\b", rhs) is not None


@register_rule
class MissingPrivate(Rule):
    id = "PDC201"
    name = "omp-missing-private"
    severity = ERROR
    summary = ("per-thread temporary (or out-of-init loop index) missing "
               "from private(...)")
    fix_hint = ("add the variable to private(...) on the pragma, or declare "
                "it inside the parallel region so each thread gets its own")
    language = "c"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        pragmas_by_line = _pragmas_by_line(src)
        for pragma in src.pragmas:
            if pragma.directive == "parallel":
                yield from self._check_parallel_block(src, pragma,
                                                      pragmas_by_line)
            elif pragma.directive in ("for", "parallel for"):
                yield from self._check_loop_index(src, pragma)

    def _check_parallel_block(self, src, pragma, pragmas_by_line):
        declared = _declared_before(src.lines, pragma.line - 1)
        scoped = pragma.data_vars()
        for lineno, line in _iter_block_statements(src, pragma):
            match = _ASSIGN_RE.match(line)
            if match is None:
                continue
            name = match.group(1)
            if name not in declared or name in scoped:
                continue
            if _guarded(src.lines, lineno - 1, pragmas_by_line):
                continue
            yield self.diag(
                src, lineno,
                f"'{name}' is declared before the parallel region and "
                "written by every thread; it needs private("
                f"{name}) (or an in-region declaration)",
                variable=name,
            )

    def _check_loop_index(self, src, pragma):
        lo, hi = _block_range(src.lines, pragma.line)
        for lineno in range(lo, hi + 1):
            line = src.lines[lineno - 1]
            if "for" not in line:
                continue
            if _FOR_DECL_RE.search(line):
                return  # index declared in the init: implicitly private
            match = _FOR_ASSIGN_RE.search(line)
            if match is None:
                continue
            index = match.group(1)
            if index not in pragma.data_vars("private", "firstprivate",
                                             "lastprivate"):
                yield self.diag(
                    src, lineno,
                    f"loop index '{index}' is declared outside the loop; "
                    "declare it in the for-init or add private("
                    f"{index}) for clarity and pre-C99 safety",
                    severity=WARNING,
                    variable=index,
                )
            return


@register_rule
class MissingReduction(Rule):
    id = "PDC202"
    name = "omp-missing-reduction"
    severity = ERROR
    summary = "accumulation variable missing from reduction(...)"
    fix_hint = ("add reduction(op:var) to the pragma, or guard the update "
                "with #pragma omp critical / atomic")
    language = "c"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        pragmas_by_line = _pragmas_by_line(src)
        for pragma in src.pragmas:
            if pragma.directive not in ("for", "parallel for"):
                continue
            declared = _declared_before(src.lines, pragma.line - 1)
            reduced = pragma.data_vars("reduction")
            privatized = pragma.data_vars("private", "firstprivate",
                                          "lastprivate")
            for lineno, line in _iter_block_statements(src, pragma):
                if "for" in line and "(" in line and ";" in line \
                        and line.count(";") >= 2:
                    continue  # the for-header itself
                match = _ASSIGN_RE.match(line)
                if match is None:
                    continue
                name, operator, rhs = match.groups()
                if name not in declared or name in reduced \
                        or name in privatized:
                    continue
                if not _is_accumulation(name, operator, rhs):
                    continue
                if _guarded(src.lines, lineno - 1, pragmas_by_line):
                    continue
                yield self.diag(
                    src, lineno,
                    f"'{name}' accumulates across iterations of a parallel "
                    "loop without reduction("
                    f"...:{name}) — concurrent read-modify-write loses "
                    "updates",
                    variable=name,
                )


@register_rule
class NowaitDependence(Rule):
    id = "PDC203"
    name = "omp-nowait-dependence"
    severity = WARNING
    summary = "nowait on a loop whose output a following loop reads"
    fix_hint = ("drop the nowait (keep the implied barrier) or fuse the two "
                "loops — the second loop may read elements the first has "
                "not produced yet")
    language = "c"

    def check(self, src: SourceFile) -> Iterator[Diagnostic]:
        loop_pragmas = [p for p in src.pragmas
                        if p.directive in ("for", "parallel for")]
        for position, pragma in enumerate(loop_pragmas):
            if not pragma.has_clause("nowait"):
                continue
            written = {
                name
                for _, line in _iter_block_statements(src, pragma)
                for name in _ARRAY_WRITE_RE.findall(line)
            }
            if not written:
                continue
            for later in loop_pragmas[position + 1:]:
                reads = [
                    (name, lineno)
                    for lineno, line in _iter_block_statements(src, later)
                    for name in written
                    if re.search(rf"\b{re.escape(name)}\b", line)
                ]
                if reads:
                    name, lineno = reads[0]
                    yield self.diag(
                        src, pragma.line,
                        f"nowait removes the barrier after this loop, but "
                        f"the loop at line {later.line} uses '{name}' "
                        f"(line {lineno}) which this loop writes",
                        variable=name,
                        dependent_line=later.line,
                    )
                    break


def check_clistings() -> AnalysisReport:
    """Consistency gate: every C listing parses and names a patternlet."""
    from ...patternlets import C_LISTINGS, patternlet_names

    report = AnalysisReport(target="clistings", engine=ENGINE)
    registered = set(patternlet_names("openmp"))
    for name in sorted(C_LISTINGS):
        label = f"clisting:{name}"
        pragmas, diagnostics = parse_source(C_LISTINGS[name], label)
        for diagnostic in diagnostics:
            report.add(diagnostic)
        if not pragmas:
            report.add(Diagnostic(
                kind="listing-empty",
                severity=WARNING,
                message=f"C listing '{name}' contains no #pragma omp "
                        "directive",
                location=label,
                details={"rule": "clistings"},
            ))
        if name not in registered:
            report.add(Diagnostic(
                kind="listing-orphan",
                severity=ERROR,
                message=f"C listing '{name}' does not name a registered "
                        "openmp patternlet",
                location=label,
                details={"rule": "clistings"},
            ))
    for name in sorted(registered - set(C_LISTINGS)):
        report.add(Diagnostic(
            kind="listing-missing",
            severity=WARNING,
            message=f"openmp patternlet '{name}' has no C listing",
            location=f"clisting:{name}",
            details={"rule": "clistings"},
        ))
    report.notes.append(
        f"{len(C_LISTINGS)} C listings checked against "
        f"{len(registered)} registered openmp patternlets"
    )
    return report
