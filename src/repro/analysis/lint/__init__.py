"""pdclint — an AST-based static analyzer for PDC learner code.

Where :mod:`repro.analysis.race` and :mod:`repro.analysis.mpicheck` watch a
*running* patternlet, pdclint reads the *source*: Python learner code
written against the ``repro.openmp``/``repro.mpi`` teaching APIs, and the
C/OpenMP handout listings (via a lightweight ``#pragma omp`` parser).  The
point is edit-time feedback for the paper's remote-learning setting — the
mistakes an instructor would catch over a learner's shoulder, caught before
any run.

CLI front door::

    python -m repro lint examples/                 # lint a directory
    python -m repro lint race --json               # lint one patternlet
    python -m repro lint clistings                 # C-listing consistency
    python -m repro lint src --select PDC101,PDC103

Intentional teaching bugs are annotated in-source with
``# pdclint: disable=<rule-id>`` and surface in the JSON report as the
``suppressed`` count.  See ``docs/static_analysis.md`` for the rule
catalog.
"""

from .baseline import (
    DEADLOCK_RULES,
    RACY_RULES,
    apply_baseline,
    explore_hints,
    finding_fingerprint,
    load_baseline,
    render_github,
    write_baseline,
)
from .cpragma import (
    Clause,
    CPragmaError,
    Pragma,
    check_clistings,
    parse_pragma,
    parse_source,
)
from .engine import (
    ENGINE,
    SKIP_DIRS,
    Rule,
    SourceFile,
    all_rules,
    lint_patternlet,
    lint_path,
    lint_source,
    lint_targets,
    rule_ids,
    scan_suppressions,
)

__all__ = [
    "ENGINE",
    "SKIP_DIRS",
    "Rule",
    "SourceFile",
    "all_rules",
    "rule_ids",
    "scan_suppressions",
    "lint_source",
    "lint_path",
    "lint_patternlet",
    "lint_targets",
    "Clause",
    "Pragma",
    "CPragmaError",
    "parse_pragma",
    "parse_source",
    "check_clistings",
    "RACY_RULES",
    "DEADLOCK_RULES",
    "finding_fingerprint",
    "write_baseline",
    "load_baseline",
    "apply_baseline",
    "render_github",
    "explore_hints",
]
